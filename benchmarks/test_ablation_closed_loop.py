"""Ablation A7 — open-loop vs closed-loop load and the inversion picture.

The paper's Gatling driver is open-loop (requests fire regardless of
outstanding responses), which exposes queueing honestly.  Interactive
applications are closed-loop: a fixed user population self-throttles
when latency grows, softening — but not removing — the inversion.  This
ablation matches a closed-loop population to each open-loop rate (via
the interactive law) and compares the edge-vs-cloud verdicts.
"""

from repro.queueing.distributions import Exponential
from repro.sim.client import ClosedLoopSource
from repro.sim.engine import Simulation
from repro.sim.network import ConstantLatency
from repro.sim.runner import run_comparison
from repro.sim.topology import CloudDeployment, EdgeDeployment, EdgeSite

MU = 13.0
SERVICE = Exponential(1.0 / MU)
SITES = 5
THINK = 0.4  # seconds of think time per user
DURATION = 1500.0
EDGE_LAT = ConstantLatency.from_ms(1.0)
CLOUD_LAT = ConstantLatency.from_ms(24.0)


def run_closed_pair(users_per_site, seed):
    """Closed-loop edge and cloud runs with identical populations."""
    out = {}
    for kind in ("edge", "cloud"):
        sim = Simulation(seed)
        if kind == "edge":
            dep = EdgeDeployment(
                sim,
                [EdgeSite(sim, f"s{i}", 1, EDGE_LAT, SERVICE) for i in range(SITES)],
            )
            for i in range(SITES):
                ClosedLoopSource(
                    sim, dep, users=users_per_site, think=Exponential(THINK),
                    site=f"s{i}", stop_time=DURATION,
                )
        else:
            dep = CloudDeployment(
                sim, servers=SITES, latency=CLOUD_LAT, service_dist=SERVICE
            )
            for _ in range(SITES):
                ClosedLoopSource(
                    sim, dep, users=users_per_site, think=Exponential(THINK),
                    stop_time=DURATION,
                )
        sim.run()
        bd = dep.log.breakdown().after(DURATION * 0.2)
        out[kind] = (float(bd.end_to_end.mean()), len(bd) / (DURATION * 0.8))
    return out


def run_loop_comparison():
    results = {}
    # Open loop at the paper's 10 req/s/server point (rho = 0.77).
    edge, cloud = run_comparison(
        sites=SITES, servers_per_site=1, rate_per_site=10.0, service_dist=SERVICE,
        edge_latency=EDGE_LAT, cloud_latency=CLOUD_LAT, duration=DURATION, seed=151,
    )
    results["open"] = {
        "edge": float(edge.end_to_end.mean()),
        "cloud": float(cloud.end_to_end.mean()),
    }
    # Closed loop sized to offer ~10 req/s/server when unqueued:
    # N ≈ rate × (think + service) ≈ 10 × (0.4 + 0.077) ≈ 5 users/site.
    closed = run_closed_pair(users_per_site=5, seed=151)
    results["closed"] = {
        "edge": closed["edge"][0],
        "cloud": closed["cloud"][0],
        "edge_rate": closed["edge"][1],
        "cloud_rate": closed["cloud"][1],
    }
    return results


def test_ablation_closed_loop(run_once):
    res = run_once(run_loop_comparison)
    print("\nAblation A7 — open vs closed loop at the ~10 req/s/server point")
    print(f"  open  : edge {res['open']['edge'] * 1e3:7.1f} ms, "
          f"cloud {res['open']['cloud'] * 1e3:7.1f} ms")
    print(f"  closed: edge {res['closed']['edge'] * 1e3:7.1f} ms, "
          f"cloud {res['closed']['cloud'] * 1e3:7.1f} ms "
          f"(achieved {res['closed']['edge_rate'] / 5:.1f} req/s/server)")
    # Open loop at rho=0.77 shows the inversion (typical cloud).
    assert res["open"]["edge"] > res["open"]["cloud"]
    # Closed-loop self-throttling shrinks the edge's penalty...
    open_gap = res["open"]["edge"] - res["open"]["cloud"]
    closed_gap = res["closed"]["edge"] - res["closed"]["cloud"]
    assert closed_gap < open_gap
    # ...and the cloud still pools better or equal under closed load.
    assert res["closed"]["cloud"] <= res["closed"]["edge"] + 0.005
