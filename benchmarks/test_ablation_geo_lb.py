"""Ablation A2 — geographic load balancing removes skew-driven inversion.

Section 5.1: queue jockeying between edge sites defeats the bank-teller
effect.  Under a skewed workload the plain edge loses to the cloud; with
redirection enabled it recovers (or closes most of the gap).
"""

from repro.mitigation.geo_lb import GeoLoadBalancer
from repro.queueing.distributions import Exponential
from repro.sim.network import ConstantLatency
from repro.sim.runner import run_deployment

MU = 13.0
SKEWED_RATES = [11.5, 6.0, 6.0, 4.0, 3.0]


def run_geo_lb_ablation():
    common = {
        "sites": 5,
        "servers_per_site": 1,
        "rate_per_site": 0.0,
        "site_rates": SKEWED_RATES,
        "service_dist": Exponential(1.0 / MU),
        "duration": 2500.0,
        "seed": 23,
    }
    edge_lat = ConstantLatency.from_ms(1.0)
    cloud_lat = ConstantLatency.from_ms(25.0)
    glb = GeoLoadBalancer(occupancy_threshold=1.0, inter_site_oneway=0.003)
    return {
        "edge_plain": run_deployment("edge", latency=edge_lat, **common).end_to_end.mean(),
        "edge_geo_lb": run_deployment(
            "edge", latency=edge_lat, router=glb, **common
        ).end_to_end.mean(),
        "cloud": run_deployment("cloud", latency=cloud_lat, **common).end_to_end.mean(),
        "redirect_fraction": glb.redirect_fraction,
    }


def test_ablation_geo_lb(run_once):
    res = run_once(run_geo_lb_ablation)
    print("\nAblation A2 — skewed workload (hot site rho=0.88), mean end-to-end")
    for k in ("edge_plain", "edge_geo_lb", "cloud"):
        print(f"  {k:>12}: {res[k] * 1e3:7.2f} ms")
    print(f"  redirected: {res['redirect_fraction']:.1%} of requests")
    # Skew inverts the plain edge against the cloud...
    assert res["edge_plain"] > res["cloud"]
    # ...and jockeying recovers most (here: all) of the loss.
    assert res["edge_geo_lb"] < res["edge_plain"]
    assert res["edge_geo_lb"] < res["cloud"] * 1.1
