"""Ablation A1 — cloud dispatch policy vs the ideal central queue.

The paper models the cloud as one M/M/k central queue but deploys
HAProxy; this ablation quantifies the gap for real dispatch policies.
Expected ordering of mean waits: central ≤ JSQ ≤ round-robin ≤ random.
"""

from repro.queueing.distributions import Exponential
from repro.sim.loadbalancer import JoinShortestQueue, RandomDispatch, RoundRobin
from repro.sim.network import ConstantLatency
from repro.sim.runner import run_deployment

MU = 13.0


def run_policies():
    common = {
        "sites": 5,
        "servers_per_site": 1,
        "rate_per_site": 10.0,
        "service_dist": Exponential(1.0 / MU),
        "latency": ConstantLatency.from_ms(25.0),
        "duration": 2000.0,
        "seed": 17,
    }
    out = {"central": run_deployment("cloud", **common).wait.mean()}
    for name, policy in (
        ("jsq", JoinShortestQueue()),
        ("round-robin", RoundRobin()),
        ("random", RandomDispatch()),
    ):
        out[name] = run_deployment(
            "cloud", policy=policy, backends=5, **common
        ).wait.mean()
    return out


def test_ablation_loadbalancer(run_once):
    waits = run_once(run_policies)
    print("\nAblation A1 — cloud mean queueing delay by dispatch policy (rho=0.77)")
    for name, w in waits.items():
        print(f"  {name:>12}: {w * 1e3:7.2f} ms")
    assert waits["central"] <= waits["jsq"] * 1.05
    assert waits["jsq"] < waits["round-robin"]
    assert waits["round-robin"] < waits["random"] * 1.1
