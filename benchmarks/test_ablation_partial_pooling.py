"""Ablation A5 — the power of (even a little) centralization.

Tsitsiklis & Xu (cited as [30, 31] in the paper) show that centralizing
even a small fraction p of servers collapses queueing delays.  We sweep
p with a fixed total fleet: k sites keep (1−p) of their servers and the
rest pool at the cloud as an overflow tier (HybridDeployment).  Expected
shape: latency drops steeply from p = 0 and flattens — most of the
pooling benefit arrives with the first fraction centralized.
"""

from repro.mitigation.offload import HybridDeployment
from repro.queueing.distributions import Exponential
from repro.sim.client import OpenLoopSource
from repro.sim.engine import Simulation
from repro.sim.network import ConstantLatency
from repro.sim.runner import run_deployment

MU = 13.0
SERVICE = Exponential(1.0 / MU)
SITES = 5
SERVERS_PER_SITE = 4  # total fleet: 20 servers
RATE_PER_SITE = 44.0  # rho = 0.846 per site at p = 0: queueing dominates
# Offload once the local backlog reaches 2x the local servers: local
# queues carry the base load (so the 25 ms offload RTT is only paid
# during congestion) and the shed traffic keeps every central tier
# stable across the sweep.
OFFLOAD_THRESHOLD = 2.0
DURATION = 1200.0


def run_partial_pooling():
    edge_lat = ConstantLatency.from_ms(1.0)
    cloud_lat = ConstantLatency.from_ms(25.0)
    out = {}
    for p, local, central in ((0.0, 4, 0), (0.25, 3, 5), (0.5, 2, 10), (0.75, 1, 15)):
        if central == 0:
            bd = run_deployment(
                "edge", sites=SITES, servers_per_site=local,
                rate_per_site=RATE_PER_SITE, service_dist=SERVICE,
                latency=edge_lat, duration=DURATION, seed=51,
            )
            out[p] = float(bd.end_to_end.mean())
            continue
        sim = Simulation(51)
        hybrid = HybridDeployment(
            sim, sites=SITES, servers_per_site=local, cloud_servers=central,
            edge_latency=edge_lat, cloud_latency=cloud_lat,
            service_dist=SERVICE, offload_threshold=OFFLOAD_THRESHOLD,
        )
        for i in range(SITES):
            OpenLoopSource(
                sim, hybrid, Exponential(1.0 / RATE_PER_SITE),
                site=f"site-{i}", stop_time=DURATION,
            )
        sim.run()
        out[p] = float(hybrid.log.breakdown().after(DURATION * 0.2).end_to_end.mean())
    return out


def test_ablation_partial_pooling(run_once):
    res = run_once(run_partial_pooling)
    print("\nAblation A5 — mean latency vs fraction of servers centralized")
    for p, mean in res.items():
        print(f"  p={p:4.2f}: {mean * 1e3:8.2f} ms")
    ps = sorted(res)
    # A little centralization helps a lot...
    assert res[ps[1]] < res[ps[0]]
    # ...and the first step captures most of the total gain.
    total_gain = res[ps[0]] - min(res.values())
    first_gain = res[ps[0]] - res[ps[1]]
    assert first_gain > 0.5 * total_gain
