"""Figure 6 — latency distributions at 10 req/s (violin-plot summary).

Paper: the edge distribution is more variable with a longer tail.
"""

from repro.experiments.figures import fig6_distribution
from repro.experiments.report import render_fig6


def test_fig6_distribution(run_once, cfg):
    res = run_once(fig6_distribution, cfg)
    print("\n" + render_fig6(res))
    assert res.edge.p99 > res.cloud.p99
    assert res.edge.std > res.cloud.std
