"""Extension E2 — analytic tail cutoffs (lifting the paper's mean-only limit).

The paper measures tail inversion empirically (Figure 5) because its
analysis "only permit[s] a comparison of mean latencies".  Our exact
M/M/c response distributions make the tail cutoff computable; this
bench compares the analytic p95 cutoff with the simulated Figure 7 tail
cutoffs at each cloud placement.
"""

from repro.core.comparator import EdgeCloudComparator
from repro.core.scenarios import PAPER_SCENARIOS
from repro.core.tail import cutoff_utilization_tail

import numpy as np


def run_tail_prediction(requests_per_site):
    out = {}
    for i, scenario in enumerate(PAPER_SCENARIOS):
        predicted = cutoff_utilization_tail(
            scenario.delta_n,
            scenario.service.core_service_rate,
            scenario.edge_servers_per_site,
            scenario.cloud_servers,
            q=0.95,
        )
        cmp_ = EdgeCloudComparator(
            scenario, requests_per_site=requests_per_site, seed=61 + i
        )
        _, measured = cmp_.find_crossover(
            "p95", utilizations=np.arange(0.2, 0.95, 0.06)
        )
        out[scenario.cloud_rtt_ms] = (predicted, measured)
    return out


def test_extension_tail_analytic(run_once, cfg):
    res = run_once(run_tail_prediction, cfg.requests_per_site)
    print("\nExtension E2 — analytic vs simulated p95 inversion cutoff (k=5)")
    print(f"{'RTT(ms)':>8} {'analytic':>9} {'simulated':>10}")
    for rtt, (pred, meas) in res.items():
        m = "none" if meas is None else f"{meas:.2f}"
        print(f"{rtt:>8.0f} {pred:>9.2f} {m:>10}")
    for _rtt, (pred, meas) in res.items():
        assert meas is not None
        # Analytic tail cutoff tracks the simulated one. (The analytic
        # model is exact for M/M/c; our service is Erlang, so allow a
        # modest tolerance.)
        assert abs(pred - meas) < 0.15
    preds = [res[r][0] for r in sorted(res)]
    assert all(np.diff(preds) > 0)  # farther cloud -> higher tail cutoff
