"""Ablation A3 — burstiness (arrival CoV) vs inversion cutoff.

Corollary 3.2.1: higher inter-arrival variability makes inversion more
likely.  We sweep the arrival CoV² and locate the mean-latency cutoff;
it must fall monotonically, for both the simulator and the G/G model.
"""

import numpy as np

from repro.core.comparator import EdgeCloudComparator
from repro.core.inversion import cutoff_utilization_exact
from repro.core.scenarios import TYPICAL_CLOUD

CV2S = (1.0, 2.0, 4.0)


def run_burstiness_sweep():
    s = TYPICAL_CLOUD
    out = {}
    for i, cv2 in enumerate(CV2S):
        cmp_ = EdgeCloudComparator(
            s, requests_per_site=40_000, arrival_cv2=cv2, seed=31 + i
        )
        _, measured = cmp_.find_crossover(
            "mean", utilizations=np.arange(0.2, 0.92, 0.06)
        )
        predicted = cutoff_utilization_exact(
            s.delta_n,
            s.service.core_service_rate,
            s.edge_servers_per_site,
            s.cloud_servers,
            ca2=cv2,
            cs2=s.service.cv2,
        )
        out[cv2] = (measured, predicted)
    return out


def test_ablation_burstiness(run_once):
    res = run_once(run_burstiness_sweep)
    print("\nAblation A3 — inversion cutoff vs arrival burstiness (typical cloud)")
    print(f"{'cA^2':>6} {'measured cutoff':>16} {'predicted cutoff':>17}")
    for cv2, (m, p) in res.items():
        m_s = "none" if m is None else f"{m:.2f}"
        print(f"{cv2:>6.1f} {m_s:>16} {p:>17.2f}")
    measured = [res[c][0] for c in CV2S]
    predicted = [res[c][1] for c in CV2S]
    assert all(m is not None for m in measured)
    # Burstier arrivals invert earlier (monotone decrease, small slack).
    assert measured[0] > measured[-1] - 0.02
    assert predicted[0] > predicted[-1]
