"""Analyzer-cost guard: whole-program analysis must stay cheap.

Runs ``repro.analysis`` over the real tree twice against a fresh cache —
a cold pass (parse everything, link the call graph, run the three
whole-program checks) and a warm pass (every file digest matches, so the
cache replays findings and skips linking entirely) — then asserts:

* **bit identity** — the warm pass reports exactly the findings of the
  cold one; a cache that changes answers is worse than no cache;
* **cold ≤ 30 s** — a full cold analysis of ``src/`` + ``tests/`` is a
  pre-commit-scale cost, not a CI-only one;
* **warm ≤ 0.2 × cold** — the incremental cache is the product here; if
  replay costs more than a fifth of a cold run it has failed at its one
  job (in practice the ratio is ~0.03).

Measurements go to ``BENCH_analysis.json`` at the repo root.

Run with::

    pytest benchmarks/test_analysis_perf.py -s
"""

import json
import time
from pathlib import Path

import pytest

from repro.analysis.cache import analyze_project

REPO = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO / "BENCH_analysis.json"

TARGETS = [REPO / "src", REPO / "tests"]

MAX_COLD_SECONDS = 30.0
MAX_WARM_RATIO = 0.2


@pytest.fixture(scope="module")
def analysis_run(tmp_path_factory):
    """One timed cold + warm analysis pair over the real tree."""
    cache = tmp_path_factory.mktemp("analysis") / "cache.json"

    t0 = time.perf_counter()
    cold = analyze_project(TARGETS, cache_path=cache)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = analyze_project(TARGETS, cache_path=cache)
    warm_s = time.perf_counter() - t0

    payload = {
        "files_checked": cold.files_checked,
        "cold_seconds": round(cold_s, 4),
        "warm_seconds": round(warm_s, 4),
        "warm_ratio": round(warm_s / cold_s, 4) if cold_s else None,
        "speedup": round(cold_s / warm_s, 1) if warm_s else None,
        "findings": len(cold.findings),
        "warm_files_parsed": warm.files_parsed,
        "warm_whole_program_cached": warm.whole_program_cached,
        "gates": {
            "max_cold_seconds": MAX_COLD_SECONDS,
            "max_warm_ratio": MAX_WARM_RATIO,
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nanalysis bench: {json.dumps(payload)}")
    return cold, warm, cold_s, warm_s


class TestAnalysisPerf:
    def test_warm_findings_identical_to_cold(self, analysis_run):
        cold, warm, _, _ = analysis_run
        assert warm.findings == cold.findings

    def test_warm_pass_replays_instead_of_reparsing(self, analysis_run):
        _, warm, _, _ = analysis_run
        assert warm.files_parsed == 0
        assert warm.whole_program_cached

    def test_cold_analysis_is_precommit_scale(self, analysis_run):
        _, _, cold_s, _ = analysis_run
        assert cold_s <= MAX_COLD_SECONDS, (
            f"cold analysis took {cold_s:.1f}s > {MAX_COLD_SECONDS}s"
        )

    def test_warm_analysis_is_incremental(self, analysis_run):
        _, _, cold_s, warm_s = analysis_run
        assert warm_s <= MAX_WARM_RATIO * cold_s, (
            f"warm {warm_s:.2f}s vs cold {cold_s:.2f}s: "
            f"ratio {warm_s / cold_s:.2f} > {MAX_WARM_RATIO}"
        )
