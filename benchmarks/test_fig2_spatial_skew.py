"""Figure 2 — spatial load skew across edge cells (taxi-trace stand-in)."""

from repro.experiments.figures import fig2_spatial_skew
from repro.experiments.report import render_fig2


def test_fig2_spatial_skew(run_once, cfg):
    res = run_once(fig2_spatial_skew, cfg)
    print("\n" + render_fig2(res))
    # Paper: per-cell load is heavily skewed, with outlier cells.
    assert res.skew["max_over_mean"] > 2.0
    assert res.skew["cell_cv"] > 0.5
