"""Figure 5 — p95 latency for the distant-cloud setup.

Paper: tail inversion at 8 req/s (k=5) / 11 req/s (k=10), well before
the mean inverts.
"""

from repro.experiments.figures import fig4_mean_distant, fig5_tail_distant
from repro.experiments.report import render_sweep_figure


def test_fig5_tail_distant(run_once, cfg):
    fig = run_once(fig5_tail_distant, cfg)
    print("\n" + render_sweep_figure(fig))
    tail = fig.crossovers()
    mean = fig4_mean_distant(cfg).crossovers()
    assert tail["k5"] is not None and abs(tail["k5"] - 8.0) < 2.0
    # The headline tail insight: p95 inverts strictly before the mean.
    assert tail["k5"] < mean["k5"]
