"""Figure 8 — per-site workload from the Azure-like serverless trace."""

import numpy as np

from repro.experiments.figures import fig8_azure_workload
from repro.experiments.report import render_fig8


def test_fig8_azure_workload(run_once, cfg):
    res = run_once(fig8_azure_workload, cfg)
    print("\n" + render_fig8(res))
    assert len(res.site_rates) == 5
    assert res.spatial_cv > 0.2  # spatial skew across sites
    for rates in res.site_rates:  # temporal variation within a site
        r = rates[~np.isnan(rates)]
        assert r.max() > 1.3 * r.mean()
