"""Ablation A6 — are the crossovers robust to network jitter?

The paper's analysis treats RTTs as constants; real WAN paths jitter.
Since network delay enters the end-to-end latency additively and
independently of queue state, jitter should move *means* by at most its
own bias and shift the *mean* crossover only marginally — while the p95
crossover moves toward the edge (the cloud's longer, more variable path
adds tail mass).  This ablation runs the Figure 3 comparison under
constant, Gaussian-jitter and lognormal network models.
"""

import numpy as np

from repro.queueing.distributions import Erlang
from repro.sim.fastsim import simulate_edge_system, simulate_single_queue_system
from repro.sim.network import ConstantLatency, LognormalLatency, NormalJitterLatency
from repro.workload.trace import RequestTrace

K = 5
LANES = 8
MU_LANE = 13.0 / LANES
SERVICE = Erlang(4, 1.0 / MU_LANE)
N = 60_000
RATES = (6.0, 7.0, 8.0, 9.0, 10.0, 11.0)


def crossover(edge_vals, cloud_vals, rates):
    gaps = np.asarray(edge_vals) - np.asarray(cloud_vals)
    if gaps[0] > 0:
        return rates[0]
    for i in range(1, len(gaps)):
        if gaps[i] > 0:
            r0, r1, g0, g1 = rates[i - 1], rates[i], gaps[i - 1], gaps[i]
            return r0 + (r1 - r0) * (-g0) / (g1 - g0)
    return None


def sweep(edge_net, cloud_net, seed, metric):
    rng = np.random.default_rng(seed)
    edge_vals, cloud_vals = [], []
    for rate in RATES:
        arrs = [np.cumsum(rng.exponential(1.0 / rate, N)) for _ in range(K)]
        srvs = [np.asarray(SERVICE.sample(rng, N)) for _ in range(K)]
        edge = simulate_edge_system(arrs, srvs, LANES, edge_net, rng)
        merged = RequestTrace.merge([RequestTrace(a, s) for a, s in zip(arrs, srvs, strict=True)])
        cloud = simulate_single_queue_system(
            merged.arrival_times, merged.service_times, K * LANES, cloud_net, rng
        )
        horizon = merged.arrival_times[-1]
        e = edge.after(0.1 * horizon).end_to_end
        c = cloud.after(0.1 * horizon).end_to_end
        if metric == "mean":
            edge_vals.append(e.mean())
            cloud_vals.append(c.mean())
        else:
            edge_vals.append(np.quantile(e, 0.95))
            cloud_vals.append(np.quantile(c, 0.95))
    return crossover(edge_vals, cloud_vals, RATES)


def run_jitter_ablation():
    nets = {
        "constant": (ConstantLatency.from_ms(1.0), ConstantLatency.from_ms(24.0)),
        "gaussian": (
            NormalJitterLatency.from_ms(1.0, 0.05),
            NormalJitterLatency.from_ms(24.0, 2.0),
        ),
        "lognormal": (
            LognormalLatency.from_ms(1.0, cv2=0.1),
            LognormalLatency.from_ms(24.0, cv2=0.5),
        ),
    }
    out = {}
    for name, (edge_net, cloud_net) in nets.items():
        out[name] = {
            "mean": sweep(edge_net, cloud_net, 101, "mean"),
            "p95": sweep(edge_net, cloud_net, 102, "p95"),
        }
    return out


def test_ablation_network_jitter(run_once):
    res = run_once(run_jitter_ablation)
    print("\nAblation A6 — crossover (req/s/server) under network jitter models")
    print(f"{'network':>10} {'mean xover':>11} {'p95 xover':>10}")
    for name, x in res.items():
        m = "none" if x["mean"] is None else f"{x['mean']:.1f}"
        p = "none" if x["p95"] is None else f"{x['p95']:.1f}"
        print(f"{name:>10} {m:>11} {p:>10}")
    base = res["constant"]["mean"]
    assert base is not None
    # Mean crossovers within 1 req/s of the constant-RTT baseline.
    for name in ("gaussian", "lognormal"):
        assert res[name]["mean"] is not None
        assert abs(res[name]["mean"] - base) < 1.0
    # Tail crossover never later than the mean crossover, jitter or not.
    for _name, x in res.items():
        if x["p95"] is not None and x["mean"] is not None:
            assert x["p95"] <= x["mean"] + 0.3
