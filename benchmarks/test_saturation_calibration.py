"""§4.2 calibration — "the system reaches 100% utilization at 13 req/s".

The paper benchmarks its application to find the saturation knee before
any comparison; this bench repeats that measurement on our application
model: sweep the offered rate on one machine, watch latency hockey-stick
and (with a bounded queue) drops begin exactly at the configured
saturation rate.
"""

from itertools import count

import numpy as np

from repro.queueing.distributions import Exponential
from repro.sim.engine import Simulation
from repro.sim.request import Request
from repro.sim.station import Station
from repro.workload.service import DNNInferenceModel

MODEL = DNNInferenceModel()  # 13 req/s, 8 lanes
DURATION = 600.0


def _one_rate(rate, seed):
    sim = Simulation(seed)
    latencies = []
    st = Station(
        sim,
        MODEL.cores,
        MODEL.service_dist(),
        on_departure=lambda r: latencies.append(r.server_time),
        queue_capacity=100,
    )
    rng = sim.spawn_rng()

    ids = count()

    def gen():
        if sim.now < DURATION:
            st.arrive(Request(next(ids), created=sim.now))
            sim.schedule(rng.exponential(1.0 / rate), gen)

    sim.schedule(0.0, gen)
    sim.run(until=DURATION)
    return float(np.mean(latencies)), st.loss_rate, st.utilization()


def run_saturation_sweep():
    return {
        rate: _one_rate(rate, seed=131 + i)
        for i, rate in enumerate((6.0, 9.0, 12.0, 13.0, 14.0, 16.0))
    }


def test_saturation_calibration(run_once):
    res = run_once(run_saturation_sweep)
    print("\n§4.2 calibration — one machine, offered rate sweep")
    print(f"{'req/s':>6} {'mean lat (ms)':>14} {'loss':>6} {'util':>6}")
    for rate, (lat, loss, util) in res.items():
        print(f"{rate:>6.0f} {lat * 1e3:>14.1f} {loss:>6.1%} {util:>6.2f}")
    # Below saturation: negligible loss, utilization tracks rate/13.
    assert res[9.0][1] < 0.01
    assert res[9.0][2] == np.float64(res[9.0][2])  # defined
    assert abs(res[9.0][2] - 9.0 / 13.0) < 0.05
    # At 12 req/s (the paper's max practical rate): still essentially lossless.
    assert res[12.0][1] < 0.05
    # Past 13 req/s: drops appear and utilization pins near 1.
    assert res[16.0][1] > 0.1
    assert res[16.0][2] > 0.95
    # Latency knees upward across saturation.
    assert res[14.0][0] > 2 * res[9.0][0]
