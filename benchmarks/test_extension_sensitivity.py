"""Extension E6 — sensitivity of the inversion cutoff to model knobs.

How robust is the DESIGN.md §6 calibration?  Sweep each assumption —
per-machine concurrency, service variability, fleet spread, cloud RTT —
through the exact analytic solver and report the cutoff's movement.
"""

from repro.core.scenarios import TYPICAL_CLOUD
from repro.experiments.sensitivity import (
    cutoff_vs_cores,
    cutoff_vs_delta_n,
    cutoff_vs_service_cv2,
    cutoff_vs_sites,
)


def run_sensitivity():
    return {
        "cores": cutoff_vs_cores(TYPICAL_CLOUD),
        "service_cv2": cutoff_vs_service_cv2(TYPICAL_CLOUD),
        "sites": cutoff_vs_sites(TYPICAL_CLOUD),
        "cloud_rtt_ms": cutoff_vs_delta_n(TYPICAL_CLOUD),
    }


def test_extension_sensitivity(run_once):
    res = run_once(run_sensitivity)
    print("\nExtension E6 — analytic cutoff sensitivity (typical cloud)")
    for param, rows in res.items():
        series = "  ".join(f"{r.value:g}:{r.mean_cutoff:.2f}/{r.tail_cutoff:.2f}" for r in rows)
        print(f"  {param:>12} (value:mean/tail): {series}")
    cores = [r.mean_cutoff for r in res["cores"]]
    cv2s = [r.mean_cutoff for r in res["service_cv2"]]
    sites = [r.mean_cutoff for r in res["sites"]]
    rtts = [r.mean_cutoff for r in res["cloud_rtt_ms"]]
    assert cores == sorted(cores)                # more lanes -> later inversion
    assert cv2s == sorted(cv2s, reverse=True)    # more variability -> earlier
    assert sites == sorted(sites, reverse=True)  # more spread -> earlier
    assert rtts == sorted(rtts)                  # farther cloud -> later
    # Tail cutoff at or below the mean cutoff across the sweeps.  The
    # two columns come from different approximations (Allen-Cunneen mean
    # vs heavy-traffic exponential tail), so allow a small tolerance at
    # the tiny-delta_n corner where both are near their validity edge.
    for rows in res.values():
        for r in rows:
            assert r.tail_cutoff <= r.mean_cutoff + 0.05
