"""Checkpointing-cost guard: journaling must be (nearly) free.

Runs the Figure-7-style utilization grid three ways — plain, with a
``checkpoint=`` journal, and resumed from that journal — then asserts:

* **bit identity** — the checkpointed and the resumed sweeps equal the
  plain one exactly (always asserted, on any machine);
* **≤ 5 % checkpoint overhead** — one fsync'd JSON line per sweep point
  must be invisible next to seconds of simulation (asserted when the
  plain run is slow enough for the ratio to be meaningful);
* **resume is fast** — replaying 13 journaled points skips all
  simulation, so the resumed run must beat the plain one by a wide
  margin.

With ``checkpoint=None`` the supervised machinery never engages at all
(``run_tasks`` takes its legacy path), so the disabled case has zero
overhead by construction; the plain timing here doubles as that
baseline.  Measurements go to ``BENCH_chaos.json`` at the repo root.

Run with::

    pytest benchmarks/test_chaos_overhead.py -s
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.comparator import EdgeCloudComparator
from repro.core.scenarios import TYPICAL_CLOUD

REQUESTS_PER_SITE = 30_000
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_chaos.json"

#: Below this plain-sweep duration the overhead ratio is dominated by
#: scheduler noise, not journaling; the gate self-gates like the
#: speedup gate in test_parallel_scaling.py.
MIN_MEANINGFUL_SECONDS = 2.0

MAX_OVERHEAD = 0.05


def _fig7_grid():
    """The Figure-7 utilization grid (~13 points) as per-site rates."""
    grid = np.arange(0.15, 0.97, 0.0665)
    return [TYPICAL_CLOUD.rate_for_utilization(float(u)) for u in grid]


@pytest.fixture(scope="module")
def chaos_run(tmp_path_factory):
    """One timed plain + checkpointed + resumed sweep triple."""
    rates = _fig7_grid()
    journal = tmp_path_factory.mktemp("chaos") / "sweep.journal"
    cmp_ = EdgeCloudComparator(
        TYPICAL_CLOUD, requests_per_site=REQUESTS_PER_SITE, seed=2021
    )
    t0 = time.perf_counter()
    plain = cmp_.sweep(rates)
    t1 = time.perf_counter()
    checkpointed = cmp_.sweep(rates, checkpoint=journal)
    t2 = time.perf_counter()
    resumed = cmp_.sweep(rates, checkpoint=journal, resume=True)
    t3 = time.perf_counter()
    seconds_plain = t1 - t0
    seconds_checkpointed = t2 - t1
    seconds_resume = t3 - t2
    overhead = seconds_checkpointed / seconds_plain - 1.0
    payload = {
        "benchmark": "figure-7 utilization grid, typical cloud (24 ms)",
        "sweep_points": len(rates),
        "requests_per_site": REQUESTS_PER_SITE,
        "cpu_count": os.cpu_count(),
        "seconds_plain": round(seconds_plain, 3),
        "seconds_checkpointed": round(seconds_checkpointed, 3),
        "seconds_resume": round(seconds_resume, 3),
        "checkpoint_overhead_pct": round(100.0 * overhead, 2),
        "resume_speedup": round(seconds_plain / seconds_resume, 1),
        "journal_bytes": journal.stat().st_size,
        "bit_identical": plain.points == checkpointed.points == resumed.points,
        "overhead_asserted": seconds_plain >= MIN_MEANINGFUL_SECONDS,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"\nchaos overhead: checkpointing {payload['checkpoint_overhead_pct']}% "
        f"over {seconds_plain:.2f}s plain, resume {payload['resume_speedup']}x "
        f"faster -> {BENCH_PATH.name}"
    )
    return payload, plain, checkpointed, resumed


def test_checkpointed_sweep_bit_identical(chaos_run):
    """Journaling must never perturb results — on any machine."""
    payload, plain, checkpointed, resumed = chaos_run
    assert payload["bit_identical"]
    for p, q, r in zip(
        plain.points, checkpointed.points, resumed.points, strict=True
    ):
        assert p.edge == q.edge == r.edge
        assert p.cloud == q.cloud == r.cloud
        assert p.utilization == q.utilization == r.utilization


def test_checkpoint_overhead_within_budget(chaos_run):
    """One fsync per point costs <= 5% of a real sweep."""
    payload, *_ = chaos_run
    if not payload["overhead_asserted"]:
        pytest.skip(
            f"plain sweep finished in {payload['seconds_plain']}s "
            f"(< {MIN_MEANINGFUL_SECONDS}s): overhead ratio is noise here "
            f"(measured {payload['checkpoint_overhead_pct']}%, recorded in "
            f"{BENCH_PATH.name})"
        )
    assert payload["checkpoint_overhead_pct"] <= 100.0 * MAX_OVERHEAD, (
        f"checkpointing cost {payload['checkpoint_overhead_pct']}% "
        f"(plain {payload['seconds_plain']}s, checkpointed "
        f"{payload['seconds_checkpointed']}s); journaling must stay under "
        f"{100.0 * MAX_OVERHEAD}%"
    )


def test_resume_replays_instead_of_recomputing(chaos_run):
    """A fully journaled grid replays far faster than it simulates."""
    payload, *_ = chaos_run
    assert payload["resume_speedup"] >= 5.0, (
        f"resume took {payload['seconds_resume']}s vs plain "
        f"{payload['seconds_plain']}s; replay should skip simulation entirely"
    )
