"""Substrate microbenchmarks: simulator throughput and model evaluation.

Not figures from the paper — these track the performance of the two
simulation paths and the analytic solvers so regressions in the hot
paths are caught (pytest-benchmark keeps history with --benchmark-save).
"""

import numpy as np
import pytest

from repro.core.inversion import cutoff_utilization_exact
from repro.queueing.distributions import Exponential
from repro.queueing.mmk import MMk
from repro.sim.fastsim import simulate_fcfs_queue
from repro.sim.network import ConstantLatency
from repro.sim.runner import run_deployment

N = 200_000


@pytest.fixture(scope="module")
def poisson_workload():
    rng = np.random.default_rng(0)
    return np.cumsum(rng.exponential(1.0 / 40.0, N)), rng.exponential(1.0 / 13.0, N)


def test_fastsim_gg1_throughput(benchmark, poisson_workload):
    a, s = poisson_workload
    waits = benchmark(simulate_fcfs_queue, a, s, 1)
    assert waits.size == N


def test_fastsim_ggc_throughput(benchmark, poisson_workload):
    a, s = poisson_workload
    waits = benchmark(simulate_fcfs_queue, a, s, 5)
    assert waits.size == N


def test_event_engine_throughput(benchmark):
    def run():
        return run_deployment(
            "cloud",
            sites=5,
            servers_per_site=1,
            rate_per_site=8.0,
            service_dist=Exponential(1.0 / 13.0),
            latency=ConstantLatency.from_ms(25.0),
            duration=300.0,
            seed=3,
        )

    bd = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(bd) > 5000


def test_mmk_model_evaluation(benchmark):
    def solve():
        return MMk(40.0, 13.0, 5).response_time_percentile(0.95)

    assert benchmark(solve) > 0


def test_cutoff_solver(benchmark):
    rho = benchmark(
        cutoff_utilization_exact, 0.023, 13.0 / 8.0, 8, 40
    )
    assert 0.0 < rho < 1.0
