"""Figure 10 — per-site latency box plot under the Azure-like trace.

Paper: sites see unequal load and hence unequal latency distributions;
the least-loaded site offers the lowest latency.
"""

import numpy as np

from repro.experiments.figures import fig10_azure_per_site
from repro.experiments.report import render_fig10


def test_fig10_azure_per_site(run_once, cfg):
    res = run_once(fig10_azure_per_site, cfg)
    print("\n" + render_fig10(res))
    p95s = [s.p95 for s in res.site_summaries]
    assert max(p95s) > 2.0 * min(p95s)
    order = np.argsort(res.site_utilizations)
    medians = np.array([s.p50 for s in res.site_summaries])
    assert medians[order[0]] < medians[order[-1]]
