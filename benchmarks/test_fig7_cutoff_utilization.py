"""Figure 7 — cutoff utilization vs cloud location.

Paper: 15 ms cloud → mean cutoff ~40%, tail ~25%; 25-30 ms → 60%/40%;
80 ms → mean near saturation, tail ~75%.  Closer clouds invert earlier.
"""

import numpy as np

from repro.experiments.figures import fig7_cutoff_utilizations
from repro.experiments.report import render_fig7


def test_fig7_cutoff_utilization(run_once, cfg):
    res = run_once(fig7_cutoff_utilizations, cfg)
    print("\n" + render_fig7(res))
    measured = [m for m in res.mean_cutoff if m is not None]
    # Monotone: cutoff rises with cloud RTT.
    assert all(np.diff(measured) > -0.05)
    assert measured[-1] - measured[0] > 0.1
    # Tail cutoffs sit at or below mean cutoffs.
    for m, t in zip(res.mean_cutoff, res.tail_cutoff, strict=True):
        if m is not None and t is not None:
            assert t <= m + 0.03
