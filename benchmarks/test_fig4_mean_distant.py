"""Figure 4 — mean latency, 1 ms edge vs distant (~54 ms) cloud.

Paper: inversion at 11 req/s for k=5; none below 12 req/s for k=10.
"""

from repro.experiments.figures import fig4_mean_distant
from repro.experiments.report import render_sweep_figure


def test_fig4_mean_distant(run_once, cfg):
    fig = run_once(fig4_mean_distant, cfg)
    print("\n" + render_sweep_figure(fig))
    xs = fig.crossovers()
    assert xs["k5"] is not None and 8.5 <= xs["k5"] <= 12.0
    assert xs["k10"] is None or xs["k10"] > 9.5
