"""Extension E8 — inference batching amplifies the cloud's advantage.

Production DNN serving batches requests (TF-Serving style): a batch of
b costs ``base + per_item × b``, so throughput rises with batch size —
but batches fill at the *arrival* rate.  The pooled cloud sees k× the
traffic of one edge site, fills its batches k× faster, and therefore
gains a second pooling advantage beyond the queueing one: at identical
per-site load the cloud runs bigger batches with shorter fill waits.
"""

from itertools import count

import numpy as np

from repro.sim.batching import BatchingStation, affine_batch_time
from repro.sim.engine import Simulation
from repro.sim.request import Request

SITES = 5
BATCH = 8
TIMEOUT = 0.20
BASE, PER_ITEM = 0.10, 0.012  # batch of 8: 196 ms; single: 112 ms
EDGE_RTT, CLOUD_RTT = 0.001, 0.024
DURATION = 400.0


def _run_station(rate, servers, seed):
    sim = Simulation(seed)
    lat = []
    st = BatchingStation(
        sim, servers, BATCH, TIMEOUT, affine_batch_time(BASE, PER_ITEM),
        on_departure=lambda r: lat.append(r.server_time),
    )
    rng = sim.spawn_rng()

    ids = count()

    def gen():
        if sim.now < DURATION:
            st.arrive(Request(next(ids), created=sim.now))
            sim.schedule(rng.exponential(1.0 / rate), gen)

    sim.schedule(0.0, gen)
    sim.run()
    return float(np.mean(lat)), st.mean_batch_size()


def run_batching_comparison():
    out = {}
    for per_site_rate in (4.0, 12.0):
        edge_server, edge_b = _run_station(per_site_rate, 1, seed=161)
        cloud_server, cloud_b = _run_station(per_site_rate * SITES, SITES, seed=162)
        out[per_site_rate] = {
            "edge_e2e": EDGE_RTT + edge_server,
            "cloud_e2e": CLOUD_RTT + cloud_server,
            "edge_batch": edge_b,
            "cloud_batch": cloud_b,
        }
    return out


def test_extension_batching(run_once):
    res = run_once(run_batching_comparison)
    print("\nExtension E8 — batched inference, edge (1 site) vs cloud (5x traffic)")
    print(f"{'req/s/site':>11} {'edge(ms)':>9} {'cloud(ms)':>10} {'edge b̄':>7} {'cloud b̄':>8}")
    for rate, r in res.items():
        print(
            f"{rate:>11.0f} {r['edge_e2e'] * 1e3:>9.1f} {r['cloud_e2e'] * 1e3:>10.1f} "
            f"{r['edge_batch']:>7.1f} {r['cloud_batch']:>8.1f}"
        )
    for _rate, r in res.items():
        # The cloud always assembles bigger batches.
        assert r["cloud_batch"] > r["edge_batch"]
    # At moderate per-site load the batching effect already inverts the
    # edge despite its 23 ms network advantage.
    assert res[12.0]["edge_e2e"] > res[12.0]["cloud_e2e"]
