"""Extension E3 — overload behavior with bounded queues (§4.2's drops).

The paper notes the real stack "starts dropping requests or thrashing"
at 100% utilization.  With bounded per-site queues the edge sheds load
under a flash crowd: latency stays bounded but goodput falls, while the
pooled cloud absorbs the same burst with far fewer drops.
"""

import numpy as np

from repro.queueing.distributions import Exponential
from repro.sim.client import OpenLoopSource
from repro.sim.engine import Simulation
from repro.sim.network import ConstantLatency
from repro.sim.request import Request
from repro.sim.station import Station
from repro.sim.tracing import RequestLog

MU = 13.0
OVERLOAD_RATE = 16.0  # rho = 1.23 per edge site: a sustained flash crowd
SITES = 5
QUEUE_CAP = 20
DURATION = 800.0


def _run(stations_spec):
    """stations_spec: list of (servers, rate) — one source per station."""
    sim = Simulation(71)
    log = RequestLog()
    stations = []

    def complete(req):
        req.completed = sim.now
        log.add(req)

    for i, (servers, rate) in enumerate(stations_spec):
        st = Station(
            sim, servers, Exponential(1.0 / MU), name=f"st-{i}",
            on_departure=complete, queue_capacity=QUEUE_CAP,
        )
        stations.append(st)

        class Direct:
            def __init__(self, station):
                self.station = station

            def submit(self, request):
                request.arrived = request.created  # zero network for clarity
                self.station.arrive(request)

        OpenLoopSource(sim, Direct(st), Exponential(1.0 / rate), stop_time=DURATION)
    sim.run()
    latencies = np.array([r.server_time for r in log.requests])
    drops = sum(st.drops for st in stations)
    arrivals = sum(st.arrivals for st in stations)
    return latencies, drops / arrivals


def run_overload_comparison():
    edge_lat, edge_loss = _run([(1, OVERLOAD_RATE)] * SITES)
    cloud_lat, cloud_loss = _run([(SITES, SITES * OVERLOAD_RATE)])
    return {
        "edge": (float(np.mean(edge_lat)), edge_loss),
        "cloud": (float(np.mean(cloud_lat)), cloud_loss),
    }


def test_extension_overload(run_once):
    res = run_once(run_overload_comparison)
    print("\nExtension E3 — flash crowd (rho=1.23) with bounded queues (K=20)")
    for kind, (mean, loss) in res.items():
        print(f"  {kind:>5}: mean server latency {mean * 1e3:8.1f} ms, loss {loss:.1%}")
    edge_mean, edge_loss = res["edge"]
    cloud_mean, cloud_loss = res["cloud"]
    # Both systems shed comparable load overall (same offered overload)…
    assert 0.1 < edge_loss < 0.5 and 0.1 < cloud_loss < 0.5
    # …but the pooled cloud keeps conditional latency lower: the
    # bank-teller effect persists even in the loss regime.
    assert cloud_mean < edge_mean
