"""Extensions E3 + E11 — overload behavior and server-side control.

E3: the paper notes the real stack "starts dropping requests or
thrashing" at 100% utilization.  With bounded per-site queues the edge
sheds load under a flash crowd: latency stays bounded but goodput
falls, while the pooled cloud absorbs the same burst with far fewer
drops.

E11: what a *defended* server buys.  Queue disciplines (adaptive LIFO,
CoDel) keep the served p95 bounded where FIFO diverges; adaptive
concurrency limits recover goodput immediately after an overload pulse;
priority shares preserve the important class; brownout serving beats
pure dropping at equal offered load; and the E10 metastable retry storm
does not ignite against protected stations.
"""

import numpy as np

from repro.queueing.distributions import Exponential
from repro.sim.client import OpenLoopSource
from repro.sim.engine import Simulation
from repro.sim.network import ConstantLatency
from repro.sim.request import Request
from repro.sim.station import Station
from repro.sim.tracing import RequestLog

MU = 13.0
OVERLOAD_RATE = 16.0  # rho = 1.23 per edge site: a sustained flash crowd
SITES = 5
QUEUE_CAP = 20
DURATION = 800.0


def _run(stations_spec):
    """stations_spec: list of (servers, rate) — one source per station."""
    sim = Simulation(71)
    log = RequestLog()
    stations = []

    def complete(req):
        req.completed = sim.now
        log.add(req)

    for i, (servers, rate) in enumerate(stations_spec):
        st = Station(
            sim, servers, Exponential(1.0 / MU), name=f"st-{i}",
            on_departure=complete, queue_capacity=QUEUE_CAP,
        )
        stations.append(st)

        class Direct:
            def __init__(self, station):
                self.station = station

            def submit(self, request):
                request.arrived = request.created  # zero network for clarity
                self.station.arrive(request)

        OpenLoopSource(sim, Direct(st), Exponential(1.0 / rate), stop_time=DURATION)
    sim.run()
    latencies = np.array([r.server_time for r in log.requests])
    drops = sum(st.drops for st in stations)
    arrivals = sum(st.arrivals for st in stations)
    return latencies, drops / arrivals


def run_overload_comparison():
    edge_lat, edge_loss = _run([(1, OVERLOAD_RATE)] * SITES)
    cloud_lat, cloud_loss = _run([(SITES, SITES * OVERLOAD_RATE)])
    return {
        "edge": (float(np.mean(edge_lat)), edge_loss),
        "cloud": (float(np.mean(cloud_lat)), cloud_loss),
    }


def test_extension_overload(run_once):
    res = run_once(run_overload_comparison)
    print("\nExtension E3 — flash crowd (rho=1.23) with bounded queues (K=20)")
    for kind, (mean, loss) in res.items():
        print(f"  {kind:>5}: mean server latency {mean * 1e3:8.1f} ms, loss {loss:.1%}")
    edge_mean, edge_loss = res["edge"]
    cloud_mean, cloud_loss = res["cloud"]
    # Both systems shed comparable load overall (same offered overload)…
    assert 0.1 < edge_loss < 0.5 and 0.1 < cloud_loss < 0.5
    # …but the pooled cloud keeps conditional latency lower: the
    # bank-teller effect persists even in the loss regime.
    assert cloud_mean < edge_mean


# -- E11: server-side overload control -------------------------------------


def test_overload_discipline_sweep(cfg, run_once):
    from repro.experiments.overload import discipline_sweep
    from repro.experiments.report import render_discipline_sweep

    result = run_once(discipline_sweep, cfg)
    print("\n" + render_discipline_sweep(result))

    fifo = result.row("fifo")
    alifo = result.row("adaptive-lifo")
    codel = result.row("codel")
    # Unbounded FIFO refuses nothing and serves everything stale: the
    # admitted p95 diverges with the backlog and SLO goodput collapses.
    assert fifo.summary.refused == 0
    assert fifo.p95 > 20.0
    assert fifo.slo_goodput < 1.0
    # The overload-aware disciplines shed stale work instead: served
    # p95 stays within a few service times and most admitted requests
    # meet the 2 s SLO despite 1.23x offered overload.
    for row in (alifo, codel):
        assert row.p95 < 5.0
        assert row.slo_goodput > 8.0
    assert codel.summary.shed > 0  # CoDel's bound comes from shedding


def test_overload_admission_pulse(cfg, run_once):
    from repro.experiments.overload import admission_pulse
    from repro.experiments.report import render_admission_pulse

    result = run_once(admission_pulse, cfg)
    print("\n" + render_admission_pulse(result))

    # Without admission, the backlog built during the pulse poisons the
    # recovery window: post-pulse goodput is a small fraction of base.
    assert result.recovered("none") < 0.5
    # Both adaptive limits serve (nearly) the full base load within SLO
    # as soon as the pulse ends, at a p95 far below the undefended one.
    none_p95 = result.row("none").post_p95
    for label in ("aimd", "gradient"):
        assert result.recovered(label) > 0.8
        assert result.row(label).post_p95 < none_p95 / 10
        # The limit reopened after the pulse instead of staying clamped.
        assert result.row(label).final_limit > 4.0


def test_overload_priority_shedding(cfg, run_once):
    from repro.experiments.overload import priority_shedding
    from repro.experiments.report import render_priority_shedding

    result = run_once(priority_shedding, cfg)
    print("\n" + render_priority_shedding(result))

    # Uniform admission spreads refusals across classes: the important
    # class loses a large share of its traffic.
    assert result.served_fraction("uniform", 0) < 0.8
    # Priority shares protect it almost perfectly (>= 99% served) by
    # pushing the refusals onto the sheddable classes.
    assert result.served_fraction("priority", 0) >= 0.99
    assert result.served_fraction("priority", 2) < result.served_fraction("priority", 1)
    assert result.served_fraction("priority", 2) < 0.3


def test_overload_brownout_tradeoff(cfg, run_once):
    from repro.experiments.overload import brownout_tradeoff
    from repro.experiments.report import render_brownout_tradeoff

    result = run_once(brownout_tradeoff, cfg)
    print("\n" + render_brownout_tradeoff(result))

    drop = result.row("drop-tail").summary
    brown = result.row("brownout").summary
    # Same offered load: brownout strictly beats pure dropping on
    # goodput and refusals, and reports the price as degraded fraction.
    assert result.goodput_gain > 1.1
    assert brown.refusal_rate < drop.refusal_rate / 2
    assert 0.1 < brown.degraded_fraction < 0.9
    assert drop.degraded_fraction == 0.0


def test_overload_storm_defense(cfg, run_once):
    from repro.experiments.overload import storm_defense
    from repro.experiments.report import render_storm_defense

    result = run_once(storm_defense, cfg)
    print("\n" + render_storm_defense(result))

    # At the E10 metastable rate the naive edge is in a full storm:
    # mass failure and heavy retry amplification.
    naive = result.row(10.0, False)
    assert naive.failure_rate > 0.5
    assert naive.amplification > 2.0
    # Server-side control (CoDel + AIMD admission) prevents ignition:
    # failures and amplification collapse, effective latency is a
    # fraction of the undefended one, and the defense actually engaged.
    protected = result.row(10.0, True)
    assert protected.failure_rate < 0.2
    assert protected.amplification < 1.6
    assert protected.effective_latency < naive.effective_latency / 2
    assert protected.sheds + protected.rejects > 0
    # At the benign rate the defenses stay out of the way: both cells
    # succeed for essentially all operations.
    assert result.row(8.0, True).failure_rate < 0.1
    assert result.row(8.0, False).failure_rate < 0.1
