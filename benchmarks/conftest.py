"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's figures/tables: it runs
the experiment once under pytest-benchmark timing (rounds=1 — these are
multi-second simulations, not microbenchmarks), prints the same series
the paper plots, and asserts the paper's qualitative shape.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest

from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="session")
def cfg():
    """Benchmark-sized experiments (≈ seconds per figure)."""
    return ExperimentConfig(requests_per_site=30_000, azure_duration=1800.0)


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
