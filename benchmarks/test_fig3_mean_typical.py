"""Figure 3 — mean latency, 1 ms edge vs typical (~24 ms) cloud.

Paper: crossover at 8 req/s/server for k=5 and ~11 req/s for k=10.
"""

from repro.experiments.figures import fig3_mean_typical
from repro.experiments.report import render_sweep_figure


def test_fig3_mean_typical(run_once, cfg):
    fig = run_once(fig3_mean_typical, cfg)
    print("\n" + render_sweep_figure(fig))
    xs = fig.crossovers()
    assert xs["k5"] is not None and abs(xs["k5"] - 8.0) < 1.5
    assert xs["k10"] is not None and xs["k10"] > xs["k5"]
