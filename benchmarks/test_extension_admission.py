"""Extension E5 — admission control under a flash crowd.

At ρ = 1.8 an unprotected edge site's latency diverges; occupancy-based
admission keeps served-request latency bounded at the price of explicit
rejections — the controlled alternative to the paper's observed
"dropping or thrashing" at saturation.
"""

from itertools import count

import numpy as np

from repro.mitigation.admission import AdmissionControlledStation, OccupancyAdmission
from repro.queueing.distributions import Exponential
from repro.sim.engine import Simulation
from repro.sim.request import Request
from repro.sim.station import Station

MU = 13.0
OVERLOAD = 23.0  # rho = 1.77 on one server
DURATION = 600.0


def _run(limit):
    sim = Simulation(91)
    waits = []
    st = Station(
        sim, 1, Exponential(1.0 / MU),
        on_departure=lambda r: waits.append(r.server_time),
    )
    target = st if limit is None else AdmissionControlledStation(
        sim, st, OccupancyAdmission(limit)
    )
    rng = sim.spawn_rng()

    ids = count()

    def gen():
        if sim.now < DURATION:
            target.arrive(Request(next(ids), created=sim.now))
            sim.schedule(rng.exponential(1.0 / OVERLOAD), gen)

    sim.schedule(0.0, gen)
    sim.run(until=DURATION)
    rejection = 0.0 if limit is None else target.rejection_rate
    return float(np.mean(waits)), float(np.quantile(waits, 0.95)), rejection


def run_admission_sweep():
    out = {"none": _run(None)}
    for limit in (16.0, 8.0, 4.0):
        out[f"limit={limit:.0f}"] = _run(limit)
    return out


def test_extension_admission(run_once):
    res = run_once(run_admission_sweep)
    print("\nExtension E5 — flash crowd (rho=1.77): served latency vs admission")
    print(f"{'policy':>10} {'mean (ms)':>10} {'p95 (ms)':>10} {'rejected':>9}")
    for name, (mean, p95, rej) in res.items():
        print(f"{name:>10} {mean * 1e3:>10.1f} {p95 * 1e3:>10.1f} {rej:>9.1%}")
    unprotected = res["none"]
    tightest = res["limit=4"]
    # Admission bounds the served latency by orders of magnitude...
    assert tightest[0] < unprotected[0] / 10
    # ...while shedding roughly the overload fraction (1 - 1/rho = 43%).
    assert 0.3 < tightest[2] < 0.6
    # Tighter limits -> lower served latency.
    assert res["limit=4"][0] < res["limit=8"][0] < res["limit=16"][0]
