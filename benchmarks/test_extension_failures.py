"""Extension E9 — edge fragility, and geo-LB as a resilience mechanism.

Edge sites fail more often and repair more slowly than a hyperscale
cloud (no on-site N+1, remote hands).  With per-site outages injected,
the plain edge's tail latency explodes — requests strand in a dead
site's queue — while the same geographic load balancing that fixes skew
(§5.1) routes around outages and recovers most of the tail.  The cloud,
modeled with in-pool redundancy, barely notices the same failure rate.
"""

import numpy as np

from repro.mitigation.geo_lb import GeoLoadBalancer
from repro.queueing.distributions import Exponential
from repro.sim.client import OpenLoopSource
from repro.sim.engine import Simulation
from repro.sim.failures import FailureInjector
from repro.sim.network import ConstantLatency
from repro.sim.topology import CloudDeployment, EdgeDeployment, EdgeSite

MU = 13.0
SERVICE = Exponential(1.0 / MU)
SITES = 5
RATE = 6.0  # rho = 0.46: comfortably below the inversion cutoff
MTBF, MTTR = 400.0, 40.0  # ~91% per-site availability
DURATION = 4000.0


def _edge(router, inject, seed=171):
    sim = Simulation(seed)
    sites = [
        EdgeSite(sim, f"s{i}", 1, ConstantLatency.from_ms(1.0), SERVICE)
        for i in range(SITES)
    ]
    edge = EdgeDeployment(sim, sites, router=router)
    for i in range(SITES):
        OpenLoopSource(sim, edge, Exponential(1.0 / RATE), site=f"s{i}", stop_time=DURATION)
    if inject:
        FailureInjector(sim, [s.station for s in sites], MTBF, MTTR, DURATION)
    sim.run()
    return edge.log.breakdown().after(DURATION * 0.1)


def _cloud(inject, seed=172):
    """Cloud with one spare: failures take one server of six, not the site."""
    sim = Simulation(seed)
    cloud = CloudDeployment(
        sim, servers=SITES + 1, latency=ConstantLatency.from_ms(24.0),
        service_dist=SERVICE,
    )
    for _ in range(SITES):
        OpenLoopSource(sim, cloud, Exponential(1.0 / RATE), stop_time=DURATION)
    if inject:
        # Same per-machine failure process; the pool degrades to 5/6
        # capacity instead of losing a whole serving location.
        station = cloud.stations[0]

        def degrade():
            if sim.now < DURATION:
                station.set_servers(SITES)
                sim.schedule(np.random.default_rng(9).exponential(MTTR), restore)

        def restore():
            station.set_servers(SITES + 1)
            sim.schedule(np.random.default_rng(10).exponential(MTBF), degrade)

        sim.schedule(MTBF, degrade)
    sim.run()
    return cloud.log.breakdown().after(DURATION * 0.1)


def run_failure_comparison():
    geo = GeoLoadBalancer(occupancy_threshold=2.0, inter_site_oneway=0.003)
    runs = {
        "edge healthy": _edge(router=None, inject=False),
        "edge failing": _edge(router=None, inject=True),
        "edge failing + geo-LB": _edge(router=geo, inject=True),
        "cloud failing (N+1)": _cloud(inject=True),
    }
    return {
        name: (float(bd.end_to_end.mean()), float(np.quantile(bd.end_to_end, 0.99)))
        for name, bd in runs.items()
    }


def test_extension_failures(run_once):
    res = run_once(run_failure_comparison)
    print("\nExtension E9 — per-site outages (MTBF 400 s, MTTR 40 s), rho = 0.46")
    print(f"{'deployment':>22} {'mean (ms)':>10} {'p99 (ms)':>10}")
    for name, (mean, p99) in res.items():
        print(f"{name:>22} {mean * 1e3:>10.1f} {p99 * 1e3:>10.1f}")
    # Outages devastate the plain edge's tail...
    assert res["edge failing"][1] > 10 * res["edge healthy"][1]
    # ...geo-LB routes around dead sites and recovers most of it...
    assert res["edge failing + geo-LB"][1] < res["edge failing"][1] / 3
    # ...and the redundant cloud barely degrades under the same rates.
    assert res["cloud failing (N+1)"][1] < res["edge failing"][1] / 5
