"""§4.2 validation table — analytic cutoffs vs measured crossovers.

Paper: Corollary 3.1.1 predicts ρ*=0.64 (k=5) and 0.75 (k=10) against
measured 0.61 and ~0.85; our unit-consistent model must track our
measured crossovers comparably.
"""

from repro.experiments.report import render_validation
from repro.experiments.validation import paper_formula_consistency, validation_table


def test_validation_analytic(run_once, cfg):
    rows = run_once(validation_table, cfg)
    print("\n" + render_validation(rows))
    consistency = paper_formula_consistency()
    print(f"paper formula unit consistency: {consistency}")
    for r in rows:
        assert r.prediction_error is not None and r.prediction_error < 0.15
    assert rows[1].our_measured > rows[0].our_measured
