"""Extension E1 — the economic cost of avoiding inversion (paper's future work).

Provision edge and cloud fleets to the *same* p95 end-to-end SLO and
price them.  Expected shape: at loose SLOs (cloud feasible) the edge is
strictly more expensive (pooling penalty × unit-price premium); at SLOs
tighter than the cloud RTT, only the edge can play at any price.
"""

import pytest

from repro.core.cost import CostModel, compare_slo_costs

MU = 13.0
RATE = 40.0
SITES = 5
EDGE_RTT, CLOUD_RTT = 0.001, 0.024


def run_cost_sweep():
    out = {}
    for slo_ms in (600, 800, 1200):
        edge, cloud = compare_slo_costs(
            total_rate=RATE, service_rate=MU, sites=SITES,
            edge_rtt=EDGE_RTT, cloud_rtt=CLOUD_RTT, latency_slo=slo_ms * 1e-3,
            q=0.95, cost_model=CostModel(),
        )
        out[slo_ms] = (edge, cloud)
    return out


def test_extension_slo_cost(run_once):
    res = run_once(run_cost_sweep)
    print("\nExtension E1 — hourly cost to meet a p95 SLO (40 req/s, 5 sites)")
    for slo_ms, (edge, cloud) in res.items():
        ratio = edge.hourly_cost / cloud.hourly_cost
        print(f"  SLO {slo_ms:5d} ms: {edge}; {cloud}; edge/cloud = {ratio:.2f}x")
    for slo_ms, (edge, cloud) in res.items():
        assert edge.hourly_cost > cloud.hourly_cost
        assert edge.achieved_latency <= slo_ms * 1e-3
        assert cloud.achieved_latency <= slo_ms * 1e-3
    # Tighter SLOs widen the edge's cost disadvantage (less room to
    # amortize its per-site floors).
    assert (
        res[600][0].hourly_cost / res[600][1].hourly_cost
        >= res[1200][0].hourly_cost / res[1200][1].hourly_cost - 0.2
    )
    # Below the cloud RTT the cloud is infeasible at any cost.
    with pytest.raises(ValueError, match="only an edge deployment"):
        compare_slo_costs(
            total_rate=RATE, service_rate=MU, sites=SITES,
            edge_rtt=EDGE_RTT, cloud_rtt=0.080, latency_slo=0.075,
        )
