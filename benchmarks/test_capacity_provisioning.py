"""§5.2 capacity table — C_edge = λ + 2√(kλ) vs C_cloud = λ + 2√λ.

Paper: the edge always needs more peak capacity than the cloud; the
penalty grows with k and shrinks (relatively) with scale.
"""

import numpy as np

from repro.core.capacity import cloud_peak_capacity, edge_peak_capacity, provisioning_penalty


def compute_capacity_table():
    lams = (10.0, 100.0, 1000.0, 10_000.0)
    ks = (2, 5, 10, 50, 100)
    return {
        (lam, k): (
            cloud_peak_capacity(lam),
            edge_peak_capacity(lam, k),
            provisioning_penalty(lam, k),
        )
        for lam in lams
        for k in ks
    }


def test_capacity_provisioning(run_once):
    table = run_once(compute_capacity_table)
    print("\nSection 5.2 — two-sigma peak capacity (server-equivalents)")
    print(f"{'lambda':>8} {'k':>4} {'C_cloud':>10} {'C_edge':>10} {'penalty':>8}")
    for (lam, k), (c, e, p) in sorted(table.items()):
        print(f"{lam:>8.0f} {k:>4} {c:>10.1f} {e:>10.1f} {p:>8.3f}")
    for (_lam, _k), (c, e, p) in table.items():
        assert e > c and p > 1.0
    # Penalty grows with k at fixed lambda...
    assert table[(100.0, 100)][2] > table[(100.0, 2)][2]
    # ...and shrinks relatively with scale at fixed k.
    assert table[(10_000.0, 10)][2] < table[(10.0, 10)][2]
