"""Figure 9 — mean edge vs cloud latency over time, Azure-like trace.

Paper: edge sites frequently invert; the cloud's aggregate-smoothed
series is much less variable.
"""

from repro.experiments.figures import fig9_azure_latency
from repro.experiments.report import render_fig9


def test_fig9_azure_latency(run_once, cfg):
    res = run_once(fig9_azure_latency, cfg)
    print("\n" + render_fig9(res))
    assert res.inversion_fraction > 0.1
    assert res.edge_variability > 1.5
