"""Telemetry-overhead guard: observability must be (near-)free when off.

The observability layer is pull-model by design — stations and clients
register zero-arg gauge readers at construction, and the per-event hot
path pays one ``is None`` check when nothing is installed.  These
benchmarks pin that claim:

* ``test_event_engine_disabled`` runs the same workload as the seed's
  ``test_event_engine_throughput`` (benchmarks/test_substrate_perf.py),
  so pytest-benchmark history comparison (``--benchmark-compare``)
  catches a disabled-mode regression against the pre-observability
  baseline — the "within 5% of seed" check.
* ``test_disabled_vs_enabled_overhead`` interleaves timed disabled and
  enabled runs in-process and bounds the cost of *enabling* full
  telemetry (spans + windows + metrics), so the instrumentation can't
  quietly become push-model.
* ``test_enabled_results_identical`` asserts telemetry never perturbs
  simulation results — same seed, bit-identical latencies.
"""

import time

import numpy as np
import pytest

from repro import obs
from repro.queueing.distributions import Exponential
from repro.sim.network import ConstantLatency
from repro.sim.runner import run_deployment

#: Multiple of the disabled-mode runtime that fully-enabled telemetry
#: (spans on, 1 s windows, in-memory export) may cost.  Full tracing of
#: a pure-Python event loop measures ~2.2× (four span objects plus four
#: P² updates per completion); the bound leaves headroom for CI noise
#: while still catching an accidental O(n·windows) regression.
ENABLED_OVERHEAD_BOUND = 3.0


def _run(seed: int = 3):
    return run_deployment(
        "cloud",
        sites=5,
        servers_per_site=1,
        rate_per_site=8.0,
        service_dist=Exponential(1.0 / 13.0),
        latency=ConstantLatency.from_ms(25.0),
        duration=300.0,
        seed=seed,
    )


def _timed(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_event_engine_disabled(benchmark):
    """Same workload as the seed's event-engine benchmark, telemetry off."""
    assert obs.current_telemetry() is None
    bd = benchmark.pedantic(_run, rounds=3, iterations=1)
    assert len(bd) > 5000


def test_event_engine_enabled(benchmark):
    """The same workload with full telemetry, for history tracking."""

    def run():
        with obs.installed(
            lambda: obs.Telemetry(window=1.0, exporters=[obs.InMemoryExporter()])
        ):
            return _run()

    bd = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(bd) > 5000


def test_disabled_vs_enabled_overhead():
    """Enabling spans+windows+metrics must stay within the pull-model bound."""

    def enabled():
        with obs.installed(
            lambda: obs.Telemetry(window=1.0, exporters=[obs.InMemoryExporter()])
        ):
            _run()

    _run()  # warm caches before timing either variant
    disabled_t = _timed(_run)
    enabled_t = _timed(enabled)
    assert enabled_t < ENABLED_OVERHEAD_BOUND * disabled_t, (
        f"telemetry-enabled run took {enabled_t:.3f}s vs {disabled_t:.3f}s disabled "
        f"({enabled_t / disabled_t:.2f}x > {ENABLED_OVERHEAD_BOUND}x bound)"
    )


def test_enabled_results_identical():
    """Observability observes; it must never change what it observes."""
    baseline = _run(seed=7)
    with obs.installed(lambda: obs.Telemetry(window=1.0)):
        observed = _run(seed=7)
    np.testing.assert_array_equal(baseline.end_to_end, observed.end_to_end)
    np.testing.assert_array_equal(baseline.wait, observed.wait)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v", "--benchmark-only"]))
