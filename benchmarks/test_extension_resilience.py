"""Extension E10 — request-level resilience: storms, breakers, failover.

Two halves, both on the calibrated DNN-inference workload:

(a) Retry storms.  A client that retries on timeout *without cancelling*
    the expired attempt multiplies offered load exactly where queues are
    already slow.  The k small per-site edge queues tip into a
    metastable zombie-retry regime the pooled cloud queue shrugs off, so
    the edge/cloud inversion crossover moves to lower utilization than
    the naive-client crossover of Figures 3-5.

(b) Outage recovery.  At an edge-friendly utilization with injected
    site outages (stochastic + one correlated two-site window + one
    link black-hole), the full resilience stack — deadlines, retries,
    per-site circuit breakers, edge->cloud failover — restores the
    no-failure edge tail and SLO goodput that a naive or retry-only
    client loses.
"""

from repro.experiments.report import render_outage_recovery, render_retry_storm
from repro.experiments.resilience import outage_recovery, retry_storm


def test_resilience_retry_storm(cfg, run_once):
    result = run_once(retry_storm, cfg)
    print("\n" + render_retry_storm(result))

    # The naive client sees the paper's inversion: edge wins at low
    # rates, loses somewhere inside the swept range.
    assert result.points[0].naive_edge < result.points[0].naive_cloud
    assert result.naive_crossover is not None
    # Retries move the crossover to lower utilization...
    assert result.retry_crossover is not None
    assert result.retry_crossover < result.naive_crossover
    # ...while the retrying client still preserves the edge advantage
    # in the low-utilization regime (the crossover moved, not vanished).
    assert result.points[0].retry_edge < result.points[0].retry_cloud
    storm = result.points[-1]
    # At the top of the sweep the edge is in a full retry storm: heavy
    # amplification and mass operation failure...
    assert storm.edge_amplification > 1.5
    assert storm.edge_failure_rate > 0.3
    assert storm.retry_edge > 3 * storm.naive_edge
    # ...while the pooled cloud barely retries at all under the same
    # client and the same offered load.
    assert storm.cloud_amplification < 1.05
    assert storm.retry_edge > 3 * storm.retry_cloud


def test_resilience_outage_recovery(cfg, run_once):
    result = run_once(outage_recovery, cfg)
    print("\n" + render_outage_recovery(result))

    rows = {r.label: r for r in result.rows}
    healthy = rows["edge healthy, naive"]
    broken = rows["edge outages, naive"]
    retries = rows["edge outages, retries"]
    resilient = rows["edge outages, breaker+failover"]

    # Outages devastate the naive edge tail (stranded queues)...
    assert broken.p95 > 5 * healthy.p95
    # ...retry-only bounds latency but burns goodput on dead sites...
    assert retries.p95 < 2 * healthy.p95
    assert retries.summary.slo_attainment < 0.95
    # ...and the full stack recovers the no-failure edge p95 and SLO.
    assert resilient.p95 <= healthy.p95 * 1.05
    assert result.recovery_fraction > 0.95
    assert resilient.summary.slo_attainment > 0.99
    assert resilient.summary.goodput > 0.98 * healthy.summary.goodput
    assert resilient.summary.slo_attainment > retries.summary.slo_attainment
    # The stack actually worked for its living: failovers carried load
    # around dead sites, and the breaker tripped on the link black-hole
    # (where the station looks healthy and only timeouts see the loss).
    assert resilient.summary.failovers > 0
    assert resilient.summary.breaker_opens > 0
    # Resilience is cheap at this utilization: almost no extra attempts.
    assert resilient.summary.retry_amplification < 1.1
