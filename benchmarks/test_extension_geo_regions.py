"""Extension E4 — regional heterogeneity (Corollary 3.1.3 in action).

One application, three client regions with different distances to the
nearest cloud data center.  At high utilization the metro region
(12 ms cloud) inverts while the remote region (90 ms cloud) keeps its
edge advantage — the paper's "regional data centers make the cloud good
enough" effect, resolved per region within a single deployment.
"""

from repro.queueing.distributions import Exponential
from repro.sim.geo import Region, simulate_geo_comparison

MU = 13.0
REGIONS = [
    Region("metro", weight=0.5, edge_rtt=0.001, cloud_rtt=0.012),
    Region("suburban", weight=0.3, edge_rtt=0.001, cloud_rtt=0.030),
    Region("remote", weight=0.2, edge_rtt=0.002, cloud_rtt=0.090),
]


def run_geo(total_rate):
    return simulate_geo_comparison(
        REGIONS, total_rate=total_rate, service=Exponential(1.0 / MU),
        servers_per_site=2, n_per_region_unit=60_000, seed=81,
    )


def test_extension_geo_regions(run_once):
    res = run_once(run_geo, 42.0)  # metro site at rho ~0.81
    print("\nExtension E4 — per-region mean latency (ms) at high utilization")
    print(f"{'region':>10} {'edge':>8} {'cloud':>8}  verdict")
    for name, edge, cloud in res.region_means():
        verdict = "INVERTED" if edge > cloud else "edge wins"
        print(f"{name:>10} {edge * 1e3:>8.1f} {cloud * 1e3:>8.1f}  {verdict}")
    inverted = res.inverted_regions()
    assert "metro" in inverted
    assert "remote" not in inverted
