"""Ablation A8 — resource-constrained edge servers (§3.1.1's discussion).

The paper: "performance inversion can still occur for the case of k=1
if the edge uses a *different server configuration* than the cloud",
and slower edge hardware makes inversion more likely at every k.  We
sweep the edge slowdown factor and report the per-site inversion rate —
analytically and by simulation — including the k=1 case the equal-
hardware analysis rules out.
"""

import numpy as np

from repro.core.inversion import inversion_rate_heterogeneous
from repro.sim.fastsim import simulate_fcfs_queue

MU_CLOUD = 13.0
DELTA_N = 0.023
SLOWDOWNS = (1.0, 1.1, 1.2, 1.3)


def simulated_crossover(mu_edge, sites, seed=191, n=120_000):
    """Per-site rate where simulated edge mean response exceeds cloud's + delta_n."""
    rng = np.random.default_rng(seed)
    rates = np.arange(1.0, min(mu_edge, MU_CLOUD) - 0.4, 0.75)
    prev = None
    for rate in rates:
        edge = []
        for _ in range(sites):
            a = np.cumsum(rng.exponential(1.0 / rate, n))
            s = rng.exponential(1.0 / mu_edge, n)
            edge.append(simulate_fcfs_queue(a, s, 1) + s)
        a = np.cumsum(rng.exponential(1.0 / (sites * rate), sites * n))
        s = rng.exponential(1.0 / MU_CLOUD, sites * n)
        cloud = simulate_fcfs_queue(a, s, sites) + s
        gap = float(np.concatenate(edge).mean() - cloud.mean()) - DELTA_N
        if gap > 0:
            if prev is None:
                return float(rate)
            r0, g0 = prev
            return float(r0 + (rate - r0) * (-g0) / (gap - g0))
        prev = (rate, gap)
    return None


def run_slow_edge_sweep():
    out = {}
    for f in SLOWDOWNS:
        mu_e = MU_CLOUD / f
        analytic_k1 = inversion_rate_heterogeneous(DELTA_N, mu_e, MU_CLOUD, 1, 1, 1)
        analytic_k5 = inversion_rate_heterogeneous(DELTA_N, mu_e, MU_CLOUD, 1, 5, 5)
        sim_k5 = simulated_crossover(mu_e, 5)
        out[f] = (analytic_k1, analytic_k5, sim_k5)
    return out


def test_ablation_slow_edge(run_once):
    res = run_once(run_slow_edge_sweep)
    print("\nAblation A8 — per-site inversion rate vs edge hardware slowdown")
    print(f"{'slowdown':>9} {'k=1 analytic':>13} {'k=5 analytic':>13} {'k=5 simulated':>14}")
    for f, (a1, a5, s5) in res.items():
        fmt = lambda x: "never" if x is None else f"{x:.1f}"
        print(f"{f:>9.1f} {fmt(a1):>13} {fmt(a5):>13} {fmt(s5):>14}")
    # Equal hardware: k=1 never inverts (the paper's special case)...
    assert res[1.0][0] is None
    # ...but any slowdown creates a finite k=1 inversion point (or 0).
    for f in SLOWDOWNS[1:]:
        assert res[f][0] is not None
    # Slower edges invert earlier at k=5, analytically and in simulation.
    k5 = [res[f][1] for f in SLOWDOWNS]
    assert all(x is not None for x in k5)
    assert k5 == sorted(k5, reverse=True)
    # Simulation agrees with the analytic k=5 crossover within the
    # simulated sweep's grid resolution (0.75 req/s, floor at 1 req/s).
    for f in SLOWDOWNS:
        if res[f][2] is not None and res[f][1] is not None:
            assert abs(res[f][2] - res[f][1]) <= 1.1
