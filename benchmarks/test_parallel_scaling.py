"""Parallel-substrate guard: zero drift, and speedup where cores exist.

Runs the Figure-7-style utilization grid (13 sweep points, one scenario,
FAST sizing) sequentially and with 4 workers, then asserts:

* **zero drift** — the parallel sweep is bit-identical to the
  sequential one (always asserted, on any machine);
* **≥ 2× wall-clock speedup at 4 workers** — asserted when the machine
  actually has ≥ 4 CPUs (process fan-out cannot beat the sequential
  loop on fewer cores; the test skips with the measured numbers so CI
  logs still show the trajectory).

Either way the measured timings are written to ``BENCH_parallel.json``
at the repo root so the perf trajectory is tracked across commits.

Run with::

    pytest benchmarks/test_parallel_scaling.py -s
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.comparator import EdgeCloudComparator
from repro.core.scenarios import TYPICAL_CLOUD

WORKERS = 4
REQUESTS_PER_SITE = 30_000
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_parallel.json"


def _fig7_grid():
    """The Figure-7 utilization grid (~13 points) as per-site rates."""
    grid = np.arange(0.15, 0.97, 0.0665)
    return [TYPICAL_CLOUD.rate_for_utilization(float(u)) for u in grid]


@pytest.fixture(scope="module")
def scaling_run():
    """One timed sequential + parallel sweep pair, shared by both tests."""
    rates = _fig7_grid()
    cmp_ = EdgeCloudComparator(
        TYPICAL_CLOUD, requests_per_site=REQUESTS_PER_SITE, seed=2021
    )
    t0 = time.perf_counter()
    sequential = cmp_.sweep(rates, workers=1)
    t1 = time.perf_counter()
    parallel = cmp_.sweep(rates, workers=WORKERS)
    t2 = time.perf_counter()
    seconds_sequential = t1 - t0
    seconds_parallel = t2 - t1
    identical = all(
        p.edge == q.edge and p.cloud == q.cloud
        for p, q in zip(sequential.points, parallel.points, strict=True)
    )
    cpu_count = os.cpu_count() or 1
    payload = {
        "benchmark": "figure-7 utilization grid, typical cloud (24 ms)",
        "sweep_points": len(rates),
        "requests_per_site": REQUESTS_PER_SITE,
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "seconds_sequential": round(seconds_sequential, 3),
        "seconds_parallel": round(seconds_parallel, 3),
        "speedup": round(seconds_sequential / seconds_parallel, 3),
        "bit_identical": identical,
        "speedup_asserted": cpu_count >= WORKERS,
    }
    if cpu_count < WORKERS:
        # Make under-provisioned CI runners self-describing: a dashboard
        # reading BENCH_parallel.json sees *why* the speedup gate did not
        # apply instead of a silently-low number.
        payload["skipped_reason"] = (
            f"{cpu_count} CPU(s) < {WORKERS} workers: speedup gate skipped"
        )
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(
        f"\nparallel scaling: {payload['speedup']}x at {WORKERS} workers "
        f"({payload['cpu_count']} CPUs), sequential {seconds_sequential:.2f}s, "
        f"parallel {seconds_parallel:.2f}s -> {BENCH_PATH.name}"
    )
    return payload, sequential, parallel


def test_parallel_sweep_zero_drift(scaling_run):
    """Bit-identical results for 4 workers vs sequential — on any machine."""
    payload, sequential, parallel = scaling_run
    assert payload["bit_identical"]
    for p, q in zip(sequential.points, parallel.points, strict=True):
        assert p.edge == q.edge
        assert p.cloud == q.cloud
        assert p.utilization == q.utilization


def test_parallel_sweep_speedup(scaling_run):
    """≥ 2× wall-clock at 4 workers, on machines with the cores to show it."""
    payload, _, _ = scaling_run
    if (os.cpu_count() or 1) < WORKERS:
        pytest.skip(
            f"{os.cpu_count()} CPU(s) < {WORKERS} workers: speedup not "
            f"demonstrable here (measured {payload['speedup']}x; timings "
            f"recorded in {BENCH_PATH.name})"
        )
    assert payload["speedup"] >= 2.0, (
        f"expected >= 2x speedup at {WORKERS} workers, got "
        f"{payload['speedup']}x (sequential {payload['seconds_sequential']}s, "
        f"parallel {payload['seconds_parallel']}s)"
    )
