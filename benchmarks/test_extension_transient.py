"""Extension E7 — analytic prediction of the Figure 9 time series.

Quasi-stationary M/M/c(/K) evaluated on each window's observed rate
should track the *simulated* windowed latency whenever the workload
varies slowly — giving operators a way to predict when their edge will
invert over a day without simulating anything.
"""

import numpy as np

from repro.core.transient import predict_windowed_series
from repro.sim.fastsim import simulate_single_queue_system
from repro.sim.network import ConstantLatency
from repro.stats.timeseries import windowed_mean
from repro.workload.arrivals import NonHomogeneousPoisson

MU = 13.0
PERIOD = 4000.0
HORIZON = 12_000.0
WINDOW = 400.0


def run_transient_prediction():
    def rate(t):
        return 7.5 + 4.5 * np.sin(2 * np.pi * t / PERIOD)

    proc = NonHomogeneousPoisson(rate, max_rate=12.2, mean_rate=7.5)
    rng = np.random.default_rng(111)
    trace = proc.generate(rng, horizon=HORIZON)
    services = rng.exponential(1.0 / MU, len(trace))
    sim = simulate_single_queue_system(
        trace.arrival_times, services, 1, ConstantLatency.from_ms(1.0)
    )
    _, predicted = predict_windowed_series(
        trace, MU, 1, WINDOW, rtt=0.001, horizon=HORIZON
    )
    _, simulated = windowed_mean(sim.arrival, sim.end_to_end, WINDOW, horizon=HORIZON)
    valid = ~np.isnan(simulated)
    corr = float(np.corrcoef(predicted[valid], simulated[valid])[0, 1])
    rel_bias = float(
        (predicted[valid].mean() - simulated[valid].mean()) / simulated[valid].mean()
    )
    return {"corr": corr, "rel_bias": rel_bias,
            "peak_pred": float(np.nanmax(predicted)),
            "peak_sim": float(np.nanmax(simulated))}


def test_extension_transient(run_once):
    res = run_once(run_transient_prediction)
    print("\nExtension E7 — quasi-stationary prediction of windowed latency")
    print(f"  correlation with simulation: {res['corr']:.2f}")
    print(f"  relative bias: {res['rel_bias']:+.1%}")
    print(f"  peak window: predicted {res['peak_pred'] * 1e3:.0f} ms "
          f"vs simulated {res['peak_sim'] * 1e3:.0f} ms")
    assert res["corr"] > 0.8
    assert abs(res["rel_bias"]) < 0.3
