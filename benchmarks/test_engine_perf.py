"""Engine guard: calendar-queue determinism and fastsim speedup gate.

Three guarantees from the engine overhaul, asserted on every run:

* **bit-identity** — the bucketed calendar queue (the default event
  calendar) produces byte-for-byte the same simulation results as the
  binary-heap calendar it replaced, on a full DES deployment run;
* **throughput gate** — the comparator's auto-selected fastsim engine
  sustains at least **3×** the requests/sec of the forced-DES engine on
  the Figure-7 utilization grid (the target is 10×; typical measured
  speedups are far above the gate — the 3× floor only catches a fastsim
  path that silently fell back to event-by-event simulation);
* **accuracy** — the fastsim recursion still matches the exact M/M/k
  model within the cross-validation tolerances used by the unit tests
  (mean wait rel 0.07, p95 wait rel 0.1).

Measured numbers are written to ``BENCH_engine.json`` at the repo root
so CI tracks the trajectory across commits (the ``engine-bench`` job
uploads it as an artifact).

Run with::

    pytest benchmarks/test_engine_perf.py -s
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.comparator import EdgeCloudComparator
from repro.core.scenarios import TYPICAL_CLOUD
from repro.queueing.distributions import Exponential
from repro.queueing.mmk import MMk
from repro.sim.fastsim import simulate_fcfs_queue
from repro.sim.network import ConstantLatency
from repro.sim.runner import run_deployment

REQUESTS_PER_SITE = 6_000
SPEEDUP_GATE = 3.0
SPEEDUP_TARGET = 10.0
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_engine.json"

_PAYLOAD: dict = {
    "benchmark": "engine overhaul: calendar queue + fastsim auto-selection",
    "speedup_gate": SPEEDUP_GATE,
    "speedup_target": SPEEDUP_TARGET,
}


def _fig7_grid():
    """The Figure-7 utilization grid (~13 points) as per-site rates."""
    grid = np.arange(0.15, 0.97, 0.0665)
    return [TYPICAL_CLOUD.rate_for_utilization(float(u)) for u in grid]


def _requests_per_grid_pass(rates) -> int:
    """Simulated requests per engine pass: edge + pooled cloud per point."""
    per_point = 2 * TYPICAL_CLOUD.sites * REQUESTS_PER_SITE
    return per_point * len(rates)


def _flush_payload() -> None:
    BENCH_PATH.write_text(json.dumps(_PAYLOAD, indent=2) + "\n")


@pytest.fixture(scope="module")
def grid_timings():
    """One timed DES + fastsim sweep over the Figure-7 grid."""
    rates = _fig7_grid()
    des = EdgeCloudComparator(
        TYPICAL_CLOUD, requests_per_site=REQUESTS_PER_SITE, seed=2021, engine="des"
    )
    fastsim = EdgeCloudComparator(
        TYPICAL_CLOUD, requests_per_site=REQUESTS_PER_SITE, seed=2021, engine="fastsim"
    )
    t0 = time.perf_counter()
    des_sweep = des.sweep(rates)
    t1 = time.perf_counter()
    fastsim_sweep = fastsim.sweep(rates)
    t2 = time.perf_counter()
    requests = _requests_per_grid_pass(rates)
    seconds_des = t1 - t0
    seconds_fastsim = t2 - t1
    _PAYLOAD["figure7_grid"] = {
        "sweep_points": len(rates),
        "requests_per_site": REQUESTS_PER_SITE,
        "requests_per_pass": requests,
        "seconds_des": round(seconds_des, 3),
        "seconds_fastsim": round(seconds_fastsim, 3),
        "requests_per_sec_des": round(requests / seconds_des, 1),
        "requests_per_sec_fastsim": round(requests / seconds_fastsim, 1),
        "speedup": round(seconds_des / seconds_fastsim, 2),
    }
    _flush_payload()
    print(
        f"\nengine speedup: {_PAYLOAD['figure7_grid']['speedup']}x "
        f"(DES {seconds_des:.2f}s, fastsim {seconds_fastsim:.2f}s, "
        f"{requests} requests/pass) -> {BENCH_PATH.name}"
    )
    return des_sweep, fastsim_sweep


def _timed_des_run(calendar_kind: str):
    """One full DES deployment run under the given calendar backend."""
    os.environ["REPRO_CALENDAR"] = calendar_kind
    try:
        t0 = time.perf_counter()
        breakdown = run_deployment(
            "cloud",
            sites=5,
            servers_per_site=2,
            rate_per_site=18.0,
            service_dist=Exponential(1.0 / 13.0),
            latency=ConstantLatency.from_ms(24.0),
            duration=600.0,
            seed=7,
        )
        seconds = time.perf_counter() - t0
    finally:
        del os.environ["REPRO_CALENDAR"]
    return breakdown, seconds


def test_calendar_bit_identical_to_heap():
    """The calendar queue replays a DES run byte-for-byte vs the heap."""
    heap_bd, heap_s = _timed_des_run("heap")
    cal_bd, cal_s = _timed_des_run("calendar")
    assert len(heap_bd) == len(cal_bd) and len(heap_bd) > 5_000
    for field in ("end_to_end", "wait", "service", "network", "created"):
        np.testing.assert_array_equal(
            getattr(heap_bd, field),
            getattr(cal_bd, field),
            err_msg=f"calendar queue drifted from heap on {field!r}",
        )
    _PAYLOAD["calendar_vs_heap"] = {
        "requests": len(heap_bd),
        "seconds_heap": round(heap_s, 3),
        "seconds_calendar": round(cal_s, 3),
        "calendar_speedup": round(heap_s / cal_s, 3),
        "bit_identical": True,
    }
    _flush_payload()


def test_fastsim_speedup_gate(grid_timings):
    """Auto-selected fastsim must beat forced DES by >= 3x on the grid."""
    speedup = _PAYLOAD["figure7_grid"]["speedup"]
    assert speedup >= SPEEDUP_GATE, (
        f"fastsim engine only {speedup}x faster than DES on the Figure-7 "
        f"grid (gate {SPEEDUP_GATE}x, target {SPEEDUP_TARGET}x) — did the "
        f"comparator stop auto-selecting the vectorized path?"
    )


def test_engines_statistically_equivalent(grid_timings):
    """DES and fastsim sweeps agree on the mean away from saturation.

    The two engines use independent random streams, so agreement is
    statistical, not bitwise.  Near saturation the mean wait's sampling
    variance blows up as 1/(1-rho)^2 — at 6k requests/site the
    heavy-traffic points can legitimately differ by tens of percent —
    so the assertion covers utilizations up to 0.75 (where the paper's
    crossover lives) and the full-grid gap is recorded in the payload.
    """
    des_sweep, fastsim_sweep = grid_timings
    max_rel = 0.0
    for p, q in zip(des_sweep.points, fastsim_sweep.points, strict=True):
        for side in ("edge", "cloud"):
            a = getattr(p, side).mean
            b = getattr(q, side).mean
            max_rel = max(max_rel, abs(a - b) / b)
            if p.utilization <= 0.75:
                assert a == pytest.approx(b, rel=0.1), (
                    f"{side} mean drifted at utilization {p.utilization:.2f}"
                )
    _PAYLOAD["figure7_grid"]["max_mean_rel_gap_full_grid"] = round(max_rel, 4)
    _flush_payload()


def test_fastsim_matches_mmk_model():
    """The fastsim recursion still reproduces exact M/M/k waits."""
    n = 200_000
    rng = np.random.default_rng(11)
    a = np.cumsum(rng.exponential(1.0 / 40.0, n))
    s = rng.exponential(1.0 / 13.0, n)
    waits = simulate_fcfs_queue(a, s, 5)[n // 4:]
    model = MMk(40.0, 13.0, 5)
    assert waits.mean() == pytest.approx(model.mean_wait(), rel=0.07)
    emp_p95 = float(np.quantile(waits, 0.95))
    assert emp_p95 == pytest.approx(model.waiting_time_percentile(0.95), rel=0.1)
    _PAYLOAD["fastsim_vs_mmk"] = {
        "requests": n,
        "mean_wait_rel_err": round(
            abs(float(waits.mean()) - model.mean_wait()) / model.mean_wait(), 4
        ),
        "p95_wait_rel_err": round(
            abs(emp_p95 - model.waiting_time_percentile(0.95))
            / model.waiting_time_percentile(0.95),
            4,
        ),
    }
    _flush_payload()
