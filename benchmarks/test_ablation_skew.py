"""Ablation A4 — spatial skew (Lemma 3.3) vs edge latency.

Zipf-skewing the same aggregate workload across sites leaves the cloud
unchanged but degrades the edge; the inversion threshold (Lemma 3.3)
rises with skew.
"""

from repro.core.inversion import delta_n_threshold_skewed
from repro.queueing.distributions import Exponential
from repro.sim.network import ConstantLatency
from repro.sim.runner import run_deployment
from repro.workload.spatial import zipf_weights

MU = 13.0
TOTAL_RATE = 25.0  # aggregate over 5 sites; balanced rho = 0.38, and the
# hottest Zipf(s=1) site stays stable at rho = 0.84
ZIPF_S = (0.0, 0.5, 1.0)


def run_skew_sweep():
    out = {}
    for i, s in enumerate(ZIPF_S):
        w = zipf_weights(5, s)
        rates = [float(TOTAL_RATE * x) for x in w]
        edge = run_deployment(
            "edge",
            sites=5,
            servers_per_site=1,
            rate_per_site=0.0,
            site_rates=rates,
            service_dist=Exponential(1.0 / MU),
            latency=ConstantLatency.from_ms(1.0),
            duration=2500.0,
            seed=41 + i,
        )
        threshold = delta_n_threshold_skewed(list(w), TOTAL_RATE, MU, 5)
        out[s] = (edge.end_to_end.mean(), threshold)
    return out


def test_ablation_skew(run_once):
    res = run_once(run_skew_sweep)
    print("\nAblation A4 — edge mean latency and Lemma 3.3 threshold vs Zipf skew")
    print(f"{'zipf s':>7} {'edge mean (ms)':>15} {'threshold (svc units)':>22}")
    for s, (mean, thr) in res.items():
        print(f"{s:>7.1f} {mean * 1e3:>15.2f} {thr:>22.2f}")
    means = [res[s][0] for s in ZIPF_S]
    thresholds = [res[s][1] for s in ZIPF_S]
    # More skew -> worse edge latency and a larger inversion threshold.
    assert means[0] < means[1] < means[2]
    assert thresholds[0] < thresholds[1] < thresholds[2]
