#!/usr/bin/env python3
"""What does avoiding inversion cost? SLO-driven fleet pricing.

The paper's conclusion flags "the economic costs of edge deployments
resulting from the need to deploy extra capacity" as future work.  This
example runs that analysis: provision edge and cloud fleets to the same
p95 end-to-end SLO (exact M/M/c quantiles) and price them, sweeping the
SLO from loose to tighter-than-the-cloud-RTT — the regime where the
edge stops being a luxury and becomes the only option.

Run:  python examples/slo_cost_analysis.py
"""

from repro.core.cost import CostModel, compare_slo_costs, min_servers_for_slo
from repro.core.tail import cutoff_utilization_tail

MU = 13.0        # per-server service rate (req/s)
RATE = 40.0      # aggregate demand
SITES = 5
EDGE_RTT = 0.001
CLOUD_RTT = 0.024


def main() -> None:
    cm = CostModel(cloud_server_hourly=0.10, edge_server_hourly=0.25,
                   site_overhead_hourly=0.50)
    print(
        f"demand {RATE:.0f} req/s, {SITES} edge sites, edge RTT "
        f"{EDGE_RTT * 1e3:.0f} ms, cloud RTT {CLOUD_RTT * 1e3:.0f} ms"
    )
    print(
        f"prices: cloud ${cm.cloud_server_hourly}/srv-h, edge "
        f"${cm.edge_server_hourly}/srv-h + ${cm.site_overhead_hourly}/site-h\n"
    )

    print(f"{'p95 SLO':>9} {'edge $/h':>9} {'cloud $/h':>10} {'ratio':>6}  note")
    # 250 ms lands in the edge-only regime: the cloud's budget after its
    # RTT falls below the service-time p95 floor, so no cloud pool size
    # can meet it while the edge still can.
    for slo_ms in (1200, 800, 600, 500, 400, 350, 250):
        try:
            edge, cloud = compare_slo_costs(
                total_rate=RATE, service_rate=MU, sites=SITES,
                edge_rtt=EDGE_RTT, cloud_rtt=CLOUD_RTT,
                latency_slo=slo_ms * 1e-3, q=0.95, cost_model=cm,
            )
        except ValueError:
            # The cloud cannot meet this SLO at any size; can the edge?
            try:
                per_site = min_servers_for_slo(
                    RATE / SITES, MU, slo_ms * 1e-3 - EDGE_RTT, q=0.95
                )
            except ValueError as exc:
                print(f"{slo_ms:>7}ms {'—':>9} {'—':>10} {'—':>6}  infeasible: {exc}")
                continue
            edge_cost = per_site * SITES * cm.edge_server_hourly + SITES * cm.site_overhead_hourly
            print(
                f"{slo_ms:>7}ms {edge_cost:>9.2f} {'—':>10} {'—':>6}  "
                f"edge-only regime ({per_site * SITES} srv); cloud infeasible"
            )
            continue
        ratio = edge.hourly_cost / cloud.hourly_cost
        note = f"edge {edge.servers} srv vs cloud {cloud.servers} srv"
        print(
            f"{slo_ms:>7}ms {edge.hourly_cost:>9.2f} {cloud.hourly_cost:>10.2f} "
            f"{ratio:>6.2f}  {note}"
        )

    # Where does the tail inversion sit for this fleet? (Extension E2.)
    tail_cut = cutoff_utilization_tail(
        CLOUD_RTT - EDGE_RTT, MU, 1, SITES, q=0.95
    )
    print(
        f"\np95 inversion cutoff for 1-server sites vs the pooled cloud: "
        f"rho = {tail_cut:.2f}"
    )
    print(
        "Takeaway: whenever the cloud can meet the SLO at all, it does so "
        "for a fraction of the edge's cost — the edge's economic case "
        "rests entirely on SLOs tighter than the cloud RTT."
    )


if __name__ == "__main__":
    main()
