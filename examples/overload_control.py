#!/usr/bin/env python3
"""Defend one saturated edge site: FIFO vs CoDel + brownout + admission.

The paper's capacity story ends at the saturation knee — past 13 req/s
per 8-core site the DNN-inference queue grows without bound.  This
example offers 16 req/s (1.23x saturation) to a single site and
compares two servers:

* undefended — unbounded FIFO.  Nothing is refused, so *everything* is
  served late: the admitted p95 diverges with the backlog.
* defended   — CoDel sheds requests whose queue sojourn stays above
  target, an AIMD concurrency limit turns excess load away at the door,
  and a brownout dimmer serves the rest with a cheaper degraded model
  when the estimated wait climbs.

The defended site refuses (and degrades) a reported share of the work —
and that is the point: the requests it *does* serve meet a latency SLO
that the undefended site misses for every request.

Run:  python examples/overload_control.py
"""

from repro.mitigation.admission import AdaptiveAdmission, AIMDConcurrencyLimit
from repro.queueing.distributions import Exponential
from repro.sim import (
    BrownoutController,
    CoDelDiscipline,
    ConstantLatency,
    EdgeDeployment,
    EdgeSite,
    OpenLoopSource,
    Simulation,
)
from repro.stats import summarize_overload
from repro.workload.service import DNNInferenceModel

RATE = 16.0  # offered load, req/s (saturation is 13)
DURATION = 400.0
SLO = 2.0  # seconds
WARMUP = 100.0

MODEL = DNNInferenceModel()


def run(defended, seed):
    sim = Simulation(seed)
    kw = {}
    if defended:
        kw = dict(
            discipline=CoDelDiscipline(target=0.3),
            admission=AdaptiveAdmission(
                AIMDConcurrencyLimit(latency_target=1.0, max_limit=64.0)
            ),
            brownout=BrownoutController(
                degraded_scale=0.4, target_wait=0.25, full_wait=1.0
            ),
        )
    site = EdgeSite(
        sim, "s0", MODEL.cores, ConstantLatency.from_ms(1.0),
        MODEL.service_dist(), **kw,
    )
    edge = EdgeDeployment(sim, [site])
    OpenLoopSource(sim, edge, Exponential(1.0 / RATE), site="s0", stop_time=DURATION)
    sim.run(until=DURATION)
    b = edge.log.breakdown().after(WARMUP)
    summary = summarize_overload(
        duration=DURATION, stations=[site.station], latencies=b.end_to_end
    )
    slo_hits = int((b.end_to_end <= SLO).sum())
    return summary, slo_hits / (DURATION - WARMUP)


def main() -> None:
    print("Server-side overload control on one saturated edge site")
    print(f"(offered {RATE:.0f} req/s vs {MODEL.cores}-core capacity "
          f"~13 req/s; SLO {SLO:.0f}s)\n")

    rows = {
        "undefended FIFO": run(False, seed=11),
        "CoDel + admission + brownout": run(True, seed=12),
    }
    print(f"{'server':>28} {'p95(ms)':>9} {'SLO goodput':>11} "
          f"{'refused':>8} {'degraded':>9}")
    for label, (s, slo_goodput) in rows.items():
        p95 = s.latency.p95 * 1e3 if s.latency is not None else float("nan")
        print(f"{label:>28} {p95:>9.0f} {slo_goodput:>9.1f}/s "
              f"{s.refusal_rate:>8.1%} {s.degraded_fraction:>9.1%}")

    naive, naive_goodput = rows["undefended FIFO"]
    defended, defended_goodput = rows["CoDel + admission + brownout"]
    print(f"\n-> the defended site turns {defended.refusal_rate:.0%} of "
          f"arrivals away and degrades {defended.degraded_fraction:.0%} "
          "of the rest, but serves "
          f"{defended_goodput:.1f}/s within SLO where FIFO serves "
          f"{naive_goodput:.1f}/s (p95 "
          f"{naive.latency.p95:.0f}s vs {defended.latency.p95 * 1e3:.0f}ms).")


if __name__ == "__main__":
    main()
