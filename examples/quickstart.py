#!/usr/bin/env python3
"""Quickstart: will your edge deployment beat the cloud?

Reproduces the paper's core result in ~20 lines of API: pick a
scenario (edge RTT, cloud RTT, fleet shape, application model), get the
analytic inversion cutoff, then verify it by simulation.

Run:  python examples/quickstart.py
"""

from repro import EdgeCloudComparator, TYPICAL_CLOUD
from repro.experiments.report import render_sweep


def main() -> None:
    scenario = TYPICAL_CLOUD  # 1 ms edge vs ~24 ms cloud, 5 sites
    print(f"Scenario: {scenario.name}")
    print(f"  edge RTT {scenario.edge_rtt_ms} ms, cloud RTT {scenario.cloud_rtt_ms} ms")
    print(
        f"  {scenario.sites} edge sites x {scenario.machines_per_site} machine(s); "
        f"cloud pools {scenario.cloud_machines} machines"
    )
    print(
        f"  application saturates one machine at "
        f"{scenario.service.saturation_rate:.0f} req/s\n"
    )

    comparator = EdgeCloudComparator(scenario, requests_per_site=50_000, seed=1)

    # 1. Analytic prediction (Section 3 of the paper).
    rho_star = comparator.predict_cutoff_utilization()
    print(f"Analytic cutoff utilization: {rho_star:.2f}")
    print(
        f"  -> below {rho_star:.0%} utilization the edge wins; above it, "
        "queueing at the edge outweighs its network advantage.\n"
    )

    # 2. Simulated verification (Section 4): sweep 6..12 req/s per server.
    result = comparator.sweep([6, 7, 8, 9, 10, 11, 12])
    print(render_sweep(result, "mean"))
    measured = result.crossover_utilization("mean")
    print(f"\nmeasured cutoff utilization: {measured:.2f}" if measured else "")

    # 3. The tail inverts even earlier (the paper's Figure 5 insight).
    tail_rate = result.crossover_rate("p95")
    mean_rate = result.crossover_rate("mean")
    if tail_rate is not None and mean_rate is not None:
        print(
            f"p95 inversion at {tail_rate:.1f} req/s vs mean at {mean_rate:.1f} req/s "
            "— plan capacity against the tail, not the mean."
        )


if __name__ == "__main__":
    main()
