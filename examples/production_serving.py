#!/usr/bin/env python3
"""A day in the life of an edge inference fleet.

Combines the production mechanisms this library models on top of the
paper's comparison: TF-Serving-style request batching, per-site
failures, geographic load balancing and a diurnal workload — and shows
where the end-to-end latency actually comes from in each configuration.

Run:  python examples/production_serving.py
"""

import numpy as np

from repro.mitigation.geo_lb import GeoLoadBalancer
from repro.queueing.distributions import Exponential
from repro.sim.client import OpenLoopSource
from repro.sim.engine import Simulation
from repro.sim.failures import FailureInjector
from repro.sim.network import ConstantLatency
from repro.sim.topology import CloudDeployment, EdgeDeployment, EdgeSite
from repro.stats.summary import summarize

MU = 13.0
SERVICE = Exponential(1.0 / MU)
SITES = 5
# rho = 0.23, safely below this setup's inversion cutoff (~0.31 for
# single-server sites vs a 24 ms cloud): the healthy edge wins on mean.
RATE = 3.0
DURATION = 3000.0
MTBF, MTTR = 600.0, 45.0


def run_edge(router=None, inject=False, seed=21):
    sim = Simulation(seed)
    sites = [
        EdgeSite(sim, f"s{i}", 1, ConstantLatency.from_ms(1.0), SERVICE)
        for i in range(SITES)
    ]
    edge = EdgeDeployment(sim, sites, router=router)
    for i in range(SITES):
        OpenLoopSource(sim, edge, Exponential(1.0 / RATE), site=f"s{i}", stop_time=DURATION)
    injector = None
    if inject:
        injector = FailureInjector(
            sim, [s.station for s in sites], MTBF, MTTR, DURATION
        )
    sim.run()
    return edge.log.breakdown().after(DURATION * 0.1), injector


def run_cloud(seed=22):
    sim = Simulation(seed)
    cloud = CloudDeployment(
        sim, servers=SITES, latency=ConstantLatency.from_ms(24.0), service_dist=SERVICE
    )
    for _ in range(SITES):
        OpenLoopSource(sim, cloud, Exponential(1.0 / RATE), stop_time=DURATION)
    sim.run()
    return cloud.log.breakdown().after(DURATION * 0.1)


def main() -> None:
    print(f"{SITES} edge sites at rho = {RATE / MU:.2f}, sites fail with "
          f"MTBF {MTBF:.0f} s / MTTR {MTTR:.0f} s\n")

    ideal, _ = run_edge()
    failing, inj = run_edge(inject=True)
    geo = GeoLoadBalancer(occupancy_threshold=2.0, inter_site_oneway=0.003)
    resilient, _ = run_edge(router=geo, inject=True, seed=21)
    cloud = run_cloud()

    rows = [
        ("edge, no failures", ideal),
        ("edge, failures", failing),
        ("edge, failures + geo-LB", resilient),
        ("cloud (24 ms away)", cloud),
    ]
    print(f"{'configuration':>24} {'mean':>8} {'p95':>9} {'p99':>9}  (ms)")
    for name, bd in rows:
        s = summarize(bd.end_to_end).as_ms()
        print(f"{name:>24} {s['mean']:>8.1f} {s['p95']:>9.1f} {s['p99']:>9.1f}")

    print(f"\nfleet availability during the failing runs: {inj.mean_availability():.1%}")
    print(f"geo-LB redirected {geo.redirect_fraction:.1%} of requests")
    print(
        "\nTakeaway: at this utilization the healthy edge beats the cloud, "
        "but a realistic failure process hands the tail advantage straight "
        "back to the cloud — unless requests can jockey between sites.  "
        "The mechanisms that defeat skew-driven inversion (§5.1) are the "
        "same ones that buy the edge its reliability."
    )


if __name__ == "__main__":
    main()
