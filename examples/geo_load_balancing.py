#!/usr/bin/env python3
"""Defeating inversion with geographic load balancing and autoscaling.

Section 5.1 of the paper: the bank-teller argument (and hence the
performance inversion) collapses if "queue jockeying" is allowed.  This
example runs the same skewed workload three ways through the full
event-driven simulator:

* a plain edge (inverts against the cloud),
* an edge with threshold-based redirection between sites,
* an edge with per-site reactive autoscaling,

and prints who wins each time.

Run:  python examples/geo_load_balancing.py
"""

from repro.mitigation.autoscale import ReactiveAutoscaler
from repro.mitigation.geo_lb import GeoLoadBalancer
from repro.queueing.distributions import Exponential
from repro.sim.client import OpenLoopSource
from repro.sim.engine import Simulation
from repro.sim.network import ConstantLatency
from repro.sim.runner import run_deployment
from repro.sim.topology import EdgeDeployment, EdgeSite
from repro.stats.summary import summarize

MU = 13.0
SERVICE = Exponential(1.0 / MU)
SKEWED_RATES = [11.5, 6.0, 6.0, 4.0, 3.0]  # hot site at rho = 0.88
DURATION = 2000.0
EDGE_LAT = ConstantLatency.from_ms(1.0)
CLOUD_LAT = ConstantLatency.from_ms(25.0)


def run_autoscaled_edge() -> float:
    """Edge with a per-site reactive autoscaler (min 1, max 3 servers)."""
    sim = Simulation(11)
    sites = [EdgeSite(sim, f"site-{i}", 1, EDGE_LAT, SERVICE) for i in range(5)]
    edge = EdgeDeployment(sim, sites)
    for i, rate in enumerate(SKEWED_RATES):
        OpenLoopSource(sim, edge, Exponential(1.0 / rate), site=f"site-{i}", stop_time=DURATION)
    ReactiveAutoscaler(
        sim,
        [s.station for s in sites],
        target_utilization=0.6,
        interval=30.0,
        max_servers=3,
        stop_time=DURATION,
    )
    sim.run()
    return float(edge.log.breakdown().after(DURATION * 0.2).end_to_end.mean())


def main() -> None:
    common = dict(
        sites=5,
        servers_per_site=1,
        rate_per_site=0.0,
        site_rates=SKEWED_RATES,
        service_dist=SERVICE,
        duration=DURATION,
        seed=11,
    )

    cloud = run_deployment("cloud", latency=CLOUD_LAT, **common)
    plain = run_deployment("edge", latency=EDGE_LAT, **common)
    glb = GeoLoadBalancer(occupancy_threshold=1.0, inter_site_oneway=0.003)
    jockeyed = run_deployment("edge", latency=EDGE_LAT, router=glb, **common)
    autoscaled_mean = run_autoscaled_edge()

    print("Skewed workload, mean end-to-end latency:")
    print(f"  cloud (25 ms away)        : {summarize(cloud.end_to_end)}")
    print(f"  edge, plain               : {summarize(plain.end_to_end)}")
    print(f"  edge + geo load balancing : {summarize(jockeyed.end_to_end)}")
    print(f"    ({glb.redirect_fraction:.1%} of requests redirected)")
    print(f"  edge + autoscaling        : mean={autoscaled_mean * 1e3:.2f}ms")

    verdict = "INVERTED" if plain.end_to_end.mean() > cloud.end_to_end.mean() else "ok"
    print(f"\nplain edge vs cloud: {verdict}")
    for label, mean in (
        ("geo-LB edge", jockeyed.end_to_end.mean()),
        ("autoscaled edge", autoscaled_mean),
    ):
        verdict = "beats cloud" if mean < cloud.end_to_end.mean() else "still loses"
        print(f"{label}: {verdict}")


if __name__ == "__main__":
    main()
