#!/usr/bin/env python3
"""Per-region inversion in a geo-distributed deployment.

The paper's Corollary 3.1.3 warns that as cloud providers open regional
data centers, the cloud becomes "good enough" and the edge's advantage
evaporates — but that happens *region by region*, not globally.  This
example runs one application serving three client regions with very
different cloud distances and shows the inversion picture per region,
then sweeps utilization to locate each region's own cutoff.

Run:  python examples/multi_region.py
"""

import numpy as np

from repro.core.inversion import cutoff_utilization_exact
from repro.queueing.distributions import Exponential
from repro.sim.geo import Region, simulate_geo_comparison

MU = 13.0
SERVICE = Exponential(1.0 / MU)
SERVERS_PER_SITE = 2
REGIONS = [
    Region("metro", weight=0.5, edge_rtt=0.001, cloud_rtt=0.012),
    Region("suburban", weight=0.3, edge_rtt=0.001, cloud_rtt=0.030),
    Region("remote", weight=0.2, edge_rtt=0.002, cloud_rtt=0.090),
]


def main() -> None:
    print("Three regions, one application; cloud pools "
          f"{len(REGIONS) * SERVERS_PER_SITE} servers, each region's edge "
          f"site has {SERVERS_PER_SITE}.\n")

    # Analytic per-region cutoffs (each region's own delta_n; the pooled
    # cloud is shared, so the pool size is the full fleet).
    print("Analytic mean-latency cutoff per region:")
    for r in REGIONS:
        cutoff = cutoff_utilization_exact(
            r.cloud_rtt - r.edge_rtt, MU, SERVERS_PER_SITE,
            len(REGIONS) * SERVERS_PER_SITE,
        )
        print(f"  {r.name:>9}: rho* = {cutoff:.2f}  (cloud {r.cloud_rtt * 1e3:.0f} ms away)")

    # Simulated picture at two operating points.
    for total_rate, label in ((18.0, "light load"), (42.0, "heavy load")):
        result = simulate_geo_comparison(
            REGIONS, total_rate=total_rate, service=SERVICE,
            servers_per_site=SERVERS_PER_SITE, n_per_region_unit=60_000, seed=5,
        )
        print(f"\n{label} ({total_rate:.0f} req/s aggregate):")
        print(f"  {'region':>9} {'edge(ms)':>9} {'cloud(ms)':>10}  verdict")
        for name, edge, cloud in result.region_means():
            verdict = "INVERTED" if edge > cloud else "edge wins"
            print(f"  {name:>9} {edge * 1e3:>9.1f} {cloud * 1e3:>10.1f}  {verdict}")

    print(
        "\nTakeaway: a single global 'edge vs cloud' decision is wrong — "
        "metro users (12 ms to a regional cloud DC) should be served from "
        "the cloud well before suburban or remote users, so placement "
        "policies must be per-region."
    )


if __name__ == "__main__":
    main()
