#!/usr/bin/env python3
"""Capacity planning for a skewed edge fleet (Section 5 of the paper).

Given per-site demand with spatial skew, this example:

1. quantifies the provider-side two-sigma capacity penalty of the edge
   (C_edge = λ + 2√(kλ) vs C_cloud = λ + 2√λ);
2. computes inversion-free per-site server floors (Equation 22);
3. rebalances a fixed server budget proportionally to load and shows
   the utilization flattening the paper prescribes for skewed demand.

Run:  python examples/capacity_planning.py
"""

from repro.core.capacity import (
    cloud_peak_capacity,
    edge_peak_capacity,
    provisioning_penalty,
)
from repro.core.inversion import calibrate_time_unit
from repro.mitigation.provisioning import plan_capacity, rebalance_to_budget

MU = 13.0  # per-server service rate (req/s), the paper's saturation rate
SITE_RATES = [18.0, 9.0, 6.0, 4.0, 3.0]  # skewed demand across 5 sites
DELTA_N = 0.030  # 30 ms RTT advantage (typical-cloud setup)


def main() -> None:
    total = sum(SITE_RATES)
    k = len(SITE_RATES)

    print("=== Provider view: the two-sigma capacity penalty (§5.2) ===")
    print(f"aggregate demand: {total:.0f} req/s across {k} sites")
    print(f"  C_cloud = {cloud_peak_capacity(total):6.1f} req/s-equivalents")
    print(f"  C_edge  = {edge_peak_capacity(total, k):6.1f} req/s-equivalents")
    print(f"  penalty = {provisioning_penalty(total, k):.2f}x\n")

    print("=== Application view: inversion-free per-site floors (Eq 22) ===")
    # Calibrate the formula's time unit from the paper's own anchor
    # (rho* = 0.64 at delta_n = 30 ms, k = 5).
    unit = calibrate_time_unit(DELTA_N, 5, 0.64)
    plan = plan_capacity(
        SITE_RATES, MU, delta_n=DELTA_N, cloud_servers=k, time_unit=unit
    )
    print(f"{'site':>5} {'req/s':>7} {'servers':>8} {'rho':>6}")
    for i, (r, s, u) in enumerate(zip(plan.site_rates, plan.servers, plan.utilizations)):
        print(f"{i:>5} {r:>7.1f} {s:>8} {u:>6.2f}")
    print(f"total fleet: {plan.total_servers} servers (cloud needs {k})")
    print(f"stable: {plan.is_stable()}, hottest site rho = {plan.max_utilization:.2f}\n")

    print("=== Fixed budget: proportional rebalancing (Lemma 3.3) ===")
    budget = plan.total_servers
    rebalanced = rebalance_to_budget(SITE_RATES, budget, MU)
    print(f"{'site':>5} {'req/s':>7} {'servers':>8} {'rho':>6}")
    for i, (r, s, u) in enumerate(
        zip(rebalanced.site_rates, rebalanced.servers, rebalanced.utilizations)
    ):
        print(f"{i:>5} {r:>7.1f} {s:>8} {u:>6.2f}")
    spread = max(rebalanced.utilizations) - min(
        u for u, r in zip(rebalanced.utilizations, rebalanced.site_rates) if r > 0
    )
    print(f"utilization spread after rebalancing: {spread:.2f}")
    print(
        "\nTakeaway: proportional capacity equalizes per-site utilization, "
        "reducing Lemma 3.3's skewed bound to the balanced Lemma 3.1 — but "
        "the inversion condition itself remains; only more capacity or "
        "geographic load balancing removes it."
    )


if __name__ == "__main__":
    main()
