#!/usr/bin/env python3
"""Serve through edge outages: naive client vs the resilience stack.

The paper's comparison assumes every request is delivered exactly once
to a healthy site.  This example injects edge-site outages (stochastic
failures plus a link black-hole where the site *looks* healthy) and
compares three clients at an edge-friendly utilization:

* naive       — requests strand in dead sites' queues;
* retries     — deadlines bound the damage but goodput is lost;
* full stack  — retries + per-site circuit breakers + edge->cloud
                failover restore the no-failure tail.

A second section shows hedging: on a lossy network, a speculative
duplicate fired at the p95 latency mark rescues lost requests without
waiting out the full timeout.

Run:  python examples/resilient_serving.py
"""

from repro.queueing.distributions import Exponential
from repro.sim import (
    BreakerConfig,
    CloudDeployment,
    ConstantLatency,
    EdgeDeployment,
    EdgeSite,
    FailureInjector,
    HedgePolicy,
    LossyLatency,
    OpenLoopSource,
    ResilientClient,
    RetryPolicy,
    Simulation,
)
from repro.workload.service import DNNInferenceModel

SITES = 5
RATE = 6.0  # rho = 0.46 per site: comfortably edge-friendly
DURATION = 1200.0
SLO = 3.0  # seconds

MODEL = DNNInferenceModel()
SERVICE = MODEL.service_dist()


def build(sim, loss_prob=0.0, link_outage=None):
    sites = []
    for i in range(SITES):
        latency = ConstantLatency.from_ms(1.0)
        if loss_prob or (link_outage and i == 2):
            latency = LossyLatency(
                latency, loss_prob=loss_prob,
                outages=[link_outage] if link_outage else None,
            )
        sites.append(EdgeSite(sim, f"s{i}", MODEL.cores, latency, SERVICE))
    edge = EdgeDeployment(sim, sites)
    cloud = CloudDeployment(
        sim, servers=SITES * MODEL.cores,
        latency=ConstantLatency.from_ms(24.0), service_dist=SERVICE,
    )
    return sites, edge, cloud


def outage_run(client_kw, failover, seed):
    sim = Simulation(seed)
    sites, edge, cloud = build(sim, link_outage=(300.0, 360.0))
    if client_kw is None:
        target = client = ResilientClient(  # pass-through accounting only
            sim, edge, timeout=10 * SLO, slo_deadline=SLO,
            retry=RetryPolicy(max_attempts=1),
        )
    else:
        target = client = ResilientClient(
            sim, edge, cloud if failover else None,
            slo_deadline=SLO, **client_kw,
        )
    for i in range(SITES):
        OpenLoopSource(sim, target, Exponential(1.0 / RATE),
                       site=f"s{i}", stop_time=DURATION)
    injector = FailureInjector(sim, [s.station for s in sites], 400.0, 40.0, DURATION)
    injector.schedule_outage(600.0, 90.0, [sites[0].station, sites[1].station])
    sim.run()
    return client.summary(DURATION)


def main() -> None:
    print("Resilient serving under edge outages")
    print(f"({SITES} sites, {RATE:.0f} req/s/site, SLO {SLO:.0f}s, "
          "stochastic failures + correlated window + link black-hole)\n")

    retry_kw = dict(
        timeout=1.5,
        retry=RetryPolicy(max_attempts=3, backoff_base=0.05, backoff_cap=0.5),
    )
    full_kw = dict(
        retry_kw,
        breaker=BreakerConfig(window=20, failure_threshold=0.5,
                              min_calls=5, reset_timeout=10.0),
        saturation_threshold=4 * MODEL.cores,
    )
    runs = {
        "naive (no resilience)": outage_run(None, False, seed=21),
        "retries only": outage_run(retry_kw, False, seed=22),
        "breaker + failover": outage_run(full_kw, True, seed=23),
    }
    print(f"{'client':>22} {'p95(ms)':>9} {'SLO':>7} {'goodput':>8} "
          f"{'failover':>8} {'opens':>6}")
    for name, s in runs.items():
        p95 = s.latency.p95 * 1e3 if s.latency is not None else float("nan")
        print(f"{name:>22} {p95:>9.0f} {s.slo_attainment:>7.1%} "
              f"{s.goodput:>7.1f}/s {s.failovers:>8} {s.breaker_opens:>6}")
    full = runs["breaker + failover"]
    naive = runs["naive (no resilience)"]
    print(f"\n-> the full stack lifts SLO attainment from "
          f"{naive.slo_attainment:.1%} to {full.slo_attainment:.1%} "
          f"under the same outages.")

    # --- Hedging on a lossy network -----------------------------------
    print("\nHedged requests on a lossy edge network (1% packet loss)")
    rows = {}
    for label, hedge in (("no hedge", None),
                         ("hedge @ p95", HedgePolicy(quantile=0.95))):
        sim = Simulation(31)
        _, edge, cloud = build(sim, loss_prob=0.01)
        client = ResilientClient(
            sim, edge, cloud, timeout=2.0, slo_deadline=6.0,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.05, backoff_cap=0.5),
            hedge=hedge,
        )
        for i in range(SITES):
            OpenLoopSource(sim, client, Exponential(1.0 / RATE),
                           site=f"s{i}", stop_time=DURATION)
        sim.run()
        rows[label] = client.summary(DURATION)
    print(f"{'client':>14} {'p99(ms)':>9} {'hedges':>7} {'amp':>6}")
    for label, s in rows.items():
        print(f"{label:>14} {s.latency.p99 * 1e3:>9.0f} {s.hedges:>7} "
              f"{s.retry_amplification:>6.2f}")
    gain = rows["no hedge"].latency.p99 / rows["hedge @ p95"].latency.p99
    print(f"\n-> hedging cuts p99 by {gain:.1f}x: a lost packet costs one "
          "hedge delay instead of a full timeout + retry.")


if __name__ == "__main__":
    main()
