#!/usr/bin/env python3
"""Replay a serverless trace through edge and cloud deployments.

The paper's Section 4.5 experiment: construct per-site workloads by
grouping serverless functions into k mutually exclusive sets, replay
them against k edge sites, and replay the aggregate against one cloud —
then watch the skewed, bursty edge sites repeatedly invert while the
cloud's pooled queue rides out the fluctuations.

Run:  python examples/azure_trace_replay.py
"""

import numpy as np

from repro.core.scenarios import Scenario
from repro.sim.fastsim import simulate_edge_system, simulate_single_queue_system
from repro.stats.summary import summarize
from repro.stats.timeseries import windowed_mean
from repro.workload.azure import (
    AzureTraceConfig,
    generate_azure_workload,
    group_functions_into_sites,
)
from repro.workload.trace import RequestTrace

DURATION = 3600.0  # one hour of trace
SITES = 5


def main() -> None:
    scenario = Scenario(name="azure replay", cloud_rtt_ms=26.0, sites=SITES)
    rng = np.random.default_rng(7)

    # 1. Generate the synthetic Azure-like workload and group functions
    #    into one set per edge site (the paper's construction).
    functions = generate_azure_workload(
        AzureTraceConfig(n_functions=40, duration=DURATION, total_rate=40.0,
                         noise_cv2=0.3, spike_factor=3.0),
        rng,
    )
    sites = group_functions_into_sites(functions, SITES, rng)

    # 2. Rescale execution times so the hottest site averages 70%
    #    utilization (the paper's moderate operating regime).
    lanes = scenario.edge_servers_per_site
    hottest = max(t.mean_rate * t.service_times.mean() / lanes for t in sites)
    sites = [RequestTrace(t.arrival_times, t.service_times * 0.70 / hottest) for t in sites]

    print("Per-site workload (Figure 8's view):")
    for i, t in enumerate(sites):
        rho = t.mean_rate * t.service_times.mean() / lanes
        print(
            f"  site {i}: {len(t):6d} requests, {t.mean_rate:5.2f} req/s, "
            f"rho={rho:.2f}, interarrival CoV^2={t.interarrival_cv2():.1f}"
        )

    # 3. Replay: per-site queues at the edge, one pooled queue at the cloud.
    edge = simulate_edge_system(
        [t.arrival_times for t in sites],
        [t.service_times for t in sites],
        lanes,
        scenario.edge_latency(),
        rng,
    )
    merged = RequestTrace.merge(sites)
    cloud = simulate_single_queue_system(
        merged.arrival_times, merged.service_times,
        scenario.cloud_servers, scenario.cloud_latency(), rng,
    )

    print("\nEnd-to-end latency (Figure 10's view):")
    for i in range(SITES):
        print(f"  site {i}: {summarize(edge.for_site(i).end_to_end)}")
    print(f"  cloud : {summarize(cloud.end_to_end)}")

    # 4. Time series: how often does the edge invert? (Figure 9's view)
    _, edge_series = windowed_mean(edge.arrival, edge.end_to_end, 60.0, horizon=DURATION)
    _, cloud_series = windowed_mean(cloud.arrival, cloud.end_to_end, 60.0, horizon=DURATION)
    valid = ~(np.isnan(edge_series) | np.isnan(cloud_series))
    inverted = (edge_series[valid] > cloud_series[valid]).mean()
    print(
        f"\nPer-minute comparison: edge worse than cloud in {inverted:.0%} of "
        f"windows; edge series {np.nanstd(edge_series) / np.nanstd(cloud_series):.1f}x "
        "more variable than the cloud's (aggregate smoothing)."
    )


if __name__ == "__main__":
    main()
