#!/usr/bin/env python3
"""Audit a workload trace: is it safe to deploy at the edge?

The end-to-end operator workflow the paper's design-implications
section sketches, fully automated:

1. characterize the trace (rate, burstiness c², dispersion, skew);
2. plug the estimates into the generalized inversion bound (Lemma 3.2)
   and the exact cutoff solver;
3. report the verdict per candidate cloud location, with the capacity
   needed to make the edge safe when it is not.

Run:  python examples/workload_audit.py
"""

import numpy as np

from repro.core.inversion import cutoff_utilization_exact
from repro.core.capacity import min_edge_servers
from repro.core.inversion import calibrate_time_unit
from repro.workload.azure import AzureTraceConfig, generate_azure_workload, group_functions_into_sites
from repro.workload.characterize import characterize, spatial_skew_profile
from repro.workload.trace import RequestTrace

MU = 13.0  # per-server service rate (req/s)
SITES = 5
CLOUD_RTTS_MS = (15.0, 24.0, 54.0)
EDGE_RTT_MS = 1.0


def main() -> None:
    # A bursty, skewed serverless-style workload (stand-in for the
    # operator's own trace — load yours with repro.workload.io).
    rng = np.random.default_rng(13)
    functions = generate_azure_workload(
        AzureTraceConfig(n_functions=30, duration=3 * 3600.0, total_rate=35.0), rng
    )
    site_traces = group_functions_into_sites(functions, SITES, rng)
    merged = RequestTrace.merge(site_traces)

    # -- Step 1: characterize -------------------------------------------
    profile = characterize(merged, window=60.0)
    skew = spatial_skew_profile(site_traces)
    print("Workload profile:")
    print(f"  {profile.requests} requests over {profile.duration / 3600:.1f} h, "
          f"mean {profile.mean_rate:.1f} req/s")
    print(f"  inter-arrival c^2 = {profile.interarrival_cv2:.2f}, "
          f"dispersion = {profile.dispersion:.1f}, "
          f"peak/mean = {profile.peak_to_mean:.1f}")
    print(f"  spatial skew: site CoV = {skew['site_cv']:.2f}, "
          f"hottest site {skew['max_over_mean']:.1f}x the mean, "
          f"skew wait factor = {skew['skew_wait_factor']:.2f}")
    poisson_ok = profile.suggests_poisson()
    print(f"  Poisson assumption defensible: {poisson_ok}\n")

    # -- Step 2: cutoff per cloud location --------------------------------
    rho_op = profile.mean_rate / (SITES * MU)  # balanced per-site utilization
    ca2 = max(1.0, profile.interarrival_cv2)
    print(f"Operating utilization (balanced across {SITES} sites): {rho_op:.2f}")
    print(f"{'cloud RTT':>10} {'cutoff rho*':>12}  verdict")
    for rtt in CLOUD_RTTS_MS:
        delta_n = (rtt - EDGE_RTT_MS) * 1e-3
        cutoff = cutoff_utilization_exact(delta_n, MU, 1, SITES, ca2=ca2, cs2=0.25)
        verdict = "edge SAFE" if rho_op < cutoff else "INVERSION RISK"
        print(f"{rtt:>8.0f}ms {cutoff:>12.2f}  {verdict}")

    # -- Step 3: capacity to make the edge safe --------------------------
    print("\nPer-site servers needed to avoid inversion (Eq 22, hottest site):")
    unit = calibrate_time_unit(0.030, 5, 0.64)  # paper-anchored formula unit
    hottest_rate = max(t.mean_rate for t in site_traces)
    for rtt in CLOUD_RTTS_MS:
        k_i = min_edge_servers(
            (rtt - EDGE_RTT_MS) * 1e-3, hottest_rate, MU, SITES,
            profile.mean_rate, time_unit=unit,
        )
        print(f"  {rtt:>5.0f} ms cloud: >= {k_i} server(s) at the hottest site "
              f"({hottest_rate:.1f} req/s)")


if __name__ == "__main__":
    main()
