"""Goodness-of-fit checks: samplers actually draw from the claimed laws.

Moment tests (elsewhere) can pass for the wrong distribution; these
Kolmogorov–Smirnov checks pin the sampled *shapes* against the
theoretical CDFs.
"""

import numpy as np
import pytest
from scipy import stats as sps

from repro.queueing.distributions import (
    Erlang,
    Exponential,
    HyperExponential,
    LogNormal,
    Pareto,
    Uniform,
)

N = 50_000
ALPHA = 1e-3  # reject only on overwhelming evidence (avoids flaky CI)


def ks_pvalue(samples, cdf):
    return sps.kstest(samples, cdf).pvalue


class TestShapes:
    def test_exponential(self):
        d = Exponential(0.4)
        xs = d.sample(np.random.default_rng(1), N)
        assert ks_pvalue(xs, sps.expon(scale=0.4).cdf) > ALPHA

    def test_erlang(self):
        d = Erlang(4, 2.0)
        xs = d.sample(np.random.default_rng(2), N)
        assert ks_pvalue(xs, sps.gamma(a=4, scale=0.5).cdf) > ALPHA

    def test_lognormal(self):
        d = LogNormal(1.5, 0.8)
        xs = d.sample(np.random.default_rng(3), N)
        assert ks_pvalue(xs, sps.lognorm(s=np.sqrt(d.sigma2), scale=np.exp(d.mu)).cdf) > ALPHA

    def test_uniform(self):
        d = Uniform(0.5, 2.5)
        xs = d.sample(np.random.default_rng(4), N)
        assert ks_pvalue(xs, sps.uniform(loc=0.5, scale=2.0).cdf) > ALPHA

    def test_pareto_lomax(self):
        d = Pareto(3.5, 1.0)
        xs = d.sample(np.random.default_rng(5), N)
        assert ks_pvalue(xs, sps.lomax(c=3.5, scale=d.scale).cdf) > ALPHA

    def test_hyperexponential_mixture_cdf(self):
        d = HyperExponential.balanced(1.0, 4.0)
        xs = d.sample(np.random.default_rng(6), N)

        def cdf(t):
            t = np.asarray(t)
            return sum(
                p * (1.0 - np.exp(-np.maximum(t, 0) / m))
                for p, m in zip(d.probs, d.means, strict=True)
            )

        assert ks_pvalue(xs, cdf) > ALPHA

    def test_wrong_distribution_rejected(self):
        """Sanity: the KS machinery does reject a wrong null."""
        xs = Exponential(1.0).sample(np.random.default_rng(7), N)
        assert ks_pvalue(xs, sps.expon(scale=2.0).cdf) < ALPHA
