"""Tests for the exact M/M/1 and M/M/k models."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.base import StabilityError
from repro.queueing.mm1 import MM1
from repro.queueing.mmk import MMk, erlang_b, erlang_c, whitt_conditional_wait


class TestErlangB:
    def test_known_values(self):
        # Classical tabulated values: B(1, a) = a/(1+a); B(2, 1) = 0.5/2.5.
        assert erlang_b(1, 1.0) == pytest.approx(0.5)
        assert erlang_b(2, 1.0) == pytest.approx(0.2)

    def test_zero_load(self):
        assert erlang_b(5, 0.0) == 0.0

    @given(
        servers=st.integers(min_value=1, max_value=50),
        load=st.floats(min_value=0.0, max_value=40.0),
    )
    @settings(max_examples=200)
    def test_is_probability(self, servers, load):
        b = erlang_b(servers, load)
        assert 0.0 <= b <= 1.0

    @given(
        servers=st.integers(min_value=1, max_value=30),
        load=st.floats(min_value=0.1, max_value=20.0),
    )
    @settings(max_examples=100)
    def test_monotone_decreasing_in_servers(self, servers, load):
        assert erlang_b(servers + 1, load) <= erlang_b(servers, load) + 1e-12

    def test_invalid(self):
        with pytest.raises(ValueError):
            erlang_b(0, 1.0)
        with pytest.raises(ValueError):
            erlang_b(1, -1.0)


class TestErlangC:
    def test_single_server_equals_rho(self):
        # For M/M/1, P(wait) = rho.
        assert erlang_c(1, 0.6) == pytest.approx(0.6)

    def test_known_value(self):
        # M/M/2 with a=1 (rho=0.5): C = B/(1-rho(1-B)) with B = 1/5.
        b = erlang_b(2, 1.0)
        expected = b / (1 - 0.5 * (1 - b))
        assert erlang_c(2, 1.0) == pytest.approx(expected)

    @given(
        servers=st.integers(min_value=1, max_value=40),
        rho=st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=200)
    def test_is_probability_and_exceeds_erlang_b(self, servers, rho):
        a = rho * servers
        c = erlang_c(servers, a)
        assert 0.0 <= c <= 1.0
        assert c >= erlang_b(servers, a) - 1e-12

    def test_unstable_rejected(self):
        with pytest.raises(ValueError):
            erlang_c(2, 2.0)


class TestMM1:
    def test_textbook_example(self):
        # lambda=8, mu=10: W = 1/(mu-lambda) = 0.5 s; Wq = rho*W = 0.4 s.
        q = MM1(8.0, 10.0)
        assert q.utilization == pytest.approx(0.8)
        assert q.mean_response() == pytest.approx(0.5)
        assert q.mean_wait() == pytest.approx(0.4)
        assert q.mean_number_in_system() == pytest.approx(4.0)
        assert q.mean_queue_length() == pytest.approx(3.2)

    def test_prob_wait_is_rho(self):
        assert MM1(3.0, 10.0).prob_wait() == pytest.approx(0.3)

    def test_unstable_rejected(self):
        with pytest.raises(StabilityError):
            MM1(10.0, 10.0)

    def test_response_percentile_inverts_cdf(self):
        q = MM1(8.0, 10.0)
        for p in (0.1, 0.5, 0.95, 0.99):
            t = q.response_time_percentile(p)
            assert float(q.response_time_cdf(t)) == pytest.approx(p)

    def test_waiting_percentile_atom_at_zero(self):
        q = MM1(2.0, 10.0)  # rho = 0.2 -> P(Wq = 0) = 0.8
        assert q.waiting_time_percentile(0.5) == 0.0
        assert q.waiting_time_percentile(0.9) > 0.0

    def test_waiting_cdf_at_zero(self):
        q = MM1(6.0, 10.0)
        assert float(q.waiting_time_cdf(0.0)) == pytest.approx(1 - 0.6)

    def test_cdf_negative_time_is_zero(self):
        q = MM1(6.0, 10.0)
        assert float(q.response_time_cdf(-1.0)) == 0.0
        assert float(q.waiting_time_cdf(-1.0)) == 0.0

    @given(
        rho=st.floats(min_value=0.05, max_value=0.95),
        mu=st.floats(min_value=0.1, max_value=100.0),
    )
    @settings(max_examples=100)
    def test_littles_law(self, rho, mu):
        lam = rho * mu
        q = MM1(lam, mu)
        assert math.isclose(q.mean_number_in_system(), lam * q.mean_response(), rel_tol=1e-9)
        assert math.isclose(q.mean_queue_length(), lam * q.mean_wait(), rel_tol=1e-9)

    def test_percentile_rejects_bad_q(self):
        q = MM1(5.0, 10.0)
        for bad in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                q.response_time_percentile(bad)


class TestMMk:
    def test_k1_matches_mm1(self):
        a, b = MMk(8.0, 10.0, 1), MM1(8.0, 10.0)
        assert a.mean_wait() == pytest.approx(b.mean_wait())
        assert a.mean_response() == pytest.approx(b.mean_response())
        assert a.prob_wait() == pytest.approx(b.prob_wait())

    def test_textbook_mm2(self):
        # M/M/2, lambda=1.5, mu=1: rho=0.75, a=1.5.
        q = MMk(1.5, 1.0, 2)
        b = erlang_b(2, 1.5)
        c = b / (1 - 0.75 * (1 - b))
        assert q.prob_wait() == pytest.approx(c)
        assert q.mean_wait() == pytest.approx(c / (2.0 - 1.5))

    def test_unstable_rejected(self):
        with pytest.raises(StabilityError):
            MMk(20.0, 10.0, 2)

    @given(
        k=st.integers(min_value=1, max_value=20),
        rho=st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=150)
    def test_littles_law(self, k, rho):
        mu = 2.0
        q = MMk(rho * k * mu, mu, k)
        assert math.isclose(q.mean_queue_length(), q.arrival_rate * q.mean_wait(), rel_tol=1e-9)

    @given(rho=st.floats(min_value=0.1, max_value=0.95))
    @settings(max_examples=80)
    def test_pooling_beats_split_queues(self, rho):
        """The bank-teller result: one M/M/k beats k parallel M/M/1s."""
        mu, k = 1.0, 5
        pooled = MMk(rho * k * mu, mu, k)
        split = MM1(rho * mu, mu)
        assert pooled.mean_wait() <= split.mean_wait() + 1e-12

    @given(
        k=st.integers(min_value=2, max_value=15),
        rho=st.floats(min_value=0.1, max_value=0.9),
    )
    @settings(max_examples=80)
    def test_wait_decreases_with_pool_size_at_fixed_rho(self, k, rho):
        mu = 1.0
        small = MMk(rho * k * mu, mu, k)
        large = MMk(rho * (k + 1) * mu, mu, k + 1)
        assert large.mean_wait() <= small.mean_wait() + 1e-12

    def test_response_cdf_is_valid_distribution(self):
        q = MMk(40.0, 13.0, 5)
        ts = np.linspace(0.0, 2.0, 200)
        cdf = q.response_time_cdf(ts)
        assert float(cdf[0]) == pytest.approx(0.0, abs=1e-12)
        assert np.all(np.diff(cdf) >= -1e-12)
        assert float(cdf[-1]) > 0.999

    def test_response_percentile_inverts_cdf(self):
        q = MMk(40.0, 13.0, 5)
        for p in (0.5, 0.9, 0.95, 0.99):
            t = q.response_time_percentile(p)
            assert float(q.response_time_cdf(t)) == pytest.approx(p, abs=1e-9)

    def test_response_cdf_theta_equals_mu_branch(self):
        # theta = k*mu - lambda = mu when lambda = (k-1)*mu.
        q = MMk(13.0, 13.0, 2)
        ts = np.linspace(0.0, 1.0, 50)
        cdf = q.response_time_cdf(ts)
        assert np.all(np.diff(cdf) >= -1e-12)
        # Compare against a Monte Carlo estimate of the response CDF.
        rng = np.random.default_rng(0)
        n = 200_000
        waits = np.where(
            rng.random(n) < q.prob_wait(),
            rng.exponential(1.0 / (2 * 13.0 - 13.0), n),
            0.0,
        )
        resp = waits + rng.exponential(1.0 / 13.0, n)
        emp = np.searchsorted(np.sort(resp), ts) / n
        np.testing.assert_allclose(cdf, emp, atol=0.01)

    def test_waiting_time_cdf_atom(self):
        q = MMk(40.0, 13.0, 5)
        assert float(q.waiting_time_cdf(0.0)) == pytest.approx(1.0 - q.prob_wait())

    def test_exact_conditional_wait(self):
        q = MMk(40.0, 13.0, 5)
        assert q.mean_conditional_wait() == pytest.approx(1.0 / (5 * 13.0 - 40.0))
        # Consistency: E[Wq] = P(wait) * E[Wq | wait].
        assert q.mean_wait() == pytest.approx(q.prob_wait() * q.mean_conditional_wait())


class TestWhittConditionalWait:
    def test_matches_paper_equation6_form(self):
        # sqrt(2) / ((1 - rho) sqrt(k))
        assert whitt_conditional_wait(4, 0.5) == pytest.approx(math.sqrt(2) / (0.5 * 2.0))

    @given(
        k=st.integers(min_value=1, max_value=50),
        rho=st.floats(min_value=0.0, max_value=0.99),
    )
    @settings(max_examples=100)
    def test_positive_and_increasing_in_rho(self, k, rho):
        w = whitt_conditional_wait(k, rho)
        assert w > 0
        if rho + 0.005 < 1.0:
            assert whitt_conditional_wait(k, rho + 0.005) >= w

    @given(rho=st.floats(min_value=0.0, max_value=0.95))
    @settings(max_examples=50)
    def test_decreasing_in_k(self, rho):
        assert whitt_conditional_wait(9, rho) < whitt_conditional_wait(4, rho)

    def test_invalid(self):
        with pytest.raises(ValueError):
            whitt_conditional_wait(0, 0.5)
        with pytest.raises(ValueError):
            whitt_conditional_wait(2, 1.0)
