"""Tests for the G/G/1 and G/G/k approximations."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.base import StabilityError
from repro.queueing.ggk import GG1, GGk, allen_cunneen_wait, bolch_prob_wait, kingman_wait
from repro.queueing.mm1 import MM1
from repro.queueing.mmk import MMk, erlang_c


class TestKingman:
    @given(
        rho=st.floats(min_value=0.05, max_value=0.95),
        mu=st.floats(min_value=0.1, max_value=50.0),
    )
    @settings(max_examples=100)
    def test_exact_for_mm1(self, rho, mu):
        lam = rho * mu
        assert math.isclose(
            kingman_wait(lam, mu, 1.0, 1.0), MM1(lam, mu).mean_wait(), rel_tol=1e-9
        )

    def test_md1_is_half_mm1(self):
        # Deterministic service (cs2=0) halves the M/M/1 wait (Kingman form
        # coincides with Pollaczek-Khinchine for M/G/1).
        lam, mu = 8.0, 10.0
        assert kingman_wait(lam, mu, 1.0, 0.0) == pytest.approx(
            0.5 * MM1(lam, mu).mean_wait()
        )

    @given(
        rho=st.floats(min_value=0.1, max_value=0.9),
        ca2=st.floats(min_value=0.0, max_value=10.0),
        cs2=st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=150)
    def test_linear_in_variability(self, rho, ca2, cs2):
        mu = 1.0
        lam = rho * mu
        base = kingman_wait(lam, mu, 1.0, 1.0)
        w = kingman_wait(lam, mu, ca2, cs2)
        # abs_tol covers denormal CoVs (hypothesis probes 5e-324) where
        # the product underflows to 0 in one order and not the other.
        assert math.isclose(w, base * (ca2 + cs2) / 2.0, rel_tol=1e-9, abs_tol=1e-300)

    def test_unstable_rejected(self):
        with pytest.raises(StabilityError):
            kingman_wait(10.0, 10.0, 1.0, 1.0)

    def test_negative_cv2_rejected(self):
        with pytest.raises(ValueError):
            kingman_wait(5.0, 10.0, -1.0, 1.0)


class TestBolchProbWait:
    def test_two_branches(self):
        # Paper Equation 16.
        assert bolch_prob_wait(3, 0.8) == pytest.approx((0.8**3 + 0.8) / 2.0)
        assert bolch_prob_wait(3, 0.5) == pytest.approx(0.5 ** ((3 + 1) / 2.0))

    def test_single_server_high_rho_close_to_rho(self):
        # For k=1 the exact probability of waiting is rho; Bolch's high-rho
        # branch is exact there.
        assert bolch_prob_wait(1, 0.9) == pytest.approx(0.9)

    @given(
        k=st.integers(min_value=1, max_value=30),
        rho=st.floats(min_value=0.0, max_value=0.99),
    )
    @settings(max_examples=200)
    def test_is_probability(self, k, rho):
        assert 0.0 <= bolch_prob_wait(k, rho) <= 1.0

    @given(k=st.integers(min_value=1, max_value=20))
    @settings(max_examples=50)
    def test_reasonable_vs_erlang_c_at_high_rho(self, k):
        """Bolch's form approximates Erlang C within coarse bounds at rho>0.7."""
        rho = 0.85
        approx = bolch_prob_wait(k, rho)
        exact = erlang_c(k, rho * k)
        assert abs(approx - exact) < 0.25

    def test_invalid(self):
        with pytest.raises(ValueError):
            bolch_prob_wait(0, 0.5)
        with pytest.raises(ValueError):
            bolch_prob_wait(2, 1.5)


class TestAllenCunneen:
    @given(
        k=st.integers(min_value=1, max_value=20),
        rho=st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=150)
    def test_exact_for_mmk_with_erlang_ps(self, k, rho):
        mu = 13.0
        lam = rho * k * mu
        approx = allen_cunneen_wait(lam, mu, k, 1.0, 1.0, prob_wait="erlang")
        exact = MMk(lam, mu, k).mean_wait()
        assert math.isclose(approx, exact, rel_tol=1e-9)

    def test_k1_reduces_to_kingman(self):
        lam, mu = 9.0, 13.0
        ac = allen_cunneen_wait(lam, mu, 1, 2.0, 0.5, prob_wait="erlang")
        # For k=1 with exact Ps = rho, AC equals Kingman's formula.
        assert ac == pytest.approx(kingman_wait(lam, mu, 2.0, 0.5))

    def test_bolch_close_to_erlang_at_high_rho(self):
        lam, mu, k = 0.85 * 5 * 13.0, 13.0, 5
        w_b = allen_cunneen_wait(lam, mu, k, 1.0, 1.0, prob_wait="bolch")
        w_e = allen_cunneen_wait(lam, mu, k, 1.0, 1.0, prob_wait="erlang")
        assert w_b == pytest.approx(w_e, rel=0.30)

    @given(
        rho=st.floats(min_value=0.1, max_value=0.9),
        ca2=st.floats(min_value=0.0, max_value=8.0),
    )
    @settings(max_examples=100)
    def test_wait_increases_with_burstiness(self, rho, ca2):
        mu, k = 13.0, 5
        lam = rho * k * mu
        w_lo = allen_cunneen_wait(lam, mu, k, ca2, 1.0)
        w_hi = allen_cunneen_wait(lam, mu, k, ca2 + 1.0, 1.0)
        assert w_hi >= w_lo

    def test_invalid_method(self):
        with pytest.raises(ValueError):
            allen_cunneen_wait(5.0, 13.0, 1, 1.0, 1.0, prob_wait="nope")


class TestModelObjects:
    def test_gg1_mean_response(self):
        q = GG1(8.0, 10.0, 1.0, 1.0)
        assert q.mean_response() == pytest.approx(q.mean_wait() + 0.1)
        assert q.utilization == pytest.approx(0.8)

    def test_ggk_prob_wait_methods(self):
        q_b = GGk(40.0, 13.0, 5, 1.0, 1.0, prob_wait="bolch")
        q_e = GGk(40.0, 13.0, 5, 1.0, 1.0, prob_wait="erlang")
        assert q_e.prob_wait() == pytest.approx(erlang_c(5, 40.0 / 13.0))
        assert 0.0 <= q_b.prob_wait() <= 1.0

    def test_ggk_mean_response(self):
        q = GGk(40.0, 13.0, 5, 2.0, 0.5)
        assert q.mean_response() == pytest.approx(q.mean_wait() + 1.0 / 13.0)

    @given(
        rho=st.floats(min_value=0.75, max_value=0.95),
        k=st.integers(min_value=2, max_value=10),
    )
    @settings(max_examples=80)
    def test_paper_pooling_claim_under_ac(self, rho, k):
        """Lemma 3.2's premise: pooled G/G/k wait < per-site G/G/1 wait.

        Checked in the high-utilization regime where the paper applies
        Allen-Cunneen (rho > 0.7).
        """
        mu = 13.0
        edge = GG1(rho * mu, mu, 1.5, 0.8)
        cloud = GGk(rho * k * mu, mu, k, 1.5, 0.8)
        assert cloud.mean_wait() < edge.mean_wait()
