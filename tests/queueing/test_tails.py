"""Tests for the GI/G/k heavy-traffic tail approximations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.mmk import MMk
from repro.queueing.tails import gg_response_percentile, gg_wait_percentile, gg_wait_tail
from repro.sim.fastsim import simulate_fcfs_queue


class TestExactForMMk:
    @given(
        k=st.integers(min_value=1, max_value=10),
        rho=st.floats(min_value=0.2, max_value=0.95),
    )
    @settings(max_examples=60, deadline=None)
    def test_tail_matches_mmk_closed_form(self, k, rho):
        mu = 13.0
        lam = rho * k * mu
        q = MMk(lam, mu, k)
        ts = np.linspace(0.0, 0.5, 20)
        approx = gg_wait_tail(ts, lam, mu, k, 1.0, 1.0, prob_wait="erlang")
        exact = 1.0 - q.waiting_time_cdf(ts)
        np.testing.assert_allclose(approx, exact, atol=1e-9)

    @given(
        k=st.integers(min_value=1, max_value=10),
        rho=st.floats(min_value=0.2, max_value=0.95),
        p=st.floats(min_value=0.05, max_value=0.99),
    )
    @settings(max_examples=60, deadline=None)
    def test_percentile_matches_mmk(self, k, rho, p):
        mu = 13.0
        lam = rho * k * mu
        exact = MMk(lam, mu, k).waiting_time_percentile(p)
        approx = gg_wait_percentile(p, lam, mu, k, 1.0, 1.0)
        assert approx == pytest.approx(exact, abs=1e-9)


class TestGeneralService:
    def test_tail_is_valid_survival_function(self):
        ts = np.linspace(-0.1, 1.0, 50)
        s = gg_wait_tail(ts, 9.0, 13.0, 1, 2.0, 0.25)
        assert np.all(s >= 0) and np.all(s <= 1)
        assert np.all(np.diff(s[ts >= 0]) <= 1e-12)
        assert s[0] == 1.0  # negative t

    def test_burstier_arrivals_heavier_tail(self):
        t = 0.3
        base = float(gg_wait_tail(t, 9.0, 13.0, 1, 1.0, 1.0))
        bursty = float(gg_wait_tail(t, 9.0, 13.0, 1, 4.0, 1.0))
        assert bursty > base

    def test_approximation_tracks_simulation_high_rho(self):
        """Heavy-traffic regime: p95 within ~15% of a GI/G/1 simulation."""
        rng = np.random.default_rng(5)
        n = 400_000
        lam, mu, cv2 = 11.0, 13.0, 0.25  # rho = 0.846, Erlang-4 service
        arrivals = np.cumsum(rng.exponential(1.0 / lam, n))
        services = rng.gamma(4.0, 1.0 / (4.0 * mu), n)
        waits = simulate_fcfs_queue(arrivals, services, 1)[50_000:]
        emp = np.quantile(waits, 0.95)
        approx = gg_wait_percentile(0.95, lam, mu, 1, 1.0, cv2)
        assert approx == pytest.approx(emp, rel=0.15)

    def test_zero_load_never_waits(self):
        assert gg_wait_percentile(0.99, 0.0, 13.0, 4) == 0.0
        assert float(gg_wait_tail(0.1, 0.0, 13.0, 4)) == 0.0

    def test_atom_at_zero(self):
        # At rho=0.3 on 4 servers P(wait) is small: median wait is 0.
        assert gg_wait_percentile(0.5, 0.3 * 4 * 13.0, 13.0, 4) == 0.0


class TestResponsePercentile:
    def test_adds_mean_service(self):
        lam, mu, k = 40.0, 13.0, 5
        w = gg_wait_percentile(0.95, lam, mu, k)
        assert gg_response_percentile(0.95, lam, mu, k) == pytest.approx(w + 1.0 / mu)

    def test_service_quantile_floor(self):
        lam, mu, k = 5.0, 13.0, 5  # nearly no waiting
        floor = 0.5
        r = gg_response_percentile(0.95, lam, mu, k, service_quantile=floor)
        assert r >= floor

    def test_validation(self):
        with pytest.raises(ValueError):
            gg_wait_percentile(1.0, 5.0, 13.0, 1)
        with pytest.raises(ValueError):
            gg_wait_tail(0.1, 5.0, 13.0, 1, prob_wait="nope")
        with pytest.raises(ValueError):
            gg_response_percentile(0.9, 5.0, 13.0, 1, service_quantile=-1.0)
