"""Tests for the exact M/M/c/K model."""

from itertools import count

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.mmck import MMcK
from repro.queueing.mmk import MMk, erlang_b


class TestAgainstKnownResults:
    def test_mm1k_blocking_formula(self):
        # M/M/1/K: P_K = (1-rho) rho^K / (1 - rho^{K+1}).
        rho, K = 0.8, 4
        q = MMcK(rho * 10.0, 10.0, 1, K)
        expected = (1 - rho) * rho**K / (1 - rho ** (K + 1))
        assert q.blocking_probability() == pytest.approx(expected)

    def test_pure_loss_is_erlang_b(self):
        # K = c: Erlang-B blocking.
        lam, mu, c = 30.0, 10.0, 4
        q = MMcK(lam, mu, c, c)
        assert q.blocking_probability() == pytest.approx(erlang_b(c, lam / mu))
        assert q.mean_queue_length() == 0.0
        assert q.mean_wait() == 0.0

    def test_large_k_approaches_mmc(self):
        lam, mu, c = 8.0, 13.0, 1
        bounded = MMcK(lam, mu, c, 400)
        unbounded = MMk(lam, mu, c)
        assert bounded.blocking_probability() < 1e-12
        assert bounded.mean_wait() == pytest.approx(unbounded.mean_wait(), rel=1e-6)
        assert bounded.mean_response() == pytest.approx(unbounded.mean_response(), rel=1e-6)

    def test_overload_is_finite_and_sane(self):
        q = MMcK(100.0, 10.0, 2, 10)  # offered rho = 5
        assert 0.7 < q.blocking_probability() < 1.0
        assert q.throughput() == pytest.approx(2 * 10.0, rel=0.05)  # near capacity
        assert q.utilization() <= 1.0
        assert q.mean_response() < 10.0 / 10.0  # at most K services deep


class TestInvariants:
    @given(
        lam=st.floats(min_value=0.0, max_value=200.0),
        c=st.integers(min_value=1, max_value=10),
        extra=st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=150)
    def test_probabilities_normalize(self, lam, c, extra):
        q = MMcK(lam, 10.0, c, c + extra)
        p = q.state_probabilities()
        assert p.sum() == pytest.approx(1.0)
        assert np.all(p >= 0)

    @given(
        lam=st.floats(min_value=1.0, max_value=100.0),
        c=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=80)
    def test_littles_law(self, lam, c):
        q = MMcK(lam, 10.0, c, c + 10)
        assert q.mean_number_in_system() == pytest.approx(
            q.throughput() * q.mean_response(), rel=1e-9
        )

    @given(lam=st.floats(min_value=5.0, max_value=80.0))
    @settings(max_examples=50)
    def test_bigger_capacity_blocks_less(self, lam):
        small = MMcK(lam, 10.0, 2, 4)
        large = MMcK(lam, 10.0, 2, 12)
        assert large.blocking_probability() <= small.blocking_probability() + 1e-12

    def test_zero_arrivals(self):
        q = MMcK(0.0, 10.0, 2, 5)
        assert q.blocking_probability() == 0.0
        assert q.throughput() == 0.0
        assert q.mean_response() == 0.0


class TestAgainstSimulation:
    def test_matches_bounded_station(self):
        """The DES bounded station must match M/M/c/K theory."""
        from repro.queueing.distributions import Exponential
        from repro.sim.engine import Simulation
        from repro.sim.request import Request
        from repro.sim.station import Station

        lam, mu, c, K = 18.0, 10.0, 2, 6
        sim = Simulation(17)
        st_ = Station(sim, c, Exponential(1.0 / mu), queue_capacity=K - c)
        rng = sim.spawn_rng()

        ids = count()

        def gen():
            if sim.now < 3000.0:
                st_.arrive(Request(next(ids), created=sim.now))
                sim.schedule(rng.exponential(1.0 / lam), gen)

        sim.schedule(0.0, gen)
        sim.run(until=3000.0)
        theory = MMcK(lam, mu, c, K)
        assert st_.loss_rate == pytest.approx(theory.blocking_probability(), rel=0.1)
        assert st_.utilization() == pytest.approx(theory.utilization(), rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            MMcK(-1.0, 10.0, 1, 2)
        with pytest.raises(ValueError):
            MMcK(1.0, 0.0, 1, 2)
        with pytest.raises(ValueError):
            MMcK(1.0, 10.0, 0, 2)
        with pytest.raises(ValueError):
            MMcK(1.0, 10.0, 3, 2)
