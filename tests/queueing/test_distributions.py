"""Tests for repro.queueing.distributions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.distributions import (
    Deterministic,
    Empirical,
    Erlang,
    Exponential,
    HyperExponential,
    LogNormal,
    Pareto,
    Uniform,
    fit_two_moments,
)

RNG = np.random.default_rng(42)


class TestDeterministic:
    def test_moments(self):
        d = Deterministic(2.5)
        assert d.mean == 2.5
        assert d.variance == 0.0
        assert d.cv2 == 0.0

    def test_sample_scalar_and_vector(self):
        d = Deterministic(1.5)
        assert d.sample(RNG) == 1.5
        np.testing.assert_array_equal(d.sample(RNG, 4), np.full(4, 1.5))

    def test_zero_value_allowed(self):
        d = Deterministic(0.0)
        assert d.cv2 == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Deterministic(-1.0)

    def test_scaled(self):
        assert Deterministic(2.0).scaled(3.0).value == 6.0


class TestExponential:
    def test_moments(self):
        d = Exponential(0.5)
        assert d.mean == 0.5
        assert d.variance == 0.25
        assert d.cv2 == pytest.approx(1.0)

    def test_from_rate(self):
        d = Exponential.from_rate(4.0)
        assert d.mean == pytest.approx(0.25)
        assert d.rate == pytest.approx(4.0)

    def test_sample_mean_converges(self):
        d = Exponential(2.0)
        xs = d.sample(np.random.default_rng(1), 200_000)
        assert xs.mean() == pytest.approx(2.0, rel=0.02)

    def test_invalid(self):
        with pytest.raises(ValueError):
            Exponential(0.0)
        with pytest.raises(ValueError):
            Exponential.from_rate(-1.0)


class TestErlang:
    def test_cv2_is_inverse_shape(self):
        for k in (1, 2, 4, 10):
            assert Erlang(k, 1.0).cv2 == pytest.approx(1.0 / k)

    def test_sample_moments(self):
        d = Erlang(4, 2.0)
        xs = d.sample(np.random.default_rng(2), 200_000)
        assert xs.mean() == pytest.approx(2.0, rel=0.02)
        assert xs.var() == pytest.approx(d.variance, rel=0.05)

    def test_shape_one_is_exponential(self):
        assert Erlang(1, 3.0).cv2 == pytest.approx(Exponential(3.0).cv2)

    def test_invalid(self):
        with pytest.raises(ValueError):
            Erlang(0, 1.0)


class TestHyperExponential:
    def test_balanced_fit_matches_target_moments(self):
        for cv2 in (1.5, 2.0, 4.0, 10.0):
            d = HyperExponential.balanced(3.0, cv2)
            assert d.mean == pytest.approx(3.0)
            assert d.cv2 == pytest.approx(cv2)

    def test_sample_moments(self):
        d = HyperExponential.balanced(1.0, 4.0)
        xs = d.sample(np.random.default_rng(3), 500_000)
        assert xs.mean() == pytest.approx(1.0, rel=0.03)
        assert xs.var() == pytest.approx(4.0, rel=0.1)

    def test_scalar_sample(self):
        d = HyperExponential.balanced(1.0, 2.0)
        assert isinstance(d.sample(np.random.default_rng(0)), float)

    def test_rejects_low_cv2(self):
        with pytest.raises(ValueError):
            HyperExponential.balanced(1.0, 0.5)

    def test_rejects_bad_probs(self):
        with pytest.raises(ValueError):
            HyperExponential([0.5, 0.4], [1.0, 2.0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            HyperExponential([1.0], [1.0, 2.0])


class TestLogNormal:
    def test_moments(self):
        d = LogNormal(2.0, 0.7)
        assert d.mean == pytest.approx(2.0)
        assert d.cv2 == pytest.approx(0.7)

    def test_sample_moments(self):
        d = LogNormal(1.0, 1.2)
        xs = d.sample(np.random.default_rng(4), 500_000)
        assert xs.mean() == pytest.approx(1.0, rel=0.03)
        assert xs.var() == pytest.approx(1.2, rel=0.1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            LogNormal(1.0, 0.0)


class TestPareto:
    def test_moments(self):
        d = Pareto(3.0, 2.0)
        assert d.mean == pytest.approx(2.0)
        # Lomax variance: s^2 a / ((a-1)^2 (a-2))
        assert d.variance == pytest.approx(16.0 * 3.0 / (4.0 * 1.0))

    def test_sample_mean(self):
        d = Pareto(4.0, 1.0)
        xs = d.sample(np.random.default_rng(5), 500_000)
        assert xs.mean() == pytest.approx(1.0, rel=0.05)

    def test_requires_alpha_above_two(self):
        with pytest.raises(ValueError):
            Pareto(2.0, 1.0)


class TestUniform:
    def test_moments(self):
        d = Uniform(1.0, 3.0)
        assert d.mean == 2.0
        assert d.variance == pytest.approx(4.0 / 12.0)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            Uniform(3.0, 1.0)


class TestEmpirical:
    def test_moments_match_data(self):
        vals = [1.0, 2.0, 3.0, 4.0]
        d = Empirical(vals)
        assert d.mean == pytest.approx(2.5)
        assert d.variance == pytest.approx(np.var(vals))

    def test_samples_come_from_data(self):
        d = Empirical([1.0, 5.0])
        xs = d.sample(np.random.default_rng(6), 100)
        assert set(np.unique(xs)) <= {1.0, 5.0}

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Empirical([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Empirical([1.0, -2.0])


class TestFitTwoMoments:
    def test_dispatch(self):
        assert isinstance(fit_two_moments(1.0, 0.0), Deterministic)
        assert isinstance(fit_two_moments(1.0, 0.25), Erlang)
        assert isinstance(fit_two_moments(1.0, 1.0), Exponential)
        assert isinstance(fit_two_moments(1.0, 3.0), HyperExponential)

    @given(
        mean=st.floats(min_value=0.01, max_value=100.0),
        cv2=st.floats(min_value=0.0, max_value=20.0),
    )
    @settings(max_examples=200)
    def test_mean_always_preserved(self, mean, cv2):
        d = fit_two_moments(mean, cv2)
        assert math.isclose(d.mean, mean, rel_tol=1e-9)

    @given(cv2=st.floats(min_value=1.0, max_value=50.0))
    @settings(max_examples=100)
    def test_cv2_exact_for_hyperexponential_range(self, cv2):
        d = fit_two_moments(2.0, cv2)
        assert math.isclose(d.cv2, cv2, rel_tol=1e-7)

    @given(shape=st.integers(min_value=1, max_value=40))
    def test_cv2_exact_at_erlang_points(self, shape):
        d = fit_two_moments(1.0, 1.0 / shape)
        assert math.isclose(d.cv2, 1.0 / shape, rel_tol=1e-9)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            fit_two_moments(0.0, 1.0)
        with pytest.raises(ValueError):
            fit_two_moments(1.0, -0.5)


class TestScaled:
    @given(factor=st.floats(min_value=0.01, max_value=100.0))
    @settings(max_examples=50)
    def test_scaling_preserves_cv2(self, factor):
        for d in (Exponential(1.0), Erlang(3, 2.0), HyperExponential.balanced(1.0, 4.0)):
            s = d.scaled(factor)
            assert math.isclose(s.mean, d.mean * factor, rel_tol=1e-9)
            assert math.isclose(s.cv2, d.cv2, rel_tol=1e-6)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Exponential(1.0).scaled(0.0)


class TestSamplesAreNonNegative:
    @pytest.mark.parametrize(
        "dist",
        [
            Deterministic(1.0),
            Exponential(1.0),
            Erlang(3, 1.0),
            HyperExponential.balanced(1.0, 4.0),
            LogNormal(1.0, 1.0),
            Pareto(3.0, 1.0),
            Uniform(0.0, 2.0),
            Empirical([0.5, 1.5]),
        ],
        ids=lambda d: type(d).__name__,
    )
    def test_nonnegative(self, dist):
        xs = np.asarray(dist.sample(np.random.default_rng(7), 10_000))
        assert np.all(xs >= 0)
