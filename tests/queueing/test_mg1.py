"""Tests for the M/G/1 model and M/D/k approximation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.base import StabilityError
from repro.queueing.distributions import Deterministic, Erlang, Exponential, HyperExponential
from repro.queueing.mg1 import MG1, mdk_wait
from repro.queueing.mm1 import MM1
from repro.queueing.mmk import MMk
from repro.sim.fastsim import simulate_fcfs_queue


class TestMG1:
    def test_exponential_service_reduces_to_mm1(self):
        q = MG1(8.0, Exponential(1.0 / 13.0))
        assert q.mean_wait() == pytest.approx(MM1(8.0, 13.0).mean_wait())
        assert q.mean_response() == pytest.approx(MM1(8.0, 13.0).mean_response())

    def test_deterministic_service_halves_the_wait(self):
        md1 = MG1(8.0, Deterministic(1.0 / 13.0))
        mm1 = MM1(8.0, 13.0)
        assert md1.mean_wait() == pytest.approx(0.5 * mm1.mean_wait())

    def test_erlang_service_interpolates(self):
        m_e4 = MG1(8.0, Erlang(4, 1.0 / 13.0)).mean_wait()
        m_m = MM1(8.0, 13.0).mean_wait()
        m_d = MG1(8.0, Deterministic(1.0 / 13.0)).mean_wait()
        assert m_d < m_e4 < m_m
        # PK: wait scales with (1 + cs2)/2 -> Erlang-4 gives 0.625 * M/M/1.
        assert m_e4 == pytest.approx(0.625 * m_m)

    def test_heavy_tailed_service_inflates_wait(self):
        h2 = MG1(8.0, HyperExponential.balanced(1.0 / 13.0, 4.0))
        assert h2.mean_wait() > MM1(8.0, 13.0).mean_wait()

    def test_littles_law(self):
        q = MG1(8.0, Erlang(2, 1.0 / 13.0))
        assert q.mean_queue_length() == pytest.approx(8.0 * q.mean_wait())
        assert q.mean_number_in_system() == pytest.approx(8.0 * q.mean_response())

    def test_matches_simulation(self):
        rng = np.random.default_rng(0)
        n = 300_000
        service = Erlang(4, 1.0 / 13.0)
        arrivals = np.cumsum(rng.exponential(1.0 / 9.0, n))
        services = np.asarray(service.sample(rng, n))
        waits = simulate_fcfs_queue(arrivals, services, 1)
        assert waits[30_000:].mean() == pytest.approx(
            MG1(9.0, service).mean_wait(), rel=0.05
        )

    def test_unstable_rejected(self):
        with pytest.raises(StabilityError):
            MG1(14.0, Exponential(1.0 / 13.0))

    def test_invalid_service(self):
        with pytest.raises(ValueError):
            MG1(1.0, Deterministic(0.0))


class TestMDk:
    def test_single_server_is_half_mmk(self):
        assert mdk_wait(8.0, 13.0, 1) == pytest.approx(
            0.5 * MMk(8.0, 13.0, 1).mean_wait()
        )

    def test_matches_simulation_multi_server(self):
        rng = np.random.default_rng(1)
        n = 300_000
        lam, mu, k = 40.0, 13.0, 5
        arrivals = np.cumsum(rng.exponential(1.0 / lam, n))
        services = np.full(n, 1.0 / mu)
        waits = simulate_fcfs_queue(arrivals, services, k)
        assert waits[30_000:].mean() == pytest.approx(mdk_wait(lam, mu, k), rel=0.1)

    @given(
        k=st.integers(min_value=1, max_value=20),
        rho=st.floats(min_value=0.1, max_value=0.95),
    )
    @settings(max_examples=100)
    def test_never_above_mmk_wait(self, k, rho):
        """Deterministic service never waits longer than exponential."""
        mu = 13.0
        lam = rho * k * mu
        assert mdk_wait(lam, mu, k) <= MMk(lam, mu, k).mean_wait()

    @given(
        k=st.integers(min_value=1, max_value=20),
        rho=st.floats(min_value=0.4, max_value=0.95),
    )
    @settings(max_examples=100)
    def test_strictly_below_mmk_at_moderate_load(self, k, rho):
        """In the approximation's validity regime the gap is strict."""
        mu = 13.0
        lam = rho * k * mu
        assert mdk_wait(lam, mu, k) < MMk(lam, mu, k).mean_wait()

    def test_zero_load(self):
        assert mdk_wait(0.0, 13.0, 3) == 0.0

    def test_unstable_rejected(self):
        with pytest.raises(StabilityError):
            mdk_wait(70.0, 13.0, 5)
