"""Smoke tests: the example scripts run end-to-end and say what they claim.

Only the faster examples run here (the full set is exercised manually /
in benchmarks); each is executed as a real subprocess, the way a user
would run it.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name, timeout=240):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr}"
    return proc.stdout


class TestFastExamples:
    def test_capacity_planning(self):
        out = run_example("capacity_planning.py")
        assert "two-sigma capacity penalty" in out
        assert "penalty" in out and "stable: True" in out

    def test_slo_cost_analysis(self):
        out = run_example("slo_cost_analysis.py")
        assert "edge-only regime" in out
        assert "p95 SLO" in out

    def test_workload_audit(self):
        out = run_example("workload_audit.py")
        assert "Workload profile" in out
        assert "INVERSION RISK" in out or "edge SAFE" in out

    def test_multi_region(self):
        out = run_example("multi_region.py")
        assert "INVERTED" in out
        assert "metro" in out and "remote" in out

    def test_overload_control(self):
        out = run_example("overload_control.py")
        assert "undefended FIFO" in out
        assert "CoDel + admission + brownout" in out
        assert "within SLO" in out


@pytest.mark.slow
class TestSlowExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", timeout=600)
        assert "crossover" in out

    def test_geo_load_balancing(self):
        out = run_example("geo_load_balancing.py", timeout=600)
        assert "beats cloud" in out

    def test_azure_trace_replay(self):
        out = run_example("azure_trace_replay.py", timeout=600)
        assert "Per-minute comparison" in out

    def test_production_serving(self):
        out = run_example("production_serving.py", timeout=600)
        assert "fleet availability" in out

    def test_resilient_serving(self):
        out = run_example("resilient_serving.py", timeout=600)
        assert "breaker + failover" in out
        assert "hedging cuts p99" in out
