"""Tests for station failure semantics and the failure injector."""

import pytest

from repro.queueing.distributions import Deterministic, Exponential
from repro.sim.client import OpenLoopSource
from repro.sim.engine import Simulation
from repro.sim.failures import FailureInjector
from repro.sim.network import ConstantLatency
from repro.sim.request import Request
from repro.sim.station import Station
from repro.sim.topology import EdgeDeployment, EdgeSite

MU = 13.0
SERVICE = Exponential(1.0 / MU)


class TestStationFailSemantics:
    def test_failed_station_queues_arrivals(self):
        sim = Simulation(0)
        st = Station(sim, 1, Deterministic(0.1))
        sim.schedule(0.0, st.fail)
        sim.schedule(0.1, st.arrive, Request(0, created=0.1))
        sim.run(until=1.0)
        assert st.queue_length == 1
        assert st.completions == 0

    def test_in_flight_work_finishes_gracefully(self):
        sim = Simulation(0)
        st = Station(sim, 1, Deterministic(1.0))
        done = []
        st.on_departure = lambda r: done.append(sim.now)
        sim.schedule(0.0, st.arrive, Request(0, created=0.0))
        sim.schedule(0.5, st.fail)
        sim.run(until=2.0)
        assert done == [1.0]  # finished despite the failure mid-service

    def test_repair_drains_backlog(self):
        sim = Simulation(0)
        st = Station(sim, 1, Deterministic(0.1))
        done = []
        st.on_departure = lambda r: done.append(r.rid)
        sim.schedule(0.0, st.fail)
        for i in range(3):
            sim.schedule(0.0, st.arrive, Request(i, created=0.0))
        sim.schedule(1.0, st.repair)
        sim.run()
        assert done == [0, 1, 2]
        assert st.failed is False

    def test_scale_up_while_failed_does_not_start_work(self):
        sim = Simulation(0)
        st = Station(sim, 1, Deterministic(0.1))
        sim.schedule(0.0, st.fail)
        sim.schedule(0.0, st.arrive, Request(0, created=0.0))
        sim.schedule(0.1, st.set_servers, 4)
        sim.run(until=1.0)
        assert st.completions == 0

    def test_bounded_queue_drops_during_outage(self):
        sim = Simulation(0)
        st = Station(sim, 1, Deterministic(0.1), queue_capacity=1)
        sim.schedule(0.0, st.fail)
        for i in range(3):
            sim.schedule(0.0, st.arrive, Request(i, created=0.0))
        sim.run(until=0.5)
        assert st.drops == 2


class TestFailureInjector:
    def _run(self, mtbf, mttr, duration=2000.0, seed=3):
        sim = Simulation(seed)
        site = EdgeSite(sim, "s0", 1, ConstantLatency(0.001), SERVICE)
        edge = EdgeDeployment(sim, [site])
        OpenLoopSource(sim, edge, Exponential(1.0 / 5.0), site="s0", stop_time=duration)
        inj = FailureInjector(sim, [site.station], mtbf=mtbf, mttr=mttr, stop_time=duration)
        sim.run()
        return edge, inj

    def test_availability_matches_mtbf_mttr(self):
        edge, inj = self._run(mtbf=100.0, mttr=25.0)
        # Steady-state availability = mtbf / (mtbf + mttr) = 0.8.
        assert inj.mean_availability() == pytest.approx(0.8, abs=0.08)
        assert inj.failures > 5

    def test_all_requests_eventually_served(self):
        edge, inj = self._run(mtbf=50.0, mttr=10.0, duration=500.0)
        bd = edge.log.breakdown()
        assert len(bd) > 1000  # nothing lost (unbounded queues)

    def test_outages_inflate_tail_latency(self):
        import numpy as np

        healthy, _ = self._run(mtbf=1e9, mttr=1.0)
        failing, _ = self._run(mtbf=100.0, mttr=25.0)
        h = np.quantile(healthy.log.breakdown().end_to_end, 0.99)
        f = np.quantile(failing.log.breakdown().end_to_end, 0.99)
        assert f > 5 * h

    def test_no_failures_past_stop_time(self):
        _, inj = self._run(mtbf=40.0, mttr=10.0, duration=300.0)
        # All stations repaired at the end (calendar drained).
        assert all(name not in inj._down_since for name in inj._downtime)

    def test_validation(self):
        sim = Simulation(0)
        st = Station(sim, 1, SERVICE)
        with pytest.raises(ValueError):
            FailureInjector(sim, [], 10.0, 1.0, 100.0)
        with pytest.raises(ValueError):
            FailureInjector(sim, [st], 0.0, 1.0, 100.0)
        with pytest.raises(ValueError):
            FailureInjector(sim, [st], 10.0, 1.0, 0.0)
        inj = FailureInjector(sim, [st], 10.0, 1.0, 100.0)
        with pytest.raises(KeyError):
            inj.availability("nope")
