"""Tests for station failure semantics and the failure injector."""

import pytest

from repro.queueing.distributions import Deterministic, Exponential
from repro.sim.client import OpenLoopSource
from repro.sim.engine import Simulation
from repro.sim.failures import FailureInjector
from repro.sim.network import ConstantLatency
from repro.sim.request import Request
from repro.sim.station import Station
from repro.sim.topology import EdgeDeployment, EdgeSite

MU = 13.0
SERVICE = Exponential(1.0 / MU)


class TestStationFailSemantics:
    def test_failed_station_queues_arrivals(self):
        sim = Simulation(0)
        st = Station(sim, 1, Deterministic(0.1))
        sim.schedule(0.0, st.fail)
        sim.schedule(0.1, st.arrive, Request(0, created=0.1))
        sim.run(until=1.0)
        assert st.queue_length == 1
        assert st.completions == 0

    def test_in_flight_work_finishes_gracefully(self):
        sim = Simulation(0)
        st = Station(sim, 1, Deterministic(1.0))
        done = []
        st.on_departure = lambda r: done.append(sim.now)
        sim.schedule(0.0, st.arrive, Request(0, created=0.0))
        sim.schedule(0.5, st.fail)
        sim.run(until=2.0)
        assert done == [1.0]  # finished despite the failure mid-service

    def test_repair_drains_backlog(self):
        sim = Simulation(0)
        st = Station(sim, 1, Deterministic(0.1))
        done = []
        st.on_departure = lambda r: done.append(r.rid)
        sim.schedule(0.0, st.fail)
        for i in range(3):
            sim.schedule(0.0, st.arrive, Request(i, created=0.0))
        sim.schedule(1.0, st.repair)
        sim.run()
        assert done == [0, 1, 2]
        assert st.failed is False

    def test_scale_up_while_failed_does_not_start_work(self):
        sim = Simulation(0)
        st = Station(sim, 1, Deterministic(0.1))
        sim.schedule(0.0, st.fail)
        sim.schedule(0.0, st.arrive, Request(0, created=0.0))
        sim.schedule(0.1, st.set_servers, 4)
        sim.run(until=1.0)
        assert st.completions == 0

    def test_bounded_queue_drops_during_outage(self):
        sim = Simulation(0)
        st = Station(sim, 1, Deterministic(0.1), queue_capacity=1)
        sim.schedule(0.0, st.fail)
        for i in range(3):
            sim.schedule(0.0, st.arrive, Request(i, created=0.0))
        sim.run(until=0.5)
        assert st.drops == 2


class TestFailureInjector:
    def _run(self, mtbf, mttr, duration=2000.0, seed=3):
        sim = Simulation(seed)
        site = EdgeSite(sim, "s0", 1, ConstantLatency(0.001), SERVICE)
        edge = EdgeDeployment(sim, [site])
        OpenLoopSource(sim, edge, Exponential(1.0 / 5.0), site="s0", stop_time=duration)
        inj = FailureInjector(sim, [site.station], mtbf=mtbf, mttr=mttr, stop_time=duration)
        sim.run()
        return edge, inj

    def test_availability_matches_mtbf_mttr(self):
        edge, inj = self._run(mtbf=100.0, mttr=25.0)
        # Steady-state availability = mtbf / (mtbf + mttr) = 0.8.
        assert inj.mean_availability() == pytest.approx(0.8, abs=0.08)
        assert inj.failures > 5

    def test_all_requests_eventually_served(self):
        edge, inj = self._run(mtbf=50.0, mttr=10.0, duration=500.0)
        bd = edge.log.breakdown()
        assert len(bd) > 1000  # nothing lost (unbounded queues)

    def test_outages_inflate_tail_latency(self):
        import numpy as np

        healthy, _ = self._run(mtbf=1e9, mttr=1.0)
        failing, _ = self._run(mtbf=100.0, mttr=25.0)
        h = np.quantile(healthy.log.breakdown().end_to_end, 0.99)
        f = np.quantile(failing.log.breakdown().end_to_end, 0.99)
        assert f > 5 * h

    def test_no_failures_past_stop_time(self):
        _, inj = self._run(mtbf=40.0, mttr=10.0, duration=300.0)
        # All stations repaired at the end (calendar drained).
        assert all(name not in inj._down_since for name in inj._downtime)

    def test_validation(self):
        sim = Simulation(0)
        st = Station(sim, 1, SERVICE)
        with pytest.raises(ValueError):
            FailureInjector(sim, [], 10.0, 1.0, 100.0)
        with pytest.raises(ValueError):
            FailureInjector(sim, [st], 0.0, 1.0, 100.0)
        with pytest.raises(ValueError):
            FailureInjector(sim, [st], 10.0, 1.0, 0.0)
        inj = FailureInjector(sim, [st], 10.0, 1.0, 100.0)
        with pytest.raises(KeyError):
            inj.availability("nope")


class TestForcedOutages:
    """Deterministic (possibly correlated, multi-site) outage windows."""

    def _sim_with_sites(self, n=2, seed=0):
        sim = Simulation(seed)
        sites = [
            EdgeSite(sim, f"s{i}", 1, ConstantLatency(0.001), SERVICE)
            for i in range(n)
        ]
        edge = EdgeDeployment(sim, sites)
        return sim, sites, edge

    def test_window_only_injector_needs_no_rates(self):
        sim, sites, _ = self._sim_with_sites()
        inj = FailureInjector(sim, [s.station for s in sites], None, None, 200.0)
        inj.schedule_outage(50.0, 25.0)
        sim.run()
        assert inj.failures == 2  # both stations, once each
        for s in sites:
            assert inj.availability(s.name, horizon=200.0) == pytest.approx(0.875)

    def test_correlated_window_takes_both_sites_down_together(self):
        sim, sites, _ = self._sim_with_sites()
        inj = FailureInjector(sim, [s.station for s in sites], None, None, 200.0)
        inj.schedule_outage(50.0, 25.0, [sites[0].station, sites[1].station])
        both_down = []
        sim.schedule_at(60.0, lambda: both_down.append(
            sites[0].station.failed and sites[1].station.failed))
        sim.run()
        assert both_down == [True]
        assert not sites[0].station.failed and not sites[1].station.failed

    def test_availability_with_station_down_at_horizon(self):
        sim, sites, _ = self._sim_with_sites(n=1)
        inj = FailureInjector(sim, [sites[0].station], None, None, 1000.0)
        inj.schedule_outage(50.0, 500.0)
        sim.run(until=75.0)  # mid-outage: repair not yet applied
        assert sites[0].station.failed
        # The open downtime interval counts up to the horizon.
        assert inj.availability("s0", horizon=75.0) == pytest.approx(1 - 25.0 / 75.0)

    def test_repair_forced_at_stop_time(self):
        sim, sites, _ = self._sim_with_sites(n=1)
        inj = FailureInjector(sim, [sites[0].station], None, None, 100.0)
        inj.schedule_outage(90.0, 1e9)  # would repair long after the run
        sim.run()
        assert not sites[0].station.failed  # clamped to stop_time
        assert inj.availability("s0", horizon=100.0) == pytest.approx(0.9)

    def test_overlapping_windows_rejected(self):
        # Overlapping windows used to silently collapse into one outage
        # cycle; scheduling must now fail loudly instead.
        sim, sites, _ = self._sim_with_sites(n=1)
        inj = FailureInjector(sim, [sites[0].station], None, None, 200.0)
        inj.schedule_outage(50.0, 20.0)
        with pytest.raises(ValueError, match="overlaps"):
            inj.schedule_outage(60.0, 5.0)  # inside [50, 70)
        with pytest.raises(ValueError, match="overlaps"):
            inj.schedule_outage(70.0, 5.0)  # touching counts as overlap
        with pytest.raises(ValueError, match="overlaps"):
            inj.schedule_outage(40.0, 100.0)  # envelops [50, 70)
        # The rejected windows left no state behind: the original window
        # injects exactly once with its own availability.
        sim.run()
        assert inj.failures == 1
        assert inj.availability("s0", horizon=200.0) == pytest.approx(0.9)

    def test_disjoint_windows_each_inject(self):
        sim, sites, _ = self._sim_with_sites(n=1)
        inj = FailureInjector(sim, [sites[0].station], None, None, 400.0)
        inj.schedule_outage(50.0, 20.0)
        inj.schedule_outage(100.0, 20.0)  # disjoint: fine
        sim.run()
        assert inj.failures == 2
        assert inj.availability("s0", horizon=400.0) == pytest.approx(0.9)

    def test_window_past_stop_time_rejected(self):
        # Used to be silently dropped (failures == 0, availability 1.0
        # despite a scheduled outage); must now fail at scheduling time.
        sim, sites, _ = self._sim_with_sites(n=1)
        inj = FailureInjector(sim, [sites[0].station], None, None, 100.0)
        with pytest.raises(ValueError, match="stop_time"):
            inj.schedule_outage(150.0, 10.0)
        sim.run()
        assert inj.failures == 0

    def test_correlated_multi_site_window_overlap_checked_per_station(self):
        # Regression for correlated windows: overlap detection is per
        # station, so a second window is rejected iff it shares a station
        # with an earlier one — windows on disjoint station sets at the
        # same times are legitimate (independent incidents).
        sim, sites, _ = self._sim_with_sites(n=3)
        stations = [s.station for s in sites]
        inj = FailureInjector(sim, stations, None, None, 400.0)
        inj.schedule_outage(50.0, 25.0, [stations[0], stations[1]])
        # Same times on the untouched third site: allowed.
        inj.schedule_outage(50.0, 25.0, [stations[2]])
        # Overlaps s1 even though s2 is free: rejected atomically
        # (nothing scheduled on either station).
        with pytest.raises(ValueError, match="'s1'"):
            inj.schedule_outage(60.0, 30.0, [stations[1], stations[2]])
        # A later disjoint correlated window on the same pair: allowed.
        inj.schedule_outage(200.0, 10.0, [stations[0], stations[1]])
        sim.run()
        assert inj.failures == 5  # 2 + 1 + 0 + 2
        assert inj.availability("s2", horizon=400.0) == pytest.approx(1 - 25 / 400)
        for name in ("s0", "s1"):
            assert inj.availability(name, horizon=400.0) == pytest.approx(
                1 - 35 / 400
            )

    def test_conflict_error_names_station_and_both_windows(self):
        sim, sites, _ = self._sim_with_sites(n=2)
        stations = [s.station for s in sites]
        inj = FailureInjector(sim, stations, None, None, 400.0)
        inj.schedule_outage(50.0, 20.0, [stations[0]])
        inj.schedule_outage(55.0, 20.0, [stations[1]])
        # One rejected call conflicting on BOTH stations: every conflict
        # is reported, each naming the station and both window bounds.
        with pytest.raises(ValueError) as ei:
            inj.schedule_outage(60.0, 30.0)
        msg = str(ei.value)
        assert "[60.0, 90.0)" in msg             # the new window
        assert "station 's0'" in msg
        assert "[50.0, 70.0)" in msg             # s0's scheduled window
        assert "station 's1'" in msg
        assert "[55.0, 75.0)" in msg             # s1's scheduled window
        assert "2 station(s)" in msg

    def test_validation(self):
        sim, sites, _ = self._sim_with_sites(n=1)
        other_sim = Simulation(1)
        foreign = Station(other_sim, 1, SERVICE)
        foreign.name = "foreign"
        inj = FailureInjector(sim, [sites[0].station], None, None, 100.0)
        with pytest.raises(ValueError):
            inj.schedule_outage(10.0, 0.0)
        with pytest.raises(KeyError):
            inj.schedule_outage(10.0, 5.0, [foreign])
        with pytest.raises(ValueError):
            FailureInjector(sim, [sites[0].station], 10.0, None, 100.0)

    def test_windows_compose_with_stochastic_process(self):
        # A forced window while the stochastic fail/repair cycle runs:
        # the cycle must survive (stations keep failing afterwards).
        sim, sites, edge = self._sim_with_sites(n=2, seed=7)
        OpenLoopSource(sim, edge, Exponential(1.0 / 5.0), site="s0", stop_time=3000.0)
        inj = FailureInjector(
            sim, [s.station for s in sites], mtbf=200.0, mttr=20.0, stop_time=3000.0
        )
        inj.schedule_outage(100.0, 50.0)
        sim.run()
        assert inj.failures > 4  # stochastic failures continued post-window
        assert all(not s.station.failed for s in sites)

    def test_fail_repair_sequence_deterministic_under_seed(self):
        def run():
            sim, sites, edge = self._sim_with_sites(n=2, seed=11)
            OpenLoopSource(sim, edge, Exponential(1.0 / 5.0), site="s0",
                           stop_time=2000.0)
            inj = FailureInjector(
                sim, [s.station for s in sites], mtbf=150.0, mttr=30.0,
                stop_time=2000.0,
            )
            inj.schedule_outage(500.0, 60.0)
            sim.run()
            return (
                inj.failures,
                inj.mean_availability(2000.0),
                len(edge.log),
                float(edge.log.breakdown().end_to_end.sum()),
            )

        assert run() == run()
