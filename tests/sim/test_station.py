"""Tests for the FCFS multi-server station."""

import pytest

from repro.queueing.distributions import Deterministic, Exponential
from repro.sim.engine import Simulation
from repro.sim.request import Request
from repro.sim.station import Station


def make_request(rid, service=None):
    return Request(rid, created=0.0, service_time=service)


class TestFcfsSemantics:
    def test_single_server_serializes(self):
        sim = Simulation(0)
        st = Station(sim, 1, Deterministic(1.0))
        done = []
        st.on_departure = lambda r: done.append((r.rid, sim.now))
        for rid in range(3):
            sim.schedule(0.0, st.arrive, make_request(rid))
        sim.run()
        assert done == [(0, 1.0), (1, 2.0), (2, 3.0)]

    def test_fcfs_order_preserved(self):
        sim = Simulation(0)
        st = Station(sim, 1)
        done = []
        st.on_departure = lambda r: done.append(r.rid)
        # Second arrival has a *shorter* job but must still go second.
        sim.schedule(0.0, st.arrive, make_request(0, service=5.0))
        sim.schedule(0.1, st.arrive, make_request(1, service=0.1))
        sim.schedule(0.2, st.arrive, make_request(2, service=0.1))
        sim.run()
        assert done == [0, 1, 2]

    def test_parallel_servers_overlap(self):
        sim = Simulation(0)
        st = Station(sim, 2, Deterministic(1.0))
        done = []
        st.on_departure = lambda r: done.append((r.rid, sim.now))
        for rid in range(3):
            sim.schedule(0.0, st.arrive, make_request(rid))
        sim.run()
        # Two run together; the third starts when the first finishes.
        assert done == [(0, 1.0), (1, 1.0), (2, 2.0)]

    def test_timestamps_recorded(self):
        sim = Simulation(0)
        st = Station(sim, 1, Deterministic(2.0))
        req = make_request(0)
        sim.schedule(1.0, st.arrive, req)
        sim.run()
        assert req.arrived == 1.0
        assert req.service_start == 1.0
        assert req.service_end == 3.0
        assert req.wait == 0.0

    def test_wait_measured_for_queued_request(self):
        sim = Simulation(0)
        st = Station(sim, 1, Deterministic(2.0))
        first, second = make_request(0), make_request(1)
        sim.schedule(0.0, st.arrive, first)
        sim.schedule(0.5, st.arrive, second)
        sim.run()
        assert second.wait == pytest.approx(1.5)

    def test_preassigned_service_time_used(self):
        sim = Simulation(0)
        st = Station(sim, 1, Deterministic(99.0))
        req = make_request(0, service=0.25)
        sim.schedule(0.0, st.arrive, req)
        sim.run()
        assert req.service_end == pytest.approx(0.25)

    def test_missing_service_time_and_dist_raises(self):
        sim = Simulation(0)
        st = Station(sim, 1)  # no distribution
        sim.schedule(0.0, st.arrive, make_request(0))
        with pytest.raises(ValueError):
            sim.run()


class TestAccounting:
    def test_counts(self):
        sim = Simulation(0)
        st = Station(sim, 1, Deterministic(1.0))
        for rid in range(4):
            sim.schedule(float(rid), st.arrive, make_request(rid))
        sim.run()
        assert st.arrivals == 4
        assert st.completions == 4
        assert st.busy == 0
        assert st.queue_length == 0

    def test_utilization_integral(self):
        sim = Simulation(0)
        st = Station(sim, 1, Deterministic(1.0))
        sim.schedule(0.0, st.arrive, make_request(0))
        sim.run(until=4.0)
        # Busy for 1s of 4s.
        assert st.utilization() == pytest.approx(0.25)

    def test_mean_queue_length_integral(self):
        sim = Simulation(0)
        st = Station(sim, 1, Deterministic(2.0))
        sim.schedule(0.0, st.arrive, make_request(0))
        sim.schedule(0.0, st.arrive, make_request(1))
        sim.run(until=4.0)
        # Second request queued during [0, 2) of a 4s horizon.
        assert st.mean_queue_length() == pytest.approx(0.5)

    def test_poisson_utilization_matches_rho(self):
        sim = Simulation(42)
        st = Station(sim, 1, Exponential(1.0 / 13.0))
        rng = sim.spawn_rng()

        def generate():
            if sim.now < 500.0:
                st.arrive(make_request(0))
                sim.schedule(rng.exponential(1.0 / 8.0), generate)

        sim.schedule(0.0, generate)
        sim.run(until=500.0)
        assert st.utilization() == pytest.approx(8.0 / 13.0, rel=0.05)


class TestDynamicCapacity:
    def test_scale_up_starts_queued_work(self):
        sim = Simulation(0)
        st = Station(sim, 1, Deterministic(10.0))
        done = []
        st.on_departure = lambda r: done.append((r.rid, sim.now))
        sim.schedule(0.0, st.arrive, make_request(0))
        sim.schedule(0.0, st.arrive, make_request(1))
        sim.schedule(1.0, st.set_servers, 2)
        sim.run()
        # Second request starts at t=1 when the new server appears.
        assert (1, 11.0) in done

    def test_scale_down_drains_gracefully(self):
        sim = Simulation(0)
        st = Station(sim, 2, Deterministic(1.0))
        sim.schedule(0.0, st.arrive, make_request(0))
        sim.schedule(0.0, st.arrive, make_request(1))
        sim.schedule(0.1, st.set_servers, 1)
        sim.run()
        assert st.completions == 2  # both in-flight jobs finish

    def test_invalid_capacity(self):
        sim = Simulation(0)
        st = Station(sim, 1)
        with pytest.raises(ValueError):
            st.set_servers(0)
        with pytest.raises(ValueError):
            Station(sim, 0)

    def test_shrink_mid_overload_strands_nothing(self):
        # Regression: shrinking while the queue is deep must neither lose
        # queued requests nor double-count busy servers when the
        # over-capacity in-flight work drains.
        sim = Simulation(0)
        st = Station(sim, 4, Deterministic(1.0))
        busy_seen = []
        st.on_departure = lambda r: busy_seen.append(st.busy)
        for rid in range(12):
            sim.schedule(0.0, st.arrive, make_request(rid))
        sim.schedule(0.5, st.set_servers, 1)
        sim.run()
        assert st.completions == 12
        assert st.busy == 0 and st.queue_length == 0
        assert st.arrivals == st.completions
        # Once the initial 4 in-flight drain past the new limit, the
        # station never runs more than 1 server again.
        assert all(b <= 1 for b in busy_seen[4:])

    def test_shrink_then_grow_mid_overload(self):
        sim = Simulation(0)
        st = Station(sim, 4, Deterministic(1.0))
        for rid in range(12):
            sim.schedule(0.0, st.arrive, make_request(rid))
        sim.schedule(0.5, st.set_servers, 1)
        sim.schedule(2.5, st.set_servers, 3)
        sim.run()
        assert st.completions == 12
        assert st.busy == 0 and st.queue_length == 0

    def test_shrink_with_custom_discipline_and_capacity(self):
        from repro.sim.overload import AdaptiveLIFODiscipline

        sim = Simulation(0)
        st = Station(
            sim, 3, Deterministic(1.0),
            queue_capacity=6,
            discipline=AdaptiveLIFODiscipline(pressure_threshold=2),
        )
        for rid in range(12):
            sim.schedule(0.0, st.arrive, make_request(rid))
        sim.schedule(0.5, st.set_servers, 1)
        sim.run()
        assert st.arrivals == st.completions + st.drops
        assert st.busy == 0 and st.queue_length == 0


class TestBacklogWork:
    def test_counts_queued_known_service_times(self):
        sim = Simulation(0)
        st = Station(sim, 1, Deterministic(1.0))
        sim.schedule(0.0, st.arrive, make_request(0, service=1.0))
        sim.schedule(0.0, st.arrive, make_request(1, service=3.0))
        sim.run(until=0.5)
        # One in service (residual approx 0.5 * mean = 0.5) + 3.0 queued.
        assert st.backlog_work() == pytest.approx(3.5)

    def test_empty_station_has_no_backlog(self):
        sim = Simulation(0)
        st = Station(sim, 1, Deterministic(1.0))
        assert st.backlog_work() == 0.0
