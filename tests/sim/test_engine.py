"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulation


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulation(0)
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulation(0)
        order = []
        for label in "abc":
            sim.schedule(1.0, order.append, label)
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulation(0)
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_negative_delay_rejected(self):
        sim = Simulation(0)
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulation(0)
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_events_can_schedule_events(self):
        sim = Simulation(0)
        hits = []

        def chain(n):
            hits.append(sim.now)
            if n > 0:
                sim.schedule(1.0, chain, n - 1)

        sim.schedule(0.0, chain, 3)
        sim.run()
        assert hits == [0.0, 1.0, 2.0, 3.0]


class TestRunControl:
    def test_run_until_stops_clock_exactly(self):
        sim = Simulation(0)
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(10.0, fired.append, 2)
        end = sim.run(until=5.0)
        assert fired == [1]
        assert end == 5.0
        assert sim.pending_events == 1

    def test_run_resumes_after_until(self):
        sim = Simulation(0)
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(10.0, fired.append, 2)
        sim.run(until=5.0)
        sim.run()
        assert fired == [1, 2]

    def test_run_until_with_empty_calendar_advances_clock(self):
        sim = Simulation(0)
        assert sim.run(until=7.0) == 7.0

    def test_stop_halts_processing(self):
        sim = Simulation(0)
        fired = []

        def first():
            fired.append(1)
            sim.stop()

        sim.schedule(1.0, first)
        sim.schedule(2.0, fired.append, 2)
        sim.run()
        assert fired == [1]
        assert sim.pending_events == 1

    def test_reentrant_run_rejected(self):
        sim = Simulation(0)

        def nested():
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(RuntimeError):
            sim.run()


class TestRng:
    def test_same_seed_same_streams(self):
        a, b = Simulation(7), Simulation(7)
        assert a.spawn_rng().random() == b.spawn_rng().random()

    def test_spawned_streams_differ(self):
        sim = Simulation(7)
        assert sim.spawn_rng().random() != sim.spawn_rng().random()


class TestEventBudget:
    def _ticker(self, sim):
        def tick():
            sim.schedule(1.0, tick)
        sim.schedule(1.0, tick)

    def test_budget_exhaustion_raises_with_context(self):
        from repro.sim.engine import EventBudgetExceeded

        sim = Simulation(0)
        self._ticker(sim)
        with pytest.raises(EventBudgetExceeded) as ei:
            sim.run(max_events=5)
        assert ei.value.max_events == 5
        assert ei.value.now == 5.0
        assert "5 events" in str(ei.value)

    def test_budget_not_hit_is_identical_to_unbudgeted(self):
        done = []
        for max_events in (None, 100):
            sim = Simulation(3)
            order = []
            for delay in (3.0, 1.0, 2.0):
                sim.schedule(delay, order.append, delay)
            end = sim.run(max_events=max_events)
            done.append((order, end))
        assert done[0] == done[1]

    def test_budget_respects_until(self):
        sim = Simulation(0)
        self._ticker(sim)
        assert sim.run(until=3.5, max_events=100) == 3.5
        assert sim.now == 3.5

    def test_budget_exhaustion_is_deterministic(self):
        from repro.sim.engine import EventBudgetExceeded

        times = []
        for _ in range(2):
            sim = Simulation(9)
            self._ticker(sim)
            with pytest.raises(EventBudgetExceeded) as ei:
                sim.run(max_events=7)
            times.append((ei.value.now, sim.now))
        assert times[0] == times[1]

    def test_invalid_budget_rejected(self):
        sim = Simulation(0)
        with pytest.raises(ValueError):
            sim.run(max_events=0)

    def test_stop_inside_budgeted_loop(self):
        sim = Simulation(0)
        self._ticker(sim)
        sim.schedule(2.5, sim.stop)
        assert sim.run(max_events=100) == 2.5

    def test_budgeted_loop_with_invariants_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "1")
        sim = Simulation(4)
        self._ticker(sim)
        assert sim.run(until=4.5, max_events=50) == 4.5
