"""Cross-validation: the event engine and the fast path must agree.

Both simulation paths implement the same FCFS G/G/c semantics; driven
with the *identical* request sequence (same arrival times and service
times) through a constant-latency network they must produce identical
waits — not statistically similar, bit-for-bit equal up to float
accumulation.  This is the strongest internal-consistency check in the
suite (DESIGN.md §5, item 2).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.client import TraceSource
from repro.sim.engine import Simulation
from repro.sim.fastsim import simulate_fcfs_queue, simulate_single_queue_system
from repro.sim.network import ConstantLatency
from repro.sim.topology import CloudDeployment


def run_engine(arrivals, services, servers, rtt=0.0):
    sim = Simulation(0)
    cloud = CloudDeployment(sim, servers=servers, latency=ConstantLatency(rtt))
    TraceSource(sim, cloud, arrivals, services)
    sim.run()
    bd = cloud.log.breakdown()
    order = np.argsort(bd.created, kind="stable")
    return bd.wait[order], bd.end_to_end[order]


class TestEnginesAgree:
    @given(
        seed=st.integers(min_value=0, max_value=500),
        servers=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=50, deadline=None)
    def test_identical_waits_on_identical_workload(self, seed, servers):
        rng = np.random.default_rng(seed)
        n = 200
        arrivals = np.cumsum(rng.exponential(0.05, n))
        services = rng.exponential(0.05 * servers, n)
        fast = simulate_fcfs_queue(arrivals, services, servers)
        engine_waits, _ = run_engine(arrivals, services, servers)
        np.testing.assert_allclose(engine_waits, fast, atol=1e-9)

    def test_identical_end_to_end_with_network(self):
        rng = np.random.default_rng(7)
        n = 500
        arrivals = np.cumsum(rng.exponential(0.02, n))
        services = rng.exponential(0.05, n)
        rtt = 0.025
        fast = simulate_single_queue_system(
            arrivals, services, 3, ConstantLatency(rtt)
        )
        _, engine_e2e = run_engine(arrivals, services, 3, rtt=rtt)
        np.testing.assert_allclose(engine_e2e, fast.end_to_end, atol=1e-9)

    def test_heavy_load_agreement(self):
        """Agreement must survive deep queues (rho near 1)."""
        rng = np.random.default_rng(11)
        n = 2000
        arrivals = np.cumsum(rng.exponential(0.0105, n))  # rho ~ 0.95
        services = rng.exponential(0.01, n)
        fast = simulate_fcfs_queue(arrivals, services, 1)
        engine_waits, _ = run_engine(arrivals, services, 1)
        np.testing.assert_allclose(engine_waits, fast, atol=1e-9)

    def test_simultaneous_arrivals_agree(self):
        """Ties in arrival time must break identically (FIFO insertion)."""
        arrivals = np.zeros(6)
        services = np.array([0.3, 0.1, 0.2, 0.1, 0.05, 0.4])
        fast = simulate_fcfs_queue(arrivals, services, 2)
        engine_waits, _ = run_engine(arrivals, services, 2)
        np.testing.assert_allclose(engine_waits, fast, atol=1e-12)

    @pytest.mark.parametrize("servers", [1, 2, 5])
    def test_deterministic_workload_agreement(self, servers):
        arrivals = np.arange(20) * 0.1
        services = np.full(20, 0.35)
        fast = simulate_fcfs_queue(arrivals, services, servers)
        engine_waits, _ = run_engine(arrivals, services, servers)
        np.testing.assert_allclose(engine_waits, fast, atol=1e-12)
