"""System-level invariants of the simulator.

Conservation (every generated request completes), Little's law on the
measured time-averages, PASTA-consistent utilization, and stability of
the decomposition identity under every deployment shape — the checks
that catch subtle accounting bugs no example-based test would.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.distributions import Exponential
from repro.sim.client import OpenLoopSource
from repro.sim.engine import Simulation
from repro.sim.loadbalancer import JoinShortestQueue, RandomDispatch, RoundRobin
from repro.sim.network import ConstantLatency
from repro.sim.topology import CloudDeployment, EdgeDeployment, EdgeSite

MU = 13.0
SERVICE = Exponential(1.0 / MU)


def run_cloud(seed, rate=8.0, servers=2, duration=400.0, policy=None, backends=None):
    sim = Simulation(seed)
    cloud = CloudDeployment(
        sim, servers=servers, latency=ConstantLatency(0.001),
        service_dist=SERVICE, policy=policy, backends=backends,
    )
    src = OpenLoopSource(sim, cloud, Exponential(1.0 / rate), stop_time=duration)
    sim.run()
    return sim, cloud, src


class TestConservation:
    @given(seed=st.integers(min_value=0, max_value=300))
    @settings(max_examples=25, deadline=None)
    def test_every_generated_request_completes(self, seed):
        _, cloud, src = run_cloud(seed, duration=100.0)
        assert len(cloud.log) == src.generated

    def test_conservation_with_dispatch_policies(self):
        for policy in (RoundRobin(), RandomDispatch(), JoinShortestQueue()):
            _, cloud, src = run_cloud(3, servers=4, policy=policy, backends=4)
            assert len(cloud.log) == src.generated

    def test_conservation_in_edge_deployment(self):
        sim = Simulation(5)
        edge = EdgeDeployment(
            sim,
            [EdgeSite(sim, f"s{i}", 1, ConstantLatency(0.001), SERVICE) for i in range(3)],
        )
        sources = [
            OpenLoopSource(sim, edge, Exponential(1.0 / 5.0), site=f"s{i}", stop_time=200.0)
            for i in range(3)
        ]
        sim.run()
        assert len(edge.log) == sum(s.generated for s in sources)


class TestLittlesLaw:
    def test_station_queue_length_is_lambda_times_wait(self):
        sim, cloud, _ = run_cloud(7, rate=20.0, servers=2, duration=3000.0)
        station = cloud.stations[0]
        bd = cloud.log.breakdown()
        lam = len(bd) / sim.now
        # L_q (time-average, exact integral) = lambda * E[Wq] (per-request).
        assert station.mean_queue_length() == pytest.approx(
            lam * bd.wait.mean(), rel=0.1
        )

    def test_utilization_is_offered_load(self):
        sim, cloud, _ = run_cloud(8, rate=20.0, servers=2, duration=3000.0)
        station = cloud.stations[0]
        # rho = lambda / (k mu).
        assert station.utilization() == pytest.approx(20.0 / (2 * MU), rel=0.05)


class TestDecomposition:
    @given(seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=15, deadline=None)
    def test_identity_holds_for_every_request(self, seed):
        _, cloud, _ = run_cloud(seed, duration=60.0)
        bd = cloud.log.breakdown()
        np.testing.assert_allclose(
            bd.end_to_end, bd.network + bd.wait + bd.service, atol=1e-9
        )

    def test_waits_and_components_nonnegative(self):
        _, cloud, _ = run_cloud(9, rate=24.0, servers=2, duration=300.0)
        bd = cloud.log.breakdown()
        assert bd.wait.min() >= 0
        assert bd.service.min() >= 0
        assert bd.network.min() >= 0


class TestMonotonicity:
    def test_more_servers_never_increase_mean_wait(self):
        waits = []
        for servers in (1, 2, 4):
            _, cloud, _ = run_cloud(11, rate=10.0, servers=servers, duration=1500.0)
            waits.append(cloud.log.breakdown().wait.mean())
        assert waits[0] >= waits[1] >= waits[2]

    def test_higher_rate_increases_mean_wait(self):
        lo_sim, lo, _ = run_cloud(12, rate=6.0, servers=1, duration=1500.0)
        hi_sim, hi, _ = run_cloud(12, rate=11.0, servers=1, duration=1500.0)
        assert hi.log.breakdown().wait.mean() > lo.log.breakdown().wait.mean()
