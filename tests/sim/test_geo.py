"""Tests for the multi-region geographic comparison."""

import numpy as np
import pytest

from repro.queueing.distributions import Exponential
from repro.sim.geo import Region, simulate_geo_comparison

MU = 13.0
SERVICE = Exponential(1.0 / MU)


def three_regions():
    return [
        Region("metro", weight=0.5, edge_rtt=0.001, cloud_rtt=0.012),
        Region("suburban", weight=0.3, edge_rtt=0.001, cloud_rtt=0.030),
        Region("remote", weight=0.2, edge_rtt=0.002, cloud_rtt=0.090),
    ]


class TestRegion:
    def test_validation(self):
        with pytest.raises(ValueError):
            Region("bad", weight=-1.0, edge_rtt=0.001, cloud_rtt=0.02)
        with pytest.raises(ValueError):
            Region("bad", weight=1.0, edge_rtt=-0.001, cloud_rtt=0.02)
        with pytest.raises(ValueError):
            Region("bad", weight=1.0, edge_rtt=0.02, cloud_rtt=0.01)


class TestGeoComparison:
    @pytest.fixture(scope="class")
    def moderate(self):
        # Total 30 req/s over weights .5/.3/.2 -> per-region rho of
        # 15/13, ... wait: one server per site at mu=13 would overload
        # the metro region, so use 2 servers/site.
        return simulate_geo_comparison(
            three_regions(), total_rate=30.0, service=SERVICE,
            servers_per_site=2, n_per_region_unit=40_000, seed=1,
        )

    def test_all_regions_present(self, moderate):
        means = moderate.region_means()
        assert [name for name, _, _ in means] == ["metro", "suburban", "remote"]
        assert set(np.unique(moderate.cloud.site)) == {0, 1, 2}

    def test_demand_split_respects_weights(self, moderate):
        counts = np.array([len(moderate.edge.for_site(i)) for i in range(3)])
        fractions = counts / counts.sum()
        np.testing.assert_allclose(fractions, [0.5, 0.3, 0.2], atol=0.03)

    def test_cloud_network_time_is_regional(self, moderate):
        for i, region in enumerate(moderate.regions):
            rtts = moderate.cloud.for_site(i).network
            np.testing.assert_allclose(rtts, region.cloud_rtt)

    def test_metro_inverts_first(self):
        """Corollary 3.1.3's regional story: at high utilization the
        region nearest a cloud DC inverts while the remote region's edge
        still wins."""
        result = simulate_geo_comparison(
            three_regions(), total_rate=42.0, service=SERVICE,
            servers_per_site=2, n_per_region_unit=60_000, seed=2,
        )
        # All regions share one pooled cloud, so the cloud wait is tiny;
        # per-site edge waits are substantial at rho ~0.8 (metro).
        inverted = result.inverted_regions()
        assert "metro" in inverted
        assert "remote" not in inverted

    def test_no_inversion_anywhere_at_light_load(self):
        result = simulate_geo_comparison(
            three_regions(), total_rate=8.0, service=SERVICE,
            servers_per_site=2, n_per_region_unit=20_000, seed=3,
        )
        assert result.inverted_regions() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_geo_comparison([], 10.0, SERVICE, 1)
        with pytest.raises(ValueError):
            simulate_geo_comparison(three_regions(), 0.0, SERVICE, 1)
        with pytest.raises(ValueError):
            simulate_geo_comparison(three_regions(), 10.0, SERVICE, 0)
        zero_w = [
            Region("a", weight=0.0, edge_rtt=0.001, cloud_rtt=0.02),
            Region("b", weight=0.0, edge_rtt=0.001, cloud_rtt=0.02),
        ]
        with pytest.raises(ValueError):
            simulate_geo_comparison(zero_w, 10.0, SERVICE, 1)
