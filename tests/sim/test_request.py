"""Tests for the request lifecycle record."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.request import Request


class TestLifecycle:
    def test_fresh_request_incomplete(self):
        r = Request(1, site="s0", created=0.0)
        assert not r.is_complete
        assert math.isnan(r.wait)
        assert math.isnan(r.end_to_end)

    def test_manual_lifecycle(self):
        r = Request(2, created=1.0)
        r.arrived = 1.01
        r.service_start = 1.05
        r.service_time = 0.2
        r.service_end = 1.25
        r.completed = 1.26
        assert r.wait == pytest.approx(0.04)
        assert r.server_time == pytest.approx(0.24)
        assert r.network_time == pytest.approx(0.02)
        assert r.end_to_end == pytest.approx(0.26)
        assert r.is_complete

    @given(
        created=st.floats(min_value=0.0, max_value=1e6),
        leg1=st.floats(min_value=0.0, max_value=10.0),
        wait=st.floats(min_value=0.0, max_value=100.0),
        service=st.floats(min_value=0.0, max_value=100.0),
        leg2=st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=100)
    def test_decomposition_identity_property(self, created, leg1, wait, service, leg2):
        r = Request(0, created=created)
        r.arrived = created + leg1
        r.service_start = r.arrived + wait
        r.service_time = service
        r.service_end = r.service_start + service
        r.completed = r.service_end + leg2
        assert r.end_to_end == pytest.approx(
            r.network_time + r.wait + r.service_time, rel=1e-9, abs=1e-9
        )
        assert r.network_time == pytest.approx(leg1 + leg2, rel=1e-6, abs=1e-9)

    def test_slots_prevent_arbitrary_attributes(self):
        r = Request(0, created=0.0)
        with pytest.raises(AttributeError):
            r.extra_field = 1

    def test_repr_mentions_state(self):
        assert "complete=False" in repr(Request(0, created=0.0))
