"""Seeded-grid cross-validation of the fastsim topology layer.

Complements ``test_cross_validation.py`` (hypothesis-driven single-queue
checks) with a deterministic seeded grid — every case is pinned, so a
failure names the exact (pattern, servers, seed) cell — and extends the
coverage to the new load-balanced topologies:

* the two ``simulate_fcfs_queue`` implementations (Lindley for c=1, the
  Kiefer–Wolfowitz heap for c>1) against each other and against the DES
  station, for c ∈ {1, 2, 8} and Poisson / deterministic / bursty
  arrivals;
* ``simulate_lb_system`` round-robin against the DES
  :class:`~repro.sim.topology.CloudDeployment` with the
  :class:`~repro.sim.loadbalancer.RoundRobin` policy on the *identical*
  trace (near-exact agreement: same assignment, same recursion);
* JSQ fastsim against DES JSQ (statistical agreement — tie-breaking
  streams differ);
* the comparator's ``engine="des"`` and ``engine="fastsim"`` paths on
  the same scenario point;
* ``sample_oneway_batch`` bit-identity against scalar draws.
"""

import numpy as np
import pytest

from repro.core.comparator import EdgeCloudComparator
from repro.core.scenarios import TYPICAL_CLOUD
from repro.sim.client import TraceSource
from repro.sim.engine import Simulation
from repro.sim.fastsim import (
    _kw_heap,
    _lindley_single,
    simulate_fcfs_queue,
    simulate_lb_system,
)
from repro.sim.loadbalancer import JoinShortestQueue, RoundRobin
from repro.sim.network import (
    ConstantLatency,
    LognormalLatency,
    LossyLatency,
    NormalJitterLatency,
)
from repro.sim.topology import CloudDeployment

SEEDS = (0, 1, 2, 3, 4)
SERVER_COUNTS = (1, 2, 8)
PATTERNS = ("poisson", "deterministic", "bursty")


def make_workload(pattern: str, n: int, seed: int, load: float = 0.85):
    """An (arrivals, services) pair with mean service 1 and rate ``load``.

    ``bursty`` interleaves geometric batches of simultaneous arrivals
    with long gaps (squared CoV >> 1) — the adversarial case for any
    recursion that assumes ties are rare.
    """
    rng = np.random.default_rng(seed)
    if pattern == "poisson":
        gaps = rng.exponential(1.0 / load, n)
    elif pattern == "deterministic":
        gaps = np.full(n, 1.0 / load)
    else:  # bursty: batches at shared instants, exponential batch gaps
        gaps = np.where(
            rng.random(n) < 0.7, 0.0, rng.exponential(1.0 / (0.3 * load), n)
        )
    arrivals = np.cumsum(gaps)
    services = rng.exponential(1.0, n)
    return arrivals, services


def run_des_cloud(arrivals, services, servers, *, rtt=0.0, policy=None,
                  backends=None, seed=0):
    """Replay a trace through the DES cloud and return trace-ordered waits.

    The request log is in *completion* order; sorting by ``created``
    alone cannot recover submission order when arrivals tie (the bursty
    patterns tie on purpose), so requests are re-ordered by rid — the
    globally monotone id assigned at submission.
    """
    sim = Simulation(seed)
    cloud = CloudDeployment(
        sim, servers=servers, latency=ConstantLatency(rtt),
        policy=policy, backends=backends,
    )
    TraceSource(sim, cloud, arrivals, services)
    sim.run()
    reqs = sorted(cloud.log.requests, key=lambda r: r.rid)
    wait = np.array([r.service_start - r.arrived for r in reqs])
    e2e = np.array([r.completed - r.created for r in reqs])
    return wait, e2e


class TestRecursionGrid:
    """Lindley vs KW-heap vs DES over the full seeded grid."""

    @pytest.mark.parametrize("pattern", PATTERNS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_lindley_equals_kw_heap_single_server(self, pattern, seed):
        a, s = make_workload(pattern, 400, seed)
        np.testing.assert_allclose(
            _lindley_single(a, s), _kw_heap(a, s, 1), atol=1e-9
        )

    @pytest.mark.parametrize("pattern", PATTERNS)
    @pytest.mark.parametrize("servers", SERVER_COUNTS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fastsim_matches_des_station(self, pattern, servers, seed):
        # mean service c·0.9: per-server utilization ~0.77 for every c
        a, s = make_workload(pattern, 300, seed)
        s = s * (servers * 0.9)
        fast = simulate_fcfs_queue(a, s, servers)
        des, _ = run_des_cloud(a, s, servers)
        np.testing.assert_allclose(
            des, fast, atol=1e-9,
            err_msg=f"DES drifted from fastsim at ({pattern}, c={servers}, seed={seed})",
        )


class TestLbTopology:
    def test_round_robin_matches_des_exactly(self):
        """Identical trace + constant latency: RR fastsim == RR DES."""
        for seed in SEEDS:
            a, s = make_workload("poisson", 600, seed)
            s *= 6.0  # 8 servers in 4 backends: per-server load ~0.64
            fast = simulate_lb_system(
                a, s, 8, ConstantLatency(0.025), policy="round-robin", backends=4
            )
            des_wait, des_e2e = run_des_cloud(
                a, s, 8, rtt=0.025, policy=RoundRobin(), backends=4
            )
            np.testing.assert_allclose(des_wait, fast.wait, atol=1e-9)
            np.testing.assert_allclose(des_e2e, fast.end_to_end, atol=1e-9)

    def test_round_robin_bursty_ties_agree(self):
        """Simultaneous arrivals must be dealt to backends in the same order."""
        a, s = make_workload("bursty", 400, 9)
        s *= 3.0
        fast = simulate_lb_system(
            a, s, 4, ConstantLatency(0.0), policy="round-robin", backends=2
        )
        des_wait, _ = run_des_cloud(a, s, 4, policy=RoundRobin(), backends=2)
        np.testing.assert_allclose(des_wait, fast.wait, atol=1e-9)

    def test_jsq_matches_des_statistically(self):
        """JSQ tie-breaks draw from different streams: means agree, bits don't."""
        a, s = make_workload("poisson", 40_000, 17)
        s *= 6.0
        fast = simulate_lb_system(
            a, s, 8, ConstantLatency(0.0), np.random.default_rng(1),
            policy="jsq", backends=4,
        )
        des_wait, _ = run_des_cloud(
            a, s, 8, policy=JoinShortestQueue(), backends=4, seed=2
        )
        assert des_wait.mean() == pytest.approx(fast.wait.mean(), rel=0.1)

    def test_lb_overhead_inbound_only(self):
        """LB overhead rides the inbound leg once, like the DES topology."""
        a = np.array([0.0, 10.0])
        s = np.array([1.0, 1.0])
        res = simulate_lb_system(
            a, s, 2, ConstantLatency(0.020), policy="round-robin",
            backends=2, lb_overhead=0.005,
        )
        np.testing.assert_allclose(res.network, 0.025)
        np.testing.assert_allclose(res.end_to_end, 0.025 + 1.0)


class TestComparatorEngines:
    def test_auto_selects_fastsim_without_hooks(self):
        assert EdgeCloudComparator(TYPICAL_CLOUD)._use_fastsim
        assert EdgeCloudComparator(TYPICAL_CLOUD, cloud_policy="jsq")._use_fastsim
        assert not EdgeCloudComparator(TYPICAL_CLOUD, engine="des")._use_fastsim
        assert not EdgeCloudComparator(
            TYPICAL_CLOUD, cloud_policy=RoundRobin()
        )._use_fastsim

    def test_fastsim_engine_rejects_des_only_config(self):
        with pytest.raises(ValueError):
            EdgeCloudComparator(
                TYPICAL_CLOUD, cloud_policy=RoundRobin(), engine="fastsim"
            )

    def test_engines_agree_at_moderate_load(self):
        rate = TYPICAL_CLOUD.rate_for_utilization(0.6)
        kwargs = dict(requests_per_site=8_000, seed=77)
        fast = EdgeCloudComparator(
            TYPICAL_CLOUD, engine="fastsim", **kwargs
        ).measure_point(rate)
        des = EdgeCloudComparator(
            TYPICAL_CLOUD, engine="des", **kwargs
        ).measure_point(rate)
        assert des.edge.mean == pytest.approx(fast.edge.mean, rel=0.1)
        assert des.cloud.mean == pytest.approx(fast.cloud.mean, rel=0.1)

    def test_lb_policy_point_runs_and_waits_dominate_central(self):
        """Round-robin partitions the pool: no better than the central queue."""
        rate = TYPICAL_CLOUD.rate_for_utilization(0.8)
        kwargs = dict(requests_per_site=8_000, seed=5)
        central = EdgeCloudComparator(TYPICAL_CLOUD, **kwargs).measure_point(rate)
        rr = EdgeCloudComparator(
            TYPICAL_CLOUD, cloud_policy="round-robin", **kwargs
        ).measure_point(rate)
        assert rr.cloud.mean >= central.cloud.mean * 0.99


class TestBatchSampling:
    """sample_oneway_batch must replay the scalar draw stream bit-for-bit."""

    @pytest.mark.parametrize(
        "model",
        [
            ConstantLatency.from_ms(24.0),
            NormalJitterLatency.from_ms(24.0, 2.0),
            LognormalLatency.from_ms(54.0, 0.25),
            LossyLatency(NormalJitterLatency.from_ms(24.0, 2.0), loss_prob=0.01),
        ],
        ids=lambda m: type(m).__name__,
    )
    def test_batch_bit_identical_to_scalar(self, model):
        n = 257
        batch = model.sample_oneway_batch(np.random.default_rng(42), n)
        scalar_rng = np.random.default_rng(42)
        scalar = np.array([model.sample_oneway(scalar_rng) for _ in range(n)])
        np.testing.assert_array_equal(batch, scalar)

    def test_base_class_fallback_loops(self):
        class Fixed(ConstantLatency):
            # exercise the LatencyModel.sample_oneway_batch fallback
            sample_oneway_batch = __import__(
                "repro.sim.network", fromlist=["LatencyModel"]
            ).LatencyModel.sample_oneway_batch

        model = Fixed(0.024)
        np.testing.assert_array_equal(
            model.sample_oneway_batch(np.random.default_rng(0), 5),
            np.full(5, 0.012),
        )
