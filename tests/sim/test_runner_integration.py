"""Integration tests: full-engine runs validated against queueing theory.

These are the simulator's ground-truth anchors (DESIGN.md §5): the DES
and the fast path must both agree with exact M/M/1 / M/M/k results, and
the two simulation paths must agree with each other.
"""

import numpy as np
import pytest

from repro.queueing.distributions import Exponential
from repro.queueing.mm1 import MM1
from repro.queueing.mmk import MMk
from repro.sim.loadbalancer import JoinShortestQueue
from repro.sim.network import ConstantLatency
from repro.sim.runner import run_comparison, run_deployment

MU = 13.0
SERVICE = Exponential(1.0 / MU)
EDGE_LAT = ConstantLatency.from_ms(1.0)
CLOUD_LAT = ConstantLatency.from_ms(25.0)


@pytest.fixture(scope="module")
def edge_run():
    return run_deployment(
        "edge",
        sites=5,
        servers_per_site=1,
        rate_per_site=8.0,
        service_dist=SERVICE,
        latency=EDGE_LAT,
        duration=3000.0,
        seed=11,
    )


@pytest.fixture(scope="module")
def cloud_run():
    return run_deployment(
        "cloud",
        sites=5,
        servers_per_site=1,
        rate_per_site=8.0,
        service_dist=SERVICE,
        latency=CLOUD_LAT,
        duration=3000.0,
        seed=12,
    )


class TestAgainstTheory:
    def test_edge_site_wait_matches_mm1(self, edge_run):
        # Each site is M/M/1 at lambda=8, mu=13.
        expected = MM1(8.0, MU).mean_wait()
        assert edge_run.wait.mean() == pytest.approx(expected, rel=0.08)

    def test_cloud_wait_matches_mmk(self, cloud_run):
        # Cloud sees 40 req/s over 5 pooled servers.
        expected = MMk(40.0, MU, 5).mean_wait()
        assert cloud_run.wait.mean() == pytest.approx(expected, rel=0.08)

    def test_edge_network_time_is_configured_rtt(self, edge_run):
        assert edge_run.network.mean() == pytest.approx(0.001, rel=1e-6)

    def test_cloud_response_matches_mmk(self, cloud_run):
        expected = MMk(40.0, MU, 5).mean_response()
        server_time = cloud_run.wait + cloud_run.service
        assert server_time.mean() == pytest.approx(expected, rel=0.08)

    def test_decomposition_identity(self, edge_run, cloud_run):
        for bd in (edge_run, cloud_run):
            np.testing.assert_allclose(
                bd.end_to_end, bd.network + bd.wait + bd.service, atol=1e-9
            )


class TestInversionEmergesInSimulation:
    def test_performance_inversion_at_high_utilization(self):
        """Paper §4.2: at high rho the 1 ms edge loses to a 25 ms cloud."""
        edge, cloud = run_comparison(
            sites=5,
            servers_per_site=1,
            rate_per_site=11.0,  # rho = 0.846
            service_dist=SERVICE,
            edge_latency=EDGE_LAT,
            cloud_latency=CLOUD_LAT,
            duration=3000.0,
            seed=21,
        )
        assert edge.end_to_end.mean() > cloud.end_to_end.mean()

    def test_edge_wins_at_low_utilization(self):
        edge, cloud = run_comparison(
            sites=5,
            servers_per_site=1,
            rate_per_site=2.0,  # rho = 0.154
            service_dist=SERVICE,
            edge_latency=EDGE_LAT,
            cloud_latency=CLOUD_LAT,
            duration=2000.0,
            seed=22,
        )
        assert edge.end_to_end.mean() < cloud.end_to_end.mean()


class TestLoadBalancedCloud:
    def test_jsq_worse_than_central_queue_but_close(self):
        kwargs = {
            "sites": 5,
            "servers_per_site": 1,
            "rate_per_site": 10.0,
            "service_dist": SERVICE,
            "latency": CLOUD_LAT,
            "duration": 2500.0,
        }
        central = run_deployment("cloud", seed=31, **kwargs)
        jsq = run_deployment(
            "cloud", seed=31, policy=JoinShortestQueue(), backends=5, **kwargs
        )
        assert jsq.wait.mean() >= central.wait.mean() * 0.95
        # JSQ stays within a small constant factor of the pooled ideal.
        assert jsq.wait.mean() < central.wait.mean() * 3.0


class TestSkewedRates:
    def test_site_rates_apply_per_site(self):
        bd = run_deployment(
            "edge",
            sites=2,
            servers_per_site=1,
            rate_per_site=0.0,
            site_rates=[10.0, 2.0],
            service_dist=SERVICE,
            latency=EDGE_LAT,
            duration=1500.0,
            seed=41,
        )
        hot = bd.for_site("site-0")
        cold = bd.for_site("site-1")
        assert len(hot) > 3 * len(cold)
        assert hot.wait.mean() > cold.wait.mean()

    def test_zero_rate_site_is_skipped(self):
        bd = run_deployment(
            "edge",
            sites=2,
            servers_per_site=1,
            rate_per_site=0.0,
            site_rates=[5.0, 0.0],
            service_dist=SERVICE,
            latency=EDGE_LAT,
            duration=500.0,
            seed=42,
        )
        assert len(bd.for_site("site-1")) == 0

    def test_bad_site_rates_rejected(self):
        with pytest.raises(ValueError):
            run_deployment(
                "edge",
                sites=2,
                servers_per_site=1,
                rate_per_site=1.0,
                site_rates=[1.0],
                service_dist=SERVICE,
                latency=EDGE_LAT,
                duration=10.0,
            )


class TestArgumentValidation:
    def test_bad_kind(self):
        with pytest.raises(ValueError):
            run_deployment(
                "fog",
                sites=1,
                servers_per_site=1,
                rate_per_site=1.0,
                service_dist=SERVICE,
                latency=EDGE_LAT,
                duration=10.0,
            )

    def test_bad_duration_and_warmup(self):
        common = {
            "sites": 1, "servers_per_site": 1, "rate_per_site": 1.0,
            "service_dist": SERVICE, "latency": EDGE_LAT,
        }
        with pytest.raises(ValueError):
            run_deployment("edge", duration=0.0, **common)
        with pytest.raises(ValueError):
            run_deployment("edge", duration=10.0, warmup_fraction=1.0, **common)
