"""Property-based tests of the event engine against a reference executor."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulation


class TestExecutionOrderProperty:
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=60
        )
    )
    @settings(max_examples=100)
    def test_matches_stable_sort_reference(self, delays):
        """Events run exactly in (time, insertion-order) order."""
        sim = Simulation(0)
        executed = []
        for i, d in enumerate(delays):
            sim.schedule(d, executed.append, i)
        sim.run()
        reference = [i for _, i in sorted((d, i) for i, d in enumerate(delays))]
        assert executed == reference

    @given(
        seed=st.integers(min_value=0, max_value=500),
        n=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=50)
    def test_clock_is_monotone_through_nested_scheduling(self, seed, n):
        rng = np.random.default_rng(seed)
        sim = Simulation(0)
        timestamps = []

        def fire(depth):
            timestamps.append(sim.now)
            if depth > 0:
                sim.schedule(float(rng.exponential(1.0)), fire, depth - 1)

        for _ in range(n):
            sim.schedule(float(rng.exponential(1.0)), fire, 3)
        sim.run()
        assert timestamps == sorted(timestamps)
        assert len(timestamps) == n * 4

    @given(until=st.floats(min_value=0.1, max_value=50.0))
    @settings(max_examples=50)
    def test_run_until_never_executes_future_events(self, until):
        sim = Simulation(0)
        executed = []
        for d in np.linspace(0.0, 100.0, 40):
            sim.schedule(float(d), executed.append, float(d))
        sim.run(until=until)
        assert all(t <= until for t in executed)
        assert sim.now == until

    @given(
        seed=st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=30)
    def test_two_identical_runs_identical_trace(self, seed):
        def run():
            sim = Simulation(seed)
            rng = sim.spawn_rng()
            log = []

            def fire(k):
                log.append((round(sim.now, 12), k))
                if k < 20:
                    sim.schedule(float(rng.exponential(0.3)), fire, k + 1)

            sim.schedule(0.0, fire, 0)
            sim.run()
            return log

        assert run() == run()
