"""Tests for the vectorized Kiefer-Wolfowitz fast path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.mm1 import MM1
from repro.queueing.mmk import MMk
from repro.sim.fastsim import (
    simulate_edge_system,
    simulate_fcfs_queue,
    simulate_single_queue_system,
)
from repro.sim.network import ConstantLatency, NormalJitterLatency


def poisson_workload(rate, mu, n, seed):
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0 / rate, n))
    services = rng.exponential(1.0 / mu, n)
    return arrivals, services


class TestFcfsQueue:
    def test_empty_input(self):
        assert simulate_fcfs_queue(np.array([]), np.array([]), 1).size == 0

    def test_deterministic_single_server(self):
        a = np.array([0.0, 0.0, 0.0])
        s = np.array([1.0, 1.0, 1.0])
        np.testing.assert_allclose(simulate_fcfs_queue(a, s, 1), [0.0, 1.0, 2.0])

    def test_deterministic_two_servers(self):
        a = np.array([0.0, 0.0, 0.0])
        s = np.array([1.0, 1.0, 1.0])
        np.testing.assert_allclose(simulate_fcfs_queue(a, s, 2), [0.0, 0.0, 1.0])

    def test_matches_mm1_theory(self):
        a, s = poisson_workload(8.0, 13.0, 400_000, seed=1)
        waits = simulate_fcfs_queue(a, s, 1)
        assert waits[50_000:].mean() == pytest.approx(MM1(8.0, 13.0).mean_wait(), rel=0.05)

    def test_matches_mmk_theory(self):
        a, s = poisson_workload(40.0, 13.0, 400_000, seed=2)
        waits = simulate_fcfs_queue(a, s, 5)
        assert waits[50_000:].mean() == pytest.approx(MMk(40.0, 13.0, 5).mean_wait(), rel=0.07)

    def test_matches_mmk_tail_theory(self):
        a, s = poisson_workload(40.0, 13.0, 400_000, seed=3)
        waits = simulate_fcfs_queue(a, s, 5)
        emp_p95 = np.quantile(waits[50_000:], 0.95)
        assert emp_p95 == pytest.approx(MMk(40.0, 13.0, 5).waiting_time_percentile(0.95), rel=0.1)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            simulate_fcfs_queue(np.array([1.0, 0.5]), np.array([1.0, 1.0]), 1)
        with pytest.raises(ValueError):
            simulate_fcfs_queue(np.array([0.0]), np.array([-1.0]), 1)
        with pytest.raises(ValueError):
            simulate_fcfs_queue(np.array([0.0]), np.array([1.0]), 0)
        with pytest.raises(ValueError):
            simulate_fcfs_queue(np.array([0.0, 1.0]), np.array([1.0]), 1)

    @given(
        n=st.integers(min_value=1, max_value=200),
        servers=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_waits_nonnegative_and_more_servers_never_hurt(self, n, servers, seed):
        rng = np.random.default_rng(seed)
        a = np.cumsum(rng.exponential(0.1, n))
        s = rng.exponential(0.2, n)
        w1 = simulate_fcfs_queue(a, s, servers)
        w2 = simulate_fcfs_queue(a, s, servers + 1)
        assert np.all(w1 >= 0)
        assert w2.sum() <= w1.sum() + 1e-9

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_single_server_lindley_equals_heap_path(self, seed):
        """The specialized c=1 recursion must agree with the generic heap."""
        rng = np.random.default_rng(seed)
        n = 300
        a = np.cumsum(rng.exponential(0.1, n))
        s = rng.exponential(0.09, n)
        lindley = simulate_fcfs_queue(a, s, 1)
        # Force the heap path by asking for 2 servers over a thinned
        # sequence is not equivalent; instead replicate the heap manually.
        import heapq

        free = [0.0]
        expected = np.empty(n)
        for i in range(n):
            t = heapq.heappop(free)
            start = max(t, a[i])
            expected[i] = start - a[i]
            heapq.heappush(free, start + s[i])
        np.testing.assert_allclose(lindley, expected, atol=1e-12)


class TestSystems:
    def test_single_queue_system_adds_constant_rtt(self):
        a = np.array([0.0, 1.0])
        s = np.array([0.1, 0.1])
        res = simulate_single_queue_system(a, s, 1, ConstantLatency.from_ms(25.0))
        np.testing.assert_allclose(res.network, 0.025)
        np.testing.assert_allclose(res.end_to_end, res.network + res.wait + res.service)

    def test_single_queue_system_with_jitter_reorders_safely(self):
        a, s = poisson_workload(8.0, 13.0, 50_000, seed=4)
        latency = NormalJitterLatency.from_ms(25.0, 2.0)
        res = simulate_single_queue_system(a, s, 1, latency, np.random.default_rng(0))
        assert np.all(res.wait >= 0)
        assert res.network.mean() == pytest.approx(0.025, rel=0.05)

    def test_edge_system_concatenates_sites(self):
        sites_a = [np.array([0.0, 1.0]), np.array([0.5])]
        sites_s = [np.array([0.1, 0.1]), np.array([0.2])]
        res = simulate_edge_system(sites_a, sites_s, 1, ConstantLatency.from_ms(1.0))
        assert len(res) == 3
        assert set(res.site.tolist()) == {0, 1}
        assert len(res.for_site(0)) == 2

    def test_edge_system_rejects_mismatch(self):
        with pytest.raises(ValueError):
            simulate_edge_system([np.array([0.0])], [], 1, ConstantLatency(0.001))

    def test_after_trims_by_arrival(self):
        a = np.array([0.0, 10.0, 20.0])
        s = np.array([0.1, 0.1, 0.1])
        res = simulate_single_queue_system(a, s, 1, ConstantLatency(0.0))
        assert len(res.after(5.0)) == 2

    def test_edge_vs_cloud_pooling_effect(self):
        """Same aggregate workload: pooled cloud queue waits less than edge."""
        k, rate, mu, n = 5, 10.0, 13.0, 60_000
        rng = np.random.default_rng(5)
        site_a = [np.cumsum(rng.exponential(1.0 / rate, n)) for _ in range(k)]
        site_s = [rng.exponential(1.0 / mu, n) for _ in range(k)]
        edge = simulate_edge_system(site_a, site_s, 1, ConstantLatency(0.0))
        merged = np.concatenate(site_a)
        order = np.argsort(merged, kind="stable")
        cloud = simulate_single_queue_system(
            merged[order], np.concatenate(site_s)[order], k, ConstantLatency(0.0)
        )
        assert cloud.wait.mean() < edge.wait.mean()
