"""Tests for network latency models and dispatch policies."""

import numpy as np
import pytest

from repro.queueing.distributions import Deterministic
from repro.sim.engine import Simulation
from repro.sim.loadbalancer import (
    JoinShortestQueue,
    LeastWorkLeft,
    RandomDispatch,
    RoundRobin,
)
from repro.sim.network import ConstantLatency, LognormalLatency, NormalJitterLatency
from repro.sim.request import Request
from repro.sim.station import Station

RNG = np.random.default_rng(0)


class TestConstantLatency:
    def test_oneway_is_half_rtt(self):
        m = ConstantLatency.from_ms(25.0)
        assert m.sample_oneway(RNG) == pytest.approx(0.0125)
        assert m.mean_rtt_ms == pytest.approx(25.0)

    def test_zero_allowed(self):
        assert ConstantLatency(0.0).sample_oneway(RNG) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)


class TestNormalJitterLatency:
    def test_mean_close_to_target(self):
        m = NormalJitterLatency.from_ms(25.0, 1.0)
        xs = np.array([m.sample_oneway(RNG) for _ in range(20_000)])
        assert 2 * xs.mean() == pytest.approx(0.025, rel=0.02)

    def test_floor_respected(self):
        m = NormalJitterLatency.from_ms(25.0, 10.0)
        xs = np.array([m.sample_oneway(RNG) for _ in range(10_000)])
        assert xs.min() >= m.floor

    def test_invalid_floor(self):
        with pytest.raises(ValueError):
            NormalJitterLatency(0.025, 0.001, floor=0.02)


class TestLognormalLatency:
    def test_mean_close_to_target(self):
        m = LognormalLatency.from_ms(54.0, cv2=0.25)
        xs = np.array([m.sample_oneway(RNG) for _ in range(50_000)])
        assert 2 * xs.mean() == pytest.approx(0.054, rel=0.03)

    def test_has_heavier_tail_than_normal(self):
        ln = LognormalLatency.from_ms(54.0, cv2=1.0)
        xs = np.array([ln.sample_oneway(RNG) for _ in range(50_000)])
        assert xs.max() > 3 * xs.mean()

    def test_invalid(self):
        with pytest.raises(ValueError):
            LognormalLatency(0.054, cv2=0.0)


def stations_with_occupancy(occupancies):
    """Build stations and pre-load them with the given in-system counts."""
    sim = Simulation(0)
    stations = []
    for i, n in enumerate(occupancies):
        st = Station(sim, 1, Deterministic(100.0), name=f"s{i}")
        stations.append(st)
        for rid in range(n):
            sim.schedule(0.0, st.arrive, Request(rid, created=0.0))
    sim.run(until=0.0)
    return stations


class TestPolicies:
    def test_round_robin_cycles(self):
        stations = stations_with_occupancy([0, 0, 0])
        rr = RoundRobin()
        picks = [rr.choose(stations, RNG).name for _ in range(6)]
        assert picks == ["s0", "s1", "s2", "s0", "s1", "s2"]

    def test_random_covers_all(self):
        stations = stations_with_occupancy([0, 0, 0])
        policy = RandomDispatch()
        picks = {policy.choose(stations, RNG).name for _ in range(200)}
        assert picks == {"s0", "s1", "s2"}

    def test_jsq_picks_emptiest(self):
        stations = stations_with_occupancy([3, 1, 2])
        assert JoinShortestQueue().choose(stations, RNG).name == "s1"

    def test_jsq_breaks_ties_randomly(self):
        stations = stations_with_occupancy([1, 1, 5])
        picks = {JoinShortestQueue().choose(stations, RNG).name for _ in range(100)}
        assert picks == {"s0", "s1"}

    def test_least_work_prefers_smallest_backlog(self):
        stations = stations_with_occupancy([4, 1, 2])
        assert LeastWorkLeft().choose(stations, RNG).name == "s1"

    def test_empty_backends_rejected(self):
        for policy in (RoundRobin(), RandomDispatch(), JoinShortestQueue(), LeastWorkLeft()):
            with pytest.raises(ValueError):
                policy.choose([], RNG)


class TestHealthAwareness:
    def test_jsq_never_picks_failed_station(self):
        stations = stations_with_occupancy([0, 3, 3])
        stations[0].fail()  # emptiest, but down
        picks = {JoinShortestQueue().choose(stations, RNG).name for _ in range(50)}
        assert "s0" not in picks

    def test_least_work_never_picks_failed_station(self):
        stations = stations_with_occupancy([0, 3, 3])
        stations[0].fail()
        picks = {LeastWorkLeft().choose(stations, RNG).name for _ in range(50)}
        assert "s0" not in picks

    def test_all_failed_falls_back_to_full_set(self):
        stations = stations_with_occupancy([1, 2])
        for st in stations:
            st.fail()
        # Degenerate case: nothing healthy; pick among them all anyway.
        assert JoinShortestQueue().choose(stations, RNG).name == "s0"

    def test_repair_restores_eligibility(self):
        stations = stations_with_occupancy([0, 3])
        stations[0].fail()
        stations[0].repair()
        assert JoinShortestQueue().choose(stations, RNG).name == "s0"


class TestBackpressureDispatch:
    def test_steers_around_saturated_backend(self):
        from repro.sim.loadbalancer import BackpressureDispatch

        stations = stations_with_occupancy([5, 1, 1])
        policy = BackpressureDispatch(pressure_limit=2.0)
        picks = {policy.choose(stations, RNG).name for _ in range(50)}
        assert "s0" not in picks
        assert policy.steered == 50

    def test_no_steering_when_all_open(self):
        from repro.sim.loadbalancer import BackpressureDispatch

        stations = stations_with_occupancy([1, 0, 1])
        policy = BackpressureDispatch(pressure_limit=4.0)
        policy.choose(stations, RNG)
        assert policy.steered == 0

    def test_all_saturated_picks_least_pressured(self):
        from repro.sim.loadbalancer import BackpressureDispatch

        stations = stations_with_occupancy([5, 3, 4])
        policy = BackpressureDispatch(pressure_limit=1.0)
        assert policy.choose(stations, RNG).name == "s1"

    def test_skips_failed_stations(self):
        from repro.sim.loadbalancer import BackpressureDispatch

        stations = stations_with_occupancy([0, 3, 3])
        stations[0].fail()
        picks = {
            BackpressureDispatch(pressure_limit=10.0).choose(stations, RNG).name
            for _ in range(50)
        }
        assert "s0" not in picks

    def test_validation(self):
        from repro.sim.loadbalancer import BackpressureDispatch

        with pytest.raises(ValueError):
            BackpressureDispatch(pressure_limit=0.0)
