"""Tests for server-side overload control: disciplines, brownout, counters."""

import pytest

from repro.mitigation.admission import AdaptiveAdmission, StaticConcurrencyLimit
from repro.queueing.distributions import Deterministic
from repro.sim.engine import Simulation
from repro.sim.network import ConstantLatency
from repro.sim.overload import (
    AdaptiveLIFODiscipline,
    BrownoutController,
    CoDelDiscipline,
    FIFODiscipline,
)
from repro.sim.request import Request
from repro.sim.station import Station
from repro.sim.topology import EdgeDeployment, EdgeSite


def make_request(rid, service=None, priority=0):
    return Request(rid, created=0.0, service_time=service, priority=priority)


class TestDisciplinePlumbing:
    def test_default_is_fifo(self):
        sim = Simulation(0)
        st = Station(sim, 1, Deterministic(1.0))
        assert isinstance(st.discipline, FIFODiscipline)

    def test_discipline_cannot_be_shared(self):
        sim = Simulation(0)
        d = FIFODiscipline()
        Station(sim, 1, Deterministic(1.0), discipline=d)
        with pytest.raises(ValueError):
            Station(sim, 1, Deterministic(1.0), discipline=d)

    def test_rebinding_same_station_is_idempotent(self):
        sim = Simulation(0)
        d = FIFODiscipline()
        st = Station(sim, 1, Deterministic(1.0), discipline=d)
        d.bind(st)  # no error

    def test_cancel_removes_from_custom_discipline(self):
        sim = Simulation(0)
        st = Station(sim, 1, Deterministic(1.0), discipline=CoDelDiscipline(target=10.0))
        waiting = make_request(1)
        sim.schedule(0.0, st.arrive, make_request(0))
        sim.schedule(0.0, st.arrive, waiting)
        sim.run(until=0.5)
        assert st.cancel(waiting)
        assert st.queue_length == 0
        sim.run()
        assert st.completions == 1


class TestAdaptiveLIFO:
    def test_fifo_below_threshold(self):
        sim = Simulation(0)
        st = Station(
            sim, 1, Deterministic(1.0), discipline=AdaptiveLIFODiscipline(pressure_threshold=8)
        )
        done = []
        st.on_departure = lambda r: done.append(r.rid)
        for rid in range(3):
            sim.schedule(0.0, st.arrive, make_request(rid))
        sim.run()
        assert done == [0, 1, 2]
        assert st.discipline.lifo_pops == 0

    def test_newest_first_above_threshold(self):
        sim = Simulation(0)
        st = Station(
            sim, 1, Deterministic(1.0), discipline=AdaptiveLIFODiscipline(pressure_threshold=2)
        )
        done = []
        st.on_departure = lambda r: done.append(r.rid)
        for rid in range(4):
            sim.schedule(0.0, st.arrive, make_request(rid))
        sim.run()
        # r0 in service; backlog [1,2,3] exceeds threshold -> r3 jumps the
        # line; remaining backlog of 2 is served FIFO.
        assert done == [0, 3, 1, 2]
        assert st.discipline.lifo_pops == 1

    def test_pure_lifo_with_zero_threshold(self):
        sim = Simulation(0)
        st = Station(
            sim, 1, Deterministic(1.0), discipline=AdaptiveLIFODiscipline(pressure_threshold=0)
        )
        done = []
        st.on_departure = lambda r: done.append(r.rid)
        for rid in range(3):
            sim.schedule(0.0, st.arrive, make_request(rid))
        sim.run()
        assert done == [0, 2, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveLIFODiscipline(pressure_threshold=-1)


class TestCoDel:
    def test_no_shedding_when_sojourn_below_target(self):
        sim = Simulation(0)
        st = Station(sim, 2, Deterministic(0.05), discipline=CoDelDiscipline(target=1.0))
        for rid in range(10):
            sim.schedule(0.01 * rid, st.arrive, make_request(rid))
        sim.run()
        assert st.shed == 0
        assert st.completions == 10

    def test_sheds_stale_requests_under_sustained_overload(self):
        sim = Simulation(0)
        st = Station(
            sim, 1, Deterministic(1.0),
            discipline=CoDelDiscipline(target=0.1, interval=0.2),
        )
        shed = []
        st.on_shed = shed.append
        for rid in range(5):
            sim.schedule(0.0, st.arrive, make_request(rid))
        sim.run()
        # r0 served at once.  r1 pops at t=1 stale but inside the tolerated
        # interval.  r2 confirms sustained excess and is shed; r3 serves
        # between paced drops; r4 is shed by the escalating drop law.
        assert [r.rid for r in shed] == [2, 4]
        assert st.shed == 2
        assert st.completions == 3
        assert st.arrivals == st.completions + st.shed

    def test_transient_burst_tolerated(self):
        sim = Simulation(0)
        st = Station(
            sim, 1, Deterministic(0.3),
            discipline=CoDelDiscipline(target=0.1, interval=10.0),
        )
        for rid in range(4):
            sim.schedule(0.0, st.arrive, make_request(rid))
        sim.run()
        # Sojourns exceed target but the excursion never outlasts the
        # interval-long grace period.
        assert st.shed == 0
        assert st.completions == 4

    def test_interval_defaults_to_twice_target(self):
        d = CoDelDiscipline(target=0.25)
        assert d.interval == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            CoDelDiscipline(target=0.0)
        with pytest.raises(ValueError):
            CoDelDiscipline(target=0.1, interval=0.0)


class TestBrownout:
    def test_idle_station_serves_full_quality(self):
        sim = Simulation(0)
        st = Station(
            sim, 1, Deterministic(1.0),
            brownout=BrownoutController(degraded_scale=0.5, target_wait=1.0, full_wait=4.0),
        )
        req = make_request(0)
        sim.schedule(0.0, st.arrive, req)
        sim.run()
        assert not req.degraded
        assert req.service_time == pytest.approx(1.0)
        assert st.degraded == 0

    def test_degrades_under_pressure_and_scales_service(self):
        sim = Simulation(0)
        st = Station(
            sim, 1, Deterministic(1.0),
            brownout=BrownoutController(degraded_scale=0.5, target_wait=1.0, full_wait=4.0),
        )
        done = []
        st.on_departure = lambda r: done.append(r)
        for rid in range(7):
            sim.schedule(0.0, st.arrive, make_request(rid))
        sim.run()
        degraded = [r for r in done if r.degraded]
        assert degraded  # the deep backlog pushed the dimmer to 1
        assert all(r.service_time == pytest.approx(0.5) for r in degraded)
        assert st.degraded == len(degraded)
        assert 0.0 < st.degraded_fraction <= 1.0

    def test_controller_cannot_be_shared(self):
        sim = Simulation(0)
        b = BrownoutController(target_wait=1.0)
        Station(sim, 1, Deterministic(1.0), brownout=b)
        with pytest.raises(ValueError):
            Station(sim, 1, Deterministic(1.0), brownout=b)

    def test_dimmer_ramp(self):
        sim = Simulation(0)
        b = BrownoutController(degraded_scale=0.4, target_wait=1.0, full_wait=3.0)
        st = Station(sim, 1, Deterministic(1.0), brownout=b)
        assert b.dimmer(st) == 0.0
        sim.schedule(0.0, st.arrive, make_request(0))
        for rid in range(1, 5):
            sim.schedule(0.0, st.arrive, make_request(rid, service=1.0))
        sim.run(until=0.5)
        # 4 queued seconds + 0.5 residual -> midway up the ramp.
        assert 0.0 < b.dimmer(st) <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BrownoutController(degraded_scale=1.5)
        with pytest.raises(ValueError):
            BrownoutController(target_wait=-1.0)
        with pytest.raises(ValueError):
            BrownoutController(target_wait=2.0, full_wait=1.0)


class TestRefusalTaxonomy:
    def test_rejected_dropped_shed_are_distinct(self):
        sim = Simulation(0)
        st = Station(
            sim, 1, Deterministic(1.0),
            queue_capacity=1,
            admission=AdaptiveAdmission(StaticConcurrencyLimit(4.0)),
        )
        # 1 serving + 1 queued fills capacity; next two arrivals drop
        # (admission still open at in_system=2); arrivals past the
        # concurrency limit would be rejected.
        for rid in range(4):
            sim.schedule(0.0, st.arrive, make_request(rid))
        sim.run(until=0.5)
        assert st.drops == 2
        assert st.rejected == 0
        assert st.shed == 0
        assert st.dropped == st.drops  # alias stays in sync

    def test_refusal_rate_counts_all_three(self):
        sim = Simulation(0)
        st = Station(sim, 1, Deterministic(1.0), queue_capacity=0)
        for rid in range(4):
            sim.schedule(0.0, st.arrive, make_request(rid))
        sim.run(until=0.5)
        assert st.refusal_rate == pytest.approx(3 / 4)
        assert st.loss_rate == pytest.approx(3 / 4)

    def test_conservation_under_mixed_refusals(self):
        sim = Simulation(7)
        st = Station(
            sim, 2, Deterministic(0.4),
            queue_capacity=4,
            discipline=CoDelDiscipline(target=0.2, interval=0.4),
        )
        for rid in range(50):
            sim.schedule(0.05 * rid, st.arrive, make_request(rid))
        sim.run()
        assert st.arrivals == st.completions + st.drops + st.shed + st.rejected
        assert st.busy == 0 and st.queue_length == 0

    def test_pressure_signal(self):
        sim = Simulation(0)
        st = Station(sim, 2, Deterministic(1.0))
        assert st.pressure() == 0.0
        for rid in range(6):
            sim.schedule(0.0, st.arrive, make_request(rid))
        sim.run(until=0.5)
        assert st.pressure() == pytest.approx(3.0)  # 6 in system / 2 servers


class TestDeploymentOutcomes:
    def _run_site(self, **station_kw):
        sim = Simulation(0)
        site = EdgeSite(
            sim, "s0", 1, ConstantLatency.from_ms(2.0), Deterministic(1.0), **station_kw
        )
        edge = EdgeDeployment(sim, [site])
        outcomes = []
        edge.on_complete = lambda r: outcomes.append(r.outcome)
        for rid in range(4):
            sim.schedule(0.0, edge.submit, Request(rid, site="s0", created=0.0))
        sim.run()
        return edge, outcomes

    def test_shed_surfaces_with_outcome(self):
        edge, outcomes = self._run_site(
            discipline=CoDelDiscipline(target=0.1, interval=0.2)
        )
        assert edge.shed == outcomes.count("shed") > 0
        assert edge.dropped == 0 and edge.rejected == 0

    def test_rejected_surfaces_with_outcome(self):
        edge, outcomes = self._run_site(
            admission=AdaptiveAdmission(StaticConcurrencyLimit(2.0))
        )
        assert edge.rejected == outcomes.count("rejected") == 2
        assert edge.dropped == 0 and edge.shed == 0

    def test_closed_population_conserved(self):
        edge, outcomes = self._run_site(queue_capacity=1)
        # Every submitted request resolves exactly once through on_complete.
        assert len(outcomes) == 4
        # 1 serving + 1 queued; the other two drop.
        assert outcomes.count("dropped") == edge.dropped == 2


class TestPriorityRequests:
    def test_priority_stamped_and_defaulted(self):
        assert Request(0).priority == 0
        assert Request(0, priority=2).priority == 2
        assert Request(0, priority=1.0).priority == 1  # coerced to int

    def test_open_loop_source_priority_mix(self):
        from repro.queueing.distributions import Exponential
        from repro.sim.client import OpenLoopSource

        sim = Simulation(3)
        seen = []

        class Sink:
            def submit(self, request):
                seen.append(request.priority)

        OpenLoopSource(
            sim, Sink(), Exponential(0.01), stop_time=5.0,
            priority=lambda rng: int(rng.integers(3)),
        )
        sim.run()
        assert set(seen) == {0, 1, 2}
