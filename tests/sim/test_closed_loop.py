"""Tests for the closed-loop client model and the LB-overhead knob."""

import numpy as np
import pytest

from repro.queueing.distributions import Deterministic, Exponential
from repro.sim.client import ClosedLoopSource, OpenLoopSource
from repro.sim.engine import Simulation
from repro.sim.network import ConstantLatency
from repro.sim.topology import CloudDeployment, EdgeDeployment, EdgeSite

MU = 13.0
SERVICE = Exponential(1.0 / MU)


def run_closed(users, think_mean, duration=600.0, servers=1, seed=0):
    sim = Simulation(seed)
    cloud = CloudDeployment(
        sim, servers=servers, latency=ConstantLatency(0.001), service_dist=SERVICE
    )
    src = ClosedLoopSource(
        sim, cloud, users=users, think=Exponential(think_mean), stop_time=duration
    )
    sim.run()
    return cloud, src


class TestClosedLoopSource:
    def test_concurrency_never_exceeds_population(self):
        cloud, src = run_closed(users=4, think_mean=0.01, duration=200.0)
        st = cloud.stations[0]
        # With 4 users, at most 4 requests can ever be in the station.
        assert st.arrivals == len(cloud.log)
        bd = cloud.log.breakdown()
        # Queue wait is bounded: at most 3 requests ahead of you.
        assert bd.wait.max() < 10 * (4 / MU)

    def test_interactive_law(self):
        """Closed-system throughput: X = N / (E[T] + E[Z])."""
        cloud, src = run_closed(users=10, think_mean=0.5, duration=2000.0, servers=4)
        bd = cloud.log.breakdown()
        duration = bd.created.max() - bd.created.min()
        throughput = len(bd) / duration
        expected = 10.0 / (bd.end_to_end.mean() + 0.5)
        assert throughput == pytest.approx(expected, rel=0.05)

    def test_self_throttles_under_congestion(self):
        """Closed loop saturates gracefully where open loop diverges."""
        # Open loop at rho=1.3 on one server: waits grow with the run.
        sim = Simulation(1)
        open_cloud = CloudDeployment(
            sim, servers=1, latency=ConstantLatency(0.001), service_dist=SERVICE
        )
        OpenLoopSource(sim, open_cloud, Exponential(1.0 / 17.0), stop_time=400.0)
        sim.run()
        open_wait = open_cloud.log.breakdown().after(200.0).wait.mean()
        # Closed loop with enough users to saturate: bounded waits.
        closed_cloud, _ = run_closed(users=8, think_mean=0.01, duration=400.0)
        closed_wait = closed_cloud.log.breakdown().after(200.0).wait.mean()
        assert closed_wait < open_wait / 3

    def test_works_on_edge_deployment(self):
        sim = Simulation(2)
        edge = EdgeDeployment(
            sim, [EdgeSite(sim, "s0", 1, ConstantLatency(0.001), SERVICE)]
        )
        src = ClosedLoopSource(
            sim, edge, users=3, think=Exponential(0.1), site="s0", stop_time=200.0
        )
        sim.run()
        assert len(edge.log) == src.generated
        assert len(edge.log) > 100

    def test_chains_existing_hook(self):
        sim = Simulation(3)
        cloud = CloudDeployment(
            sim, servers=1, latency=ConstantLatency(0.0), service_dist=SERVICE
        )
        seen = []
        cloud.on_complete = seen.append
        ClosedLoopSource(sim, cloud, users=2, think=Deterministic(0.05), stop_time=50.0)
        sim.run()
        assert len(seen) == len(cloud.log)

    def test_validation(self):
        sim = Simulation(0)
        cloud = CloudDeployment(sim, servers=1, latency=ConstantLatency(0.0))
        with pytest.raises(ValueError):
            ClosedLoopSource(sim, cloud, users=0, think=Deterministic(0.1))
        with pytest.raises(TypeError):
            ClosedLoopSource(sim, object(), users=1, think=Deterministic(0.1))


class TestLbOverhead:
    def test_adds_to_network_time(self):
        sim = Simulation(0)
        cloud = CloudDeployment(
            sim, servers=1, latency=ConstantLatency(0.020),
            service_dist=Deterministic(0.01), lb_overhead=0.002,
        )
        from repro.sim.request import Request

        req = Request(0, created=0.0)
        sim.schedule(0.0, cloud.submit, req)
        sim.run()
        # one-way 10ms + 2ms LB + return 10ms.
        assert req.network_time == pytest.approx(0.022)

    def test_negative_rejected(self):
        sim = Simulation(0)
        with pytest.raises(ValueError):
            CloudDeployment(
                sim, servers=1, latency=ConstantLatency(0.0), lb_overhead=-0.001
            )


class TestClosedLoopDropConservation:
    """Regression: bounded-queue drops must not leak virtual users.

    Before drops were routed through ``on_complete``, a dropped request
    silently removed its virtual user from the population — a long run
    against a small queue would bleed the closed loop down to zero
    concurrency.
    """

    def _run(self, queue_capacity, duration=300.0):
        sim = Simulation(5)
        site = EdgeSite(
            sim, "s0", 1, ConstantLatency(0.001), Deterministic(0.5),
            queue_capacity=queue_capacity,
        )
        edge = EdgeDeployment(sim, [site])
        src = ClosedLoopSource(
            sim, edge, users=8, think=Exponential(0.1), site="s0",
            stop_time=duration,
        )
        sim.run()
        return edge, src

    def test_population_survives_drops(self):
        edge, src = self._run(queue_capacity=2)
        assert edge.dropped > 0  # the bounded queue actually shed load
        # Every user got a response (served or dropped) for every
        # request it issued: nobody is stuck waiting.
        assert src.outstanding == 0
        assert src.failed_responses == edge.dropped
        assert src.generated == len(edge.log) + edge.dropped

    def test_dropped_requests_marked_and_kept_out_of_latency_log(self):
        edge, src = self._run(queue_capacity=1)
        assert edge.dropped > 0
        # The latency log only holds served requests (no NaN rows).
        bd = edge.log.breakdown()
        assert len(bd) == src.generated - edge.dropped
        assert np.isfinite(bd.end_to_end).all()

    def test_unbounded_queue_unchanged(self):
        edge, src = self._run(queue_capacity=None)
        assert edge.dropped == 0
        assert src.failed_responses == 0
        assert src.outstanding == 0
