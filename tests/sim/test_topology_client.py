"""Tests for deployments, sources and request tracing."""

import numpy as np
import pytest

from repro.queueing.distributions import Deterministic, Exponential
from repro.sim.client import OpenLoopSource, TraceSource
from repro.sim.engine import Simulation
from repro.sim.loadbalancer import RoundRobin
from repro.sim.network import ConstantLatency
from repro.sim.request import Request
from repro.sim.topology import CloudDeployment, EdgeDeployment, EdgeSite


def build_edge(sim, n_sites=2, servers=1, rtt_ms=1.0, service=0.1):
    return EdgeDeployment(
        sim,
        [
            EdgeSite(sim, f"site-{i}", servers, ConstantLatency.from_ms(rtt_ms), Deterministic(service))
            for i in range(n_sites)
        ],
    )


class TestEdgeDeployment:
    def test_lifecycle_timestamps_decompose(self):
        sim = Simulation(0)
        edge = build_edge(sim, n_sites=1, rtt_ms=10.0, service=0.5)
        req = Request(0, site="site-0", created=0.0)
        sim.schedule(0.0, edge.submit, req)
        sim.run()
        assert req.is_complete
        assert req.network_time == pytest.approx(0.010)
        assert req.service_time == pytest.approx(0.5)
        assert req.wait == pytest.approx(0.0)
        assert req.end_to_end == pytest.approx(0.510)
        # Equation 1: T = n + w + s.
        assert req.end_to_end == pytest.approx(req.network_time + req.wait + req.service_time)

    def test_sites_have_independent_queues(self):
        sim = Simulation(0)
        edge = build_edge(sim, n_sites=2, service=1.0)
        reqs = [Request(i, site=f"site-{i % 2}", created=0.0) for i in range(4)]
        for r in reqs:
            sim.schedule(0.0, edge.submit, r)
        sim.run()
        # Each site got 2 requests; per-site queues serialize only locally.
        waits = sorted(r.wait for r in reqs)
        assert waits == pytest.approx([0.0, 0.0, 1.0, 1.0])

    def test_unknown_site_rejected(self):
        sim = Simulation(0)
        edge = build_edge(sim)
        req = Request(0, site="nowhere", created=0.0)
        sim.schedule(0.0, edge.submit, req)
        with pytest.raises(KeyError):
            sim.run()

    def test_duplicate_site_names_rejected(self):
        sim = Simulation(0)
        sites = [
            EdgeSite(sim, "dup", 1, ConstantLatency(0.001)),
            EdgeSite(sim, "dup", 1, ConstantLatency(0.001)),
        ]
        with pytest.raises(ValueError):
            EdgeDeployment(sim, sites)

    def test_router_redirects_and_counts(self):
        sim = Simulation(0)
        edge = build_edge(sim, n_sites=2, service=0.1)

        class AlwaysOther:
            def route(self, deployment, request, home):
                other = next(s for s in deployment.sites if s is not home)
                return other, 0.005

        edge.router = AlwaysOther()
        req = Request(0, site="site-0", created=0.0)
        sim.schedule(0.0, edge.submit, req)
        sim.run()
        assert req.redirects == 1
        assert req.site == "site-1"
        # Extra one-way hop shows up in the network component.
        assert req.network_time == pytest.approx(0.001 + 0.005)


class TestCloudDeployment:
    def test_central_queue_pools_servers(self):
        sim = Simulation(0)
        cloud = CloudDeployment(
            sim, servers=2, latency=ConstantLatency(0.0), service_dist=Deterministic(1.0)
        )
        reqs = [Request(i, created=0.0) for i in range(2)]
        for r in reqs:
            sim.schedule(0.0, cloud.submit, r)
        sim.run()
        assert all(r.wait == 0.0 for r in reqs)

    def test_policy_requires_backends(self):
        sim = Simulation(0)
        with pytest.raises(ValueError):
            CloudDeployment(
                sim, servers=4, latency=ConstantLatency(0.0), policy=RoundRobin()
            )

    def test_uneven_backends_rejected(self):
        sim = Simulation(0)
        with pytest.raises(ValueError):
            CloudDeployment(
                sim, servers=5, latency=ConstantLatency(0.0), policy=RoundRobin(), backends=2
            )

    def test_dispatched_cloud_can_queue_while_pool_idle(self):
        """Per-backend queues are strictly worse than the central queue."""
        sim = Simulation(0)
        cloud = CloudDeployment(
            sim,
            servers=2,
            latency=ConstantLatency(0.0),
            service_dist=Deterministic(1.0),
            policy=RoundRobin(),
            backends=2,
        )
        reqs = [Request(i, created=0.0) for i in range(3)]
        for r in reqs:
            sim.schedule(0.0, cloud.submit, r)
        sim.run()
        # Round robin sends requests 0 and 2 to backend 0: request 2 waits
        # even though backend 1 is idle after t=1.
        assert reqs[2].wait == pytest.approx(1.0)

    def test_log_collects_all(self):
        sim = Simulation(0)
        cloud = CloudDeployment(
            sim, servers=1, latency=ConstantLatency(0.002), service_dist=Deterministic(0.1)
        )
        for i in range(5):
            sim.schedule(0.1 * i, cloud.submit, Request(i, created=0.1 * i))
        sim.run()
        assert len(cloud.log) == 5
        bd = cloud.log.breakdown()
        assert len(bd) == 5
        np.testing.assert_allclose(bd.network, 0.002)


class TestOpenLoopSource:
    def test_rate_approximately_achieved(self):
        sim = Simulation(3)
        cloud = CloudDeployment(
            sim, servers=50, latency=ConstantLatency(0.0), service_dist=Deterministic(0.01)
        )
        src = OpenLoopSource(sim, cloud, Exponential(1.0 / 20.0), stop_time=100.0)
        sim.run()
        assert src.generated == pytest.approx(2000, rel=0.1)

    def test_stop_time_respected(self):
        sim = Simulation(0)
        cloud = CloudDeployment(
            sim, servers=1, latency=ConstantLatency(0.0), service_dist=Deterministic(0.001)
        )
        OpenLoopSource(sim, cloud, Deterministic(1.0), stop_time=5.5)
        sim.run()
        assert all(r.created <= 5.5 for r in cloud.log.requests)


class TestTraceSource:
    def test_replays_exact_times_and_services(self):
        sim = Simulation(0)
        cloud = CloudDeployment(sim, servers=1, latency=ConstantLatency(0.0))
        TraceSource(sim, cloud, [0.5, 1.5], [0.1, 0.2])
        sim.run()
        bd = cloud.log.breakdown()
        np.testing.assert_allclose(sorted(bd.created), [0.5, 1.5])
        np.testing.assert_allclose(sorted(bd.service), [0.1, 0.2])

    def test_rejects_decreasing_times(self):
        sim = Simulation(0)
        cloud = CloudDeployment(sim, servers=1, latency=ConstantLatency(0.0))
        with pytest.raises(ValueError):
            TraceSource(sim, cloud, [1.0, 0.5])

    def test_rejects_mismatched_lengths(self):
        sim = Simulation(0)
        cloud = CloudDeployment(sim, servers=1, latency=ConstantLatency(0.0))
        with pytest.raises(ValueError):
            TraceSource(sim, cloud, [1.0, 2.0], [0.1])

    def test_rejects_negative_service(self):
        sim = Simulation(0)
        cloud = CloudDeployment(sim, servers=1, latency=ConstantLatency(0.0))
        with pytest.raises(ValueError):
            TraceSource(sim, cloud, [1.0], [-0.1])

    def test_lazy_scheduling_keeps_calendar_small(self):
        # Regression: the source used to push the whole trace into the
        # event calendar up front (O(n) heap entries); now only the next
        # trace event is ever pending.
        sim = Simulation(0)
        cloud = CloudDeployment(
            sim, servers=4, latency=ConstantLatency(0.0),
            service_dist=Deterministic(0.001),
        )
        n = 50_000
        src = TraceSource(sim, cloud, np.linspace(1.0, 100.0, n))
        assert sim.pending_events == 1  # just the first trace event
        assert src.remaining == n
        sim.run(until=50.0)
        assert sim.pending_events < 20  # next event + in-flight work only
        assert 0 < src.remaining < n
        assert src.generated == n - src.remaining
        sim.run()
        assert src.remaining == 0 and src.generated == n
        assert len(cloud.log) == n

    def test_generated_counts_fired_events_only(self):
        sim = Simulation(0)
        cloud = CloudDeployment(sim, servers=1, latency=ConstantLatency(0.0))
        src = TraceSource(sim, cloud, [0.5, 1.5, 2.5], [0.1, 0.1, 0.1])
        sim.run(until=1.0)
        assert src.generated == 1 and src.remaining == 2


class TestBreakdown:
    def test_after_filters_by_creation_time(self):
        sim = Simulation(0)
        cloud = CloudDeployment(
            sim, servers=1, latency=ConstantLatency(0.0), service_dist=Deterministic(0.01)
        )
        TraceSource(sim, cloud, [0.0, 1.0, 2.0, 3.0])
        sim.run()
        bd = cloud.log.breakdown()
        assert len(bd.after(1.5)) == 2

    def test_for_site_filters(self):
        sim = Simulation(0)
        edge = build_edge(sim, n_sites=2)
        for i in range(4):
            sim.schedule(0.0, edge.submit, Request(i, site=f"site-{i % 2}", created=0.0))
        sim.run()
        bd = edge.log.breakdown()
        assert len(bd.for_site("site-0")) == 2
        assert bd.sites == ["site-0", "site-1"]

    def test_incomplete_request_rejected_by_log(self):
        from repro.sim.tracing import RequestLog

        log = RequestLog()
        with pytest.raises(ValueError):
            log.add(Request(0, created=0.0))
