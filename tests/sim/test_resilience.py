"""Tests for the request-level resilience layer.

Covers the policy objects (retry backoff, hedging, breaker sizing), the
circuit-breaker state machine in isolation, and the integrated
:class:`ResilientClient` behaviours: timeouts, retries after transient
loss and drops, hedging, failover, breaker trip/recovery, and
closed-loop population conservation through the client.
"""

import numpy as np
import pytest

from repro.queueing.distributions import Deterministic, Exponential
from repro.sim.client import ClosedLoopSource, OpenLoopSource
from repro.sim.engine import Simulation
from repro.sim.network import ConstantLatency, LossyLatency
from repro.sim.request import Request
from repro.sim.resilience import (
    BreakerConfig,
    CircuitBreaker,
    HedgePolicy,
    ResilientClient,
    RetryPolicy,
)
from repro.sim.topology import CloudDeployment, EdgeDeployment, EdgeSite


def _edge(sim, service=None, sites=1, servers=1,
          queue_capacity=None, latency=None):
    service = Deterministic(0.1) if service is None else service
    built = [
        EdgeSite(
            sim, f"s{i}", servers,
            latency if latency is not None else ConstantLatency.from_ms(1.0),
            service, queue_capacity=queue_capacity,
        )
        for i in range(sites)
    ]
    return EdgeDeployment(sim, built)


def _cloud(sim, service=None, servers=4):
    service = Deterministic(0.1) if service is None else service
    return CloudDeployment(
        sim, servers=servers, latency=ConstantLatency.from_ms(24.0),
        service_dist=service,
    )


def _submit(sim, client, at=0.0, site="s0"):
    from repro.sim.client import _GLOBAL_RID

    request = Request(next(_GLOBAL_RID), site=site, created=at)
    sim.schedule_at(at, client.submit, request)
    return request


class TestPolicies:
    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-1.0)

    def test_backoff_full_jitter_bounds(self):
        policy = RetryPolicy(max_attempts=5, backoff_base=0.1, backoff_cap=0.3)
        rng = np.random.default_rng(0)
        assert policy.backoff(1, rng) == 0.0
        for attempt, cap in ((2, 0.1), (3, 0.2), (4, 0.3), (5, 0.3)):
            draws = [policy.backoff(attempt, rng) for _ in range(200)]
            assert all(0.0 <= d <= cap for d in draws)
            assert max(draws) > 0.5 * cap  # jitter actually spreads

    def test_hedge_policy_validation(self):
        with pytest.raises(ValueError):
            HedgePolicy(delay=-0.1)
        with pytest.raises(ValueError):
            HedgePolicy(quantile=1.0)
        with pytest.raises(ValueError):
            HedgePolicy(max_hedges=0)

    def test_breaker_config_validation(self):
        with pytest.raises(ValueError):
            BreakerConfig(window=0)
        with pytest.raises(ValueError):
            BreakerConfig(failure_threshold=0.0)
        with pytest.raises(ValueError):
            BreakerConfig(reset_timeout=0.0)

    def test_client_validation(self):
        sim = Simulation(0)
        edge = _edge(sim)
        with pytest.raises(ValueError):
            ResilientClient(sim, edge, timeout=0.0)
        with pytest.raises(ValueError):
            ResilientClient(sim, edge, slo_deadline=-1.0)
        with pytest.raises(ValueError):
            ResilientClient(sim, edge, saturation_threshold=0)


class TestCircuitBreaker:
    CFG = BreakerConfig(window=10, failure_threshold=0.5, min_calls=4, reset_timeout=5.0)

    def test_stays_closed_below_min_calls(self):
        b = CircuitBreaker(self.CFG)
        for _ in range(3):
            b.record_failure(0.0)
        assert b.state == "closed" and b.opens == 0

    def test_trips_at_failure_threshold(self):
        b = CircuitBreaker(self.CFG)
        b.record_success(0.0)
        b.record_success(0.0)
        b.record_failure(0.0)
        assert b.state == "closed"
        b.record_failure(0.0)  # 2 of 4 = threshold
        assert b.state == "open" and b.opens == 1
        assert not b.allow(1.0)

    def _tripped(self):
        b = CircuitBreaker(self.CFG)
        for _ in range(4):
            b.record_failure(0.0)
        assert b.state == "open"
        return b

    def test_half_open_single_probe(self):
        b = self._tripped()
        assert b.allow(5.0)  # reset_timeout elapsed: one probe
        assert b.state == "half_open"
        assert not b.allow(5.0)  # only one probe at a time

    def test_probe_success_closes(self):
        b = self._tripped()
        assert b.allow(6.0)
        b.record_success(6.1)
        assert b.state == "closed"
        assert b.allow(6.2)

    def test_probe_failure_reopens(self):
        b = self._tripped()
        assert b.allow(6.0)
        b.record_failure(6.1)
        assert b.state == "open" and b.opens == 2
        assert not b.allow(10.0)  # reopened: wait another reset_timeout
        assert b.allow(11.2)

    def test_abandoned_probe_releases_slot(self):
        b = self._tripped()
        assert b.allow(6.0)
        b.record_abandoned()
        assert b.allow(6.1)  # slot free again


class TestClientBasics:
    def test_success_passthrough(self):
        sim = Simulation(1)
        edge = _edge(sim)
        client = ResilientClient(sim, edge, timeout=5.0, slo_deadline=2.0)
        done = []
        client.on_complete = lambda r: done.append(r)
        origin = _submit(sim, client)
        sim.run()
        assert [r.rid for r in done] == [origin.rid]
        assert origin.outcome == "ok"
        assert origin.deadline == pytest.approx(2.0)
        assert len(client.log) == 1
        assert client.log.breakdown().end_to_end[0] == pytest.approx(0.101)
        assert (client.operations, client.successes, client.attempts) == (1, 1, 1)
        assert client.slo_hits == 1

    def test_timeout_exhausts_attempts(self):
        sim = Simulation(1)
        edge = _edge(sim, service=Deterministic(10.0))
        client = ResilientClient(
            sim, edge, timeout=0.2,
            retry=RetryPolicy(max_attempts=2, backoff_base=0.01, backoff_cap=0.01),
        )
        done = []
        client.on_complete = lambda r: done.append(r)
        origin = _submit(sim, client)
        sim.run(until=5.0)
        assert origin.outcome == "exhausted"
        assert client.timeouts == 2 and client.retries == 1
        assert client.failures == 1 and client.successes == 0
        assert done == [origin]
        assert len(client.log) == 0  # failures never pollute the latency log

    def test_deadline_bounds_operation(self):
        sim = Simulation(1)
        edge = _edge(sim, service=Deterministic(10.0))
        client = ResilientClient(sim, edge, slo_deadline=0.5)
        origin = _submit(sim, client)
        sim.run(until=5.0)
        assert origin.outcome in ("deadline", "exhausted")
        assert origin.completed == pytest.approx(0.5)

    def test_cancel_on_timeout_reclaims_queue(self):
        sim = Simulation(1)
        edge = _edge(sim, service=Deterministic(10.0))
        client = ResilientClient(sim, edge, timeout=0.5)
        _submit(sim, client, at=0.0)
        _submit(sim, client, at=0.01)  # queued behind the first
        sim.run(until=3.0)
        assert edge.sites[0].station.cancellations >= 1

    def test_zombie_completion_ignored(self):
        # cancel_on_timeout=False: the attempt times out, the server
        # still finishes it later; that completion must not resurrect
        # the already-failed operation.
        sim = Simulation(1)
        edge = _edge(sim, service=Deterministic(1.0))
        client = ResilientClient(sim, edge, timeout=0.2, cancel_on_timeout=False)
        origin = _submit(sim, client)
        sim.run()
        assert origin.outcome == "exhausted"
        assert edge.sites[0].station.completions == 1  # zombie finished
        assert client.successes == 0 and client.failures == 1


class TestRetryRecovery:
    def test_retry_recovers_from_transient_link_loss(self):
        sim = Simulation(2)
        lossy = LossyLatency(ConstantLatency.from_ms(1.0), outages=[(0.0, 0.25)])
        edge = _edge(sim, latency=lossy)
        client = ResilientClient(
            sim, edge, timeout=0.2,
            retry=RetryPolicy(max_attempts=5, backoff_base=0.1, backoff_cap=0.2),
        )
        origin = _submit(sim, client)
        sim.run()
        assert origin.outcome == "ok"
        assert client.retries >= 1 and client.timeouts >= 1
        assert lossy.lost >= 1

    def test_retry_recovers_from_drop(self):
        sim = Simulation(3)
        edge = _edge(sim, service=Deterministic(0.3), queue_capacity=0)
        client = ResilientClient(
            sim, edge,
            retry=RetryPolicy(max_attempts=4, backoff_base=0.2, backoff_cap=0.4),
        )
        _submit(sim, client, at=0.0)
        _submit(sim, client, at=0.01)  # no queue room: dropped, then retried
        sim.run()
        assert client.drops >= 1
        assert client.successes == 2 and client.failures == 0

    def test_drop_without_retry_on_drop_fails_operation(self):
        sim = Simulation(3)
        edge = _edge(sim, service=Deterministic(0.3), queue_capacity=0)
        client = ResilientClient(
            sim, edge,
            retry=RetryPolicy(max_attempts=4, retry_on_drop=False),
        )
        _submit(sim, client, at=0.0)
        second = _submit(sim, client, at=0.01)
        sim.run()
        assert second.outcome == "dropped"
        assert client.successes == 1 and client.failures == 1


class TestServerRefusals:
    def test_admission_reject_counted_and_retried(self):
        from repro.mitigation.admission import AdaptiveAdmission, StaticConcurrencyLimit

        sim = Simulation(5)
        site = EdgeSite(
            sim, "s0", 1, ConstantLatency.from_ms(1.0), Deterministic(0.3),
            admission=AdaptiveAdmission(StaticConcurrencyLimit(1.0)),
        )
        edge = EdgeDeployment(sim, [site])
        client = ResilientClient(
            sim, edge,
            retry=RetryPolicy(max_attempts=4, backoff_base=0.2, backoff_cap=0.4),
        )
        _submit(sim, client, at=0.0)
        _submit(sim, client, at=0.01)  # refused at the admission door
        sim.run()
        assert client.server_rejects >= 1
        assert client.drops == 0 and client.sheds == 0
        assert client.successes == 2  # the reject was retried to success
        assert client.summary(2.0).rejects == client.server_rejects

    def test_discipline_shed_counted_and_retried(self):
        from repro.sim.overload import CoDelDiscipline

        sim = Simulation(6)
        site = EdgeSite(
            sim, "s0", 1, ConstantLatency.from_ms(1.0), Deterministic(1.0),
            discipline=CoDelDiscipline(target=0.1, interval=0.2),
        )
        edge = EdgeDeployment(sim, [site])
        client = ResilientClient(
            sim, edge,
            retry=RetryPolicy(max_attempts=4, backoff_base=1.0, backoff_cap=2.0),
        )
        for i in range(5):
            _submit(sim, client, at=0.01 * i)
        sim.run()
        assert client.sheds >= 1
        assert client.server_rejects == 0
        assert client.summary(10.0).sheds == client.sheds


class TestHedging:
    def test_hedge_rescues_black_holed_attempt(self):
        sim = Simulation(4)
        lossy = LossyLatency(ConstantLatency.from_ms(1.0), outages=[(0.0, 1e9)])
        edge = _edge(sim, latency=lossy)
        cloud = _cloud(sim)
        client = ResilientClient(
            sim, edge, cloud, slo_deadline=5.0,
            hedge=HedgePolicy(delay=0.1, to_fallback=True),
        )
        origin = _submit(sim, client)
        sim.run()
        assert origin.outcome == "ok"
        assert client.hedges == 1
        # Won via the hedge: 0.1 hedge delay + 24 ms cloud RTT + service.
        assert client.log.breakdown().end_to_end[0] == pytest.approx(0.224, abs=1e-3)

    def test_no_hedge_when_first_attempt_is_fast(self):
        sim = Simulation(4)
        edge = _edge(sim)
        cloud = _cloud(sim)
        client = ResilientClient(sim, edge, cloud, hedge=HedgePolicy(delay=1.0))
        _submit(sim, client)
        sim.run()
        assert client.hedges == 0 and client.successes == 1

    def test_adaptive_hedge_waits_for_samples(self):
        sim = Simulation(5)
        edge = _edge(sim, service=Exponential(1.0 / 10.0), servers=4)
        cloud = _cloud(sim, service=Exponential(1.0 / 10.0))
        client = ResilientClient(
            sim, edge, cloud,
            hedge=HedgePolicy(quantile=0.9, min_samples=20, max_hedges=1),
        )
        OpenLoopSource(sim, client, Exponential(1.0 / 20.0), site="s0", stop_time=20.0)
        sim.run()
        assert client.successes == client.operations
        assert client.hedges > 0  # adapted threshold eventually armed
        # Amplification stays bounded: at most one hedge per operation.
        assert client.attempts / client.operations < 1.5


class TestBreakerAndFailover:
    def test_failover_when_home_site_down(self):
        sim = Simulation(6)
        edge = _edge(sim)
        cloud = _cloud(sim)
        client = ResilientClient(sim, edge, cloud, timeout=1.0)
        edge.sites[0].station.fail()
        origin = _submit(sim, client)
        sim.run()
        assert origin.outcome == "ok"
        assert client.failovers == 1
        assert cloud.log.breakdown().end_to_end.size == 1

    def test_failover_when_home_site_saturated(self):
        sim = Simulation(6)
        edge = _edge(sim, service=Deterministic(1.0))
        cloud = _cloud(sim)
        client = ResilientClient(sim, edge, cloud, saturation_threshold=2)
        for i in range(5):
            _submit(sim, client, at=0.001 * i)
        sim.run()
        assert client.failovers == 3  # beyond 2 in system, the rest divert
        assert client.successes == 5

    def test_breaker_trips_and_fast_fails_without_fallback(self):
        sim = Simulation(7)
        lossy = LossyLatency(ConstantLatency.from_ms(1.0), outages=[(0.0, 1e9)])
        edge = _edge(sim, latency=lossy)
        client = ResilientClient(
            sim, edge, timeout=0.1,
            breaker=BreakerConfig(window=10, failure_threshold=0.5,
                                  min_calls=3, reset_timeout=50.0),
        )
        for i in range(10):
            _submit(sim, client, at=0.5 * i)
        sim.run()
        assert client.breakers["s0"].state == "open"
        assert client.breaker_opens == 1
        assert client.rejected > 0  # later ops fast-failed locally
        assert client.successes == 0

    def test_breaker_diverts_to_fallback_and_recovers(self):
        sim = Simulation(8)
        lossy = LossyLatency(ConstantLatency.from_ms(1.0), outages=[(0.0, 3.0)])
        edge = _edge(sim, latency=lossy)
        cloud = _cloud(sim)
        client = ResilientClient(
            sim, edge, cloud, timeout=0.2, slo_deadline=2.0,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.01, backoff_cap=0.05),
            breaker=BreakerConfig(window=10, failure_threshold=0.5,
                                  min_calls=3, reset_timeout=1.0),
        )
        for i in range(40):
            _submit(sim, client, at=0.25 * i)
        sim.run()
        assert client.breaker_opens >= 1
        assert client.failovers > 0
        # After the outage window + a probe, traffic returns to the edge
        # and the breaker closes again.
        assert client.breakers["s0"].state == "closed"
        assert client.failures <= 2  # at most the earliest detections
        assert client.successes >= 38


class TestClosedLoopThroughClient:
    def test_population_conserved_under_failures(self):
        sim = Simulation(9)
        lossy = LossyLatency(ConstantLatency.from_ms(1.0), loss_prob=0.2)
        edge = _edge(sim, service=Exponential(0.2), servers=2, latency=lossy)
        client = ResilientClient(
            sim, edge, timeout=0.5, slo_deadline=2.0,
            retry=RetryPolicy(max_attempts=2, backoff_base=0.05, backoff_cap=0.1),
        )
        source = ClosedLoopSource(
            sim, client, users=5, think=Exponential(1.0 / 5.0),
            site="s0", stop_time=100.0,
        )
        sim.run()
        # Every issued request came back (ok or failed): no stuck users.
        assert source.outstanding == 0
        assert source.generated == client.operations
        assert client.successes + client.failures == client.operations
        assert source.failed_responses == client.failures
        assert client.failures > 0  # the loss rate actually bit


class TestDeterminism:
    def _run(self):
        sim = Simulation(42)
        lossy = LossyLatency(ConstantLatency.from_ms(1.0), loss_prob=0.05)
        edge = _edge(sim, service=Exponential(0.2), servers=2, latency=lossy)
        cloud = _cloud(sim, service=Exponential(0.2))
        client = ResilientClient(
            sim, edge, cloud, timeout=0.5, slo_deadline=3.0,
            retry=RetryPolicy(max_attempts=3),
            breaker=BreakerConfig(min_calls=3),
        )
        OpenLoopSource(sim, client, Exponential(1.0 / 8.0), site="s0", stop_time=50.0)
        sim.run()
        return client

    def test_identical_seeds_identical_outcomes(self):
        a, b = self._run(), self._run()
        for attr in ("operations", "successes", "attempts", "retries",
                     "failovers", "timeouts", "breaker_opens"):
            assert getattr(a, attr) == getattr(b, attr)
        np.testing.assert_array_equal(
            a.log.breakdown().end_to_end, b.log.breakdown().end_to_end
        )

    def test_summary_consistency(self):
        client = self._run()
        s = client.summary(50.0)
        assert s.operations == client.operations
        assert s.operations == s.successes + s.failures
        assert 0.0 <= s.slo_attainment <= 1.0
        assert s.retry_amplification >= 1.0
        assert s.goodput == pytest.approx(s.slo_hits / 50.0)
