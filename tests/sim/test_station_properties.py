"""Property-based tests for station semantics under random workloads."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.distributions import Exponential
from repro.sim.engine import Simulation
from repro.sim.request import Request
from repro.sim.station import Station


def drive_station(seed, servers, n, queue_capacity=None):
    sim = Simulation(seed)
    departed = []
    st_ = Station(
        sim, servers, Exponential(0.08),
        on_departure=departed.append, queue_capacity=queue_capacity,
    )
    rng = sim.spawn_rng()
    t = 0.0
    for i in range(n):
        t += float(rng.exponential(0.05))
        sim.schedule_at(t, st_.arrive, Request(i, created=t))
    sim.run()
    return st_, departed


class TestStationProperties:
    @given(
        seed=st.integers(min_value=0, max_value=300),
        servers=st.integers(min_value=1, max_value=4),
        n=st.integers(min_value=1, max_value=80),
    )
    @settings(max_examples=50, deadline=None)
    def test_conservation_unbounded(self, seed, servers, n):
        st_, departed = drive_station(seed, servers, n)
        assert st_.arrivals == n
        assert st_.completions == n
        assert len(departed) == n
        assert st_.busy == 0 and st_.queue_length == 0

    @given(
        seed=st.integers(min_value=0, max_value=300),
        n=st.integers(min_value=2, max_value=80),
    )
    @settings(max_examples=50, deadline=None)
    def test_fcfs_single_server_departure_order(self, seed, n):
        _, departed = drive_station(seed, 1, n)
        rids = [r.rid for r in departed]
        assert rids == sorted(rids)

    @given(
        seed=st.integers(min_value=0, max_value=300),
        servers=st.integers(min_value=1, max_value=3),
        n=st.integers(min_value=1, max_value=80),
        cap=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=50, deadline=None)
    def test_bounded_accounting(self, seed, servers, n, cap):
        st_, departed = drive_station(seed, servers, n, queue_capacity=cap)
        assert st_.completions + st_.drops == n
        assert len(departed) == st_.completions
        assert 0.0 <= st_.loss_rate <= 1.0

    @given(
        seed=st.integers(min_value=0, max_value=300),
        servers=st.integers(min_value=1, max_value=4),
        n=st.integers(min_value=5, max_value=80),
    )
    @settings(max_examples=50, deadline=None)
    def test_timestamps_ordered_per_request(self, seed, servers, n):
        _, departed = drive_station(seed, servers, n)
        for r in departed:
            assert r.created <= r.arrived <= r.service_start <= r.service_end

    @given(
        seed=st.integers(min_value=0, max_value=300),
        n=st.integers(min_value=10, max_value=80),
    )
    @settings(max_examples=30, deadline=None)
    def test_busy_never_exceeds_servers(self, seed, n):
        """Start times never overlap more than `servers` deep."""
        _, departed = drive_station(seed, 2, n)
        events = []
        for r in departed:
            events.append((r.service_start, 1))
            events.append((r.service_end, -1))
        concurrency = 0
        # Process ends before starts at equal times: a queued request
        # legitimately starts the instant its predecessor finishes.
        for _, delta in sorted(events, key=lambda e: (e[0], e[1])):
            concurrency += delta
            assert concurrency <= 2
