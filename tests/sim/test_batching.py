"""Tests for the batching station."""

from itertools import count

import numpy as np
import pytest

from repro.sim.batching import BatchingStation, affine_batch_time
from repro.sim.engine import Simulation
from repro.sim.request import Request


def make_station(sim, servers=1, batch_size=4, timeout=0.05, base=0.05, per_item=0.01):
    return BatchingStation(
        sim, servers, batch_size, timeout, affine_batch_time(base, per_item)
    )


class TestBatchFormation:
    def test_full_batch_dispatches_immediately(self):
        sim = Simulation(0)
        st = make_station(sim, batch_size=3, timeout=10.0)
        done = []
        st.on_departure = lambda r: done.append((r.rid, sim.now))
        for i in range(3):
            sim.schedule(0.0, st.arrive, Request(i, created=0.0))
        sim.run()
        # All three finish together at base + 3*per_item = 0.08.
        assert done == [(0, 0.08), (1, 0.08), (2, 0.08)]
        assert st.batches == 1
        assert st.mean_batch_size() == 3.0

    def test_timeout_flushes_partial_batch(self):
        sim = Simulation(0)
        st = make_station(sim, batch_size=4, timeout=0.1)
        done = []
        st.on_departure = lambda r: done.append(sim.now)
        sim.schedule(0.0, st.arrive, Request(0, created=0.0))
        sim.run()
        # Dispatched at t=0.1 (timeout), finishes 0.1 + 0.06.
        assert done == [pytest.approx(0.16)]
        assert st.mean_batch_size() == 1.0

    def test_zero_timeout_serves_singly_when_idle(self):
        sim = Simulation(0)
        st = make_station(sim, batch_size=8, timeout=0.0)
        done = []
        st.on_departure = lambda r: done.append(sim.now)
        sim.schedule(0.0, st.arrive, Request(0, created=0.0))
        sim.run()
        assert done == [pytest.approx(0.06)]

    def test_backlog_forms_full_batches(self):
        sim = Simulation(0)
        st = make_station(sim, batch_size=4, timeout=0.5)
        for i in range(12):
            sim.schedule(0.0, st.arrive, Request(i, created=0.0))
        sim.run()
        assert st.batches == 3
        assert st.mean_batch_size() == 4.0
        assert st.completions == 12

    def test_batch_size_capped(self):
        sim = Simulation(0)
        st = make_station(sim, batch_size=4, timeout=0.5)
        for i in range(6):
            sim.schedule(0.0, st.arrive, Request(i, created=0.0))
        sim.run()
        assert max(st._batch_sizes) == 4

    def test_parallel_servers(self):
        sim = Simulation(0)
        st = make_station(sim, servers=2, batch_size=2, timeout=0.5)
        done = []
        st.on_departure = lambda r: done.append(sim.now)
        for i in range(4):
            sim.schedule(0.0, st.arrive, Request(i, created=0.0))
        sim.run()
        # Two batches run concurrently: all 4 finish at 0.07.
        assert done == [pytest.approx(0.07)] * 4


class TestBatchingEconomics:
    def test_batching_raises_throughput_ceiling(self):
        """At high load, batch service beats serial service throughput."""
        def run(batch_size):
            sim = Simulation(1)
            st = make_station(sim, batch_size=batch_size, timeout=0.02,
                              base=0.05, per_item=0.01)
            rng = sim.spawn_rng()

            ids = count()

            def gen():
                if sim.now < 100.0:
                    st.arrive(Request(next(ids), created=sim.now))
                    sim.schedule(rng.exponential(1.0 / 40.0), gen)

            sim.schedule(0.0, gen)
            sim.run(until=100.0)
            return st.completions

        assert run(batch_size=8) > 2 * run(batch_size=1)

    def test_pooled_arrivals_fill_batches_faster(self):
        """The E8 effect: k-fold traffic fills batches in 1/k the time."""
        def run(rate, seed=2):
            sim = Simulation(seed)
            st = make_station(sim, batch_size=8, timeout=0.25, base=0.05, per_item=0.005)
            waits = []
            st.on_departure = lambda r: waits.append(r.service_start - r.arrived)
            rng = sim.spawn_rng()

            ids = count()

            def gen():
                if sim.now < 300.0:
                    st.arrive(Request(next(ids), created=sim.now))
                    sim.schedule(rng.exponential(1.0 / rate), gen)

            sim.schedule(0.0, gen)
            sim.run(until=300.0)
            return float(np.mean(waits)), st.mean_batch_size()

        edge_wait, edge_b = run(rate=8.0)
        cloud_wait, cloud_b = run(rate=40.0)
        assert cloud_b > edge_b  # pooled traffic runs bigger batches
        assert cloud_wait < edge_wait  # and waits less for them to fill


class TestValidation:
    def test_bad_args(self):
        sim = Simulation(0)
        bt = affine_batch_time(0.05, 0.01)
        with pytest.raises(ValueError):
            BatchingStation(sim, 0, 4, 0.1, bt)
        with pytest.raises(ValueError):
            BatchingStation(sim, 1, 0, 0.1, bt)
        with pytest.raises(ValueError):
            BatchingStation(sim, 1, 4, -0.1, bt)
        with pytest.raises(ValueError):
            affine_batch_time(-1.0, 0.01)
        with pytest.raises(ValueError):
            affine_batch_time(0.05, 0.0)

    def test_conservation(self):
        sim = Simulation(3)
        st = make_station(sim, batch_size=3, timeout=0.05)
        rng = sim.spawn_rng()

        ids = count()

        def gen():
            if sim.now < 50.0:
                st.arrive(Request(next(ids), created=sim.now))
                sim.schedule(rng.exponential(0.05), gen)

        sim.schedule(0.0, gen)
        sim.run()
        assert st.completions == st.arrivals
        assert st.queue_length == 0
