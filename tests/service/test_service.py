"""Campaign service: event bus, job manager, HTTP/SSE, kill -9 resume.

The acceptance spine: POST a campaign, stream it over SSE from two
concurrent clients, and the fetched fingerprint must be bit-identical
to ``run_campaign`` on the same document — then kill the server dead
mid-campaign and a restarted one must resume from its journal to the
same fingerprint.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.campaign import compile_campaign, run_campaign
from repro.service import CampaignJob, EventBus, JobManager, create_server

REPO = Path(__file__).resolve().parents[2]


def tiny_doc(**overrides):
    doc = {
        "campaign": "svc-t",
        "seed": 13,
        "defaults": {"duration": 4.0, "sites": 1},
        "scenarios": [
            {"name": "s0", "utilization": 0.4},
            {"name": "s1", "utilization": 0.6},
        ],
        "budgets": {"retries": 0},
    }
    doc.update(overrides)
    return doc


def wait_until(predicate, timeout=60.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# ---------------------------------------------------------------------------
# EventBus
# ---------------------------------------------------------------------------


class TestEventBus:
    def test_cursor_reads_see_everything_in_order(self):
        bus = EventBus()
        for i in range(5):
            bus.publish({"event": "e", "i": i})
        events, cursor, closed = bus.read(0, timeout=0)
        assert [e["i"] for e in events] == [0, 1, 2, 3, 4]
        assert cursor == 5 and not closed
        bus.publish({"event": "e", "i": 5})
        events, cursor, closed = bus.read(cursor, timeout=0)
        assert [e["i"] for e in events] == [5]

    def test_two_readers_see_identical_streams(self):
        bus = EventBus()
        seen = [[], []]

        def reader(idx):
            cursor = 0
            while True:
                events, cursor, closed = bus.read(cursor, timeout=5)
                seen[idx].extend(events)
                if closed and not events:
                    return

        threads = [threading.Thread(target=reader, args=(i,)) for i in (0, 1)]
        for t in threads:
            t.start()
        for i in range(20):
            bus.publish({"event": "e", "i": i})
        bus.close()
        for t in threads:
            t.join(timeout=10)
        assert seen[0] == seen[1]
        assert [e["i"] for e in seen[0]] == list(range(20))

    def test_overflow_inserts_truncation_marker(self):
        bus = EventBus(history_limit=3)
        for i in range(10):
            bus.publish({"event": "e", "i": i})
        events, _, _ = bus.read(0, timeout=0)
        assert events[0]["event"] == "truncated"
        assert events[0]["dropped"] == 7
        assert [e["i"] for e in events[1:]] == [7, 8, 9]

    def test_closed_bus_refuses_publish(self):
        bus = EventBus()
        bus.close()
        with pytest.raises(RuntimeError):
            bus.publish({"event": "e"})


# ---------------------------------------------------------------------------
# JobManager
# ---------------------------------------------------------------------------


class TestJobManager:
    def test_submit_run_and_describe(self):
        mgr = JobManager(pool=1)
        mgr.start()
        try:
            job, created = mgr.submit(tiny_doc())
            assert created and isinstance(job, CampaignJob)
            assert job.id == compile_campaign(tiny_doc()).digest()
            assert wait_until(lambda: job.status == "done")
            doc = job.describe()
            assert doc["kind"] == "campaign-job"
            assert doc["schema_version"] == 1
            assert doc["result"]["fingerprint"] == job.result.fingerprint()
        finally:
            mgr.stop()

    def test_resubmission_is_idempotent(self):
        mgr = JobManager(pool=1)
        mgr.start()
        try:
            job1, created1 = mgr.submit(tiny_doc())
            job2, created2 = mgr.submit(tiny_doc())
            assert created1 and not created2
            assert job1 is job2
        finally:
            mgr.stop()

    def test_done_job_recovers_from_spool_without_rerun(self, tmp_path):
        mgr = JobManager(tmp_path, pool=1)
        mgr.start()
        job, _ = mgr.submit(tiny_doc())
        assert wait_until(lambda: job.status == "done")
        fingerprint = job.result.fingerprint()
        mgr.stop()

        # Corrupt-proof: a fresh manager must load the result, not re-run.
        result_file = tmp_path / "jobs" / job.id / "result.json"
        assert result_file.is_file()
        mtime = result_file.stat().st_mtime_ns
        mgr2 = JobManager(tmp_path, pool=1)
        mgr2.start()
        try:
            recovered = mgr2.get(job.id)
            assert recovered is not None
            assert wait_until(lambda: recovered.status == "done")
            assert recovered.result.fingerprint() == fingerprint
            assert result_file.stat().st_mtime_ns == mtime
        finally:
            mgr2.stop()

    def test_unfinished_job_resumes_from_journal(self, tmp_path):
        mgr = JobManager(tmp_path, pool=1)
        mgr.start()
        job, _ = mgr.submit(tiny_doc())
        assert wait_until(lambda: job.status == "done")
        fingerprint = job.result.fingerprint()
        mgr.stop()

        # Simulate a crash after the journal was written but before the
        # result landed: the restarted manager re-runs against the
        # journal and must fingerprint identically.
        jdir = tmp_path / "jobs" / job.id
        (jdir / "result.json").unlink()
        assert (jdir / "journal.jsonl").is_file()
        mgr2 = JobManager(tmp_path, pool=1)
        mgr2.start()
        try:
            resumed = mgr2.get(job.id)
            assert wait_until(lambda: resumed.status == "done")
            assert resumed.result.fingerprint() == fingerprint
        finally:
            mgr2.stop()

    def test_telemetry_with_fanout_refused_at_start(self):
        from repro.obs.provider import TelemetryFanoutError

        mgr = JobManager(pool=1, workers=2, telemetry_window=5.0)
        with pytest.raises(TelemetryFanoutError, match="mutually exclusive"):
            mgr.start()
        # The guard raises both flavors callers match on.
        assert issubclass(TelemetryFanoutError, ValueError)
        assert issubclass(TelemetryFanoutError, RuntimeError)

    def test_validation_error_propagates(self):
        from repro.campaign import CampaignValidationError

        mgr = JobManager(pool=1)
        mgr.start()
        try:
            with pytest.raises(CampaignValidationError):
                mgr.submit({"campaign": "bad"})
        finally:
            mgr.stop()


def test_run_campaign_refuses_installed_telemetry_with_fanout():
    from repro import obs
    from repro.obs.provider import TelemetryFanoutError

    spec = compile_campaign(tiny_doc())
    with obs.installed(lambda: obs.Telemetry(window=5.0)):
        with pytest.raises(TelemetryFanoutError, match="mutually exclusive"):
            run_campaign(spec, workers=2)


# ---------------------------------------------------------------------------
# HTTP + SSE (in-process server)
# ---------------------------------------------------------------------------


@pytest.fixture()
def server():
    mgr = JobManager(pool=1, telemetry_window=2.0)
    srv = create_server("127.0.0.1", 0, mgr)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    host, port = srv.server_address[:2]
    yield f"http://{host}:{port}"
    srv.shutdown()
    thread.join(timeout=10)
    srv.server_close()
    mgr.stop()


def http_get(url):
    with urllib.request.urlopen(url) as resp:
        return resp.status, json.loads(resp.read())


def http_post(url, doc):
    req = urllib.request.Request(
        url, data=json.dumps(doc).encode(), method="POST"
    )
    try:
        with urllib.request.urlopen(req) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def sse_events(url, out):
    """Collect (event-name, data) pairs until the stream closes."""
    with urllib.request.urlopen(url) as resp:
        name = None
        for raw in resp:
            line = raw.decode("utf-8").rstrip("\n")
            if line.startswith("event: "):
                name = line[len("event: "):]
            elif line.startswith("data: "):
                out.append((name, json.loads(line[len("data: "):])))
                if name == "stream-closed":
                    return


class TestHTTP:
    def test_healthz_and_experiments(self, server):
        status, body = http_get(server + "/v1/healthz")
        assert status == 200 and body["status"] == "ok"
        status, body = http_get(server + "/v1/experiments")
        assert status == 200
        names = {e["name"] for e in body["experiments"]}
        assert "validation" in names

    def test_unknown_routes_and_jobs_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            http_get(server + "/v1/nope")
        assert err.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as err:
            http_get(server + "/v1/campaigns/deadbeef00000000")
        assert err.value.code == 404

    def test_invalid_document_is_422_with_issues(self, server):
        status, body = http_post(server + "/v1/campaigns", {"campaign": "x"})
        assert status == 422
        assert body["issues"]
        assert body["exit_code"] in (3, 4, 5)

    def test_post_stream_fetch_matches_direct_run(self, server):
        doc = tiny_doc(campaign="svc-http")
        status, body = http_post(server + "/v1/campaigns", doc)
        assert status == 201
        job_id = body["id"]

        # Two concurrent SSE clients, attached while the job runs.
        streams = ([], [])
        url = server + f"/v1/campaigns/{job_id}/events"
        threads = [
            threading.Thread(target=sse_events, args=(url, out))
            for out in streams
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not any(t.is_alive() for t in threads), "SSE stream never closed"

        # Identical ordered streams for both clients.
        assert streams[0] == streams[1]
        names = [name for name, _ in streams[0]]
        assert names[0] == "campaign-started"
        assert names[-2:] == ["campaign-finished", "stream-closed"]
        assert names.count("scenario-finished") == 2
        assert "telemetry-window" in names  # obs bridged onto the bus
        summaries = [d for n, d in streams[0] if n == "telemetry-summary"]
        assert all(s["record"]["schema_version"] == 1 for s in summaries)

        # Idempotent re-POST returns the same (now finished) job.
        status, body = http_post(server + "/v1/campaigns", doc)
        assert status == 200 and body["id"] == job_id

        status, body = http_get(server + f"/v1/campaigns/{job_id}")
        assert status == 200 and body["status"] == "done"
        direct = run_campaign(compile_campaign(doc), workers=1)
        assert body["result"]["fingerprint"] == direct.fingerprint()

        status, body = http_get(server + "/v1/campaigns")
        assert status == 200 and len(body["jobs"]) == 1

    def test_malformed_bodies_rejected(self, server):
        status, body = http_post(server + "/v1/campaigns", [1, 2, 3])
        assert status == 400
        req = urllib.request.Request(
            server + "/v1/campaigns", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req)
        assert err.value.code == 400


# ---------------------------------------------------------------------------
# kill -9 resume (subprocess server)
# ---------------------------------------------------------------------------


class TestKillResume:
    def _start_server(self, state_dir, log_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        log = open(log_path, "ab")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--state-dir", str(state_dir)],
            stdout=log, stderr=log, env=env, cwd=str(REPO),
        )
        try:
            assert wait_until(
                lambda: re.search(
                    rb"listening on (http://[0-9.]+:\d+)",
                    Path(log_path).read_bytes(),
                ),
                timeout=60,
            ), "server never announced its address"
        except Exception:
            proc.kill()
            raise
        finally:
            log.close()
        match = re.search(
            rb"listening on (http://[0-9.]+:\d+)", Path(log_path).read_bytes()
        )
        return proc, match.group(1).decode()

    def test_kill9_restart_resumes_to_identical_fingerprint(self, tmp_path):
        doc = tiny_doc(
            campaign="svc-kill",
            defaults={"duration": 12.0, "sites": 1},
            scenarios=[
                {"name": f"s{i}", "utilization": 0.3 + 0.1 * i}
                for i in range(4)
            ],
        )
        state_dir = tmp_path / "state"
        proc, base = self._start_server(state_dir, tmp_path / "server1.log")
        try:
            status, body = http_post(base + "/v1/campaigns", doc)
            assert status == 201
            job_id = body["id"]
            journal = state_dir / "jobs" / job_id / "journal.jsonl"
            # Wait for at least one scenario to land in the journal, then
            # kill the server dead — no shutdown handler runs on SIGKILL.
            assert wait_until(
                lambda: journal.is_file() and journal.stat().st_size > 0,
                timeout=120,
            ), "no scenario journaled before timeout"
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        result_file = state_dir / "jobs" / job_id / "result.json"
        interrupted_mid_run = not result_file.is_file()

        proc, base = self._start_server(state_dir, tmp_path / "server2.log")
        try:
            assert wait_until(
                lambda: http_get(base + f"/v1/campaigns/{job_id}")[1]["status"]
                in ("done", "failed"),
                timeout=300,
                interval=0.25,
            ), "restarted server never finished the job"
            status, body = http_get(base + f"/v1/campaigns/{job_id}")
            assert body["status"] == "done", body.get("error")
            fingerprint = body["result"]["fingerprint"]
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        direct = run_campaign(compile_campaign(doc), workers=1)
        assert fingerprint == direct.fingerprint()
        # The interesting path is resume-from-journal; if the campaign
        # happened to finish before the kill, the run above degraded to
        # the (still valid) recover-done-result path.
        assert interrupted_mid_run or result_file.is_file()
