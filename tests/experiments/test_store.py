"""Tests for the journaled run store and checkpoint/resume wiring."""

import json
import os

import pytest

from repro.core.comparator import EdgeCloudComparator
from repro.core.scenarios import TYPICAL_CLOUD
from repro.experiments.store import (
    JournalCorruptError,
    RunJournal,
    fsync_append,
    open_journal,
)
from repro.parallel import run_tasks
from repro.parallel.chaos import synthetic_point
from repro.stats.replications import replicate


def _mean_stat(seed):
    return synthetic_point(seed, 8.0)[0]


class TestFsyncAppend:
    def test_requires_newline(self, tmp_path):
        fd = os.open(tmp_path / "f", os.O_WRONLY | os.O_CREAT)
        try:
            with pytest.raises(ValueError, match="newline"):
                fsync_append(fd, "no trailing newline")
            fsync_append(fd, "ok\n")
        finally:
            os.close(fd)
        assert (tmp_path / "f").read_text() == "ok\n"


class TestRunJournal:
    def test_new_file_gets_header(self, tmp_path):
        path = tmp_path / "j"
        with RunJournal(path) as j:
            assert len(j) == 0
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {"format": "repro-journal", "v": 1}

    def test_put_get_roundtrip_exact(self, tmp_path):
        value = {"summary": (0.5, 1.25), "arr": [1e-9, 3.3333333333333335]}
        with RunJournal(tmp_path / "j", scope="s") as j:
            k = j.key(label="t", index=0, args=(1, 2.5))
            assert j.get(k) == (False, None)
            j.put(k, value, label="t", index=0, args=(1, 2.5))
            assert j.get(k) == (True, value)
        # ...and after reopening (the durable path).
        with RunJournal(tmp_path / "j", scope="s") as j:
            assert j.get(k) == (True, value)
            assert k in j and len(j) == 1

    def test_put_is_idempotent(self, tmp_path):
        path = tmp_path / "j"
        with RunJournal(path) as j:
            k = j.key(label="t", index=0, args=())
            j.put(k, 1)
            j.put(k, 1)
        assert len(path.read_text().splitlines()) == 2  # header + one record

    def test_keys_disambiguate(self, tmp_path):
        with RunJournal(tmp_path / "j", scope="a") as j:
            base = j.key(label="t", index=0, args=(1,))
            assert j.key(label="t", index=1, args=(1,)) != base
            assert j.key(label="u", index=0, args=(1,)) != base
            assert j.key(label="t", index=0, args=(2,)) != base
            assert j.key(label="t", index=0, args=(1,), fn=_mean_stat) != base
        with RunJournal(tmp_path / "j", scope="b") as j2:
            assert j2.key(label="t", index=0, args=(1,)) != base

    def test_scopes_share_one_file(self, tmp_path):
        path = tmp_path / "j"
        with RunJournal(path, scope="a") as j:
            j.put(j.key(label="t", index=0, args=()), "from-a")
        with RunJournal(path, scope="b") as j:
            assert j.get(j.key(label="t", index=0, args=())) == (False, None)
            j.put(j.key(label="t", index=0, args=()), "from-b")
        with RunJournal(path, scope="a") as j:
            assert j.get(j.key(label="t", index=0, args=()))[1] == "from-a"

    def test_truncated_tail_dropped(self, tmp_path):
        path = tmp_path / "j"
        with RunJournal(path) as j:
            j.put(j.key(label="t", index=0, args=()), 10)
            j.put(j.key(label="t", index=1, args=()), 11)
        # Simulate a crash mid-append: chop the final record in half.
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 20])
        with RunJournal(path) as j:
            assert len(j) == 1
            assert j.get(j.key(label="t", index=0, args=())) == (True, 10)
            assert j.get(j.key(label="t", index=1, args=())) == (False, None)

    def test_mid_file_corruption_refuses_to_load(self, tmp_path):
        path = tmp_path / "j"
        with RunJournal(path) as j:
            j.put(j.key(label="t", index=0, args=()), 10)
        with open(path, "a") as fh:
            fh.write("garbage not json\n")
            fh.write('{"k":"abc","p":""}\n')  # valid line AFTER the garbage
        with pytest.raises(JournalCorruptError, match="refusing to resume"):
            RunJournal(path)

    def test_corruption_error_names_path_and_byte_offset(self, tmp_path):
        path = tmp_path / "j"
        with RunJournal(path) as j:
            j.put(j.key(label="t", index=0, args=()), 10)
        header_and_record = len(path.read_bytes())
        garbage = b"garbage not json\n"
        with open(path, "ab") as fh:
            fh.write(garbage)
            fh.write(b'{"k":"abc","p":""}\n')  # valid line AFTER the garbage
        with pytest.raises(JournalCorruptError) as ei:
            RunJournal(path)
        msg = str(ei.value)
        assert str(path) in msg
        # The offending record's exact byte span is named.
        start = header_and_record
        end = start + len(garbage) - 1  # span excludes the newline
        assert f"byte offset {start}" in msg
        assert f"bytes {start}-{end}" in msg

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "j"
        path.write_text('{"some": "other json"}\n')
        with pytest.raises(JournalCorruptError, match="not a repro journal"):
            RunJournal(path)

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "j"
        path.write_text('{"format":"repro-journal","v":99}\n')
        with pytest.raises(JournalCorruptError, match="version"):
            RunJournal(path)

    def test_require_existing(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="resume"):
            RunJournal(tmp_path / "nope", require_existing=True)
        with RunJournal(tmp_path / "j"):
            pass
        RunJournal(tmp_path / "j", require_existing=True).close()

    def test_put_after_close_raises(self, tmp_path):
        j = RunJournal(tmp_path / "j")
        k = j.key(label="t", index=0, args=())
        j.close()
        with pytest.raises(ValueError, match="closed"):
            j.put(k, 1)


class TestOpenJournal:
    def test_none_disables(self):
        assert open_journal(None, scope="s") == (None, False)

    def test_path_opens_owned(self, tmp_path):
        journal, owned = open_journal(tmp_path / "j", scope="s")
        assert owned and journal.scope == "s"
        journal.close()

    def test_existing_journal_passes_through(self, tmp_path):
        with RunJournal(tmp_path / "j", scope="orig") as j:
            journal, owned = open_journal(j, scope="ignored")
            assert journal is j and not owned
            assert journal.scope == "orig"

    def test_resume_requires_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            open_journal(tmp_path / "nope", scope="s", resume=True)


class TestCheckpointResumeBitIdentity:
    """A killed sweep resumed from its journal equals the uninterrupted run."""

    RATES = (6.0, 7.5, 9.0, 10.5)

    def _comparator(self, seed=17):
        return EdgeCloudComparator(TYPICAL_CLOUD, requests_per_site=2000, seed=seed)

    def test_sweep_resume_bit_identical(self, tmp_path):
        cmp_ = self._comparator()
        baseline = cmp_.sweep(self.RATES)
        path = tmp_path / "sweep.journal"
        # "Killed" run: only a prefix of the grid completed.
        cmp_.sweep(self.RATES[:2], checkpoint=path)
        resumed = cmp_.sweep(self.RATES, checkpoint=path, resume=True)
        assert resumed.points == baseline.points  # dataclass float equality = bit identity
        # A second resume replays everything from disk.
        replayed = cmp_.sweep(self.RATES, checkpoint=path, resume=True)
        assert replayed.points == baseline.points

    def test_sweep_resume_any_worker_count(self, tmp_path):
        cmp_ = self._comparator()
        baseline = cmp_.sweep(self.RATES)
        path = tmp_path / "sweep.journal"
        cmp_.sweep(self.RATES[1:3], checkpoint=path)
        resumed = cmp_.sweep(self.RATES, workers=3, checkpoint=path)
        assert resumed.points == baseline.points

    def test_differently_configured_comparators_never_collide(self, tmp_path):
        path = tmp_path / "shared.journal"
        a = self._comparator(seed=17)
        b = self._comparator(seed=18)
        ra = a.sweep(self.RATES[:1], checkpoint=path)
        rb = b.sweep(self.RATES[:1], checkpoint=path)
        assert ra.points[0] != rb.points[0]
        # Replays still resolve to their own results.
        assert a.sweep(self.RATES[:1], checkpoint=path).points == ra.points
        assert b.sweep(self.RATES[:1], checkpoint=path).points == rb.points

    def test_replicate_checkpoint(self, tmp_path):
        path = tmp_path / "rep.journal"
        baseline = replicate(_mean_stat, 6, base_seed=5)
        checkpointed = replicate(_mean_stat, 6, base_seed=5, checkpoint=path)
        resumed = replicate(_mean_stat, 6, base_seed=5, checkpoint=path,
                            resume=True)
        assert baseline.values == checkpointed.values == resumed.values

    def test_find_crossover_checkpoint(self, tmp_path):
        cmp_ = self._comparator()
        grid = [0.4, 0.55, 0.7, 0.85]
        base = cmp_.find_crossover("mean", grid)
        path = tmp_path / "cross.journal"
        first = cmp_.find_crossover("mean", grid, checkpoint=path)
        again = cmp_.find_crossover("mean", grid, checkpoint=path, resume=True)
        assert first == base == again


class TestJournalAgnosticToTaskOrder:
    def test_replay_matches_on_content_not_position(self, tmp_path):
        path = tmp_path / "j"
        tasks = [(s, 6.0) for s in (3, 1, 2)]
        with RunJournal(path, scope="order") as j:
            forward = run_tasks(synthetic_point, tasks, journal=j)
        # Same specs in a different order: replay must follow the spec.
        with RunJournal(path, scope="order") as j:
            assert len(j) == 3
            # index is part of the key, so a reordered list recomputes
            # only the moved entries rather than mismatching them.
            shuffled = run_tasks(synthetic_point, list(reversed(tasks)), journal=j)
        assert shuffled == list(reversed(forward))
