"""Shared fixtures: small-but-meaningful experiment sizing for tests."""

import pytest

from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="session")
def cfg():
    """Test-sized experiments: fast, yet big enough for stable shapes."""
    return ExperimentConfig(requests_per_site=25_000, azure_duration=1800.0)
