"""Wire-schema contract tests: the unified, versioned envelope.

Every result shape that crosses a process boundary — experiment
results, campaign results, golden summaries, salvage reports, telemetry
records — goes through :mod:`repro.experiments.schema`.  These tests
pin the contract: dump→load→dump is a fixed point, unknown keys are
tolerated (forward compatibility), newer majors are refused loudly,
and the legacy pre-envelope artifacts shipped in this repo still load.
"""

import json
from pathlib import Path

import pytest

from repro.campaign import compile_campaign, load_golden, run_campaign
from repro.experiments import schema as wire
from repro.experiments.config import FAST
from repro.experiments.result import run_experiment

REPO = Path(__file__).resolve().parents[2]


def tiny_doc(**overrides):
    doc = {
        "campaign": "schema-t",
        "seed": 13,
        "defaults": {"duration": 4.0, "sites": 1},
        "scenarios": [
            {"name": "s0", "utilization": 0.4},
            {"name": "s1", "utilization": 0.6},
        ],
        "budgets": {"retries": 0},
    }
    doc.update(overrides)
    return doc


@pytest.fixture(scope="module")
def campaign_result():
    return run_campaign(compile_campaign(tiny_doc()), workers=1)


@pytest.fixture(scope="module")
def experiment_result():
    return run_experiment("validation", FAST)


class TestEnvelope:
    def test_all_kinds_are_enveloped(self, campaign_result, experiment_result):
        docs = {
            "experiment-result": wire.dump_experiment_result(experiment_result),
            "campaign-result": wire.dump_campaign_result(campaign_result),
            "golden-summary": wire.dump_golden_summary(campaign_result),
            "salvage-report": wire.dump_salvage_report(campaign_result),
        }
        for kind, doc in docs.items():
            assert doc["schema_version"] == wire.SCHEMA_VERSION, kind
            assert doc["kind"] == kind
            kind2, _ = wire.parse_envelope(doc)
            assert kind2 == kind
            json.dumps(doc, allow_nan=False)  # strictly JSON-safe

    def test_newer_major_is_refused(self, campaign_result):
        doc = wire.dump_campaign_result(campaign_result)
        doc["schema_version"] = wire.SCHEMA_VERSION + 1
        with pytest.raises(wire.SchemaVersionError, match="schema_version"):
            wire.parse_envelope(doc)

    def test_bad_version_types_are_refused(self):
        for bad in ("1", 0, -3, None):
            with pytest.raises(wire.WireFormatError):
                wire.parse_envelope({"schema_version": bad, "kind": "campaign-result"})

    def test_unknown_kind_is_refused(self):
        with pytest.raises(wire.WireFormatError, match="kind"):
            wire.parse_envelope({"schema_version": 1, "kind": "not-a-kind"})

    def test_expect_mismatch_is_refused(self, campaign_result):
        doc = wire.dump_campaign_result(campaign_result)
        with pytest.raises(wire.WireFormatError, match="expected"):
            wire.parse_envelope(doc, expect="golden-summary")


class TestRoundTrip:
    def test_experiment_result_fixed_point(self, experiment_result):
        d1 = wire.dump_experiment_result(experiment_result)
        loaded = wire.load_experiment_result(json.loads(wire.dumps(d1)))
        d2 = wire.dump_experiment_result(loaded)
        assert d1 == d2

    def test_campaign_result_fixed_point(self, campaign_result):
        d1 = wire.dump_campaign_result(campaign_result)
        loaded = wire.load_campaign_result(json.loads(wire.dumps(d1)))
        d2 = wire.dump_campaign_result(loaded)
        assert d1 == d2
        assert loaded.fingerprint() == campaign_result.fingerprint()

    def test_campaign_result_fingerprint_verified_on_load(self, campaign_result):
        doc = wire.dump_campaign_result(campaign_result)
        runs = doc["runs"]
        name = next(iter(runs))
        metric = next(iter(runs[name]["metrics"]))
        doc["runs"][name]["metrics"][metric] += 1.0
        with pytest.raises(wire.WireFormatError, match="fingerprint"):
            wire.load_campaign_result(doc)

    def test_golden_summary_fixed_point(self, campaign_result):
        d1 = wire.dump_golden_summary(campaign_result)
        canonical = wire.load_golden_summary(json.loads(wire.dumps(d1)))
        # The canonical projection survives a re-parse unchanged.
        assert canonical == wire.load_golden_summary(
            json.loads(json.dumps(d1 | {"extra": 1}))
        )

    def test_unknown_keys_tolerated_everywhere(self, campaign_result):
        for doc in (
            wire.dump_campaign_result(campaign_result),
            wire.dump_golden_summary(campaign_result),
        ):
            doc = dict(doc)
            doc["from_the_future"] = {"nested": [1, 2, 3]}
            wire.load_document(doc)  # must not raise


class TestTelemetry:
    def test_records_are_stamped(self):
        from repro import obs
        from repro.queueing.distributions import Exponential
        from repro.sim.client import OpenLoopSource
        from repro.sim.engine import Simulation
        from repro.sim.network import ConstantLatency
        from repro.sim.topology import EdgeDeployment, EdgeSite

        exporter = obs.InMemoryExporter()
        with obs.installed(lambda: obs.Telemetry(window=5.0, exporters=[exporter])):
            sim = Simulation(3)
            site = EdgeSite(
                sim, "s0", 1, ConstantLatency.from_ms(10.0), Exponential(1.0 / 8.0)
            )
            edge = EdgeDeployment(sim, [site])
            OpenLoopSource(
                sim, edge, Exponential(1.0 / 5.0), site="s0", stop_time=40.0
            )
            sim.run()
            sim.telemetry.finish()
        assert exporter.records, "no telemetry records captured"
        for record in exporter.records:
            assert record["schema_version"] == wire.SCHEMA_VERSION

    def test_newer_telemetry_record_is_refused(self):
        from repro.obs.schema import SchemaError, validate_record

        record = {
            "type": "summary",
            "t_end": 1.0,
            "windows": 0,
            "completed": 0,
            "refused": {"rejected": 0, "dropped": 0, "shed": 0},
            "failed_operations": 0,
            "metrics": {},
            "schema_version": wire.SCHEMA_VERSION + 1,
        }
        with pytest.raises(SchemaError, match="schema_version"):
            validate_record(record)


class TestLegacyArtifacts:
    def test_shipped_golden_still_loads(self):
        """The pre-envelope golden pinned in-repo keeps loading clean."""
        path = REPO / "scenarios" / "golden" / "expected.json"
        expected = load_golden(path)
        assert expected["campaign"] == "golden"
        assert expected["seed"] == 2021
        assert len(expected["scenarios"]) == 8
        assert expected["quarantined"] == []

    def test_legacy_golden_without_envelope_parses(self, campaign_result):
        doc = wire.dump_golden_summary(campaign_result)
        legacy = {k: v for k, v in doc.items()
                  if k not in ("schema_version", "kind")}
        assert legacy["magic"] == wire.GOLDEN_MAGIC
        kind, _ = wire.parse_envelope(legacy)
        assert kind == "golden-summary"

    def test_legacy_experiment_result_parses(self, experiment_result):
        doc = wire.dump_experiment_result(experiment_result)
        legacy = {k: v for k, v in doc.items()
                  if k not in ("schema_version", "kind")}
        loaded = wire.load_experiment_result(legacy)
        assert loaded.name == experiment_result.name

    def test_garbage_is_refused(self):
        with pytest.raises(wire.WireFormatError):
            wire.load_document({"hello": "world"})
        with pytest.raises(wire.WireFormatError):
            wire.load_document([1, 2, 3])


class TestFileHelpers:
    def test_dump_and_load(self, tmp_path, campaign_result):
        path = tmp_path / "result.json"
        wire.dump(campaign_result, path)
        loaded = wire.load(path)
        assert loaded.fingerprint() == campaign_result.fingerprint()

    def test_dumps_is_canonical(self, campaign_result):
        doc = wire.dump_campaign_result(campaign_result)
        assert wire.dumps(doc) == wire.dumps(dict(reversed(list(doc.items()))))
