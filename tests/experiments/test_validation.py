"""Tests for the §4.2 validation table and formula-consistency check."""

import pytest

from repro.experiments.report import render_validation
from repro.experiments.validation import (
    PAPER_ANCHORS,
    paper_formula_consistency,
    validation_table,
)


class TestValidationTable:
    @pytest.fixture(scope="class")
    def rows(self, cfg):
        return validation_table(cfg)

    def test_one_row_per_anchor(self, rows):
        assert len(rows) == len(PAPER_ANCHORS)
        assert [r.k_machines for r in rows] == [5, 10]

    def test_measured_crossovers_exist(self, rows):
        for r in rows:
            assert r.our_measured is not None
            assert 0.3 < r.our_measured < 0.98

    def test_our_prediction_close_to_our_measurement(self, rows):
        """The reproduction's own §4.2 claim: model within ~15%."""
        for r in rows:
            assert r.prediction_error is not None
            assert r.prediction_error < 0.15

    def test_measured_in_paper_neighborhood(self, rows):
        """Measured cutoffs within ±0.15 of the paper's measured values."""
        for r in rows:
            assert r.our_measured == pytest.approx(r.paper_measured, abs=0.15)

    def test_k10_cutoff_above_k5(self, rows):
        assert rows[1].our_measured > rows[0].our_measured

    def test_render(self, rows):
        out = render_validation(rows)
        assert "paper pred" in out and "our meas" in out


class TestFormulaConsistency:
    def test_paper_anchors_imply_one_unit(self):
        """DESIGN.md §6: both §4.2 anchors solve to the same time unit."""
        c = paper_formula_consistency()
        assert c["unit_from_k5_anchor"] == pytest.approx(
            c["unit_from_k10_anchor"], rel=0.03
        )

    def test_cross_prediction(self):
        """Calibrating on one anchor predicts the other within 0.02 rho."""
        c = paper_formula_consistency()
        assert c["k10_cutoff_predicted_from_k5_unit"] == pytest.approx(0.75, abs=0.02)
        assert c["k5_cutoff_predicted_from_k10_unit"] == pytest.approx(0.64, abs=0.02)
