"""Tests for the one-shot markdown report generator."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.paper_report import generate_report

TINY = ExperimentConfig(requests_per_site=5_000, azure_duration=900.0)


class TestGenerateReport:
    def test_filtered_section(self):
        text = generate_report(TINY, only=["Figure 2"])
        assert "## Figure 2" in text
        assert "## Figure 3" not in text
        assert text.startswith("# Evaluation report")

    def test_validation_only(self):
        text = generate_report(TINY, only=["validation"])
        assert "Section 4.2" in text
        assert "formula unit consistency" in text

    def test_multiple_filters(self):
        text = generate_report(TINY, only=["Figure 2", "Figure 6"])
        assert "## Figure 2" in text and "## Figure 6" in text

    def test_no_match_rejected(self):
        with pytest.raises(ValueError):
            generate_report(TINY, only=["Figure 99"])

    def test_config_stamped(self):
        text = generate_report(TINY, only=["Figure 2"])
        assert "requests_per_site=5000" in text


class TestReportCli:
    def test_report_to_file(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.md"
        assert main(["report", "--only", "Figure 2", "--out", str(out)]) == 0
        assert out.exists()
        assert "## Figure 2" in out.read_text()

    def test_report_to_stdout(self, capsys):
        from repro.cli import main

        assert main(["report", "--only", "Figure 2"]) == 0
        assert "## Figure 2" in capsys.readouterr().out
