"""Tests for the sensitivity sweeps and result persistence."""

import json

import numpy as np
import pytest

from repro.core.scenarios import TYPICAL_CLOUD
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import fig2_spatial_skew, fig6_distribution
from repro.experiments.persist import (
    FIGURE_RUNNERS,
    dump_all_figures,
    load_result,
    result_to_dict,
    save_result,
)
from repro.experiments.sensitivity import (
    cutoff_vs_cores,
    cutoff_vs_delta_n,
    cutoff_vs_service_cv2,
    cutoff_vs_sites,
)

TINY = ExperimentConfig(requests_per_site=5_000, azure_duration=900.0)


class TestSensitivity:
    def test_more_cores_raise_cutoff(self):
        rows = cutoff_vs_cores(TYPICAL_CLOUD, cores=(1, 4, 16))
        means = [r.mean_cutoff for r in rows]
        assert means[0] < means[1] < means[2]

    def test_cores_one_is_the_paper_base_case(self):
        (row,) = cutoff_vs_cores(TYPICAL_CLOUD, cores=(1,))
        assert row.parameter == "cores"
        assert 0.0 < row.mean_cutoff < 1.0

    def test_service_variability_lowers_cutoff(self):
        rows = cutoff_vs_service_cv2(TYPICAL_CLOUD, cv2s=(0.0, 1.0, 2.0))
        means = [r.mean_cutoff for r in rows]
        assert means[0] > means[-1]

    def test_more_sites_lower_cutoff(self):
        rows = cutoff_vs_sites(TYPICAL_CLOUD, sites=(2, 10, 50))
        means = [r.mean_cutoff for r in rows]
        assert means[0] > means[1] > means[2]

    def test_delta_n_grid_monotone(self):
        rows = cutoff_vs_delta_n(TYPICAL_CLOUD, rtts_ms=(5, 24, 80))
        means = [r.mean_cutoff for r in rows]
        tails = [r.tail_cutoff for r in rows]
        assert means[0] < means[1] < means[2]
        # Tail vs mean come from different approximations; allow a small
        # tolerance at the tiny-delta_n corner (see the E6 benchmark).
        assert all(t <= m + 0.05 for t, m in zip(tails, means, strict=True))

    def test_delta_n_grid_rejects_rtt_below_edge(self):
        with pytest.raises(ValueError):
            cutoff_vs_delta_n(TYPICAL_CLOUD, rtts_ms=(0.5,))


class TestResultToDict:
    def test_scalars_and_arrays(self):
        d = result_to_dict({"a": np.array([1.0, 2.0]), "b": np.float64(3.0), "c": (1, "x")})
        assert d == {"a": [1.0, 2.0], "b": 3.0, "c": [1, "x"]}

    def test_nan_becomes_none(self):
        assert result_to_dict(float("nan")) is None
        assert result_to_dict(np.array([1.0, np.inf])) == [1.0, None]

    def test_dataclass_tree(self):
        res = fig2_spatial_skew(TINY)
        d = result_to_dict(res)
        assert set(d) == {"per_cell_mean_load", "quartiles", "skew"}
        assert isinstance(d["per_cell_mean_load"], list)

    def test_unserializable_rejected(self):
        with pytest.raises(TypeError):
            result_to_dict(object())


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        res = fig6_distribution(TINY)
        path = tmp_path / "fig6.json"
        save_result(res, path)
        loaded = load_result(path)
        assert loaded["rate"] == 10.0
        assert loaded["edge"]["count"] > 0
        # Strict JSON (no bare NaN tokens).
        json.loads(path.read_text())

    def test_dump_subset(self, tmp_path):
        written = dump_all_figures(TINY, tmp_path, only=["fig2"])
        assert set(written) == {"fig2"}
        assert written["fig2"].exists()
        assert load_result(written["fig2"])["skew"]["cell_cv"] > 0

    def test_dump_unknown_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            dump_all_figures(TINY, tmp_path, only=["fig99"])

    def test_all_runners_registered(self):
        assert set(FIGURE_RUNNERS) == {
            "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
        }
