"""Shape tests for every figure runner.

These assert the paper's *qualitative* findings (who wins, orderings,
crossover neighborhoods), not its absolute testbed numbers — the
substitution contract of DESIGN.md §5.
"""

import numpy as np
import pytest

from repro.experiments import figures as F
from repro.experiments import report as R


@pytest.fixture(scope="module")
def fig3(cfg):
    return F.fig3_mean_typical(cfg)


@pytest.fixture(scope="module")
def fig4(cfg):
    return F.fig4_mean_distant(cfg)


@pytest.fixture(scope="module")
def fig5(cfg):
    return F.fig5_tail_distant(cfg)


class TestFig2:
    def test_spatial_skew_shape(self, cfg):
        res = F.fig2_spatial_skew(cfg)
        assert res.per_cell_mean_load.size == 100
        q1, q2, q3 = res.quartiles
        assert q1 <= q2 <= q3
        # Figure 2's message: heavy per-cell imbalance.
        assert res.skew["max_over_mean"] > 2.0
        assert res.skew["cell_cv"] > 0.5

    def test_render(self, cfg):
        out = R.render_fig2(F.fig2_spatial_skew(cfg))
        assert "Figure 2" in out and "quartiles" in out


class TestFig3:
    def test_crossover_near_paper_k5(self, fig3):
        x = fig3.crossovers()["k5"]
        assert x is not None
        assert x == pytest.approx(8.0, abs=1.5)  # paper: 8 req/s

    def test_k10_crossover_higher_than_k5(self, fig3):
        xs = fig3.crossovers()
        assert xs["k10"] is not None
        assert xs["k10"] > xs["k5"]  # paper: 11 vs 8 req/s

    def test_edge_wins_at_low_rate(self, fig3):
        p = fig3.k5.points[0]  # 6 req/s
        assert p.gap("mean") < 0

    def test_cloud_wins_at_high_rate(self, fig3):
        p = fig3.k5.points[-1]  # 12 req/s
        assert p.gap("mean") > 0

    def test_render(self, fig3):
        out = R.render_sweep_figure(fig3)
        assert "crossover" in out and "CLOUD" in out and "edge" in out


class TestFig4:
    def test_distant_cloud_crossover_later_than_typical(self, fig3, fig4):
        assert fig4.crossovers()["k5"] > fig3.crossovers()["k5"]

    def test_k5_crossover_in_paper_neighborhood(self, fig4):
        # Paper: 11 req/s; we accept the 9-12 band (DESIGN.md §6).
        x = fig4.crossovers()["k5"]
        assert x is not None
        assert 8.5 <= x <= 12.0

    def test_k10_inverts_late_or_never(self, fig4):
        """Paper: no inversion up to 12 req/s for k=10."""
        x = fig4.crossovers()["k10"]
        assert x is None or x > 9.5


class TestFig5:
    def test_tail_inverts_before_mean(self, fig4, fig5):
        """The Figure 5 insight, the paper's headline tail result."""
        assert fig5.crossovers()["k5"] < fig4.crossovers()["k5"]

    def test_tail_crossover_near_paper(self, fig5):
        # Paper: 8 req/s for k=5.
        assert fig5.crossovers()["k5"] == pytest.approx(8.0, abs=1.5)

    def test_k10_tail_crossover_higher(self, fig5):
        xs = fig5.crossovers()
        assert xs["k10"] is None or xs["k10"] > xs["k5"]


class TestFig6:
    def test_edge_distribution_has_longer_tail(self, cfg):
        res = F.fig6_distribution(cfg)
        # Paper: at 10 req/s the edge's distribution is wider with a
        # longer tail than the cloud's.
        assert res.edge.p99 > res.cloud.p99
        assert res.edge.std > res.cloud.std

    def test_render(self, cfg):
        out = R.render_fig6(F.fig6_distribution(cfg))
        assert "p95" in out and "edge" in out and "cloud" in out


class TestFig7:
    @pytest.fixture(scope="class")
    def fig7(self, cfg):
        return F.fig7_cutoff_utilizations(cfg)

    def test_cutoff_increases_with_cloud_distance(self, fig7):
        """Figure 7's message: closer clouds invert the edge earlier."""
        measured = [m for m in fig7.mean_cutoff if m is not None]
        assert all(np.diff(measured) > -0.05)  # non-decreasing (noise slack)
        # The nearest cloud must have a decisively lower cutoff than the
        # most distant one that still inverts.
        assert measured[-1] - measured[0] > 0.1

    def test_tail_cutoff_below_mean_cutoff(self, fig7):
        for m, t in zip(fig7.mean_cutoff, fig7.tail_cutoff, strict=True):
            if m is not None and t is not None:
                assert t <= m + 0.03

    def test_predictions_track_measurements(self, fig7):
        for m, p in zip(fig7.mean_cutoff, fig7.predicted_cutoff, strict=True):
            if m is not None:
                assert p == pytest.approx(m, abs=0.12)

    def test_render(self, fig7):
        out = R.render_fig7(fig7)
        assert "RTT" in out and "cutoff" in out


class TestFig8:
    def test_five_sites_with_temporal_and_spatial_variation(self, cfg):
        res = F.fig8_azure_workload(cfg)
        assert len(res.site_rates) == 5
        assert res.spatial_cv > 0.2  # sites see distinctly unequal load
        for rates in res.site_rates:
            r = rates[~np.isnan(rates)]
            assert r.max() > 1.3 * r.mean()  # temporal burstiness

    def test_render(self, cfg):
        out = R.render_fig8(F.fig8_azure_workload(cfg))
        assert "site 4" in out


class TestFig9:
    @pytest.fixture(scope="class")
    def fig9(self, cfg):
        return F.fig9_azure_latency(cfg)

    def test_edge_frequently_inverts(self, fig9):
        """Paper: edge sites frequently see inversion under the trace."""
        assert 0.1 < fig9.inversion_fraction <= 1.0

    def test_cloud_series_is_smoother(self, fig9):
        """Paper: the aggregate workload smooths the cloud's latency."""
        assert fig9.edge_variability > 1.5

    def test_series_aligned(self, fig9):
        assert fig9.window_starts.shape == fig9.edge_mean.shape == fig9.cloud_mean.shape

    def test_render(self, fig9):
        out = R.render_fig9(fig9)
        assert "windows with edge worse" in out


class TestFig10:
    @pytest.fixture(scope="class")
    def fig10(self, cfg):
        return F.fig10_azure_per_site(cfg)

    def test_sites_differ_in_latency(self, fig10):
        p95s = [s.p95 for s in fig10.site_summaries]
        assert max(p95s) > 2.0 * min(p95s)

    def test_least_loaded_site_is_cheapest(self, fig10):
        """Paper: the least-loaded site offers the lowest latencies."""
        order_by_util = np.argsort(fig10.site_utilizations)
        medians = np.array([s.p50 for s in fig10.site_summaries])
        assert medians[order_by_util[0]] < medians[order_by_util[-1]]

    def test_cloud_summary_present(self, fig10):
        assert fig10.cloud_summary.count > 1000

    def test_render(self, fig10):
        out = R.render_fig10(fig10)
        assert "cloud" in out and "rho" in out
