"""Direct tests for the text renderers (edge cases not hit via figures)."""

import numpy as np
import pytest

from repro.core.comparator import ComparisonResult, SweepPoint
from repro.core.scenarios import TYPICAL_CLOUD
from repro.experiments.figures import Fig7Result, Fig9Result
from repro.experiments.report import render_fig7, render_fig9, render_sweep
from repro.stats.summary import LatencySummary


def summary(mean):
    return LatencySummary(
        count=10, mean=mean, std=0.0, p25=mean, p50=mean, p75=mean,
        p95=mean, p99=mean, min=mean, max=mean,
    )


def make_result(edge_means, cloud_means):
    points = tuple(
        SweepPoint(
            rate_per_site=float(i + 6),
            utilization=(i + 6) / 13.0,
            edge=summary(e),
            cloud=summary(c),
        )
        for i, (e, c) in enumerate(zip(edge_means, cloud_means, strict=True))
    )
    return ComparisonResult(scenario=TYPICAL_CLOUD, points=points)


class TestRenderSweep:
    def test_no_crossover_renders_none(self):
        res = make_result([0.1, 0.11], [0.2, 0.2])
        out = render_sweep(res)
        assert "none in range" in out
        assert out.count("edge") >= 2  # winner column

    def test_crossover_rendered_with_rate(self):
        res = make_result([0.1, 0.3], [0.2, 0.2])
        out = render_sweep(res)
        assert "req/s/site" in out
        assert "CLOUD" in out

    def test_metric_selectable(self):
        res = make_result([0.1], [0.2])
        out = render_sweep(res, "p95")
        assert "p95" in out


class TestRenderFig7:
    def test_none_cutoffs_render_as_none(self):
        res = Fig7Result(
            rtts_ms=(15.0, 80.0),
            mean_cutoff=(0.4, None),
            tail_cutoff=(None, 0.75),
            predicted_cutoff=(0.45, 0.9),
        )
        out = render_fig7(res)
        assert "none" in out
        assert "0.40" in out and "0.75" in out


class TestRenderFig9:
    def test_handles_nan_windows(self):
        res = Fig9Result(
            window_starts=np.array([0.0, 60.0, 120.0]),
            edge_mean=np.array([0.1, np.nan, 0.3]),
            cloud_mean=np.array([0.2, 0.2, np.nan]),
        )
        out = render_fig9(res)
        assert "edge " in out and "cloud" in out
        # Inversion fraction computed over the single valid window.
        assert res.inversion_fraction == pytest.approx(0.0)

    def test_all_nan_inversion_fraction(self):
        res = Fig9Result(
            window_starts=np.array([0.0]),
            edge_mean=np.array([np.nan]),
            cloud_mean=np.array([np.nan]),
        )
        assert res.inversion_fraction == 0.0
