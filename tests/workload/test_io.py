"""Tests for trace persistence (CSV / NPZ round-trips)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.io import (
    load_trace_csv,
    load_trace_npz,
    save_trace_csv,
    save_trace_npz,
)
from repro.workload.trace import RequestTrace


def make_trace(n=50, seed=0, with_services=True):
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.exponential(0.1, n))
    services = rng.exponential(0.05, n) if with_services else None
    return RequestTrace(times, services)


class TestCsvRoundTrip:
    def test_with_services(self, tmp_path):
        t = make_trace()
        path = tmp_path / "trace.csv"
        save_trace_csv(t, path)
        loaded = load_trace_csv(path)
        np.testing.assert_allclose(loaded.arrival_times, t.arrival_times)
        np.testing.assert_allclose(loaded.service_times, t.service_times)

    def test_without_services(self, tmp_path):
        t = make_trace(with_services=False)
        path = tmp_path / "trace.csv"
        save_trace_csv(t, path)
        loaded = load_trace_csv(path)
        np.testing.assert_allclose(loaded.arrival_times, t.arrival_times)
        assert loaded.service_times is None

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.csv"
        save_trace_csv(RequestTrace(np.empty(0)), path)
        assert len(load_trace_csv(path)) == 0

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,foo\n1.0,2.0\n")
        with pytest.raises(ValueError, match="header"):
            load_trace_csv(path)

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "bad2.csv"
        path.write_text("arrival_time,service_time\n1.0\n")
        with pytest.raises(ValueError, match="malformed"):
            load_trace_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "nothing.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_trace_csv(path)


class TestNpzRoundTrip:
    def test_with_services(self, tmp_path):
        t = make_trace(n=200, seed=1)
        path = tmp_path / "trace.npz"
        save_trace_npz(t, path)
        loaded = load_trace_npz(path)
        np.testing.assert_array_equal(loaded.arrival_times, t.arrival_times)
        np.testing.assert_array_equal(loaded.service_times, t.service_times)

    def test_without_services(self, tmp_path):
        t = make_trace(with_services=False)
        path = tmp_path / "trace.npz"
        save_trace_npz(t, path)
        assert load_trace_npz(path).service_times is None

    def test_missing_arrivals_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, other=np.array([1.0]))
        with pytest.raises(ValueError, match="arrival_times"):
            load_trace_npz(path)

    @given(n=st.integers(min_value=1, max_value=200), seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_lossless_property(self, tmp_path_factory, n, seed):
        t = make_trace(n=n, seed=seed)
        path = tmp_path_factory.mktemp("npz") / "t.npz"
        save_trace_npz(t, path)
        loaded = load_trace_npz(path)
        np.testing.assert_array_equal(loaded.arrival_times, t.arrival_times)
        np.testing.assert_array_equal(loaded.service_times, t.service_times)
