"""Tests for the RequestTrace container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.trace import RequestTrace


def make_trace(n=100, rate=10.0, seed=0, with_services=True):
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.exponential(1.0 / rate, n))
    services = rng.exponential(0.05, n) if with_services else None
    return RequestTrace(times, services)


class TestConstruction:
    def test_basic(self):
        t = RequestTrace(np.array([0.0, 1.0, 2.0]))
        assert len(t) == 3
        assert t.duration == 2.0
        assert t.mean_rate == pytest.approx(1.0)

    def test_rejects_decreasing(self):
        with pytest.raises(ValueError):
            RequestTrace(np.array([1.0, 0.5]))

    def test_rejects_negative_service(self):
        with pytest.raises(ValueError):
            RequestTrace(np.array([0.0]), np.array([-1.0]))

    def test_rejects_misaligned_services(self):
        with pytest.raises(ValueError):
            RequestTrace(np.array([0.0, 1.0]), np.array([0.1]))

    def test_empty_trace(self):
        t = RequestTrace(np.empty(0))
        assert len(t) == 0
        assert t.duration == 0.0
        assert t.mean_rate == 0.0


class TestOperations:
    def test_slice_half_open(self):
        t = RequestTrace(np.array([0.0, 1.0, 2.0, 3.0]))
        s = t.slice(1.0, 3.0)
        np.testing.assert_allclose(s.arrival_times, [1.0, 2.0])

    def test_slice_keeps_services_aligned(self):
        t = RequestTrace(np.array([0.0, 1.0, 2.0]), np.array([0.1, 0.2, 0.3]))
        s = t.slice(0.5, 2.5)
        np.testing.assert_allclose(s.service_times, [0.2, 0.3])

    def test_slice_invalid(self):
        with pytest.raises(ValueError):
            make_trace().slice(2.0, 1.0)

    def test_shifted(self):
        t = RequestTrace(np.array([1.0, 2.0]))
        np.testing.assert_allclose(t.shifted(10.0).arrival_times, [11.0, 12.0])

    def test_interarrival_cv2_poisson_near_one(self):
        t = make_trace(n=100_000, seed=1)
        assert t.interarrival_cv2() == pytest.approx(1.0, rel=0.05)

    def test_interarrival_cv2_needs_three(self):
        with pytest.raises(ValueError):
            RequestTrace(np.array([0.0, 1.0])).interarrival_cv2()

    def test_windowed_rates(self):
        t = RequestTrace(np.array([0.1, 0.2, 1.5, 2.5, 2.6, 2.7]))
        starts, rates = t.windowed_rates(1.0, horizon=3.0)
        np.testing.assert_allclose(starts, [0.0, 1.0, 2.0])
        np.testing.assert_allclose(rates, [2.0, 1.0, 3.0])

    def test_windowed_rates_invalid_window(self):
        with pytest.raises(ValueError):
            make_trace().windowed_rates(0.0)


class TestMergeSplit:
    def test_merge_sorts(self):
        a = RequestTrace(np.array([0.0, 2.0]), np.array([1.0, 2.0]))
        b = RequestTrace(np.array([1.0, 3.0]), np.array([3.0, 4.0]))
        m = RequestTrace.merge([a, b])
        np.testing.assert_allclose(m.arrival_times, [0.0, 1.0, 2.0, 3.0])
        np.testing.assert_allclose(m.service_times, [1.0, 3.0, 2.0, 4.0])

    def test_merge_rejects_mixed_service_presence(self):
        a = RequestTrace(np.array([0.0]), np.array([1.0]))
        b = RequestTrace(np.array([1.0]))
        with pytest.raises(ValueError):
            RequestTrace.merge([a, b])

    def test_merge_empty_list_rejected(self):
        with pytest.raises(ValueError):
            RequestTrace.merge([])

    def test_split_partitions_everything(self):
        t = make_trace(n=5000, seed=2)
        parts = t.split_by_weights([0.5, 0.3, 0.2], np.random.default_rng(0))
        assert sum(len(p) for p in parts) == len(t)

    def test_split_respects_weights(self):
        t = make_trace(n=50_000, seed=3)
        parts = t.split_by_weights([0.8, 0.2], np.random.default_rng(1))
        assert len(parts[0]) / len(t) == pytest.approx(0.8, abs=0.02)

    def test_split_rejects_bad_weights(self):
        t = make_trace()
        with pytest.raises(ValueError):
            t.split_by_weights([0.0, 0.0], np.random.default_rng(0))
        with pytest.raises(ValueError):
            t.split_by_weights([-1.0, 2.0], np.random.default_rng(0))

    @given(seed=st.integers(min_value=0, max_value=200), k=st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_split_then_merge_is_identity_as_multiset(self, seed, k):
        t = make_trace(n=300, seed=seed)
        parts = t.split_by_weights(np.ones(k), np.random.default_rng(seed))
        merged = RequestTrace.merge(parts)
        np.testing.assert_allclose(np.sort(merged.arrival_times), t.arrival_times)
        np.testing.assert_allclose(
            np.sort(merged.service_times), np.sort(t.service_times)
        )
