"""Tests for workload characterization."""

import numpy as np
import pytest

from repro.workload.arrivals import HyperExpArrivals, MMPPArrivals, PoissonArrivals
from repro.workload.characterize import (
    characterize,
    index_of_dispersion,
    spatial_skew_profile,
)
from repro.workload.trace import RequestTrace


class TestCharacterize:
    def test_poisson_profile(self):
        trace = PoissonArrivals(10.0).generate(np.random.default_rng(0), horizon=5000.0)
        p = characterize(trace, window=60.0)
        assert p.mean_rate == pytest.approx(10.0, rel=0.05)
        assert p.interarrival_cv2 == pytest.approx(1.0, rel=0.1)
        assert p.dispersion == pytest.approx(1.0, abs=0.3)
        assert p.suggests_poisson()
        assert p.service_cv2 is None and p.mean_service is None

    def test_bursty_profile_flagged(self):
        trace = MMPPArrivals(3.0, 40.0, 120.0, 30.0).generate(
            np.random.default_rng(1), horizon=20_000.0
        )
        p = characterize(trace, window=60.0)
        assert p.dispersion > 3.0
        assert p.peak_to_mean > 1.5
        assert not p.suggests_poisson()

    def test_renewal_burstiness_captured_by_cv2(self):
        trace = HyperExpArrivals(10.0, 4.0).generate(
            np.random.default_rng(2), horizon=8000.0
        )
        p = characterize(trace)
        assert p.interarrival_cv2 == pytest.approx(4.0, rel=0.25)

    def test_service_statistics(self):
        rng = np.random.default_rng(3)
        times = np.cumsum(rng.exponential(0.1, 5000))
        services = rng.gamma(4.0, 0.025, 5000)  # mean 0.1, cv2 0.25
        p = characterize(RequestTrace(times, services))
        assert p.mean_service == pytest.approx(0.1, rel=0.05)
        assert p.service_cv2 == pytest.approx(0.25, rel=0.15)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            characterize(RequestTrace(np.array([0.0, 1.0])))


class TestIndexOfDispersion:
    def test_poisson_near_one(self):
        trace = PoissonArrivals(20.0).generate(np.random.default_rng(4), horizon=10_000.0)
        assert index_of_dispersion(trace, 30.0) == pytest.approx(1.0, abs=0.25)

    def test_deterministic_near_zero(self):
        trace = RequestTrace(np.arange(0.0, 1000.0, 0.1))
        assert index_of_dispersion(trace, 10.0) < 0.05

    def test_validation(self):
        trace = RequestTrace(np.array([0.0, 1.0, 2.0]))
        with pytest.raises(ValueError):
            index_of_dispersion(trace, 0.0)
        with pytest.raises(ValueError):
            index_of_dispersion(RequestTrace(np.array([1.0])), 10.0)


class TestSpatialSkewProfile:
    def make_sites(self, rates, seed=5):
        rng = np.random.default_rng(seed)
        return [
            RequestTrace(np.cumsum(rng.exponential(1.0 / r, 2000))) for r in rates
        ]

    def test_balanced_sites(self):
        prof = spatial_skew_profile(self.make_sites([10.0] * 4))
        assert prof["site_cv"] < 0.05
        assert prof["skew_wait_factor"] == pytest.approx(1.0, abs=0.2)

    def test_skewed_sites_flagged(self):
        prof = spatial_skew_profile(self.make_sites([20.0, 5.0, 5.0, 2.0]))
        assert prof["site_cv"] > 0.5
        assert prof["max_over_mean"] > 1.5
        assert prof["skew_wait_factor"] > 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            spatial_skew_profile([])
