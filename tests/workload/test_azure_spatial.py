"""Tests for the synthetic Azure workload and spatial skew models."""

import numpy as np
import pytest

from repro.workload.azure import (
    AzureTraceConfig,
    generate_azure_workload,
    group_functions_into_sites,
)
from repro.workload.spatial import HotspotGrid, time_varying_weights, zipf_weights
from repro.workload.trace import RequestTrace

SMALL = AzureTraceConfig(n_functions=20, duration=1800.0, total_rate=30.0)


@pytest.fixture(scope="module")
def workload():
    return generate_azure_workload(SMALL, np.random.default_rng(7))


class TestAzureGenerator:
    def test_one_trace_per_function(self, workload):
        assert len(workload) == 20
        assert sorted(f.function_id for f in workload) == list(range(20))

    def test_total_rate_approximate(self, workload):
        total = sum(len(f) for f in workload)
        assert total / SMALL.duration == pytest.approx(SMALL.total_rate, rel=0.35)

    def test_traces_have_service_times(self, workload):
        for f in workload:
            if len(f) > 0:
                assert f.trace.service_times is not None
                assert np.all(f.trace.service_times > 0)

    def test_popularity_is_heavy_tailed(self, workload):
        counts = np.array(sorted((len(f) for f in workload), reverse=True))
        # Top 25% of functions should carry well over half the load.
        top = counts[: len(counts) // 4].sum()
        assert top > 0.5 * counts.sum()

    def test_arrivals_within_duration(self, workload):
        for f in workload:
            if len(f) > 0:
                assert f.trace.arrival_times.max() < SMALL.duration
                assert f.trace.arrival_times.min() >= 0.0

    def test_burstier_than_poisson(self):
        cfg = AzureTraceConfig(n_functions=3, duration=7200.0, total_rate=30.0)
        fns = generate_azure_workload(cfg, np.random.default_rng(8))
        merged = RequestTrace.merge([f.trace for f in fns])
        assert merged.interarrival_cv2() > 1.0

    def test_reproducible(self):
        a = generate_azure_workload(SMALL, np.random.default_rng(9))
        b = generate_azure_workload(SMALL, np.random.default_rng(9))
        np.testing.assert_array_equal(a[0].trace.arrival_times, b[0].trace.arrival_times)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AzureTraceConfig(n_functions=0)
        with pytest.raises(ValueError):
            AzureTraceConfig(duration=-1.0)
        with pytest.raises(ValueError):
            AzureTraceConfig(diurnal_amplitude=1.0)
        with pytest.raises(ValueError):
            AzureTraceConfig(spike_factor=0.5)
        with pytest.raises(ValueError):
            AzureTraceConfig(spike_prob=1.5)


class TestSiteGrouping:
    def test_partition_is_exhaustive_and_exclusive(self, workload):
        sites = group_functions_into_sites(workload, 5, np.random.default_rng(0))
        assert len(sites) == 5
        total = sum(len(s) for s in sites)
        assert total == sum(len(f) for f in workload)

    def test_sites_see_skewed_load(self, workload):
        sites = group_functions_into_sites(workload, 5, np.random.default_rng(1))
        counts = np.array([len(s) for s in sites], dtype=float)
        assert counts.max() > 1.5 * counts.min()

    def test_k_validation(self, workload):
        with pytest.raises(ValueError):
            group_functions_into_sites(workload, 0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            group_functions_into_sites(workload[:3], 5, np.random.default_rng(0))


class TestZipfWeights:
    def test_balanced_at_zero(self):
        np.testing.assert_allclose(zipf_weights(4, 0.0), 0.25)

    def test_normalized_and_ordered(self):
        w = zipf_weights(5, 1.0)
        assert w.sum() == pytest.approx(1.0)
        assert np.all(np.diff(w) < 0)

    def test_single_site(self):
        np.testing.assert_allclose(zipf_weights(1, 2.0), [1.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(3, -1.0)


class TestTimeVaryingWeights:
    def test_normalized_at_all_times(self):
        for t in np.linspace(0, 86_400.0, 17):
            w = time_varying_weights(5, 1.0, t, 86_400.0)
            assert w.sum() == pytest.approx(1.0)
            assert np.all(w >= 0)

    def test_period_returns_to_start(self):
        w0 = time_varying_weights(5, 1.0, 0.0, 100.0)
        w1 = time_varying_weights(5, 1.0, 100.0, 100.0)
        np.testing.assert_allclose(w0, w1, atol=1e-12)

    def test_hot_site_moves(self):
        w0 = time_varying_weights(5, 1.5, 0.0, 100.0)
        w_half = time_varying_weights(5, 1.5, 50.0, 100.0)
        assert int(np.argmax(w0)) != int(np.argmax(w_half))

    def test_validation(self):
        with pytest.raises(ValueError):
            time_varying_weights(5, 1.0, 0.0, 0.0)


class TestHotspotGrid:
    def test_weights_normalized(self):
        g = HotspotGrid(rows=6, cols=6, seed=1)
        w = g.cell_weights(3600.0)
        assert w.shape == (36,)
        assert w.sum() == pytest.approx(1.0)

    def test_load_is_spatially_skewed(self):
        """Figure 2's qualitative claim: some cells see far more load."""
        g = HotspotGrid(rows=10, cols=10, seed=2)
        times = np.linspace(0.0, 86_400.0, 24, endpoint=False)
        loads = g.sample_cell_loads(np.random.default_rng(0), 200.0, times, 60.0)
        stats = g.skew_statistics(loads)
        assert stats["max_over_mean"] > 2.5
        assert stats["cell_cv"] > 0.6

    def test_hotspots_drift_over_day(self):
        g = HotspotGrid(rows=8, cols=8, drift_radius=3.0, seed=3)
        w_day = g.cell_weights(0.0)
        w_night = g.cell_weights(43_200.0)
        assert int(np.argmax(w_day)) != int(np.argmax(w_night))

    def test_sample_shape(self):
        g = HotspotGrid(rows=4, cols=5, seed=4)
        loads = g.sample_cell_loads(np.random.default_rng(1), 50.0, np.arange(3.0), 60.0)
        assert loads.shape == (20, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            HotspotGrid(rows=0)
        with pytest.raises(ValueError):
            HotspotGrid(baseline=1.0)
        with pytest.raises(ValueError):
            HotspotGrid(hotspot_sigma=0.0)
        g = HotspotGrid(rows=3, cols=3)
        with pytest.raises(ValueError):
            g.cell_weights(0.0, period=0.0)
        with pytest.raises(ValueError):
            g.sample_cell_loads(np.random.default_rng(0), 0.0, np.arange(2.0), 60.0)
        with pytest.raises(ValueError):
            g.skew_statistics(np.zeros((5, 2)))
