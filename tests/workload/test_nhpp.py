"""Tests for the non-homogeneous Poisson (thinning) process."""

import numpy as np
import pytest

from repro.workload.arrivals import NonHomogeneousPoisson


class TestNonHomogeneousPoisson:
    def test_constant_rate_reduces_to_poisson(self):
        p = NonHomogeneousPoisson(lambda t: 10.0, max_rate=10.0, mean_rate=10.0)
        t = p.generate(np.random.default_rng(0), horizon=3000.0)
        assert t.mean_rate == pytest.approx(10.0, rel=0.05)
        assert t.interarrival_cv2() == pytest.approx(1.0, rel=0.1)

    def test_diurnal_envelope_followed(self):
        period = 1000.0

        def rate(t):
            return 10.0 * (1.0 + 0.8 * np.sin(2 * np.pi * t / period))

        p = NonHomogeneousPoisson(rate, max_rate=18.0, mean_rate=10.0)
        trace = p.generate(np.random.default_rng(1), horizon=5 * period)
        starts, rates = trace.windowed_rates(period / 4.0, horizon=5 * period)
        # Peak quarter-windows must clearly exceed trough windows.
        assert np.nanmax(rates) > 2.0 * np.nanmin(rates)

    def test_zero_rate_interval_has_no_arrivals(self):
        p = NonHomogeneousPoisson(
            lambda t: 0.0 if t < 50.0 else 20.0, max_rate=20.0, mean_rate=10.0
        )
        trace = p.generate(np.random.default_rng(2), horizon=100.0)
        assert trace.arrival_times.min() >= 50.0

    def test_rate_fn_exceeding_max_rejected(self):
        p = NonHomogeneousPoisson(lambda t: 30.0, max_rate=20.0)
        with pytest.raises(ValueError, match="max_rate"):
            p.generate(np.random.default_rng(3), horizon=50.0)

    def test_horizon_mode_only(self):
        p = NonHomogeneousPoisson(lambda t: 5.0, max_rate=5.0)
        with pytest.raises(ValueError):
            p.generate(np.random.default_rng(0), n=100)
        with pytest.raises(ValueError):
            p.generate(np.random.default_rng(0))
        with pytest.raises(ValueError):
            p.generate(np.random.default_rng(0), horizon=-1.0)

    def test_invalid_max_rate(self):
        with pytest.raises(ValueError):
            NonHomogeneousPoisson(lambda t: 1.0, max_rate=0.0)

    def test_burstier_than_poisson_under_modulation(self):
        def rate(t):
            return 2.0 if int(t / 100.0) % 2 == 0 else 18.0

        p = NonHomogeneousPoisson(rate, max_rate=18.0, mean_rate=10.0)
        trace = p.generate(np.random.default_rng(4), horizon=8000.0)
        assert trace.interarrival_cv2() > 1.2
