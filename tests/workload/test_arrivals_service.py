"""Tests for arrival processes and service models."""

import numpy as np
import pytest

from repro.workload.arrivals import (
    DeterministicArrivals,
    GammaRenewalArrivals,
    HyperExpArrivals,
    MMPPArrivals,
    PoissonArrivals,
    merge_traces,
)
from repro.workload.service import DNNInferenceModel, ImageClassifierService


class TestPoissonArrivals:
    def test_rate_achieved(self):
        t = PoissonArrivals(20.0).generate(np.random.default_rng(0), horizon=2000.0)
        assert t.mean_rate == pytest.approx(20.0, rel=0.03)

    def test_cv2_is_one(self):
        t = PoissonArrivals(20.0).generate(np.random.default_rng(1), horizon=5000.0)
        assert t.interarrival_cv2() == pytest.approx(1.0, rel=0.05)

    def test_fixed_count_mode(self):
        t = PoissonArrivals(5.0).generate(np.random.default_rng(2), n=1234)
        assert len(t) == 1234

    def test_horizon_respected(self):
        t = PoissonArrivals(50.0).generate(np.random.default_rng(3), horizon=10.0)
        assert t.arrival_times.max() < 10.0

    def test_exactly_one_mode_required(self):
        p = PoissonArrivals(1.0)
        with pytest.raises(ValueError):
            p.generate(np.random.default_rng(0))
        with pytest.raises(ValueError):
            p.generate(np.random.default_rng(0), horizon=1.0, n=10)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)


class TestShapedArrivals:
    def test_deterministic_cv2_zero(self):
        t = DeterministicArrivals(10.0).generate(np.random.default_rng(0), horizon=100.0)
        assert t.interarrival_cv2() == pytest.approx(0.0, abs=1e-12)

    def test_gamma_renewal_cv2(self):
        t = GammaRenewalArrivals(10.0, 0.25).generate(np.random.default_rng(1), horizon=5000.0)
        assert t.interarrival_cv2() == pytest.approx(0.25, rel=0.1)

    def test_gamma_renewal_range_check(self):
        with pytest.raises(ValueError):
            GammaRenewalArrivals(10.0, 1.5)

    def test_hyperexp_cv2(self):
        t = HyperExpArrivals(10.0, 4.0).generate(np.random.default_rng(2), horizon=8000.0)
        assert t.interarrival_cv2() == pytest.approx(4.0, rel=0.2)

    def test_hyperexp_range_check(self):
        with pytest.raises(ValueError):
            HyperExpArrivals(10.0, 0.9)

    def test_interarrival_dist_mean(self):
        p = HyperExpArrivals(8.0, 2.0)
        assert p.interarrival().mean == pytest.approx(1.0 / 8.0)
        assert p.cv2 == pytest.approx(2.0)


class TestMMPP:
    def test_mean_rate_is_dwell_weighted(self):
        p = MMPPArrivals(base_rate=5.0, burst_rate=50.0, base_dwell=90.0, burst_dwell=10.0)
        assert p.rate == pytest.approx(0.9 * 5.0 + 0.1 * 50.0)
        t = p.generate(np.random.default_rng(0), horizon=20_000.0)
        assert t.mean_rate == pytest.approx(p.rate, rel=0.1)

    def test_burstier_than_poisson(self):
        p = MMPPArrivals(base_rate=5.0, burst_rate=50.0, base_dwell=60.0, burst_dwell=20.0)
        t = p.generate(np.random.default_rng(1), horizon=20_000.0)
        assert t.interarrival_cv2() > 1.5

    def test_fixed_count_mode(self):
        p = MMPPArrivals(5.0, 20.0, 30.0, 10.0)
        t = p.generate(np.random.default_rng(2), n=500)
        assert len(t) == 500

    def test_validation(self):
        with pytest.raises(ValueError):
            MMPPArrivals(0.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            MMPPArrivals(1.0, 1.0, 0.0, 1.0)

    def test_requires_exactly_one_mode(self):
        p = MMPPArrivals(5.0, 20.0, 30.0, 10.0)
        with pytest.raises(ValueError):
            p.generate(np.random.default_rng(0))


class TestMergeTraces:
    def test_superposition_rate_adds(self):
        rng = np.random.default_rng(3)
        parts = [PoissonArrivals(5.0).generate(rng, horizon=1000.0) for _ in range(4)]
        merged = merge_traces(parts)
        assert merged.mean_rate == pytest.approx(20.0, rel=0.05)


class TestDNNInferenceModel:
    def test_paper_calibration(self):
        m = DNNInferenceModel()  # defaults: 13 req/s, 8 concurrency lanes
        assert m.mean_service_time == pytest.approx(8.0 / 13.0)
        assert m.core_service_rate == pytest.approx(13.0 / 8.0)
        assert m.servers_for_machines(5) == 40

    def test_utilization(self):
        m = DNNInferenceModel()
        # Paper: 8 req/s on one machine -> rho = 8/13 = 0.615.
        assert m.utilization(8.0) == pytest.approx(8.0 / 13.0)
        assert m.utilization(80.0, machines=10) == pytest.approx(8.0 / 13.0)

    def test_max_stable_rate(self):
        m = DNNInferenceModel()
        assert m.max_stable_rate() == pytest.approx(13.0)
        assert m.max_stable_rate(machines=2, headroom=0.5) == pytest.approx(13.0)

    def test_service_dist_moments(self):
        m = DNNInferenceModel(cv2=0.25)
        d = m.service_dist()
        assert d.mean == pytest.approx(m.mean_service_time)
        assert d.cv2 == pytest.approx(0.25)

    def test_saturation_semantics(self):
        """A machine saturates at exactly saturation_rate regardless of cores."""
        for cores in (1, 2, 4, 8):
            m = DNNInferenceModel(cores=cores)
            mu_total = m.core_service_rate * cores
            assert mu_total == pytest.approx(13.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DNNInferenceModel(saturation_rate=0.0)
        with pytest.raises(ValueError):
            DNNInferenceModel(cores=0)
        with pytest.raises(ValueError):
            DNNInferenceModel(cv2=-1.0)
        with pytest.raises(ValueError):
            DNNInferenceModel().utilization(-1.0)
        with pytest.raises(ValueError):
            DNNInferenceModel().max_stable_rate(headroom=1.0)
        with pytest.raises(ValueError):
            DNNInferenceModel().servers_for_machines(0)


class TestImageClassifierService:
    def test_affine_model_roundtrip(self):
        svc = ImageClassifierService(base=0.02, per_mpix=0.1)
        sizes = np.array([0.5, 1.0, 4.0])
        times = svc.service_time_for_size(sizes)
        np.testing.assert_allclose(svc.size_for_service_time(times), sizes)

    def test_below_base_maps_to_zero_size(self):
        svc = ImageClassifierService(base=0.05, per_mpix=0.1)
        assert svc.size_for_service_time(0.01) == 0.0

    def test_sample_mean(self):
        svc = ImageClassifierService()
        times = svc.sample_service_times(np.random.default_rng(0), 100_000)
        assert times.mean() == pytest.approx(svc.mean_service_time, rel=0.03)
        assert times.min() >= svc.base

    def test_validation(self):
        with pytest.raises(ValueError):
            ImageClassifierService(per_mpix=0.0)
        with pytest.raises(ValueError):
            ImageClassifierService().service_time_for_size(-1.0)
        with pytest.raises(ValueError):
            ImageClassifierService().size_for_service_time(-1.0)
