"""Tests for the unified experiment-result API (repro.experiments.result)."""

import json

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.result import (
    ExperimentResult,
    ExperimentSpec,
    _harvest,
    available,
    get_spec,
    register,
    run_experiment,
)

TINY = ExperimentConfig(requests_per_site=2_000, azure_duration=600.0, seed=3)

EXPECTED = {
    "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
    "validation", "resilience", "overload", "telemetry",
}


class TestRegistry:
    def test_all_builtin_experiments_registered(self):
        assert {spec.name for spec in available()} >= EXPECTED

    def test_specs_carry_descriptions(self):
        assert all(spec.description for spec in available())

    def test_get_spec_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="fig2"):
            get_spec("nope")

    def test_register_rejects_duplicates(self):
        spec = get_spec("fig2")
        with pytest.raises(ValueError, match="already registered"):
            register("fig2", "dup", spec.runner, spec.renderer)
        # overwrite=True replaces and restores cleanly
        replaced = register("fig2", "replaced", spec.runner, spec.renderer, overwrite=True)
        assert get_spec("fig2") is replaced
        register(spec.name, spec.description, spec.runner, spec.renderer, overwrite=True)

    def test_registry_extension_hook(self):
        spec = register(
            "_test_exp", "a test experiment", lambda cfg: {"xs": [1, 2, 3]}, lambda raw: "ok"
        )
        try:
            assert isinstance(spec, ExperimentSpec)
            result = run_experiment("_test_exp", TINY)
            assert result.text == "ok"
            assert result.series == {"xs": [1, 2, 3]}
        finally:
            from repro.experiments import result as module

            del module._REGISTRY["_test_exp"]


class TestHarvest:
    def test_flat_dict_lists_become_tables(self):
        tables, series = {}, {}
        _harvest({"rows": [{"a": 1, "b": "x"}, {"a": 2, "b": None}]}, "", tables, series)
        assert tables == {"rows": [{"a": 1, "b": "x"}, {"a": 2, "b": None}]}
        assert series == {}

    def test_numeric_lists_become_series(self):
        tables, series = {}, {}
        _harvest({"lat": {"p95": [0.1, None, 0.3]}}, "", tables, series)
        assert series == {"lat.p95": [0.1, None, 0.3]}

    def test_nested_dicts_use_dotted_paths(self):
        tables, series = {}, {}
        _harvest({"edge": {"sweep": [{"rate": 1.0}]}}, "", tables, series)
        assert list(tables) == ["edge.sweep"]

    def test_nested_row_dicts_flatten_to_dotted_columns(self):
        tables, series = {}, {}
        rows = [{"rate": 1.0, "edge": {"mean": 0.5, "p95": 0.9}}]
        _harvest({"points": rows}, "", tables, series)
        assert tables == {"points": [{"rate": 1.0, "edge.mean": 0.5, "edge.p95": 0.9}]}

    def test_non_harvestable_nodes_are_skipped(self):
        tables, series = {}, {}
        _harvest({"mixed": [1, "two"], "empty": [], "flag": True}, "", tables, series)
        assert tables == {} and series == {}

    def test_bools_are_not_numbers(self):
        tables, series = {}, {}
        _harvest({"flags": [True, False]}, "", tables, series)
        assert series == {}


class TestRunExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("fig3", TINY)

    def test_envelope_fields(self, result):
        assert result.name == "fig3"
        assert result.text and "edge" in result.text.lower()
        assert result.metadata["experiment"] == "fig3"
        assert result.metadata["config"]["requests_per_site"] == 2_000
        assert result.raw is not None

    def test_tables_and_series_are_json_safe(self, result):
        assert result.tables or result.series
        json.dumps(result.as_dict(), allow_nan=False)  # must not raise

    def test_as_dict_excludes_raw(self, result):
        assert "raw" not in result.as_dict()

    def test_save_round_trips(self, result, tmp_path):
        path = result.save(tmp_path / "fig3.json")
        loaded = json.loads(path.read_text())
        assert loaded["name"] == "fig3"
        assert loaded["tables"] == result.tables
        assert loaded["series"] == result.series


class TestCompatibilityShims:
    def test_cli_experiments_table_mirrors_registry(self):
        from repro.cli import EXPERIMENTS

        assert set(EXPERIMENTS) == {spec.name for spec in available()}

    def test_figure_runners_shim_intact(self):
        from repro.experiments.persist import FIGURE_RUNNERS

        assert set(FIGURE_RUNNERS) == {f"fig{i}" for i in range(2, 11)}

    def test_dump_experiment_writes_envelope(self, tmp_path):
        from repro.experiments.persist import dump_experiment

        path = dump_experiment("fig2", TINY, tmp_path / "fig2.json")
        loaded = json.loads(path.read_text())
        assert loaded["name"] == "fig2"
        assert loaded["metadata"]["description"]

    def test_render_result_header(self):
        from repro.experiments.report import render_result

        result = ExperimentResult(name="x", text="body", metadata={"description": "d"})
        out = render_result(result)
        assert out.startswith("== x: d ==") and "body" in out

    def test_top_level_reexports(self):
        import repro

        assert repro.ExperimentResult is ExperimentResult
        assert repro.run_experiment is run_experiment
