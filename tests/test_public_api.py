"""Public-API surface tests: every documented export exists and imports.

A release-gate test: `__all__` in each package must resolve, and the
lazy top-level exports must work (PEP 562 indirection is easy to break
silently when moving symbols)."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.queueing",
    "repro.sim",
    "repro.workload",
    "repro.core",
    "repro.mitigation",
    "repro.stats",
    "repro.experiments",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    mod = importlib.import_module(package)
    for name in getattr(mod, "__all__", []):
        assert getattr(mod, name) is not None, f"{package}.{name} missing"


def test_top_level_lazy_exports():
    import repro

    assert repro.EdgeCloudComparator is not None
    assert repro.TYPICAL_CLOUD.cloud_rtt_ms == 24.0
    assert callable(repro.cutoff_utilization_exact)


def test_top_level_unknown_attribute():
    import repro

    with pytest.raises(AttributeError):
        repro.does_not_exist


def test_dir_lists_exports():
    import repro

    assert "EdgeCloudComparator" in dir(repro)


def test_version_is_set():
    import repro

    assert repro.__version__


def test_cli_entrypoint_importable():
    from repro.cli import main

    assert callable(main)
