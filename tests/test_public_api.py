"""Public-API surface tests: every documented export exists and imports.

A release-gate test: `__all__` in each package must resolve, and the
lazy top-level exports must work (PEP 562 indirection is easy to break
silently when moving symbols)."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.api",
    "repro.queueing",
    "repro.sim",
    "repro.workload",
    "repro.core",
    "repro.mitigation",
    "repro.stats",
    "repro.experiments",
    "repro.experiments.schema",
    "repro.campaign",
    "repro.obs",
    "repro.parallel",
    "repro.service",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    mod = importlib.import_module(package)
    for name in getattr(mod, "__all__", []):
        assert getattr(mod, name) is not None, f"{package}.{name} missing"


def test_top_level_lazy_exports():
    import repro

    assert repro.EdgeCloudComparator is not None
    assert repro.TYPICAL_CLOUD.cloud_rtt_ms == 24.0
    assert callable(repro.cutoff_utilization_exact)


def test_top_level_unknown_attribute():
    import repro

    with pytest.raises(AttributeError):
        repro.does_not_exist


def test_dir_lists_exports():
    import repro

    assert "EdgeCloudComparator" in dir(repro)


def test_version_is_set():
    import repro

    assert repro.__version__


def test_cli_entrypoint_importable():
    from repro.cli import main

    assert callable(main)


def test_api_facade_exports_resolve():
    import repro.api as api

    for name in api.__all__:
        assert getattr(api, name) is not None, f"repro.api.{name} missing"


def test_api_facade_matches_deep_imports():
    """The facade re-exports the same objects, not copies."""
    import repro.api as api
    from repro.campaign import run_campaign
    from repro.experiments.result import run_experiment

    assert api.run_campaign is run_campaign
    assert api.run_experiment is run_experiment


def test_retired_deep_paths_warn_and_forward():
    import warnings

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        from repro.cli import EXPERIMENTS
        from repro.experiments.persist import FIGURE_RUNNERS

    assert all(w.category is DeprecationWarning for w in caught)
    assert len(caught) == 2
    assert set(FIGURE_RUNNERS) == {f"fig{i}" for i in range(2, 11)}
    assert "validation" in EXPERIMENTS
