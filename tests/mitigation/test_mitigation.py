"""Tests for the Section 5 mitigation techniques."""

import numpy as np
import pytest

from repro.mitigation.autoscale import ReactiveAutoscaler
from repro.mitigation.geo_lb import GeoLoadBalancer
from repro.mitigation.provisioning import plan_capacity, rebalance_to_budget
from repro.queueing.distributions import Exponential
from repro.sim.network import ConstantLatency
from repro.sim.runner import run_deployment

MU = 13.0
SERVICE = Exponential(1.0 / MU)
EDGE_LAT = ConstantLatency.from_ms(1.0)


def run_skewed_edge(router=None, seed=0, duration=1500.0):
    """Skewed 5-site edge workload (hot site at rho ~0.9)."""
    return run_deployment(
        "edge",
        sites=5,
        servers_per_site=1,
        rate_per_site=0.0,
        site_rates=[11.7, 5.0, 5.0, 5.0, 3.0],
        service_dist=SERVICE,
        latency=EDGE_LAT,
        duration=duration,
        seed=seed,
        router=router,
    )


class TestGeoLoadBalancer:
    def test_reduces_latency_under_skew(self):
        baseline = run_skewed_edge(router=None, seed=1)
        glb = GeoLoadBalancer(occupancy_threshold=1.0, inter_site_oneway=0.003)
        balanced = run_skewed_edge(router=glb, seed=1)
        assert balanced.end_to_end.mean() < baseline.end_to_end.mean()
        assert np.quantile(balanced.end_to_end, 0.95) < np.quantile(
            baseline.end_to_end, 0.95
        )

    def test_redirects_happen_and_are_counted(self):
        glb = GeoLoadBalancer(occupancy_threshold=1.0)
        run_skewed_edge(router=glb, seed=2, duration=500.0)
        assert glb.redirected > 0
        assert 0.0 < glb.redirect_fraction < 1.0

    def test_no_redirects_when_threshold_huge(self):
        glb = GeoLoadBalancer(occupancy_threshold=1e9)
        run_skewed_edge(router=glb, seed=3, duration=300.0)
        assert glb.redirected == 0
        assert glb.redirect_fraction == 0.0

    def test_redirect_fraction_zero_before_use(self):
        assert GeoLoadBalancer().redirect_fraction == 0.0

    def test_mitigates_inversion_against_cloud(self):
        """Queue jockeying restores the edge's win in a skewed regime."""
        cloud = run_deployment(
            "cloud",
            sites=5,
            servers_per_site=1,
            rate_per_site=0.0,
            site_rates=[11.7, 5.0, 5.0, 5.0, 3.0],
            service_dist=SERVICE,
            latency=ConstantLatency.from_ms(25.0),
            duration=1500.0,
            seed=4,
        )
        baseline = run_skewed_edge(router=None, seed=4)
        glb_run = run_skewed_edge(router=GeoLoadBalancer(), seed=4)
        # Without jockeying the skewed edge loses to the cloud (inversion);
        # with it, the gap shrinks decisively.
        gap_before = baseline.end_to_end.mean() - cloud.end_to_end.mean()
        gap_after = glb_run.end_to_end.mean() - cloud.end_to_end.mean()
        assert gap_after < gap_before

    def test_validation(self):
        with pytest.raises(ValueError):
            GeoLoadBalancer(occupancy_threshold=-1.0)
        with pytest.raises(ValueError):
            GeoLoadBalancer(inter_site_oneway=-0.1)
        with pytest.raises(ValueError):
            GeoLoadBalancer(improvement_factor=0.0)


class TestPlanCapacity:
    def test_stability_floors(self):
        plan = plan_capacity([5.0, 20.0, 0.0], MU)
        assert plan.is_stable()
        assert plan.servers[2] == 0
        assert plan.servers[1] >= 2  # 20 req/s needs >= 2 servers at mu=13

    def test_equalizes_utilization_direction(self):
        plan = plan_capacity([26.0, 2.0], MU)
        u = plan.utilizations
        assert abs(u[0] - u[1]) < 0.95  # both well below saturation

    def test_inversion_floor_raises_allocation(self):
        base = plan_capacity([8.0, 8.0], MU)
        guarded = plan_capacity(
            [8.0, 8.0], MU, delta_n=0.030, cloud_servers=5, time_unit=0.077
        )
        assert guarded.total_servers >= base.total_servers

    def test_overprovision_factor(self):
        base = plan_capacity([8.0, 8.0], MU)
        padded = plan_capacity([8.0, 8.0], MU, overprovision=2.0)
        assert padded.total_servers >= 2 * base.total_servers - 2

    def test_max_utilization(self):
        plan = plan_capacity([5.0, 12.0], MU)
        assert plan.max_utilization == max(plan.utilizations)

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_capacity([], MU)
        with pytest.raises(ValueError):
            plan_capacity([1.0], 0.0)
        with pytest.raises(ValueError):
            plan_capacity([1.0], MU, overprovision=0.5)
        with pytest.raises(ValueError):
            plan_capacity([1.0], MU, delta_n=0.01)  # missing cloud_servers


class TestRebalanceToBudget:
    def test_proportional_within_budget(self):
        plan = rebalance_to_budget([20.0, 10.0, 10.0], 8, MU)
        assert plan.total_servers == 8
        assert plan.servers[0] >= plan.servers[1]
        assert plan.is_stable()

    def test_impossible_budget_rejected(self):
        with pytest.raises(ValueError):
            rebalance_to_budget([100.0, 100.0], 2, MU)


class TestReactiveAutoscaler:
    def _run_with_autoscaler(self, rates_fn=None, **kwargs):
        from repro.queueing.distributions import Exponential as Exp
        from repro.sim.client import OpenLoopSource
        from repro.sim.engine import Simulation
        from repro.sim.topology import EdgeDeployment, EdgeSite

        sim = Simulation(9)
        site = EdgeSite(sim, "s0", 1, EDGE_LAT, SERVICE)
        edge = EdgeDeployment(sim, [site])
        OpenLoopSource(sim, edge, Exp(1.0 / 11.0), site="s0", stop_time=600.0)
        scaler = ReactiveAutoscaler(
            sim, [site.station], interval=20.0, stop_time=600.0, **kwargs
        )
        sim.run()
        return edge, site, scaler

    def test_scales_up_under_load(self):
        _, site, scaler = self._run_with_autoscaler(target_utilization=0.5)
        assert scaler.scale_events > 0
        assert site.station.servers > 1

    def test_respects_max(self):
        _, site, scaler = self._run_with_autoscaler(
            target_utilization=0.1, max_servers=3
        )
        assert site.station.servers <= 3

    def test_improves_latency_vs_fixed(self):
        edge_scaled, _, _ = self._run_with_autoscaler(target_utilization=0.5)
        # Fixed single-server baseline at the same workload.
        fixed = run_deployment(
            "edge",
            sites=1,
            servers_per_site=1,
            rate_per_site=11.0,
            service_dist=SERVICE,
            latency=EDGE_LAT,
            duration=600.0,
            seed=9,
        )
        scaled_mean = edge_scaled.log.breakdown().after(120.0).end_to_end.mean()
        assert scaled_mean < fixed.end_to_end.mean()

    def test_validation(self):
        from repro.sim.engine import Simulation
        from repro.sim.station import Station

        sim = Simulation(0)
        st = Station(sim, 1, SERVICE)
        with pytest.raises(ValueError):
            ReactiveAutoscaler(sim, [], target_utilization=0.5)
        with pytest.raises(ValueError):
            ReactiveAutoscaler(sim, [st], target_utilization=1.5)
        with pytest.raises(ValueError):
            ReactiveAutoscaler(sim, [st], interval=0.0)
        with pytest.raises(ValueError):
            ReactiveAutoscaler(sim, [st], min_servers=5, max_servers=2)
