"""Tests for admission control."""

from itertools import count

import numpy as np
import pytest

from repro.mitigation.admission import (
    AdaptiveAdmission,
    AdmissionControlledStation,
    AIMDConcurrencyLimit,
    GradientConcurrencyLimit,
    OccupancyAdmission,
    StaticConcurrencyLimit,
    TokenBucketAdmission,
)
from repro.queueing.distributions import Deterministic, Exponential
from repro.sim.engine import Simulation
from repro.sim.request import Request
from repro.sim.station import Station

MU = 13.0


def drive(controlled, sim, rate, duration, rng):
    ids = count()

    def gen():
        if sim.now < duration:
            controlled.arrive(Request(next(ids), created=sim.now))
            sim.schedule(rng.exponential(1.0 / rate), gen)

    sim.schedule(0.0, gen)
    sim.run(until=duration)


class TestOccupancyAdmission:
    def test_rejects_when_full(self):
        sim = Simulation(0)
        st = Station(sim, 1, Deterministic(10.0))
        ctl = AdmissionControlledStation(sim, st, OccupancyAdmission(limit=2.0))
        for i in range(5):
            sim.schedule(0.0, ctl.arrive, Request(i, created=0.0))
        sim.run(until=1.0)
        # 1 in service + 1 queued = in_system 2 = limit -> rest rejected.
        assert ctl.rejected == 3
        assert ctl.rejection_rate == pytest.approx(0.6)

    def test_bounds_latency_during_overload(self):
        sim = Simulation(1)
        done = []
        st = Station(
            sim, 1, Exponential(1.0 / MU),
            on_departure=lambda r: done.append(r.service_start - r.arrived),
        )
        ctl = AdmissionControlledStation(sim, st, OccupancyAdmission(limit=4.0))
        drive(ctl, sim, rate=30.0, duration=300.0, rng=sim.spawn_rng())  # rho=2.3
        waits = np.array(done)
        assert ctl.rejection_rate > 0.4  # sheds most of the overload
        # Waits bounded by ~limit services each.
        assert waits.max() < 10 * (4.0 / MU)

    def test_admits_everything_when_idle(self):
        sim = Simulation(2)
        st = Station(sim, 4, Exponential(1.0 / MU))
        ctl = AdmissionControlledStation(sim, st, OccupancyAdmission(limit=2.0))
        drive(ctl, sim, rate=2.0, duration=200.0, rng=sim.spawn_rng())
        assert ctl.rejection_rate < 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            OccupancyAdmission(limit=0.0)

    def test_rate_zero_before_traffic(self):
        sim = Simulation(0)
        st = Station(sim, 1, Exponential(1.0))
        ctl = AdmissionControlledStation(sim, st, OccupancyAdmission(1.0))
        assert ctl.rejection_rate == 0.0


class TestTokenBucketAdmission:
    def test_burst_then_throttle(self):
        sim = Simulation(0)
        st = Station(sim, 10, Deterministic(0.001))
        policy = TokenBucketAdmission(rate=1.0, burst=3.0)
        ctl = AdmissionControlledStation(sim, st, policy)
        # 5 instantaneous arrivals: 3 admitted (bucket), 2 rejected.
        for i in range(5):
            sim.schedule(0.0, ctl.arrive, Request(i, created=0.0))
        sim.run(until=0.5)
        assert ctl.rejected == 2

    def test_tokens_refill_over_time(self):
        sim = Simulation(0)
        st = Station(sim, 10, Deterministic(0.001))
        ctl = AdmissionControlledStation(sim, st, TokenBucketAdmission(rate=2.0, burst=1.0))
        # One request per second at refill rate 2/s: all admitted.
        for i in range(5):
            sim.schedule(float(i), ctl.arrive, Request(i, created=float(i)))
        sim.run()
        assert ctl.rejected == 0

    def test_sustained_rate_enforced(self):
        sim = Simulation(3)
        st = Station(sim, 50, Deterministic(0.001))
        ctl = AdmissionControlledStation(sim, st, TokenBucketAdmission(rate=5.0, burst=5.0))
        drive(ctl, sim, rate=20.0, duration=400.0, rng=sim.spawn_rng())
        admitted_rate = (ctl.offered - ctl.rejected) / 400.0
        assert admitted_rate == pytest.approx(5.0, rel=0.1)

    def test_on_reject_callback(self):
        sim = Simulation(0)
        st = Station(sim, 1, Deterministic(1.0))
        rejected = []
        ctl = AdmissionControlledStation(
            sim, st, TokenBucketAdmission(rate=0.1, burst=1.0), on_reject=rejected.append
        )
        for i in range(3):
            sim.schedule(0.0, ctl.arrive, Request(i, created=0.0))
        sim.run(until=0.5)
        assert len(rejected) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucketAdmission(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucketAdmission(rate=1.0, burst=0.5)


class TestAIMDConcurrencyLimit:
    def test_fast_responses_grow_limit(self):
        limit = AIMDConcurrencyLimit(latency_target=1.0, initial=4.0, max_limit=16.0)
        for i in range(200):
            limit.on_response(0.5, True, float(i))
        assert limit.limit == pytest.approx(16.0)

    def test_slow_response_backs_off_multiplicatively(self):
        limit = AIMDConcurrencyLimit(latency_target=1.0, initial=10.0, backoff=0.5)
        limit.on_response(2.0, True, 0.0)
        assert limit.limit == pytest.approx(5.0)
        assert limit.decreases == 1

    def test_failure_counts_as_congestion(self):
        limit = AIMDConcurrencyLimit(latency_target=1.0, initial=10.0, backoff=0.5)
        limit.on_response(None, False, 0.0)
        assert limit.limit == pytest.approx(5.0)

    def test_cooldown_coalesces_decrease_bursts(self):
        limit = AIMDConcurrencyLimit(
            latency_target=1.0, initial=10.0, backoff=0.5, cooldown=1.0
        )
        # Three congestion signals inside one cooldown = one decrease.
        limit.on_response(None, False, 0.0)
        limit.on_response(None, False, 0.2)
        limit.on_response(None, False, 0.9)
        assert limit.limit == pytest.approx(5.0)
        limit.on_response(None, False, 1.5)  # cooldown elapsed
        assert limit.limit == pytest.approx(2.5)

    def test_never_below_min_limit(self):
        limit = AIMDConcurrencyLimit(latency_target=1.0, min_limit=2.0, initial=2.0)
        for i in range(20):
            limit.on_response(None, False, float(10 * i))
        assert limit.limit == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            AIMDConcurrencyLimit(latency_target=0.0)
        with pytest.raises(ValueError):
            AIMDConcurrencyLimit(latency_target=1.0, backoff=1.0)
        with pytest.raises(ValueError):
            AIMDConcurrencyLimit(latency_target=1.0, min_limit=8.0, max_limit=4.0)
        with pytest.raises(ValueError):
            AIMDConcurrencyLimit(latency_target=1.0, initial=999.0)


class TestGradientConcurrencyLimit:
    def test_limit_probes_up_at_baseline_latency(self):
        limit = GradientConcurrencyLimit(initial=4.0, max_limit=64.0)
        for i in range(500):
            limit.on_response(0.6, True, float(i))
        assert limit.limit > 30.0  # sqrt allowance keeps probing upward

    def test_sustained_inflation_pulls_limit_down(self):
        limit = GradientConcurrencyLimit(initial=32.0, max_limit=64.0)
        for i in range(100):
            limit.on_response(0.6, True, float(i))  # establish baseline
        high = limit.limit
        for i in range(300):
            limit.on_response(3.0, True, float(100 + i))  # 5x the baseline
        assert limit.limit < high / 2

    def test_baseline_tracks_sustained_minimum_not_single_sample(self):
        limit = GradientConcurrencyLimit(initial=8.0, smoothing=0.1)
        for i in range(100):
            limit.on_response(0.6, True, float(i))
        # One lucky fast response must not redefine "no-load".
        limit.on_response(0.01, True, 100.0)
        assert limit.baseline > 0.1

    def test_failures_back_off(self):
        limit = GradientConcurrencyLimit(initial=16.0, backoff=0.5)
        limit.on_response(None, False, 0.0)
        assert limit.limit == pytest.approx(8.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            GradientConcurrencyLimit(tolerance=0.5)
        with pytest.raises(ValueError):
            GradientConcurrencyLimit(smoothing=0.0)
        with pytest.raises(ValueError):
            GradientConcurrencyLimit(cooldown=0.0)


class TestAdaptiveAdmission:
    def test_admits_below_limit_and_rejects_above(self):
        sim = Simulation(0)
        policy = AdaptiveAdmission(StaticConcurrencyLimit(2.0))
        st = Station(sim, 1, Deterministic(10.0), admission=policy)
        for i in range(5):
            sim.schedule(0.0, st.arrive, Request(i, created=0.0))
        sim.run(until=1.0)
        assert st.rejected == 3
        assert policy.admitted == 2
        assert policy.rejection_rate == pytest.approx(0.6)

    def test_priority_shares_shed_low_classes_first(self):
        sim = Simulation(0)
        policy = AdaptiveAdmission(
            StaticConcurrencyLimit(8.0), priority_shares={0: 1.0, 1: 0.5}
        )
        st = Station(sim, 1, Deterministic(10.0), admission=policy)
        # Fill to in_system=4: class 1 (share 0.5 -> effective 4) now
        # refused while class 0 still admitted.
        for i in range(4):
            sim.schedule(0.0, st.arrive, Request(i, created=0.0))
        sim.schedule(0.1, st.arrive, Request(10, created=0.1, priority=1))
        sim.schedule(0.1, st.arrive, Request(11, created=0.1, priority=0))
        sim.run(until=1.0)
        assert policy.rejected_by_class == {1: 1}
        assert st.rejected == 1

    def test_unknown_priority_gets_smallest_share(self):
        sim = Simulation(0)
        policy = AdaptiveAdmission(
            StaticConcurrencyLimit(8.0), priority_shares={0: 1.0, 1: 0.25}
        )
        st = Station(sim, 1, Deterministic(10.0), admission=policy)
        for i in range(2):
            sim.schedule(0.0, st.arrive, Request(i, created=0.0))
        sim.schedule(0.1, st.arrive, Request(10, created=0.1, priority=9))
        sim.run(until=1.0)
        # in_system=2 >= 0.25 * 8 -> the unlisted class is refused.
        assert policy.rejected_by_class == {9: 1}

    def test_station_feeds_latency_back_to_limit(self):
        sim = Simulation(0)
        limit = AIMDConcurrencyLimit(latency_target=5.0, initial=4.0, max_limit=8.0)
        st = Station(
            sim, 1, Deterministic(1.0), admission=AdaptiveAdmission(limit)
        )
        sim.schedule(0.0, st.arrive, Request(0, created=0.0))
        sim.run()
        assert limit.limit > 4.0  # one fast completion grew the limit

    def test_station_feeds_drops_back_as_congestion(self):
        sim = Simulation(0)
        limit = AIMDConcurrencyLimit(latency_target=5.0, initial=8.0, backoff=0.5)
        st = Station(
            sim, 1, Deterministic(10.0), queue_capacity=0,
            admission=AdaptiveAdmission(limit),
        )
        for i in range(2):
            sim.schedule(0.0, st.arrive, Request(i, created=0.0))
        sim.run(until=1.0)
        assert st.drops == 1
        assert limit.limit == pytest.approx(4.0)

    def test_bounds_latency_during_overload(self):
        sim = Simulation(5)
        done = []
        st = Station(
            sim, 1, Exponential(1.0 / MU),
            on_departure=lambda r: done.append(r.service_end - r.arrived),
            admission=AdaptiveAdmission(
                AIMDConcurrencyLimit(latency_target=4.0 / MU, max_limit=64.0)
            ),
        )

        ids = count(100)

        def gen():
            if sim.now < 300.0:
                st.arrive(Request(next(ids), created=sim.now))
                sim.schedule(sim_rng.exponential(1.0 / 30.0), gen)

        sim_rng = sim.spawn_rng()
        sim.schedule(0.0, gen)
        sim.run(until=300.0)
        waits = np.array(done)
        assert st.refusal_rate > 0.4  # sheds most of the 2.3x overload
        assert np.quantile(waits, 0.95) < 20 * (4.0 / MU)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveAdmission(StaticConcurrencyLimit(4.0), priority_shares={})
        with pytest.raises(ValueError):
            AdaptiveAdmission(StaticConcurrencyLimit(4.0), priority_shares={0: 0.0})
        with pytest.raises(ValueError):
            StaticConcurrencyLimit(0.5)
