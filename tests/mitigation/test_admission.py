"""Tests for admission control."""

import numpy as np
import pytest

from repro.mitigation.admission import (
    AdmissionControlledStation,
    OccupancyAdmission,
    TokenBucketAdmission,
)
from repro.queueing.distributions import Deterministic, Exponential
from repro.sim.engine import Simulation
from repro.sim.request import Request
from repro.sim.station import Station

MU = 13.0


def drive(controlled, sim, rate, duration, rng):
    def gen(counter=[0]):
        if sim.now < duration:
            controlled.arrive(Request(counter[0], created=sim.now))
            counter[0] += 1
            sim.schedule(rng.exponential(1.0 / rate), gen)

    sim.schedule(0.0, gen)
    sim.run(until=duration)


class TestOccupancyAdmission:
    def test_rejects_when_full(self):
        sim = Simulation(0)
        st = Station(sim, 1, Deterministic(10.0))
        ctl = AdmissionControlledStation(sim, st, OccupancyAdmission(limit=2.0))
        for i in range(5):
            sim.schedule(0.0, ctl.arrive, Request(i, created=0.0))
        sim.run(until=1.0)
        # 1 in service + 1 queued = in_system 2 = limit -> rest rejected.
        assert ctl.rejected == 3
        assert ctl.rejection_rate == pytest.approx(0.6)

    def test_bounds_latency_during_overload(self):
        sim = Simulation(1)
        done = []
        st = Station(
            sim, 1, Exponential(1.0 / MU),
            on_departure=lambda r: done.append(r.service_start - r.arrived),
        )
        ctl = AdmissionControlledStation(sim, st, OccupancyAdmission(limit=4.0))
        drive(ctl, sim, rate=30.0, duration=300.0, rng=sim.spawn_rng())  # rho=2.3
        waits = np.array(done)
        assert ctl.rejection_rate > 0.4  # sheds most of the overload
        # Waits bounded by ~limit services each.
        assert waits.max() < 10 * (4.0 / MU)

    def test_admits_everything_when_idle(self):
        sim = Simulation(2)
        st = Station(sim, 4, Exponential(1.0 / MU))
        ctl = AdmissionControlledStation(sim, st, OccupancyAdmission(limit=2.0))
        drive(ctl, sim, rate=2.0, duration=200.0, rng=sim.spawn_rng())
        assert ctl.rejection_rate < 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            OccupancyAdmission(limit=0.0)

    def test_rate_zero_before_traffic(self):
        sim = Simulation(0)
        st = Station(sim, 1, Exponential(1.0))
        ctl = AdmissionControlledStation(sim, st, OccupancyAdmission(1.0))
        assert ctl.rejection_rate == 0.0


class TestTokenBucketAdmission:
    def test_burst_then_throttle(self):
        sim = Simulation(0)
        st = Station(sim, 10, Deterministic(0.001))
        policy = TokenBucketAdmission(rate=1.0, burst=3.0)
        ctl = AdmissionControlledStation(sim, st, policy)
        # 5 instantaneous arrivals: 3 admitted (bucket), 2 rejected.
        for i in range(5):
            sim.schedule(0.0, ctl.arrive, Request(i, created=0.0))
        sim.run(until=0.5)
        assert ctl.rejected == 2

    def test_tokens_refill_over_time(self):
        sim = Simulation(0)
        st = Station(sim, 10, Deterministic(0.001))
        ctl = AdmissionControlledStation(sim, st, TokenBucketAdmission(rate=2.0, burst=1.0))
        # One request per second at refill rate 2/s: all admitted.
        for i in range(5):
            sim.schedule(float(i), ctl.arrive, Request(i, created=float(i)))
        sim.run()
        assert ctl.rejected == 0

    def test_sustained_rate_enforced(self):
        sim = Simulation(3)
        st = Station(sim, 50, Deterministic(0.001))
        ctl = AdmissionControlledStation(sim, st, TokenBucketAdmission(rate=5.0, burst=5.0))
        drive(ctl, sim, rate=20.0, duration=400.0, rng=sim.spawn_rng())
        admitted_rate = (ctl.offered - ctl.rejected) / 400.0
        assert admitted_rate == pytest.approx(5.0, rel=0.1)

    def test_on_reject_callback(self):
        sim = Simulation(0)
        st = Station(sim, 1, Deterministic(1.0))
        rejected = []
        ctl = AdmissionControlledStation(
            sim, st, TokenBucketAdmission(rate=0.1, burst=1.0), on_reject=rejected.append
        )
        for i in range(3):
            sim.schedule(0.0, ctl.arrive, Request(i, created=0.0))
        sim.run(until=0.5)
        assert len(rejected) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucketAdmission(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucketAdmission(rate=1.0, burst=0.5)
