"""Tests for hierarchical offloading and the predictive autoscaler."""

from itertools import count

import numpy as np
import pytest

from repro.mitigation.offload import HybridDeployment
from repro.mitigation.predictive import PredictiveAutoscaler
from repro.queueing.distributions import Exponential
from repro.sim.client import OpenLoopSource
from repro.sim.engine import Simulation
from repro.sim.network import ConstantLatency
from repro.sim.runner import run_deployment
from repro.sim.topology import EdgeDeployment, EdgeSite

MU = 13.0
SERVICE = Exponential(1.0 / MU)
EDGE_LAT = ConstantLatency.from_ms(1.0)
CLOUD_LAT = ConstantLatency.from_ms(25.0)


def run_hybrid(rate_per_site=11.0, threshold=1.0, sites=5, duration=1500.0, seed=0):
    sim = Simulation(seed)
    hybrid = HybridDeployment(
        sim,
        sites=sites,
        servers_per_site=1,
        cloud_servers=sites,
        edge_latency=EDGE_LAT,
        cloud_latency=CLOUD_LAT,
        service_dist=SERVICE,
        offload_threshold=threshold,
    )
    for i in range(sites):
        OpenLoopSource(
            sim, hybrid, Exponential(1.0 / rate_per_site), site=f"site-{i}",
            stop_time=duration,
        )
    sim.run()
    return hybrid, hybrid.log.breakdown().after(duration * 0.2)


class TestHybridDeployment:
    def test_beats_pure_edge_at_high_load(self):
        hybrid, bd = run_hybrid(rate_per_site=11.0, seed=1)
        pure_edge = run_deployment(
            "edge", sites=5, servers_per_site=1, rate_per_site=11.0,
            service_dist=SERVICE, latency=EDGE_LAT, duration=1500.0, seed=1,
        )
        assert bd.end_to_end.mean() < pure_edge.end_to_end.mean()
        assert hybrid.offload_fraction > 0.1

    def test_beats_pure_cloud_at_low_load(self):
        _, bd = run_hybrid(rate_per_site=3.0, seed=2)
        pure_cloud = run_deployment(
            "cloud", sites=5, servers_per_site=1, rate_per_site=3.0,
            service_dist=SERVICE, latency=CLOUD_LAT, duration=1500.0, seed=2,
        )
        assert bd.end_to_end.mean() < pure_cloud.end_to_end.mean()

    def test_no_offload_when_idle(self):
        hybrid, _ = run_hybrid(rate_per_site=0.5, threshold=3.0, seed=3, duration=400.0)
        assert hybrid.offload_fraction < 0.05

    def test_huge_threshold_means_pure_edge(self):
        hybrid, _ = run_hybrid(rate_per_site=8.0, threshold=1e9, seed=4, duration=400.0)
        assert hybrid.offloaded == 0

    def test_offloaded_requests_marked_cloud(self):
        hybrid, bd = run_hybrid(rate_per_site=11.0, seed=5, duration=500.0)
        assert "cloud" in bd.sites
        assert len(bd.for_site("cloud")) == pytest.approx(
            hybrid.offloaded, rel=0.3
        )

    def test_unknown_site_rejected(self):
        sim = Simulation(0)
        hybrid = HybridDeployment(
            sim, sites=2, servers_per_site=1, cloud_servers=2,
            edge_latency=EDGE_LAT, cloud_latency=CLOUD_LAT, service_dist=SERVICE,
        )
        from repro.sim.request import Request

        sim.schedule(0.0, hybrid.submit, Request(0, site="nowhere", created=0.0))
        with pytest.raises(KeyError):
            sim.run()

    def test_validation(self):
        sim = Simulation(0)
        with pytest.raises(ValueError):
            HybridDeployment(
                sim, sites=0, servers_per_site=1, cloud_servers=1,
                edge_latency=EDGE_LAT, cloud_latency=CLOUD_LAT, service_dist=SERVICE,
            )
        with pytest.raises(ValueError):
            HybridDeployment(
                sim, sites=1, servers_per_site=1, cloud_servers=1,
                edge_latency=EDGE_LAT, cloud_latency=CLOUD_LAT, service_dist=SERVICE,
                offload_threshold=0.0,
            )

    def test_offload_fraction_zero_before_use(self):
        sim = Simulation(0)
        hybrid = HybridDeployment(
            sim, sites=1, servers_per_site=1, cloud_servers=1,
            edge_latency=EDGE_LAT, cloud_latency=CLOUD_LAT, service_dist=SERVICE,
        )
        assert hybrid.offload_fraction == 0.0


def run_predictive(rate=11.0, duration=800.0, seed=7, **kwargs):
    sim = Simulation(seed)
    site = EdgeSite(sim, "s0", 1, EDGE_LAT, SERVICE)
    edge = EdgeDeployment(sim, [site])
    OpenLoopSource(sim, edge, Exponential(1.0 / rate), site="s0", stop_time=duration)
    scaler = PredictiveAutoscaler(
        sim, [site.station], MU, interval=20.0, stop_time=duration, **kwargs
    )
    sim.run()
    return edge, site, scaler


class TestPredictiveAutoscaler:
    def test_scales_up_under_load(self):
        _, site, scaler = run_predictive()
        assert scaler.scale_events > 0
        assert site.station.servers >= 1

    def test_headroom_provisions_more(self):
        _, site_lo, _ = run_predictive(headroom_sigmas=0.0, seed=8)
        _, site_hi, _ = run_predictive(headroom_sigmas=4.0, seed=8)
        assert site_hi.station.servers >= site_lo.station.servers

    def test_improves_latency_vs_fixed_single_server(self):
        edge, _, _ = run_predictive(rate=11.0, seed=9)
        fixed = run_deployment(
            "edge", sites=1, servers_per_site=1, rate_per_site=11.0,
            service_dist=SERVICE, latency=EDGE_LAT, duration=800.0, seed=9,
        )
        scaled = edge.log.breakdown().after(160.0).end_to_end.mean()
        assert scaled < fixed.end_to_end.mean()

    def test_respects_bounds(self):
        _, site, _ = run_predictive(max_servers=2, seed=10)
        assert site.station.servers <= 2

    def test_validation(self):
        sim = Simulation(0)
        from repro.sim.station import Station

        st_ = Station(sim, 1, SERVICE)
        with pytest.raises(ValueError):
            PredictiveAutoscaler(sim, [], MU)
        with pytest.raises(ValueError):
            PredictiveAutoscaler(sim, [st_], 0.0)
        with pytest.raises(ValueError):
            PredictiveAutoscaler(sim, [st_], MU, alpha=0.0)
        with pytest.raises(ValueError):
            PredictiveAutoscaler(sim, [st_], MU, headroom_sigmas=-1.0)
        with pytest.raises(ValueError):
            PredictiveAutoscaler(sim, [st_], MU, interval=0.0)
        with pytest.raises(ValueError):
            PredictiveAutoscaler(sim, [st_], MU, min_servers=3, max_servers=2)


class TestBoundedStation:
    def test_drops_when_full(self):
        from repro.queueing.distributions import Deterministic
        from repro.sim.request import Request
        from repro.sim.station import Station

        sim = Simulation(0)
        st_ = Station(sim, 1, Deterministic(10.0), queue_capacity=1)
        dropped = []
        st_.on_drop = dropped.append
        for i in range(4):
            sim.schedule(0.0, st_.arrive, Request(i, created=0.0))
        sim.run(until=1.0)
        # One in service, one queued, two dropped.
        assert st_.drops == 2
        assert len(dropped) == 2
        assert st_.loss_rate == pytest.approx(0.5)

    def test_mm1k_loss_matches_theory(self):
        """M/M/1/K blocking: P_K = (1-rho) rho^K / (1 - rho^(K+1))."""
        from repro.sim.request import Request
        from repro.sim.station import Station

        rho, mu, K = 0.8, 10.0, 4  # capacity K = servers + queue slots
        sim = Simulation(42)
        st_ = Station(sim, 1, Exponential(1.0 / mu), queue_capacity=K - 1)
        rng = sim.spawn_rng()

        ids = count()

        def gen():
            if sim.now < 4000.0:
                st_.arrive(Request(next(ids), created=sim.now))
                sim.schedule(rng.exponential(1.0 / (rho * mu)), gen)

        sim.schedule(0.0, gen)
        sim.run(until=4000.0)
        expected = (1 - rho) * rho**K / (1 - rho ** (K + 1))
        assert st_.loss_rate == pytest.approx(expected, rel=0.1)

    def test_unbounded_never_drops(self):
        from repro.sim.request import Request
        from repro.sim.station import Station

        sim = Simulation(0)
        st_ = Station(sim, 1, Exponential(0.1))
        for i in range(100):
            sim.schedule(0.0, st_.arrive, Request(i, created=0.0))
        sim.run()
        assert st_.drops == 0
        assert st_.loss_rate == 0.0

    def test_negative_capacity_rejected(self):
        from repro.sim.station import Station

        with pytest.raises(ValueError):
            Station(Simulation(0), 1, SERVICE, queue_capacity=-1)
