"""Tests for the live observability layer (repro.obs).

Covers the four subsystems — quantile sketches, span tracing, windowed
collection, exporters/schema — plus the acceptance invariant for the
whole layer: span decompositions reconcile exactly with the request log,
and enabling telemetry never changes simulation results.
"""

import json
import math

import numpy as np
import pytest

from repro import obs
from repro.experiments.config import ExperimentConfig
from repro.experiments.telemetry import pulse_timeline
from repro.obs.spans import SERVING_SPANS, Span, SpanRecorder
from repro.queueing.distributions import Exponential
from repro.sim.network import ConstantLatency
from repro.sim.runner import run_deployment
from repro.stats import RefusalCounts

TINY = ExperimentConfig(requests_per_site=2_000, azure_duration=600.0, seed=7)


def _small_run(**kwargs):
    """A quick saturating edge run used by several tests."""
    return run_deployment(
        "edge",
        sites=2,
        servers_per_site=1,
        rate_per_site=6.0,
        service_dist=Exponential(1.0 / 8.0),
        latency=ConstantLatency.from_ms(10.0),
        duration=60.0,
        seed=11,
        warmup_fraction=0.0,
        **kwargs,
    )


# ---------------------------------------------------------------------------
# P² streaming quantiles
# ---------------------------------------------------------------------------


class TestP2Quantile:
    @pytest.mark.parametrize("q", [0.5, 0.9, 0.95, 0.99])
    @pytest.mark.parametrize(
        "sampler",
        [
            lambda rng, n: rng.normal(10.0, 2.0, n),
            lambda rng, n: rng.exponential(1.0, n),
            lambda rng, n: rng.uniform(0.0, 1.0, n),
        ],
        ids=["normal", "exponential", "uniform"],
    )
    def test_tracks_numpy_percentile(self, q, sampler):
        rng = np.random.default_rng(42)
        data = sampler(rng, 20_000)
        est = obs.P2Quantile(q)
        for x in data:
            est.add(x)
        exact = np.percentile(data, q * 100.0)
        spread = np.percentile(data, 99.0) - np.percentile(data, 1.0)
        assert abs(est.value() - exact) < 0.02 * spread

    def test_exact_below_five_observations(self):
        est = obs.P2Quantile(0.5)
        for x in [3.0, 1.0, 2.0]:
            est.add(x)
        assert est.value() == pytest.approx(np.percentile([3.0, 1.0, 2.0], 50))

    def test_empty_is_nan(self):
        assert math.isnan(obs.P2Quantile(0.95).value())

    def test_rejects_bad_quantile_and_nan(self):
        with pytest.raises(ValueError):
            obs.P2Quantile(1.0)
        est = obs.P2Quantile(0.5)
        with pytest.raises(ValueError):
            est.add(float("nan"))


class TestQuantileSketch:
    def test_snapshot_tracks_moments_and_quantiles(self):
        rng = np.random.default_rng(0)
        data = rng.exponential(1.0, 10_000)
        sk = obs.QuantileSketch((0.5, 0.95))
        for x in data:
            sk.add(x)
        snap = sk.snapshot()
        assert snap["count"] == 10_000
        assert snap["mean"] == pytest.approx(data.mean())
        assert sk.min == data.min() and sk.max == data.max()
        assert snap["p50"] == pytest.approx(np.percentile(data, 50), rel=0.05)
        assert snap["p95"] == pytest.approx(np.percentile(data, 95), rel=0.05)

    def test_empty_sketch(self):
        sk = obs.QuantileSketch()
        assert math.isnan(sk.mean) and math.isnan(sk.min) and math.isnan(sk.max)


# ---------------------------------------------------------------------------
# Span tracing
# ---------------------------------------------------------------------------


class TestSpans:
    def test_serving_spans_tile_every_request(self):
        exporter = obs.InMemoryExporter()
        with obs.installed(lambda: obs.Telemetry(window=5.0, exporters=[exporter])):
            from repro.sim.engine import Simulation

            sim = Simulation(3)
            from repro.sim.topology import EdgeDeployment, EdgeSite
            from repro.sim.client import OpenLoopSource

            site = EdgeSite(
                sim, "s0", 1, ConstantLatency.from_ms(10.0), Exponential(1.0 / 8.0)
            )
            edge = EdgeDeployment(sim, [site])
            OpenLoopSource(sim, edge, Exponential(1.0 / 5.0), site="s0", stop_time=40.0)
            sim.run()
            tel = sim.telemetry
        assert tel.completed == len(edge.log.requests) > 0
        sums: dict[int, float] = {}
        for span in tel.spans.spans:
            if span.name in SERVING_SPANS:
                sums[span.rid] = sums.get(span.rid, 0.0) + span.duration
        for r in edge.log.requests:
            assert sums[r.rid] == pytest.approx(r.end_to_end, abs=1e-12)

    def test_decompose_matches_request_components(self):
        rec = SpanRecorder()
        rec.record(Span(1, 1, "net.out", 0.0, 0.01))
        rec.record(Span(1, 1, "queue", 0.01, 0.05))
        rec.record(Span(1, 1, "service", 0.05, 0.15))
        rec.record(Span(1, 1, "net.back", 0.15, 0.16))
        d = rec.decompose(1)
        assert d["net.out"] + d["net.back"] == pytest.approx(0.02)  # n
        assert d["queue"] == pytest.approx(0.04)  # w
        assert d["service"] == pytest.approx(0.10)  # s

    def test_span_limit_bounds_retention(self):
        rec = SpanRecorder(limit=10)
        for i in range(100):
            rec.record(Span(i, i, "service", 0.0, 1.0))
        assert len(rec) == 10 and rec.recorded == 100
        assert rec.spans[0].trace_id == 90


# ---------------------------------------------------------------------------
# E12 acceptance: windowed telemetry through the admission pulse
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def pulse():
    return pulse_timeline(
        TINY,
        base_rate=6.0,
        pulse_rate=12.0,
        duration=180.0,
        pulse_start=60.0,
        pulse_len=30.0,
        window=10.0,
    )


class TestPulseTimeline:
    def test_span_log_reconciliation_is_exact(self, pulse):
        assert pulse.max_reconciliation_error < 1e-9

    def test_windows_account_for_every_completion(self, pulse):
        assert sum(r.completed for r in pulse.rows) == pulse.completed > 0

    def test_windows_account_for_every_refusal(self, pulse):
        refused = sum(r.rejected + r.dropped + r.shed for r in pulse.rows)
        assert refused == pulse.refused_total

    def test_pulse_windows_show_the_overload(self, pulse):
        pulsing = [
            r for r in pulse.rows if r.t_start < pulse.pulse_end and r.t_end > pulse.pulse_start
        ]
        calm = [r for r in pulse.rows if r.t_end <= pulse.pulse_start]
        assert pulsing and calm
        assert max(r.rejected for r in pulsing) > max(r.rejected for r in calm)

    def test_admission_limit_sampled_per_window(self, pulse):
        in_run = [r for r in pulse.rows if r.t_end <= pulse.duration]
        assert all(r.admission_limit is not None for r in in_run)


# ---------------------------------------------------------------------------
# Exporters and the JSON-lines schema
# ---------------------------------------------------------------------------


class TestExportersAndSchema:
    def test_jsonl_roundtrip_validates(self, tmp_path):
        path = tmp_path / "tel.jsonl"
        exporter = obs.JsonLinesExporter(path)
        with obs.installed(
            lambda: obs.Telemetry(window=10.0, exporters=[exporter], label="t/1")
        ):
            _small_run()
        exporter.close()
        assert exporter.records > 0
        count = obs.validate_telemetry_file(path)
        assert count == exporter.records
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[-1]["type"] == "summary"
        assert all(r["run"] == "t/1" for r in records)

    def test_empty_run_still_leaves_a_file(self, tmp_path):
        path = tmp_path / "none.jsonl"
        exporter = obs.JsonLinesExporter(path)
        exporter.close()
        assert path.exists() and path.read_text() == ""

    def test_schema_rejects_malformed_records(self):
        with pytest.raises(obs.SchemaError):
            obs.validate_record({"type": "window"})  # missing required keys
        with pytest.raises(obs.SchemaError):
            obs.validate_record({"type": "mystery"})
        good = {
            "type": "window",
            "t_start": 0.0,
            "t_end": 1.0,
            "completed": 1,
            "throughput": 1.0,
            "latency": {"count": 1, "mean": 0.1, "p50": 0.1, "p95": 0.1},
            "sums": {"net": 0.02, "wait": 0.04, "service": 0.04, "end_to_end": 0.1},
            "refused": {"rejected": 0, "dropped": 0, "shed": 0},
            "failed_operations": 0,
            "stations": {},
        }
        obs.validate_record(good)
        bad = dict(good, completed=-1)
        with pytest.raises(obs.SchemaError):
            obs.validate_record(bad)

    def test_console_exporter_renders_rows(self, capsys):
        exporter = obs.ConsoleTableExporter()
        with obs.installed(lambda: obs.Telemetry(window=20.0, exporters=[exporter])):
            _small_run()
        out = capsys.readouterr().out
        assert "thru/s" in out and len(out.splitlines()) >= 2


# ---------------------------------------------------------------------------
# Enablement model
# ---------------------------------------------------------------------------


class TestEnablement:
    def test_enabled_results_identical_to_disabled(self):
        baseline = _small_run()
        with obs.installed(lambda: obs.Telemetry(window=5.0)):
            observed = _small_run()
        np.testing.assert_array_equal(baseline.end_to_end, observed.end_to_end)
        np.testing.assert_array_equal(baseline.wait, observed.wait)
        np.testing.assert_array_equal(baseline.network, observed.network)

    def test_nothing_installed_means_no_telemetry(self):
        from repro.sim.engine import Simulation

        assert obs.current_telemetry() is None
        assert Simulation(0).telemetry is None

    def test_install_uninstall(self):
        obs.install(lambda: obs.Telemetry(window=1.0))
        try:
            assert obs.current_telemetry() is not None
        finally:
            obs.uninstall()
        assert obs.current_telemetry() is None

    def test_telemetry_is_per_simulation(self):
        from repro.sim.engine import Simulation

        with obs.installed(lambda: obs.Telemetry(window=1.0)):
            a, b = Simulation(0), Simulation(1)
        assert a.telemetry is not None and a.telemetry is not b.telemetry
        tel = obs.Telemetry(window=1.0)
        tel.bind(a)
        with pytest.raises(ValueError):
            tel.bind(b)


# ---------------------------------------------------------------------------
# RefusalCounts consolidation
# ---------------------------------------------------------------------------


class TestRefusalCounts:
    def test_arithmetic_and_rate(self):
        a = RefusalCounts(rejected=1, dropped=2, shed=3)
        b = RefusalCounts(rejected=10)
        assert (a + b).total == 16
        assert sum([a, b]) == a + b  # __radd__ from int 0
        assert a.rate(12) == pytest.approx(0.5)
        assert RefusalCounts().rate(0) == 0.0
        assert not RefusalCounts() and bool(a)
        assert a.as_dict() == {"rejected": 1, "dropped": 2, "shed": 3}
        assert str(a) == "rej=1 drop=2 shed=3"

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            RefusalCounts(rejected=-1)

    def test_all_sources_agree_on_a_run(self):
        from repro.sim.engine import Simulation
        from repro.sim.topology import EdgeDeployment, EdgeSite
        from repro.sim.client import OpenLoopSource
        from repro.mitigation.admission import OccupancyAdmission

        sim = Simulation(5)
        site = EdgeSite(
            sim,
            "s0",
            1,
            ConstantLatency.from_ms(5.0),
            Exponential(1.0 / 4.0),
            queue_capacity=3,
            admission=OccupancyAdmission(limit=4),
        )
        edge = EdgeDeployment(sim, [site])
        OpenLoopSource(sim, edge, Exponential(1.0 / 10.0), site="s0", stop_time=60.0)
        sim.run()
        station = site.station
        assert station.refusal_counts.total > 0
        assert station.refusal_counts == RefusalCounts.from_station(station)
        assert edge.refusal_counts == station.refusal_counts


# ---------------------------------------------------------------------------
# RequestLog breakdown memoization
# ---------------------------------------------------------------------------


class TestRequestLogCache:
    def test_breakdown_is_cached_until_log_grows(self):
        breakdown = _small_run()
        assert len(breakdown) > 0  # sanity: the helper produced data

        from repro.sim.engine import Simulation
        from repro.sim.topology import EdgeDeployment, EdgeSite
        from repro.sim.client import OpenLoopSource

        sim = Simulation(9)
        site = EdgeSite(sim, "s0", 1, ConstantLatency.from_ms(5.0), Exponential(1.0 / 8.0))
        edge = EdgeDeployment(sim, [site])
        OpenLoopSource(sim, edge, Exponential(1.0 / 4.0), site="s0", stop_time=20.0)
        sim.run(until=10.0)
        first = edge.log.breakdown()
        assert edge.log.breakdown() is first  # memoized, same object
        n = len(first)
        sim.run()  # more completions arrive
        second = edge.log.breakdown()
        assert second is not first and len(second) > n
        assert edge.log.breakdown() is second
