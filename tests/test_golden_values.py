"""Golden-value regression locks.

Key reproduction numbers at fixed seeds, asserted with tolerances tight
enough to catch silent behavioural drift in refactors but loose enough
to survive numerically equivalent reorderings.  If one of these fails
after an intentional change, re-derive the value, update it here and
record the change in CHANGELOG.md.
"""

import pytest

from repro.core.capacity import edge_peak_capacity, provisioning_penalty
from repro.core.comparator import EdgeCloudComparator
from repro.core.inversion import calibrate_time_unit, cutoff_utilization_exact
from repro.core.scenarios import TYPICAL_CLOUD
from repro.core.tail import cutoff_utilization_tail


class TestAnalyticGoldens:
    """Pure math: exact to many digits, locked tightly."""

    def test_typical_cloud_exact_mean_cutoff(self):
        s = TYPICAL_CLOUD
        rho = cutoff_utilization_exact(
            s.delta_n, s.service.core_service_rate,
            s.edge_servers_per_site, s.cloud_servers, cs2=s.service.cv2,
        )
        assert rho == pytest.approx(0.6328, abs=0.002)

    def test_typical_cloud_tail_cutoff(self):
        s = TYPICAL_CLOUD
        rho = cutoff_utilization_tail(
            s.delta_n, s.service.core_service_rate,
            s.edge_servers_per_site, s.cloud_servers, q=0.95,
        )
        assert rho == pytest.approx(0.557, abs=0.005)

    def test_paper_unit_calibration(self):
        assert calibrate_time_unit(0.030, 5, 0.64) == pytest.approx(0.01382, abs=2e-4)

    def test_capacity_penalty(self):
        assert edge_peak_capacity(100.0, 5) == pytest.approx(144.72, abs=0.01)
        assert provisioning_penalty(100.0, 5) == pytest.approx(1.206, abs=0.002)


class TestSimulatedGoldens:
    """Fixed-seed simulations: locked to the stochastic tolerance."""

    def test_fig3_crossover_band(self):
        cmp_ = EdgeCloudComparator(TYPICAL_CLOUD, requests_per_site=30_000, seed=2021)
        res = cmp_.sweep([6, 7, 8, 9, 10])
        x = res.crossover_rate("mean")
        assert x == pytest.approx(8.1, abs=0.6)

    def test_point_measurement_reproducible(self):
        a = EdgeCloudComparator(TYPICAL_CLOUD, requests_per_site=20_000, seed=7)
        b = EdgeCloudComparator(TYPICAL_CLOUD, requests_per_site=20_000, seed=7)
        pa, pb = a.measure_point(8.0), b.measure_point(8.0)
        assert pa.edge.mean == pb.edge.mean  # bit-identical given the seed
        assert pa.cloud.p95 == pb.cloud.p95
