"""Tests for the shared SeedSequence-based seed derivation."""

import numpy as np
import pytest

from repro.parallel import (
    derive_rng,
    derive_seed,
    derive_seedseq,
    seed_sequence,
    spawn_child,
)


class TestSeedSequenceNormalization:
    def test_int_roundtrip(self):
        ss = seed_sequence(42)
        assert ss.entropy == 42

    def test_passthrough(self):
        ss = np.random.SeedSequence(7)
        assert seed_sequence(ss) is ss

    def test_none_is_fresh_entropy(self):
        a, b = seed_sequence(None), seed_sequence(None)
        assert a.entropy != b.entropy

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            seed_sequence(-1)


class TestDerivation:
    def test_deterministic(self):
        assert derive_seed(0, 3) == derive_seed(0, 3)
        a = derive_rng(5, 1).random(4)
        b = derive_rng(5, 1).random(4)
        assert (a == b).all()

    def test_distinct_paths_distinct_streams(self):
        seeds = {derive_seed(0, i) for i in range(200)}
        assert len(seeds) == 200

    def test_no_collision_across_nearby_bases(self):
        # The raw-integer hazard: base 0 paths {0..99} and base 1 paths
        # {0..99} used to overlap as integer seeds.  Derived seeds don't.
        a = {derive_seed(0, i) for i in range(100)}
        b = {derive_seed(1, i) for i in range(100)}
        assert not a & b

    def test_empty_path_is_base(self):
        assert derive_seedseq(9).entropy == 9

    def test_matches_seedsequence_spawn(self):
        # derive_seedseq(base, i) is SeedSequence(base).spawn()[i] — the
        # documented equivalence that makes index-addressed (parallel)
        # and order-addressed (sequential) derivation interchangeable.
        children = np.random.SeedSequence(13).spawn(4)
        for i, child in enumerate(children):
            ours = derive_seedseq(13, i)
            assert ours.generate_state(2).tolist() == child.generate_state(2).tolist()

    def test_multilevel_paths(self):
        assert derive_seed(0, 1, 2) != derive_seed(0, 2, 1)

    def test_negative_path_rejected(self):
        with pytest.raises(ValueError):
            derive_seedseq(0, -3)


class TestSpawnChild:
    def test_sequential_children_differ(self):
        parent = np.random.SeedSequence(0)
        a, b = spawn_child(parent), spawn_child(parent)
        assert a.spawn_key != b.spawn_key

    def test_reproducible_by_construction_order(self):
        def streams():
            parent = np.random.SeedSequence(3)
            return [np.random.default_rng(spawn_child(parent)).random() for _ in range(3)]

        assert streams() == streams()


class TestSimulationSpawnRng:
    def test_spawned_streams_reproducible(self):
        from repro.sim.engine import Simulation

        a = Simulation(17).spawn_rng().random(8)
        b = Simulation(17).spawn_rng().random(8)
        assert (a == b).all()

    def test_spawned_stream_independent_of_master_draws(self):
        from repro.sim.engine import Simulation

        # Old scheme drew a raw int from the master RNG, so consuming the
        # master stream changed subsequent children.  SeedSequence
        # children are addressed by spawn order only.
        sim_a = Simulation(17)
        sim_a.rng.random(100)
        sim_b = Simulation(17)
        assert (sim_a.spawn_rng().random(8) == sim_b.spawn_rng().random(8)).all()

    def test_nearby_simulation_seeds_do_not_share_streams(self):
        from repro.sim.engine import Simulation

        a = Simulation(0).spawn_rng().random(4)
        b = Simulation(1).spawn_rng().random(4)
        assert not (a == b).all()
