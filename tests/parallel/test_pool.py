"""Tests for the process-pool substrate itself (ordering, fallback, errors)."""

import os
import warnings

import pytest

from repro.parallel import ParallelTaskError, resolve_workers, run_tasks
from repro.parallel.pool import _IN_WORKER_ENV, WORKERS_ENV


def square(x):
    return x * x


def add(a, b):
    return a + b


def fail_on(x, bad):
    if x == bad:
        raise ValueError(f"poisoned task {x}")
    return x


def pid_of(_):
    return os.getpid()


def type_name(obj):
    return type(obj).__name__


def nested(x):
    # run_tasks inside a worker must degrade to serial, not fork again.
    inner = run_tasks(square, [(x,), (x + 1,)], workers=4)
    return inner, os.environ.get(_IN_WORKER_ENV)


class TestResolveWorkers:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 1

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers(None) == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers(2) == 2

    def test_worker_processes_stay_serial(self, monkeypatch):
        monkeypatch.setenv(_IN_WORKER_ENV, "1")
        assert resolve_workers(8) == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            resolve_workers(0)


class TestRunTasks:
    def test_serial_matches_parallel(self):
        tasks = [(i,) for i in range(10)]
        assert run_tasks(square, tasks, workers=1) == run_tasks(
            square, tasks, workers=3
        )

    def test_results_in_task_order(self):
        assert run_tasks(add, [(i, 10) for i in range(8)], workers=2) == [
            i + 10 for i in range(8)
        ]

    def test_chunksize_does_not_change_results(self):
        tasks = [(i,) for i in range(9)]
        baseline = run_tasks(square, tasks, workers=1)
        for chunksize in (1, 2, 5, 100):
            assert run_tasks(square, tasks, workers=2, chunksize=chunksize) == baseline

    def test_actually_uses_processes(self):
        pids = set(run_tasks(pid_of, [(i,) for i in range(6)], workers=2, chunksize=1))
        assert os.getpid() not in pids

    def test_empty_and_single(self):
        assert run_tasks(square, [], workers=4) == []
        assert run_tasks(square, [(3,)], workers=4) == [9]

    def test_worker_failure_names_task(self):
        with pytest.raises(ParallelTaskError, match=r"cell #2 .*poisoned task 2"):
            run_tasks(fail_on, [(i, 2) for i in range(5)], workers=2, label="cell")

    def test_serial_failure_unwrapped(self):
        # workers=1 is the plain loop: original exception type, no wrapper.
        with pytest.raises(ValueError, match="poisoned task 2"):
            run_tasks(fail_on, [(i, 2) for i in range(5)], workers=1)

    def test_lambda_falls_back_with_diagnostic(self):
        with pytest.warns(RuntimeWarning, match="not picklable"):
            out = run_tasks(lambda x: x + 1, [(1,), (2,)], workers=2)  # repro: noqa[RPR005] -- the serial-fallback path is exactly what this test exercises
        assert out == [2, 3]

    def test_unpicklable_args_fall_back(self):
        import threading

        with pytest.warns(RuntimeWarning, match="arguments are not picklable"):
            out = run_tasks(
                type_name, [(threading.Lock(),), (threading.Lock(),)], workers=2
            )
        assert out == ["lock", "lock"]

    def test_no_nested_pools(self):
        results = run_tasks(nested, [(0,), (10,)], workers=2, chunksize=1)
        for (_inner, flag) in results:
            assert flag == "1"  # ran inside a worker...
        assert results[0][0] == [0, 1] and results[1][0] == [100, 121]


class TestTelemetryExclusion:
    def test_fanout_refused_while_installed(self):
        from repro.obs import provider

        with provider.installed(lambda: None):
            with pytest.raises(RuntimeError, match="telemetry"):
                run_tasks(square, [(1,), (2,)], workers=2)

    def test_serial_fine_while_installed(self):
        from repro.obs import provider

        with provider.installed(lambda: None):
            assert run_tasks(square, [(2,)], workers=1) == [4]

    def test_is_installed_predicate(self):
        from repro.obs import provider

        assert not provider.is_installed()
        with provider.installed(lambda: None):
            assert provider.is_installed()
        assert not provider.is_installed()


def test_no_spurious_warnings_on_clean_parallel_run():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert run_tasks(square, [(i,) for i in range(4)], workers=2) == [0, 1, 4, 9]
