"""Cross-validation: parallel execution is bit-identical to sequential.

The substrate's core promise (ISSUE 4): because every run's RNG stream
is derived from its task index — never from scheduling — fanning a
sweep, a replication batch, or a paired edge/cloud comparison across
processes must return *exactly* the values the sequential loop returns,
for every worker count and chunk size.
"""

import numpy as np
import pytest

from repro.core.comparator import EdgeCloudComparator
from repro.core.scenarios import TYPICAL_CLOUD
from repro.queueing.distributions import Exponential
from repro.sim.network import ConstantLatency
from repro.sim.runner import run_comparison
from repro.stats.replications import replicate, replications_for_precision


def noisy_experiment(seed):
    return float(np.random.default_rng(seed).normal(10.0, 1.0))


def very_noisy_experiment(seed):
    return float(np.random.default_rng(seed).normal(0.1, 50.0))


@pytest.fixture(scope="module")
def comparator():
    # Small but non-trivial: 5 sites x 2000 requests per point.
    return EdgeCloudComparator(TYPICAL_CLOUD, requests_per_site=2_000, seed=123)


RATES = (6.0, 8.0, 10.0)


class TestSweepDeterminism:
    def test_workers4_bit_identical_to_sequential(self, comparator):
        seq = comparator.sweep(RATES, workers=1)
        par = comparator.sweep(RATES, workers=4)
        for p, q in zip(seq.points, par.points, strict=True):
            assert p.rate_per_site == q.rate_per_site
            assert p.edge == q.edge  # LatencySummary equality is exact
            assert p.cloud == q.cloud

    def test_independent_of_worker_count_and_chunking(self, comparator):
        baseline = comparator.sweep(RATES, workers=1).points
        for workers in (2, 3):
            par = comparator.sweep(RATES, workers=workers).points
            assert [(p.edge, p.cloud) for p in par] == [
                (p.edge, p.cloud) for p in baseline
            ]

    def test_point_independent_of_sweep_membership(self, comparator):
        # A point's stream depends on (base seed, index) only, so the
        # same (rate, index) measured alone equals its in-sweep value.
        alone = comparator.measure_point(8.0, seed_offset=1)
        swept = comparator.sweep(RATES, workers=2).points[1]
        assert alone.edge == swept.edge and alone.cloud == swept.cloud


class TestReplicationDeterminism:
    def test_replicate_bit_identical(self):
        a = replicate(noisy_experiment, 12, base_seed=7, workers=1)
        b = replicate(noisy_experiment, 12, base_seed=7, workers=4)
        assert a.values == b.values

    def test_precision_rule_independent_of_workers(self):
        kwargs = {"initial": 4, "max_replications": 60, "base_seed": 2}
        a = replications_for_precision(noisy_experiment, 0.05, workers=1, **kwargs)
        b = replications_for_precision(noisy_experiment, 0.05, workers=4, **kwargs)
        # Same stopping point, same values — the parallel batches replay
        # the sequential stopping rule value-by-value.
        assert a.n == b.n
        assert a.values == b.values

    def test_precision_cap_error_matches(self):
        for workers in (1, 3):
            with pytest.raises(RuntimeError, match="not reached"):
                replications_for_precision(
                    very_noisy_experiment,
                    0.01,
                    initial=3,
                    max_replications=6,
                    workers=workers,
                )


class TestRunComparisonDeterminism:
    def test_paired_runs_identical_across_workers(self):
        kwargs = {
            "sites": 3,
            "servers_per_site": 1,
            "rate_per_site": 6.0,
            "service_dist": Exponential(1.0 / 13.0),
            "edge_latency": ConstantLatency.from_ms(1.0),
            "cloud_latency": ConstantLatency.from_ms(24.0),
            "duration": 60.0,
            "seed": 5,
        }
        edge_seq, cloud_seq = run_comparison(workers=1, **kwargs)
        edge_par, cloud_par = run_comparison(workers=2, **kwargs)
        np.testing.assert_array_equal(edge_seq.end_to_end, edge_par.end_to_end)
        np.testing.assert_array_equal(cloud_seq.end_to_end, cloud_par.end_to_end)
