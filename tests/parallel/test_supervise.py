"""Tests for the supervised executor: retries, timeouts, salvage, errors."""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.parallel import (
    ParallelTaskError,
    RetryPolicy,
    TaskOutcome,
    derive_seed,
    run_tasks,
    supervision_stats,
)
from repro.experiments.store import RunJournal


def square(x):
    return x * x


def fail_on(x, bad):
    if x == bad:
        raise ValueError(f"poisoned task {x}")
    return x


def fail_until_marker(x, marker_dir):
    """Fail until a marker file exists for x, creating it on first call.

    Gives a task that fails exactly once and succeeds on retry, without
    any shared in-process state (attempts run in separate processes).
    """
    marker = os.path.join(marker_dir, f"seen-{x}")
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return x * 10
    os.close(fd)
    raise RuntimeError(f"transient failure for {x}")


def sleep_forever(x):
    time.sleep(60.0)
    return x


def crash_hard(x):
    os._exit(41)


def crash_on(x, bad):
    if x == bad:
        os._exit(41)
    return x


@pytest.fixture(autouse=True)
def _reset_stats():
    supervision_stats().reset()
    yield


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)

    def test_delay_is_deterministic_in_seed(self):
        p = RetryPolicy(retries=3, backoff=0.1)
        assert p.delay(42, 5, 1) == p.delay(42, 5, 1)
        assert p.delay(42, 5, 1) != p.delay(42, 5, 2)
        assert p.delay(42, 5, 1) != p.delay(42, 6, 1)
        assert p.delay(42, 5, 1) != p.delay(43, 5, 1)

    def test_delay_grows_and_caps(self):
        p = RetryPolicy(retries=10, backoff=0.1, backoff_factor=2.0,
                        max_backoff=0.4, jitter=0.0)
        assert p.delay(0, 0, 1) == pytest.approx(0.1)
        assert p.delay(0, 0, 2) == pytest.approx(0.2)
        assert p.delay(0, 0, 4) == pytest.approx(0.4)  # capped
        assert p.delay(0, 0, 8) == pytest.approx(0.4)

    def test_jitter_bounded(self):
        p = RetryPolicy(retries=1, backoff=0.1, jitter=0.5)
        for attempt in range(1, 6):
            base = min(p.max_backoff, 0.1 * 2.0 ** (attempt - 1))
            d = p.delay(7, 0, attempt)
            assert base <= d <= base * 1.5  # base .. base * (1 + jitter)


class TestSalvage:
    def test_outcome_envelopes_in_task_order(self):
        out = run_tasks(fail_on, [(i, 2) for i in range(5)], workers=2,
                        salvage=True, label="cell")
        assert [o.index for o in out] == list(range(5))
        assert all(isinstance(o, TaskOutcome) for o in out)
        assert [o.ok for o in out] == [True, True, False, True, True]
        bad = out[2]
        assert bad.status == "failed"
        assert "poisoned task 2" in bad.error
        assert "ValueError" in bad.traceback
        assert bad.attempts == 1 and bad.retried == 0

    def test_salvage_serial_matches_parallel(self):
        serial = run_tasks(square, [(i,) for i in range(6)], workers=1, salvage=True)
        par = run_tasks(square, [(i,) for i in range(6)], workers=3, salvage=True)
        assert [o.result for o in serial] == [o.result for o in par]

    def test_worker_crash_is_one_failure_not_the_batch(self):
        out = run_tasks(crash_on, [(i, 2) for i in range(5)], workers=2,
                        salvage=True)
        assert [o.ok for o in out] == [True, True, False, True, True]
        assert [o.result for o in out if o.ok] == [0, 1, 3, 4]
        assert "exit code 41" in out[2].error

    def test_crash_reports_exit_code(self):
        out = run_tasks(crash_hard, [(0,), (1,)], workers=2, salvage=True)
        assert all(not o.ok for o in out)
        assert "exit code 41" in out[0].error
        assert supervision_stats().crashes == 2

    def test_salvage_counts(self):
        run_tasks(fail_on, [(i, 1) for i in range(3)], workers=2, salvage=True)
        stats = supervision_stats()
        assert stats.completed == 2
        assert stats.failures == 1
        assert stats.salvaged == 1


class TestRetries:
    def test_transient_failure_recovers(self, tmp_path):
        out = run_tasks(
            fail_until_marker, [(i, str(tmp_path)) for i in range(3)],
            workers=2, retries=2, salvage=True, base_seed=9,
        )
        assert all(o.ok for o in out)
        assert [o.result for o in out] == [0, 10, 20]
        assert all(o.retried == 1 for o in out)
        assert supervision_stats().retries == 3

    def test_transient_failure_recovers_serial(self, tmp_path):
        out = run_tasks(
            fail_until_marker, [(i, str(tmp_path)) for i in range(3)],
            workers=1, retries=1, salvage=True,
        )
        assert all(o.ok and o.retried == 1 for o in out)

    def test_permanent_failure_exhausts_attempts(self):
        out = run_tasks(fail_on, [(2, 2), (3, 2)], workers=2, retries=2,
                        salvage=True)
        assert out[0].status == "failed"
        assert out[0].attempts == 3
        assert out[1].ok

    def test_retry_never_changes_a_successful_result(self, tmp_path):
        baseline = run_tasks(square, [(i,) for i in range(4)], workers=2)
        out = run_tasks(square, [(i,) for i in range(4)], workers=2,
                        retries=3, salvage=True, base_seed=123)
        assert [o.result for o in out] == baseline


class TestTimeout:
    def test_stalled_task_terminated(self):
        t0 = time.monotonic()
        out = run_tasks(sleep_forever, [(0,), (1,)], workers=2,
                        timeout=0.3, salvage=True)
        assert all(o.status == "timed-out" for o in out)
        assert "timeout" in out[0].error
        assert time.monotonic() - t0 < 30.0
        assert supervision_stats().timeouts == 2

    def test_timeout_fail_fast_raises(self):
        with pytest.raises(ParallelTaskError, match="timed out"):
            run_tasks(sleep_forever, [(0,), (1,)], workers=2, timeout=0.3)

    def test_serial_timeout_warns_and_skips_enforcement(self):
        with pytest.warns(RuntimeWarning, match="not enforced"):
            out = run_tasks(square, [(2,), (3,)], workers=1,
                            timeout=0.001, salvage=True)
        assert [o.result for o in out] == [4, 9]


class TestEnrichedErrors:
    def test_error_names_args_and_seed(self):
        with pytest.raises(ParallelTaskError) as ei:
            run_tasks(fail_on, [(i, 2) for i in range(5)], workers=2,
                      retries=1, label="cell", base_seed=2021)
        msg = str(ei.value)
        assert "cell #2" in msg
        assert "(args=(2, 2)" in msg
        assert f"seed=derive_seed(2021, ...)={derive_seed(2021, 2)}" in msg
        assert "after 2 attempt(s)" in msg
        assert "poisoned task 2" in msg
        assert ei.value.task_index == 2
        assert ei.value.seed == derive_seed(2021, 2)

    def test_legacy_pool_error_names_seed_too(self):
        # The plain (unsupervised) path carries the same context.
        with pytest.raises(ParallelTaskError, match=r"cell #2 .*seed="):
            run_tasks(fail_on, [(i, 2) for i in range(5)], workers=2,
                      label="cell", base_seed=7)

    def test_long_args_truncated(self):
        big = "x" * 10_000
        out = run_tasks(fail_on, [(big, big)], workers=2, salvage=True)
        assert len(out[0].args_repr) <= 200


class TestObservables:
    def test_protocol_shape(self):
        stats = supervision_stats()
        obs = stats.observables()
        assert set(obs) == {
            "completed", "failures", "timeouts", "crashes", "retries",
            "journal_hits", "salvaged",
        }
        assert all(callable(v) for v in obs.values())

    def test_counters_reflect_runs(self):
        run_tasks(square, [(i,) for i in range(3)], workers=2, salvage=True)
        snap = supervision_stats().snapshot()
        assert snap["completed"] == 3
        assert snap["failures"] == 0

    def test_registers_with_telemetry(self):
        from repro.obs import Telemetry

        tel = Telemetry(window=5.0)
        tel.register_observables("parallel", supervision_stats())
        run_tasks(square, [(1,), (2,)], workers=1, salvage=True)
        assert tel.metrics.snapshot()["parallel.completed"] == 2


class TestZeroOverheadOff:
    def test_plain_call_takes_legacy_path(self, monkeypatch):
        # The supervised machinery must not engage for a plain call:
        # chaos injection hooks only exist on the supervised path, so a
        # kill-targeted plain run completes untouched.
        monkeypatch.setenv("REPRO_CHAOS_KILL", "0,1")
        assert run_tasks(square, [(0,), (1,)], workers=1) == [0, 1]
        assert run_tasks(square, [(0,), (1,)], workers=2) == [0, 1]

    def test_supervised_results_match_plain(self):
        tasks = [(i,) for i in range(7)]
        plain = run_tasks(square, tasks, workers=3)
        supervised = run_tasks(square, tasks, workers=3, retries=2,
                               timeout=60.0, base_seed=5)
        assert supervised == plain


_SIGINT_CHILD = """
import os, sys, time
sys.path.insert(0, {src!r})
from repro.parallel import run_tasks
from repro.parallel.chaos import beacon_point
from repro.experiments.store import RunJournal

tasks = [(i, 5.0 + i, 0.4, {beacons!r}) for i in range(6)]
with RunJournal({journal!r}, scope="ki-test") as j:
    run_tasks(beacon_point, tasks, workers=2, label="point", journal=j)
print("FINISHED-UNINTERRUPTED")
"""


class TestKeyboardInterrupt:
    def test_fanout_interrupt_is_graceful_and_resumable(self, tmp_path):
        """SIGINT mid-fan-out: clean shutdown, no orphans, resumable journal."""
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        journal = str(tmp_path / "ki.journal")
        beacons = tmp_path / "beacons"
        beacons.mkdir()
        child = subprocess.Popen(
            [sys.executable, "-c", _SIGINT_CHILD.format(
                src=os.path.abspath(src), beacons=str(beacons), journal=journal
            )],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        # Wait until at least one task result has been journaled.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if os.path.exists(journal):
                with open(journal, "rb") as fh:
                    if fh.read().count(b"\n") >= 2:
                        break
            assert child.poll() is None, "child finished before interrupt"
            time.sleep(0.02)
        child.send_signal(signal.SIGINT)
        out, err = child.communicate(timeout=30)
        assert child.returncode != 0
        assert b"FINISHED-UNINTERRUPTED" not in out
        assert b"KeyboardInterrupt" in err
        # No orphaned worker processes: every beacon PID must be gone.
        time.sleep(0.2)
        pids = [int(p.name.split("-", 1)[1]) for p in beacons.iterdir()]
        assert pids, "no workers ever started"
        for pid in set(pids):
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
        # The journal is mid-run but valid, and resuming completes the
        # run bit-identically to an uninterrupted one.
        from repro.parallel.chaos import beacon_point, synthetic_point

        tasks = [(i, 5.0 + i, 0.4, str(beacons)) for i in range(6)]
        with RunJournal(journal, scope="ki-test") as j:
            assert 0 < len(j)
            resumed = run_tasks(beacon_point, tasks, workers=2,
                                label="point", journal=j)
        assert resumed == [synthetic_point(i, 5.0 + i) for i in range(6)]
