"""Tests for chaos injection and the crash-safety self-test scenarios.

The heavyweight end-to-end proof lives in ``python -m
repro.parallel.chaos`` (run by the CI ``chaos-smoke`` job); these tests
exercise the injection primitives directly and run the in-process
scenarios (crash + retry, crash + salvage + resume) against a baseline.
"""

import os
import subprocess
import sys

import pytest

from repro.parallel import run_tasks
from repro.parallel.chaos import (
    CHAOS_EXIT_CODE,
    CHAOS_KILL_ENV,
    CHAOS_ONCE_DIR_ENV,
    _scenario_crash_resume,
    _scenario_crash_retry,
    _selftest_tasks,
    chaos_point,
    synthetic_point,
)


class TestChaosPoint:
    def test_noop_without_env(self, monkeypatch):
        monkeypatch.delenv(CHAOS_KILL_ENV, raising=False)
        chaos_point(0)  # must simply return

    def test_noop_for_untargeted_index(self, monkeypatch):
        monkeypatch.setenv(CHAOS_KILL_ENV, "2,5")
        chaos_point(0)
        chaos_point(4)

    def test_bad_spec_raises(self, monkeypatch):
        monkeypatch.setenv(CHAOS_KILL_ENV, "2,banana")
        with pytest.raises(ValueError, match="task indices"):
            chaos_point(0)

    def test_targeted_index_exits_with_chaos_code(self, monkeypatch, tmp_path):
        # The exit itself must happen in a sacrificial process.
        src = os.path.abspath(
            os.path.join(os.path.dirname(__file__), "..", "..", "src")
        )
        code = (
            "import os, sys; sys.path.insert(0, %r); "
            "from repro.parallel.chaos import chaos_point; "
            "chaos_point(3); print('survived')" % src
        )
        env = dict(os.environ, **{CHAOS_KILL_ENV: "3"})
        proc = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True
        )
        assert proc.returncode == CHAOS_EXIT_CODE
        assert b"survived" not in proc.stdout

    def test_crash_once_marker(self, monkeypatch, tmp_path):
        # With a once-dir, the first call writes a marker (and would
        # exit); a pre-existing marker makes the call a no-op.
        marker = tmp_path / "crashed-7"
        marker.touch()
        monkeypatch.setenv(CHAOS_KILL_ENV, "7")
        monkeypatch.setenv(CHAOS_ONCE_DIR_ENV, str(tmp_path))
        chaos_point(7)  # marker exists: survives


class TestInjectedWorkerKills:
    def test_supervised_run_salvages_chaos_kill(self, monkeypatch):
        monkeypatch.setenv(CHAOS_KILL_ENV, "1")
        out = run_tasks(
            synthetic_point, _selftest_tasks(n=4), workers=2,
            label="point", salvage=True,
        )
        assert [o.ok for o in out] == [True, False, True, True]
        assert "exit code" in out[1].error

    def test_scenario_crash_retry(self, tmp_path):
        baseline = run_tasks(synthetic_point, _selftest_tasks(), workers=2)
        _scenario_crash_retry(str(tmp_path), baseline)

    def test_scenario_crash_resume_bit_identity(self, tmp_path):
        baseline = run_tasks(synthetic_point, _selftest_tasks(), workers=2)
        _scenario_crash_resume(str(tmp_path), baseline)

    def test_selftest_tasks_deterministic(self):
        assert _selftest_tasks() == _selftest_tasks()
        a = run_tasks(synthetic_point, _selftest_tasks(), workers=1)
        b = run_tasks(synthetic_point, _selftest_tasks(), workers=3)
        assert a == b
