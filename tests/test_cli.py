"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCliBasics:
    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
        assert "Regenerate experiments" in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["figure99"])


class TestCutoffCommand:
    def test_basic_query(self, capsys):
        assert main(["cutoff", "--cloud-rtt", "24"]) == 0
        out = capsys.readouterr().out
        assert "mean-latency cutoff" in out
        assert "p95-latency" in out

    def test_requires_cloud_rtt(self):
        with pytest.raises(SystemExit):
            main(["cutoff"])

    def test_machines_option(self, capsys):
        assert main(["cutoff", "--cloud-rtt", "54", "--machines", "2"]) == 0
        assert "k=10 machines" in capsys.readouterr().out


class TestSensitivityCommand:
    def test_runs_and_prints_sweeps(self, capsys):
        assert main(["sensitivity"]) == 0
        out = capsys.readouterr().out
        assert "cores" in out and "cloud RTT" in out and "p95 cutoff" in out


class TestDumpCommand:
    def test_dump_subset(self, tmp_path, capsys):
        assert main(["dump", "--outdir", str(tmp_path), "--figures", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out
        assert (tmp_path / "fig2.json").exists()

    def test_dump_unknown_figure(self, tmp_path):
        with pytest.raises(ValueError):
            main(["dump", "--outdir", str(tmp_path), "--figures", "fig99"])


class TestExperimentCommands:
    def test_fig2_runs(self, capsys):
        assert main(["fig2"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_seed_override(self, capsys):
        assert main(["fig2", "--seed", "7"]) == 0
        first = capsys.readouterr().out
        assert main(["fig2", "--seed", "7"]) == 0
        second = capsys.readouterr().out
        assert first == second  # deterministic given seed


class TestFlagNormalization:
    def test_dump_out_is_canonical(self, tmp_path, capsys):
        assert main(["dump", "--out", str(tmp_path), "--figures", "fig2"]) == 0
        assert (tmp_path / "fig2.json").exists()
        assert "deprecated" not in capsys.readouterr().err

    def test_dump_outdir_still_works_with_notice(self, tmp_path, capsys):
        assert main(["dump", "--outdir", str(tmp_path), "--figures", "fig2"]) == 0
        captured = capsys.readouterr()
        assert (tmp_path / "fig2.json").exists()
        assert "--outdir is deprecated" in captured.err

    def test_golden_update_golden_mutually_exclusive(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as err:
            main([
                "campaign", "whatever.yaml",
                "--golden", str(tmp_path / "a.json"),
                "--update-golden", str(tmp_path / "b.json"),
            ])
        assert err.value.code == 2
        message = capsys.readouterr().err
        assert "--golden and --update-golden are mutually exclusive" in message

    def test_telemetry_workers_mutually_exclusive(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as err:
            main([
                "fig2",
                "--telemetry", str(tmp_path / "t.jsonl"),
                "--workers", "4",
            ])
        assert err.value.code == 2
        message = capsys.readouterr().err
        assert "--telemetry and --workers are mutually exclusive" in message

    def test_campaign_accepts_common_flags(self, capsys):
        # --workers/--checkpoint/--resume/--telemetry all parse on
        # campaign (the normalization contract); a bogus file still
        # fails *after* argparse with the campaign exit code, not 2.
        rc = main(["campaign", "/nonexistent/x.yaml", "--workers", "1"])
        assert rc == 3

    def test_resume_requires_checkpoint_everywhere(self, capsys):
        for command in ("fig2", "campaign x.yaml", "serve"):
            with pytest.raises(SystemExit) as err:
                main([*command.split(), "--resume"])
            assert err.value.code == 2
            assert "--resume requires --checkpoint" in capsys.readouterr().err
