"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCliBasics:
    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
        assert "Regenerate experiments" in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["figure99"])


class TestCutoffCommand:
    def test_basic_query(self, capsys):
        assert main(["cutoff", "--cloud-rtt", "24"]) == 0
        out = capsys.readouterr().out
        assert "mean-latency cutoff" in out
        assert "p95-latency" in out

    def test_requires_cloud_rtt(self):
        with pytest.raises(SystemExit):
            main(["cutoff"])

    def test_machines_option(self, capsys):
        assert main(["cutoff", "--cloud-rtt", "54", "--machines", "2"]) == 0
        assert "k=10 machines" in capsys.readouterr().out


class TestSensitivityCommand:
    def test_runs_and_prints_sweeps(self, capsys):
        assert main(["sensitivity"]) == 0
        out = capsys.readouterr().out
        assert "cores" in out and "cloud RTT" in out and "p95 cutoff" in out


class TestDumpCommand:
    def test_dump_subset(self, tmp_path, capsys):
        assert main(["dump", "--outdir", str(tmp_path), "--figures", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out
        assert (tmp_path / "fig2.json").exists()

    def test_dump_unknown_figure(self, tmp_path):
        with pytest.raises(ValueError):
            main(["dump", "--outdir", str(tmp_path), "--figures", "fig99"])


class TestExperimentCommands:
    def test_fig2_runs(self, capsys):
        assert main(["fig2"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_seed_override(self, capsys):
        assert main(["fig2", "--seed", "7"]) == 0
        first = capsys.readouterr().out
        assert main(["fig2", "--seed", "7"]) == 0
        second = capsys.readouterr().out
        assert first == second  # deterministic given seed
