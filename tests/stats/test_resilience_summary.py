"""Tests for the operation-level resilience metrics."""

import numpy as np
import pytest

from repro.stats.resilience import summarize_resilience


class TestSummarizeResilience:
    def test_derived_metrics(self):
        s = summarize_resilience(
            duration=100.0, successes=90, failures=10, slo_hits=80,
            attempts=120, retries=20, hedges=10, failovers=5,
            latencies=np.full(90, 0.25),
        )
        assert s.operations == 100
        assert s.goodput == pytest.approx(0.8)
        assert s.slo_attainment == pytest.approx(0.8)
        assert s.retry_amplification == pytest.approx(1.2)
        assert s.latency is not None
        assert s.latency.mean == pytest.approx(0.25)

    def test_zero_operations(self):
        s = summarize_resilience(
            duration=10.0, successes=0, failures=0, slo_hits=0, attempts=0
        )
        assert s.operations == 0
        assert s.goodput == 0.0
        assert s.slo_attainment == 0.0
        assert s.retry_amplification == 0.0
        assert s.latency is None

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize_resilience(
                duration=0.0, successes=1, failures=0, slo_hits=1, attempts=1
            )
        with pytest.raises(ValueError):
            summarize_resilience(
                duration=10.0, successes=-1, failures=0, slo_hits=0, attempts=0
            )

    def test_str_mentions_headline_numbers(self):
        s = summarize_resilience(
            duration=50.0, successes=40, failures=10, slo_hits=40, attempts=60,
            latencies=np.linspace(0.1, 0.5, 40),
        )
        text = str(s)
        assert "slo=80.0%" in text
        assert "amp=1.20x" in text
        assert "goodput=0.80/s" in text
