"""Tests for the measurement utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.ci import batch_means_ci
from repro.stats.summary import summarize
from repro.stats.timeseries import windowed_mean, windowed_percentile
from repro.stats.warmup import mser_cutoff, trim_warmup


class TestSummarize:
    def test_basic_fields(self):
        s = summarize(np.array([1.0, 2.0, 3.0, 4.0]))
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.p50 == pytest.approx(2.5)
        assert s.min == 1.0 and s.max == 4.0
        assert s.iqr == pytest.approx(s.p75 - s.p25)

    def test_quantile_ordering(self):
        rng = np.random.default_rng(0)
        s = summarize(rng.exponential(1.0, 10_000))
        assert s.p25 <= s.p50 <= s.p75 <= s.p95 <= s.p99 <= s.max

    def test_cv2(self):
        rng = np.random.default_rng(1)
        s = summarize(rng.exponential(2.0, 200_000))
        assert s.cv2 == pytest.approx(1.0, rel=0.05)

    def test_as_ms(self):
        s = summarize(np.array([0.5]))
        assert s.as_ms()["mean"] == pytest.approx(500.0)

    def test_str_renders(self):
        assert "p95" in str(summarize(np.array([0.1, 0.2])))

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            summarize(np.array([]))
        with pytest.raises(ValueError):
            summarize(np.array([1.0, -1.0]))
        with pytest.raises(ValueError):
            summarize(np.array([1.0, np.nan]))


class TestWindowedSeries:
    def test_windowed_mean(self):
        t = np.array([0.5, 0.6, 1.5])
        v = np.array([1.0, 3.0, 10.0])
        starts, means = windowed_mean(t, v, 1.0, horizon=3.0)
        np.testing.assert_allclose(starts, [0.0, 1.0, 2.0])
        assert means[0] == pytest.approx(2.0)
        assert means[1] == pytest.approx(10.0)
        assert np.isnan(means[2])

    def test_windowed_percentile(self):
        t = np.repeat([0.5, 1.5], 100)
        v = np.concatenate([np.linspace(0, 1, 100), np.linspace(10, 11, 100)])
        starts, p95 = windowed_percentile(t, v, 1.0, 0.95)
        assert p95[0] == pytest.approx(0.95, abs=0.02)
        assert p95[1] == pytest.approx(10.95, abs=0.02)

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            windowed_mean(np.array([1.0]), np.array([1.0, 2.0]), 1.0)
        with pytest.raises(ValueError):
            windowed_percentile(np.array([1.0]), np.array([1.0, 2.0]), 1.0, 0.5)

    def test_bad_params_rejected(self):
        t = v = np.array([1.0])
        with pytest.raises(ValueError):
            windowed_mean(t, v, 0.0)
        with pytest.raises(ValueError):
            windowed_percentile(t, v, 1.0, 1.5)

    @given(seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=30)
    def test_mean_of_window_means_consistent(self, seed):
        rng = np.random.default_rng(seed)
        t = np.sort(rng.uniform(0, 10, 500))
        v = rng.exponential(1.0, 500)
        _, means = windowed_mean(t, v, 10.0, horizon=10.0)
        assert means[0] == pytest.approx(v.mean())


class TestBatchMeansCI:
    def test_covers_iid_mean(self):
        rng = np.random.default_rng(2)
        x = rng.exponential(1.0, 100_000)
        mean, hw = batch_means_ci(x, batches=20)
        assert abs(mean - 1.0) < 3 * hw
        assert hw < 0.05

    def test_wider_for_autocorrelated_data(self):
        rng = np.random.default_rng(3)
        iid = rng.normal(0.0, 1.0, 40_000)
        # AR(1) with strong positive correlation.
        ar = np.empty(40_000)
        ar[0] = 0.0
        noise = rng.normal(0.0, 1.0, 40_000)
        for i in range(1, 40_000):
            ar[i] = 0.95 * ar[i - 1] + noise[i]
        _, hw_iid = batch_means_ci(iid)
        _, hw_ar = batch_means_ci(ar)
        assert hw_ar > 2 * hw_iid

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_means_ci(np.ones(100), batches=1)
        with pytest.raises(ValueError):
            batch_means_ci(np.ones(10), batches=20)
        with pytest.raises(ValueError):
            batch_means_ci(np.ones(100), confidence=1.0)


class TestWarmup:
    def test_mser_detects_transient(self):
        rng = np.random.default_rng(4)
        transient = np.linspace(5.0, 1.0, 500) + rng.normal(0, 0.1, 500)
        steady = 1.0 + rng.normal(0, 0.1, 4500)
        cut = mser_cutoff(np.concatenate([transient, steady]))
        assert 200 <= cut <= 1500

    def test_mser_zero_for_stationary(self):
        rng = np.random.default_rng(5)
        cut = mser_cutoff(rng.normal(1.0, 0.1, 5000))
        assert cut < 1500

    def test_short_series_uncut(self):
        assert mser_cutoff(np.ones(5)) == 0

    def test_trim_fraction(self):
        x = np.arange(100.0)
        assert trim_warmup(x, fraction=0.25).size == 75

    def test_trim_auto_uses_mser(self):
        rng = np.random.default_rng(6)
        x = np.concatenate([np.full(500, 10.0), rng.normal(1.0, 0.1, 4500)])
        trimmed = trim_warmup(x)
        assert trimmed.size < x.size
        assert trimmed.mean() < 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            trim_warmup(np.ones(10), fraction=1.0)
        with pytest.raises(ValueError):
            mser_cutoff(np.ones(10), batch=0)
