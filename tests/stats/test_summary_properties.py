"""Property-based tests for LatencySummary and warm-up trimming."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.stats.summary import summarize
from repro.stats.warmup import mser_cutoff, trim_warmup

positive_samples = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=500),
    elements=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)


class TestSummaryProperties:
    @given(xs=positive_samples)
    @settings(max_examples=100)
    def test_quantiles_bracketed_by_min_max(self, xs):
        s = summarize(xs)
        assert s.min <= s.p25 <= s.p50 <= s.p75 <= s.p95 <= s.p99 <= s.max
        # Summation rounding can put the mean of a constant array a few
        # ulps outside [min, max]; allow that much.
        eps = 1e-9 * max(1.0, abs(s.max))
        assert s.min - eps <= s.mean <= s.max + eps
        assert s.count == xs.size

    @given(xs=positive_samples, scale=st.floats(min_value=0.01, max_value=1000.0))
    @settings(max_examples=60)
    def test_scaling_equivariance(self, xs, scale):
        a, b = summarize(xs), summarize(xs * scale)
        # atol scaled to the magnitude: np.std of a constant array is a
        # rounding artifact (~1e-13 * mean), not a real dispersion.
        atol = 1e-9 * max(1.0, abs(b.mean))
        assert np.isclose(b.mean, a.mean * scale, rtol=1e-9, atol=atol)
        assert np.isclose(b.p95, a.p95 * scale, rtol=1e-9, atol=atol)
        assert np.isclose(b.std, a.std * scale, rtol=1e-6, atol=atol)

    @given(xs=positive_samples)
    @settings(max_examples=60)
    def test_cv2_scale_invariant(self, xs):
        s1 = summarize(xs)
        s2 = summarize(xs * 7.0)
        assert np.isclose(s1.cv2, s2.cv2, rtol=1e-6, atol=1e-9)

    def test_constant_sample(self):
        s = summarize(np.full(10, 3.0))
        assert s.std == 0.0 and s.cv2 == 0.0 and s.iqr == 0.0


class TestWarmupProperties:
    @given(
        xs=arrays(
            dtype=np.float64,
            shape=st.integers(min_value=10, max_value=400),
            elements=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        )
    )
    @settings(max_examples=80)
    def test_cutoff_bounded_by_half(self, xs):
        cut = mser_cutoff(xs)
        assert 0 <= cut <= xs.size // 2 * 5  # batches of 5, capped at half

    @given(
        xs=arrays(
            dtype=np.float64,
            shape=st.integers(min_value=1, max_value=200),
            elements=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        ),
        frac=st.floats(min_value=0.0, max_value=0.99),
    )
    @settings(max_examples=80)
    def test_fraction_trim_size(self, xs, frac):
        trimmed = trim_warmup(xs, fraction=frac)
        assert trimmed.size == xs.size - int(frac * xs.size)

    @given(
        xs=arrays(
            dtype=np.float64,
            shape=st.integers(min_value=10, max_value=200),
            elements=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        )
    )
    @settings(max_examples=50)
    def test_auto_trim_is_suffix(self, xs):
        trimmed = trim_warmup(xs)
        assert trimmed.size <= xs.size
        if trimmed.size:
            np.testing.assert_array_equal(trimmed, xs[xs.size - trimmed.size:])
