"""Tests for the overload/goodput summary."""

import pytest

from repro.queueing.distributions import Deterministic
from repro.sim.engine import Simulation
from repro.sim.overload import CoDelDiscipline
from repro.sim.request import Request
from repro.sim.station import Station
from repro.stats import OverloadSummary, summarize_overload


class TestFromCounters:
    def test_basic_accounting(self):
        s = summarize_overload(
            duration=10.0, offered=100, served=80,
            rejected=5, dropped=10, shed=5, degraded=20,
        )
        assert s.refused == 20
        assert s.goodput == pytest.approx(8.0)
        assert s.refusal_rate == pytest.approx(0.2)
        assert s.degraded_fraction == pytest.approx(0.25)
        assert s.latency is None

    def test_latency_sample_summarized(self):
        s = summarize_overload(
            duration=1.0, offered=4, served=4, latencies=[0.1, 0.2, 0.3, 0.4]
        )
        assert s.latency is not None
        assert s.latency.mean == pytest.approx(0.25)

    def test_empty_latency_sample_is_none(self):
        s = summarize_overload(duration=1.0, offered=1, served=1, latencies=[])
        assert s.latency is None

    def test_zero_offered_has_zero_rates(self):
        s = summarize_overload(duration=1.0, offered=0, served=0, rejected=3)
        assert s.refusal_rate == 0.0
        assert s.degraded_fraction == 0.0

    def test_str_mentions_taxonomy(self):
        s = summarize_overload(
            duration=10.0, offered=100, served=80,
            rejected=5, dropped=10, shed=5, degraded=20,
            latencies=[0.5] * 4,
        )
        text = str(s)
        for fragment in ("rej=5", "drop=10", "shed=5", "degraded=25.0%", "p95="):
            assert fragment in text

    def test_validation(self):
        with pytest.raises(ValueError):
            summarize_overload(duration=0.0, offered=1, served=1)
        with pytest.raises(ValueError):
            summarize_overload(duration=1.0)  # no stations, no counters
        with pytest.raises(ValueError):
            summarize_overload(duration=1.0, offered=5, served=-1)


class TestFromStations:
    def _overloaded_station(self):
        sim = Simulation(0)
        st = Station(
            sim, 1, Deterministic(1.0),
            queue_capacity=2,
            discipline=CoDelDiscipline(target=0.1, interval=0.2),
        )
        for rid in range(8):
            sim.schedule(0.2 * rid, st.arrive, Request(rid, created=0.2 * rid))
        sim.run()
        return st

    def test_sums_station_counters(self):
        st = self._overloaded_station()
        s = summarize_overload(duration=10.0, stations=[st])
        assert s.offered == st.arrivals
        assert s.served == st.completions
        assert s.dropped == st.drops
        assert s.shed == st.shed
        assert s.offered == s.served + s.refused  # conservation

    def test_explicit_counters_add_on_top(self):
        st = self._overloaded_station()
        base = summarize_overload(duration=10.0, stations=[st])
        merged = summarize_overload(
            duration=10.0, stations=[st], offered=7, rejected=7
        )
        assert merged.offered == base.offered + 7
        assert merged.rejected == base.rejected + 7

    def test_multiple_stations_merge(self):
        a, b = self._overloaded_station(), self._overloaded_station()
        s = summarize_overload(duration=10.0, stations=[a, b])
        assert s.offered == a.arrivals + b.arrivals
        assert s.shed == a.shed + b.shed

    def test_is_frozen(self):
        s = summarize_overload(duration=1.0, offered=1, served=1)
        assert isinstance(s, OverloadSummary)
        with pytest.raises(AttributeError):
            s.served = 5
