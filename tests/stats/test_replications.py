"""Tests for the independent-replications machinery."""

import numpy as np
import pytest

from repro.stats.replications import (
    ReplicationSummary,
    replicate,
    replications_for_precision,
)


def noisy_experiment(seed):
    return float(np.random.default_rng(seed).normal(10.0, 1.0))


class TestReplicate:
    def test_runs_r_times_with_distinct_seeds(self):
        from repro.parallel import derive_seed

        seen = []

        def exp(seed):
            seen.append(seed)
            return float(seed)

        s = replicate(exp, 5, base_seed=100)
        # Seeds are SeedSequence-derived children of the base seed
        # (collision-free across experiments), one per replication index.
        assert seen == [derive_seed(100, r) for r in range(5)]
        assert len(set(seen)) == 5
        assert s.n == 5
        assert s.mean == pytest.approx(np.mean(seen))

    def test_seeds_disjoint_across_nearby_bases(self):
        # The hazard the SeedSequence derivation removes: raw base+r
        # arithmetic made replicate(base_seed=0) and replicate(base_seed=1)
        # run mostly identical seed sets, silently correlating experiments.
        a = []
        b = []
        replicate(lambda seed: a.append(seed) or 0.0, 10, base_seed=0)
        replicate(lambda seed: b.append(seed) or 0.0, 10, base_seed=1)
        assert not set(a) & set(b)

    def test_ci_covers_true_mean(self):
        s = replicate(noisy_experiment, 30, base_seed=0)
        assert s.contains(10.0)
        assert s.half_width < 1.0

    def test_deterministic_experiment_zero_width(self):
        s = replicate(lambda seed: 5.0, 10)
        assert s.std == 0.0
        assert s.half_width == 0.0
        assert s.relative_half_width == 0.0

    def test_str_renders(self):
        assert "CI" in str(replicate(noisy_experiment, 5))

    def test_validation(self):
        with pytest.raises(ValueError):
            replicate(noisy_experiment, 1)
        with pytest.raises(ValueError):
            replicate(noisy_experiment, 5, confidence=1.5)


class TestSummaryEdgeCases:
    def test_single_value_infinite_width(self):
        s = ReplicationSummary(values=(3.0,), confidence=0.95)
        assert s.half_width == float("inf")

    def test_zero_mean_relative_width(self):
        s = ReplicationSummary(values=(-1.0, 1.0), confidence=0.95)
        assert s.relative_half_width == float("inf")


class TestSequentialPrecision:
    def test_reaches_target(self):
        s = replications_for_precision(
            noisy_experiment, 0.05, initial=5, max_replications=80
        )
        assert s.relative_half_width <= 0.05
        assert 5 <= s.n <= 80

    def test_stops_early_for_stable_experiments(self):
        s = replications_for_precision(lambda seed: 7.0, 0.01, initial=3)
        assert s.n == 3

    def test_gives_up_past_cap(self):
        def very_noisy(seed):
            return float(np.random.default_rng(seed).normal(0.1, 50.0))

        with pytest.raises(RuntimeError):
            replications_for_precision(very_noisy, 0.01, initial=3, max_replications=6)

    def test_validation(self):
        with pytest.raises(ValueError):
            replications_for_precision(noisy_experiment, 0.0)
        with pytest.raises(ValueError):
            replications_for_precision(noisy_experiment, 0.1, initial=1)

    def test_simulation_use_case(self):
        """Replications give a defensible CI on an actual latency metric."""
        from repro.queueing.distributions import Exponential
        from repro.queueing.mm1 import MM1
        from repro.sim.network import ConstantLatency
        from repro.sim.runner import run_deployment

        def one_run(seed):
            bd = run_deployment(
                "edge", sites=1, servers_per_site=1, rate_per_site=8.0,
                service_dist=Exponential(1.0 / 13.0),
                latency=ConstantLatency(0.0), duration=400.0, seed=seed,
            )
            return float(bd.end_to_end.mean())

        s = replicate(one_run, 8, base_seed=3)
        assert s.contains(MM1(8.0, 13.0).mean_response())
