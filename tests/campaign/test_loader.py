"""YAML/JSON loading: parse errors, line-level diagnostics, gating."""

import json

import pytest

from repro.campaign import loader
from repro.campaign.loader import load_campaign, loads_campaign, parse_document
from repro.campaign.spec import EXIT_PARSE, EXIT_SCHEMA, CampaignValidationError

yaml = pytest.importorskip("yaml")

GOOD_YAML = """\
campaign: demo
seed: 3
scenarios:
  - name: one
    rtt: typical
    utilization: 0.5
    duration: 10.0
"""


class TestYamlParsing:
    def test_good_document_loads(self):
        spec = loads_campaign(GOOD_YAML, source="demo.yaml")
        assert spec.name == "demo"
        assert spec.scenarios[0].cloud_rtt_ms == 24.0

    def test_invalid_yaml_is_parse_error_with_line(self):
        with pytest.raises(CampaignValidationError) as ei:
            loads_campaign("campaign: [unclosed\nscenarios:", source="x.yaml")
        assert ei.value.kind == "parse"
        assert ei.value.exit_code == EXIT_PARSE
        assert ei.value.issues[0].line is not None

    def test_empty_document_is_parse_error(self):
        with pytest.raises(CampaignValidationError) as ei:
            loads_campaign("# just a comment\n", source="x.yaml")
        assert ei.value.kind == "parse"

    def test_duplicate_mapping_key_is_parse_error(self):
        text = GOOD_YAML + "seed: 4\n"
        with pytest.raises(CampaignValidationError) as ei:
            loads_campaign(text, source="x.yaml")
        assert ei.value.kind == "parse"
        assert any("duplicate" in i.message for i in ei.value.issues)

    def test_schema_error_carries_source_line(self):
        bad = GOOD_YAML.replace("utilization: 0.5", "utilization: 1.5")
        with pytest.raises(CampaignValidationError) as ei:
            loads_campaign(bad, source="demo.yaml")
        issue = next(i for i in ei.value.issues
                     if i.path == "scenarios[0].utilization")
        # "utilization: 1.5" sits on line 6 of the document.
        assert issue.line == 6
        assert "demo.yaml:6" in str(ei.value)

    def test_scalar_types_resolved(self):
        data, lines = parse_document(
            "a: 1\nb: 2.5\nc: true\nd: null\ne: text\nf: [1, 2]\n", fmt="yaml"
        )
        assert data == {"a": 1, "b": 2.5, "c": True, "d": None,
                        "e": "text", "f": [1, 2]}
        assert lines["b"] == 2
        assert lines["f[1]"] == 6


class TestJsonParsing:
    def test_json_document_loads(self):
        doc = {
            "campaign": "j", "seed": 1,
            "scenarios": [{"name": "n", "utilization": 0.4, "duration": 5.0}],
        }
        spec = loads_campaign(json.dumps(doc), fmt="json", source="j.json")
        assert spec.scenarios[0].name == "n"

    def test_json_parse_error_has_line_and_column(self):
        with pytest.raises(CampaignValidationError) as ei:
            loads_campaign('{"campaign": }', fmt="json", source="j.json")
        assert ei.value.kind == "parse"
        assert "column" in ei.value.issues[0].message

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            parse_document("x", fmt="toml")


class TestFileLoading:
    def test_suffix_selects_format(self, tmp_path):
        ypath = tmp_path / "c.yaml"
        ypath.write_text(GOOD_YAML)
        jpath = tmp_path / "c.json"
        jpath.write_text(json.dumps({
            "campaign": "j",
            "scenarios": [{"name": "n", "utilization": 0.4}],
        }))
        assert load_campaign(ypath).name == "demo"
        assert load_campaign(jpath).name == "j"

    def test_missing_file_is_parse_error(self, tmp_path):
        with pytest.raises(CampaignValidationError) as ei:
            load_campaign(tmp_path / "nope.yaml")
        assert ei.value.kind == "parse"

    def test_source_is_file_path_in_errors(self, tmp_path):
        path = tmp_path / "bad.yaml"
        path.write_text(GOOD_YAML.replace("rtt: typical", "rtt: mars"))
        with pytest.raises(CampaignValidationError) as ei:
            load_campaign(path)
        assert str(path) in str(ei.value)
        assert ei.value.exit_code == EXIT_SCHEMA


class TestYamlGating:
    def test_yaml_available_reports_truth(self):
        assert loader.yaml_available() is (loader._yaml is not None)

    def test_missing_pyyaml_yields_actionable_parse_error(self, monkeypatch):
        monkeypatch.setattr(loader, "_yaml", None)
        assert not loader.yaml_available()
        with pytest.raises(CampaignValidationError) as ei:
            loads_campaign(GOOD_YAML, source="x.yaml")
        assert ei.value.kind == "parse"
        assert "PyYAML" in str(ei.value)
        # JSON path keeps working without yaml.
        spec = loads_campaign(
            json.dumps({"campaign": "j",
                        "scenarios": [{"name": "n", "utilization": 0.4}]}),
            fmt="json",
        )
        assert spec.name == "j"
