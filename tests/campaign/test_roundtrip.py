"""Property-style round-trip tests: load → expand → dump → load.

The campaign contract the golden matrix rests on: expansion is
order-stable, dumps are canonical, and per-scenario seeds are
bit-identical across re-loads, re-dumps and worker counts.
"""

import json

import pytest

from repro.campaign import (
    compile_campaign,
    dump_campaign,
    loads_campaign,
    run_campaign,
)
from repro.campaign.executor import run_scenario

#: A deliberately gnarly campaign touching every axis family.
DOC = {
    "campaign": "roundtrip",
    "seed": 77,
    "description": "round-trip property fixture",
    "defaults": {"duration": 6.0, "sites": 2},
    "scenarios": [
        {"name": "explicit", "rtt": "nearby", "utilization": 0.45},
        {
            "name": "complex",
            "cloud_rtt_ms": 33.5,
            "edge_rtt_ms": 2.0,
            "arrival": "bursty",
            "arrival_cv2": 5.0,
            "service_cv2": 0.5,
            "rate_per_site": 4.0,
            "discipline": "codel",
            "codel_target": 0.3,
            "queue_capacity": 16,
            "admission": "occupancy",
            "admission_limit": 4.0,
            "resilience": "retry",
            "client_timeout": 1.0,
            "deadline": 4.0,
            "max_attempts": 2,
            "failures": [
                {"start": 1.0, "duration": 0.5},
                {"start": 3.0, "duration": 0.5, "sites": [1]},
            ],
        },
    ],
    "matrix": [
        {
            "name": "grid",
            "axes": {
                "rtt": ["typical", "distant"],
                "utilization": [0.4, 0.7],
                "arrival": ["poisson", "deterministic"],
            },
            "base": {"machines_per_site": 1},
        }
    ],
    "budgets": {"timeout": 60.0, "max_events": 500000, "retries": 2},
    "golden": {"rtol": 1e-8, "atol": 1e-10},
}


def fingerprint(spec):
    """Order + identity + seeds, the properties that must round-trip."""
    return [(s.name, s.seed, s) for s in spec.scenarios]


class TestRoundTrip:
    def test_dump_load_reproduces_expansion_exactly(self):
        spec = compile_campaign(json.loads(json.dumps(DOC)))
        dumped = dump_campaign(spec)
        respec = compile_campaign(json.loads(json.dumps(dumped)))
        assert fingerprint(respec) == fingerprint(spec)
        assert respec.budgets == spec.budgets
        assert respec.tolerance == spec.tolerance
        # And the dump is a fixed point: dump(load(dump(x))) == dump(x).
        assert dump_campaign(respec) == dumped

    def test_dump_survives_yaml_round_trip(self):
        yaml = pytest.importorskip("yaml")
        spec = compile_campaign(json.loads(json.dumps(DOC)))
        text = yaml.safe_dump(dump_campaign(spec), sort_keys=False)
        respec = loads_campaign(text, source="dumped.yaml")
        assert fingerprint(respec) == fingerprint(spec)

    def test_expansion_order_stable_across_reloads(self):
        names = None
        for _ in range(3):
            spec = compile_campaign(json.loads(json.dumps(DOC)))
            got = [s.name for s in spec.scenarios]
            if names is None:
                names = got
            assert got == names
        assert len(names) == 2 + 2 * 2 * 2

    def test_matrix_block_order_does_not_change_seeds(self):
        doc = json.loads(json.dumps(DOC))
        base = {s.name: s.seed for s in compile_campaign(doc).scenarios}
        # Swap the explicit scenarios and prepend another matrix block:
        # every pre-existing scenario keeps its exact seed.
        doc["scenarios"].reverse()
        doc["matrix"].insert(
            0, {"name": "extra", "axes": {"utilization": [0.3]}}
        )
        moved = {s.name: s.seed for s in compile_campaign(doc).scenarios}
        for name, seed in base.items():
            assert moved[name] == seed

    def test_seed_derivation_bit_identical_across_worker_counts(self):
        doc = json.loads(json.dumps(DOC))
        doc["scenarios"] = [
            {"name": "tiny", "utilization": 0.4, "duration": 3.0, "sites": 1}
        ]
        doc.pop("matrix")
        doc["budgets"] = {"retries": 0}
        spec = compile_campaign(doc)
        seq = run_campaign(spec, workers=1)
        par = run_campaign(spec, workers=2)
        assert seq.runs["tiny"] == par.runs["tiny"]
        assert seq.fingerprint() == par.fingerprint()

    def test_rerunning_a_reloaded_scenario_is_bit_identical(self):
        spec = compile_campaign(json.loads(json.dumps(DOC)))
        respec = compile_campaign(json.loads(json.dumps(dump_campaign(spec))))
        s0 = next(s for s in spec.scenarios if s.name == "explicit")
        s1 = next(s for s in respec.scenarios if s.name == "explicit")
        assert s0 == s1
        assert run_scenario(s0) == run_scenario(s1)
