"""Campaign runner: budgets, quarantine, resume, stats, golden diffs."""

import json

import pytest

from repro.campaign import (
    GoldenTolerance,
    campaign_stats,
    compile_campaign,
    diff_golden,
    load_golden,
    run_campaign,
    write_golden,
)


def tiny_doc(**overrides):
    doc = {
        "campaign": "runner-t",
        "seed": 13,
        "defaults": {"duration": 4.0, "sites": 1},
        "scenarios": [
            {"name": "s0", "utilization": 0.4},
            {"name": "s1", "utilization": 0.6},
        ],
        "budgets": {"retries": 0},
    }
    doc.update(overrides)
    return doc


class TestQuarantine:
    def test_invalid_config_quarantined_not_fatal(self):
        doc = tiny_doc()
        doc["scenarios"].insert(1, {"name": "bad", "rate_per_site": 99.0})
        result = run_campaign(compile_campaign(doc), workers=1)
        assert sorted(result.runs) == ["s0", "s1"]
        (q,) = result.quarantined
        assert (q.name, q.reason) == ("bad", "invalid-config")
        assert "diverges" in q.detail
        assert not result.ok

    def test_event_budget_quarantines_deterministically(self):
        doc = tiny_doc(budgets={"retries": 1, "max_events": 25})
        # Both scenarios generate far more than 25 events in 4s.
        results = [run_campaign(compile_campaign(doc), workers=1) for _ in range(2)]
        for result in results:
            assert result.runs == {}
            reasons = {(q.name, q.reason) for q in result.quarantined}
            assert reasons == {("s0", "failed"), ("s1", "failed")}
            for q in result.quarantined:
                assert "event budget" in q.detail
                assert q.attempts == 2  # bounded retries consumed
        assert results[0].fingerprint() == results[1].fingerprint()

    def test_generous_budget_changes_nothing(self):
        spec_free = compile_campaign(tiny_doc())
        spec_capped = compile_campaign(
            tiny_doc(budgets={"retries": 0, "max_events": 10_000_000})
        )
        free = run_campaign(spec_free, workers=1)
        capped = run_campaign(spec_capped, workers=1)
        assert free.runs == capped.runs

    def test_salvage_report_shape(self):
        doc = tiny_doc()
        doc["scenarios"].append({"name": "bad", "rate_per_site": 99.0})
        result = run_campaign(compile_campaign(doc), workers=1)
        report = result.salvage_report()
        assert report["campaign"] == "runner-t"
        assert report["succeeded"] == 2
        assert report["scenarios"] == 3
        assert report["quarantined"][0]["name"] == "bad"
        json.dumps(report)  # JSON-safe

    def test_experiment_result_envelope(self):
        result = run_campaign(compile_campaign(tiny_doc()), workers=1)
        env = result.to_experiment_result()
        assert env.name == "campaign:runner-t"
        assert len(env.tables["scenarios"]) == 2
        assert env.metadata["fingerprint"] == result.fingerprint()
        assert "2 scenario(s) ok" in env.text


class TestResume:
    def test_checkpoint_resume_bit_identical(self, tmp_path):
        journal = tmp_path / "camp.journal"
        spec = compile_campaign(tiny_doc())
        first = run_campaign(spec, workers=1, checkpoint=journal)
        second = run_campaign(spec, workers=1, checkpoint=journal, resume=True)
        assert second.fingerprint() == first.fingerprint()
        assert all(o.from_journal for o in second.outcomes)

    def test_resume_requires_existing_journal(self, tmp_path):
        spec = compile_campaign(tiny_doc())
        with pytest.raises(FileNotFoundError):
            run_campaign(spec, workers=1,
                         checkpoint=tmp_path / "nope.journal", resume=True)

    def test_edited_campaign_does_not_replay_stale_results(self, tmp_path):
        journal = tmp_path / "camp.journal"
        run_campaign(compile_campaign(tiny_doc()), workers=1, checkpoint=journal)
        edited = tiny_doc()
        edited["scenarios"][0]["utilization"] = 0.45  # content digest changes
        res = run_campaign(compile_campaign(edited), workers=1, checkpoint=journal)
        assert not any(o.from_journal for o in res.outcomes)


class TestStats:
    def test_counters_advance(self):
        stats = campaign_stats()
        stats.reset()
        doc = tiny_doc()
        doc["scenarios"].append({"name": "bad", "rate_per_site": 99.0})
        run_campaign(compile_campaign(doc), workers=1)
        snap = stats.snapshot()
        assert snap["scenarios"] == 3
        assert snap["executed"] == 2
        assert snap["succeeded"] == 2
        assert snap["quarantined"] == 1

    def test_observables_protocol(self):
        stats = campaign_stats()
        obs = stats.observables()
        assert set(obs) == set(stats.snapshot())
        assert all(callable(reader) for reader in obs.values())


class TestGolden:
    def test_write_load_diff_clean(self, tmp_path):
        result = run_campaign(compile_campaign(tiny_doc()), workers=1)
        path = write_golden(result, tmp_path / "expected.json")
        expected = load_golden(path)
        assert diff_golden(result, expected) == []

    def test_perturbed_metric_named_with_delta(self, tmp_path):
        result = run_campaign(compile_campaign(tiny_doc()), workers=1)
        path = write_golden(result, tmp_path / "expected.json")
        doc = json.loads(path.read_text())
        doc["scenarios"]["s1"]["metrics"]["edge_p95_ms"] += 0.5
        path.write_text(json.dumps(doc))
        drifts = diff_golden(result, load_golden(path))
        (d,) = drifts
        assert d.scenario == "s1"
        assert d.metric == "edge_p95_ms"
        assert d.delta == pytest.approx(-0.5)
        assert "drifted" in d.render()

    def test_tolerance_absorbs_small_drift(self, tmp_path):
        result = run_campaign(compile_campaign(tiny_doc()), workers=1)
        path = write_golden(result, tmp_path / "expected.json")
        doc = json.loads(path.read_text())
        doc["scenarios"]["s1"]["metrics"]["edge_p95_ms"] *= 1.0 + 1e-12
        path.write_text(json.dumps(doc))
        assert diff_golden(result, load_golden(path)) == []
        loose = GoldenTolerance(rtol=0.5)
        doc["scenarios"]["s1"]["metrics"]["edge_p95_ms"] *= 1.2
        path.write_text(json.dumps(doc))
        assert diff_golden(result, load_golden(path), loose) == []

    def test_missing_and_extra_scenarios_reported(self, tmp_path):
        result = run_campaign(compile_campaign(tiny_doc()), workers=1)
        path = write_golden(result, tmp_path / "expected.json")
        doc = json.loads(path.read_text())
        doc["scenarios"]["ghost"] = {"seed": 1, "metrics": {"x": 1.0}}
        del doc["scenarios"]["s0"]
        path.write_text(json.dumps(doc))
        drifts = diff_golden(result, load_golden(path))
        kinds = {(d.scenario, d.metric) for d in drifts}
        assert ("s0", "<scenario>") in kinds
        assert ("ghost", "<scenario>") in kinds

    def test_quarantine_set_change_is_drift(self, tmp_path):
        clean = run_campaign(compile_campaign(tiny_doc()), workers=1)
        path = write_golden(clean, tmp_path / "expected.json")
        doc = tiny_doc()
        doc["scenarios"].append({"name": "bad", "rate_per_site": 99.0})
        dirty = run_campaign(compile_campaign(doc), workers=1)
        drifts = diff_golden(dirty, load_golden(path))
        assert any(d.metric == "<quarantined:invalid-config>" for d in drifts)

    def test_load_golden_refuses_foreign_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"some": "file"}')
        with pytest.raises(ValueError):
            load_golden(path)
