"""End-to-end chaos drill for declarative campaigns.

The acceptance scenario for PR 7: a 51-scenario campaign carrying one
semantically-broken config, one event-budget hog and one chaos-killed
worker must finish with the two bad scenarios quarantined in the
salvage report and every other scenario bit-identical to an uninjected
sequential run; a campaign hard-killed mid-run must resume from its
checkpoint to an identical :class:`CampaignResult`; and the pinned
golden matrix must pass ``repro campaign --golden`` while a perturbed
expectation fails naming scenario, metric and delta.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign import compile_campaign, run_campaign
from repro.parallel.chaos import (
    CHAOS_EXIT_CODE,
    CHAOS_KILL_ENV,
    CHAOS_ONCE_DIR_ENV,
)

SRC = str(Path(__file__).resolve().parents[2] / "src")
REPO = str(Path(__file__).resolve().parents[2])

#: Runnable-order index of the scenario whose worker gets chaos-killed.
KILLED_INDEX = 10


def chaos_doc():
    """51 scenarios: 1 good + 1 invalid + 1 budget hog + 48 matrix."""
    utils = [0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85]
    return {
        "campaign": "chaos-drill",
        "seed": 4242,
        "defaults": {"duration": 2.0, "sites": 1},
        "scenarios": [
            {"name": "plain", "utilization": 0.5},
            # Semantically malformed: unstable open-loop rate with no
            # bound anywhere — quarantined as invalid-config, never run.
            {"name": "malformed", "rate_per_site": 99.0},
            # Valid but hungry: ~12k arrivals, far over the event budget.
            {
                "name": "hog",
                "rate_per_site": 40.0,
                "duration": 300.0,
                "queue_capacity": 4,
            },
        ],
        "matrix": [
            {
                "name": "grid",
                "axes": {
                    "utilization": utils,
                    "rtt": ["nearby", "typical", "distant"],
                    "arrival": ["poisson", "deterministic"],
                },
            }
        ],
        "budgets": {"max_events": 6000, "retries": 1},
    }


@pytest.fixture(scope="module")
def baseline():
    """Uninjected sequential run of the drill campaign."""
    for var in (CHAOS_KILL_ENV, CHAOS_ONCE_DIR_ENV):
        assert var not in os.environ
    return run_campaign(compile_campaign(chaos_doc()), workers=1)


class TestChaosCampaign:
    def test_campaign_is_big_enough(self):
        spec = compile_campaign(chaos_doc())
        assert len(spec.scenarios) >= 50

    def test_baseline_quarantines_only_the_bad_two(self, baseline):
        assert {(q.name, q.reason) for q in baseline.quarantined} == {
            ("malformed", "invalid-config"),
            ("hog", "failed"),
        }
        assert len(baseline.runs) == 49
        by_name = {q.name: q for q in baseline.quarantined}
        assert "diverges" in by_name["malformed"].detail
        assert "event budget" in by_name["hog"].detail

    def test_injected_crash_recovers_bit_identically(
        self, baseline, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(CHAOS_KILL_ENV, str(KILLED_INDEX))
        monkeypatch.setenv(CHAOS_ONCE_DIR_ENV, str(tmp_path))
        chaos = run_campaign(compile_campaign(chaos_doc()), workers=2)
        # The targeted attempt died exactly once ...
        killed = chaos.outcomes[KILLED_INDEX]
        assert killed.ok and killed.attempts == 2
        assert (tmp_path / f"crashed-{KILLED_INDEX}").exists()
        # ... and nothing observable differs from the uninjected run.
        assert chaos.runs == baseline.runs
        assert {(q.name, q.reason) for q in chaos.quarantined} == {
            (q.name, q.reason) for q in baseline.quarantined
        }
        assert chaos.fingerprint() == baseline.fingerprint()

    def test_salvage_report_names_the_bad_scenarios(self, baseline):
        report = baseline.salvage_report()
        assert report["succeeded"] == 49
        assert {q["name"] for q in report["quarantined"]} == {"malformed", "hog"}


class TestKillResume:
    def test_hard_kill_then_resume_is_identical(self, baseline, tmp_path):
        camp = tmp_path / "drill.json"
        camp.write_text(json.dumps(chaos_doc()))
        journal = tmp_path / "drill.journal"
        salvage = tmp_path / "salvage.json"
        base_env = {
            k: v
            for k, v in os.environ.items()
            if k not in (CHAOS_KILL_ENV, CHAOS_ONCE_DIR_ENV)
        }
        base_env["PYTHONPATH"] = SRC
        cli = [sys.executable, "-m", "repro", "campaign", str(camp),
               "--workers", "1", "--checkpoint", str(journal)]

        # First run dies mid-campaign via os._exit — the serial loop's
        # chaos point, indistinguishable from a SIGKILL at task 30.
        proc = subprocess.run(
            cli, env=dict(base_env, **{CHAOS_KILL_ENV: "30"}),
            capture_output=True, text=True, cwd=REPO, timeout=300,
        )
        assert proc.returncode == CHAOS_EXIT_CODE
        journal_lines = journal.read_text().splitlines()
        assert len(journal_lines) > 10  # header + a real completed prefix

        # Resume replays the journaled prefix and finishes the rest.
        proc = subprocess.run(
            cli + ["--resume", "--salvage-report", str(salvage)],
            env=base_env, capture_output=True, text=True, cwd=REPO,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        report = json.loads(salvage.read_text())
        assert report["fingerprint"] == baseline.fingerprint()
        assert report["succeeded"] == 49
        assert {q["name"] for q in report["quarantined"]} == {"malformed", "hog"}


class TestGoldenGateCLI:
    CAMPAIGN = os.path.join("scenarios", "golden", "campaign.yaml")
    EXPECTED = os.path.join("scenarios", "golden", "expected.json")

    @pytest.fixture(autouse=True)
    def _needs_yaml(self):
        pytest.importorskip("yaml")  # the pinned matrix is a YAML file

    def _run(self, golden_path):
        env = dict(os.environ, PYTHONPATH=SRC)
        return subprocess.run(
            [sys.executable, "-m", "repro", "campaign", self.CAMPAIGN,
             "--golden", str(golden_path)],
            env=env, capture_output=True, text=True, cwd=REPO, timeout=300,
        )

    def test_pinned_matrix_passes(self):
        proc = self._run(self.EXPECTED)
        assert proc.returncode == 0, proc.stderr
        assert "matches" in proc.stdout

    def test_perturbed_expectation_fails_naming_the_drift(self, tmp_path):
        doc = json.loads(Path(REPO, self.EXPECTED).read_text())
        name = sorted(doc["scenarios"])[0]
        doc["scenarios"][name]["metrics"]["edge_p95_ms"] += 1.0
        perturbed = tmp_path / "expected.json"
        perturbed.write_text(json.dumps(doc))
        proc = self._run(perturbed)
        assert proc.returncode == 1
        assert name in proc.stderr
        assert "edge_p95_ms" in proc.stderr
        assert "delta" in proc.stderr
