"""Schema/semantic validation and matrix expansion of campaign specs."""

import pytest

from repro.campaign.spec import (
    EXIT_PARSE,
    EXIT_SCHEMA,
    EXIT_SEMANTIC,
    CampaignValidationError,
    OutageSpec,
    ScenarioSpec,
    compile_campaign,
    scenario_seed,
)


def minimal(**overrides):
    doc = {
        "campaign": "t",
        "seed": 5,
        "scenarios": [{"name": "a", "utilization": 0.5, "duration": 10.0}],
    }
    doc.update(overrides)
    return doc


class TestSchemaValidation:
    def test_minimal_document_compiles(self):
        spec = compile_campaign(minimal())
        assert spec.name == "t"
        assert [s.name for s in spec.scenarios] == ["a"]
        assert spec.scenario_issues == ()

    def test_non_mapping_document_is_schema_error(self):
        with pytest.raises(CampaignValidationError) as ei:
            compile_campaign(["not", "a", "campaign"])
        assert ei.value.kind == "schema"
        assert ei.value.exit_code == EXIT_SCHEMA

    def test_unknown_campaign_field_named(self):
        with pytest.raises(CampaignValidationError) as ei:
            compile_campaign(minimal(scenrios=[]))
        assert any(i.path == "scenrios" for i in ei.value.issues)

    def test_unknown_scenario_field_has_full_path(self):
        doc = minimal()
        doc["scenarios"][0]["rate_per_sight"] = 3.0
        with pytest.raises(CampaignValidationError) as ei:
            compile_campaign(doc)
        assert any(i.path == "scenarios[0].rate_per_sight" for i in ei.value.issues)

    def test_bad_types_collected_not_first_only(self):
        doc = minimal()
        doc["scenarios"][0]["utilization"] = "high"
        doc["scenarios"][0]["sites"] = 2.5
        with pytest.raises(CampaignValidationError) as ei:
            compile_campaign(doc)
        paths = {i.path for i in ei.value.issues}
        assert "scenarios[0].utilization" in paths
        assert "scenarios[0].sites" in paths

    def test_utilization_range_is_open(self):
        doc = minimal()
        doc["scenarios"][0]["utilization"] = 1.0
        with pytest.raises(CampaignValidationError) as ei:
            compile_campaign(doc)
        assert ei.value.kind == "schema"

    def test_rtt_preset_and_explicit_are_exclusive(self):
        doc = minimal()
        doc["scenarios"][0].update({"rtt": "typical", "cloud_rtt_ms": 30.0})
        with pytest.raises(CampaignValidationError) as ei:
            compile_campaign(doc)
        assert any("not both" in i.message for i in ei.value.issues)

    def test_unknown_rtt_preset_lists_choices(self):
        doc = minimal()
        doc["scenarios"][0]["rtt"] = "mars"
        with pytest.raises(CampaignValidationError) as ei:
            compile_campaign(doc)
        assert any("nearby" in i.message for i in ei.value.issues)

    def test_line_map_attached_to_issues(self):
        doc = minimal()
        doc["scenarios"][0]["utilization"] = 2.0
        lines = {"scenarios[0].utilization": 14}
        with pytest.raises(CampaignValidationError) as ei:
            compile_campaign(doc, lines=lines, source="camp.yaml")
        issue = next(i for i in ei.value.issues if i.path == "scenarios[0].utilization")
        assert issue.line == 14
        assert "camp.yaml:14" in issue.render("camp.yaml")

    def test_empty_campaign_rejected(self):
        with pytest.raises(CampaignValidationError) as ei:
            compile_campaign({"campaign": "t", "scenarios": []})
        assert ei.value.exit_code == EXIT_SEMANTIC


class TestSemantics:
    def test_duplicate_names_are_campaign_level_semantic(self):
        doc = minimal()
        doc["scenarios"].append(dict(doc["scenarios"][0]))
        with pytest.raises(CampaignValidationError) as ei:
            compile_campaign(doc)
        assert ei.value.kind == "semantic"
        assert any("duplicate scenario name" in i.message for i in ei.value.issues)

    def test_rate_and_utilization_together_collected(self):
        doc = minimal()
        doc["scenarios"][0]["rate_per_site"] = 3.0
        spec = compile_campaign(doc)
        assert spec.invalid_names == ("a",)
        with pytest.raises(CampaignValidationError):
            spec.require_valid()

    def test_unstable_unbounded_rate_quarantinable(self):
        doc = minimal()
        doc["scenarios"][0] = {"name": "a", "rate_per_site": 40.0, "duration": 10.0}
        spec = compile_campaign(doc)
        assert spec.invalid_names == ("a",)
        (_, issues), = spec.scenario_issues
        assert "diverges" in issues[0].message

    def test_unstable_rate_fine_when_bounded(self):
        doc = minimal()
        doc["scenarios"][0] = {
            "name": "a", "rate_per_site": 40.0, "duration": 10.0,
            "queue_capacity": 10,
        }
        assert compile_campaign(doc).scenario_issues == ()

    def test_overlapping_outages_name_site_and_bounds(self):
        doc = minimal()
        doc["scenarios"][0]["failures"] = [
            {"start": 1.0, "duration": 3.0},
            {"start": 2.0, "duration": 1.0, "sites": [0]},
        ]
        spec = compile_campaign(doc)
        (_, issues), = spec.scenario_issues
        assert any("overlaps" in i.message and "site 0" in i.message for i in issues)

    def test_outage_site_index_out_of_range(self):
        doc = minimal()
        doc["scenarios"][0]["sites"] = 2
        doc["scenarios"][0]["failures"] = [{"start": 1.0, "duration": 1.0, "sites": [5]}]
        spec = compile_campaign(doc)
        (_, issues), = spec.scenario_issues
        assert any("out of range" in i.message for i in issues)

    def test_outage_past_duration_flagged(self):
        doc = minimal()
        doc["scenarios"][0]["failures"] = [{"start": 50.0, "duration": 1.0}]
        spec = compile_campaign(doc)
        assert spec.invalid_names == ("a",)


class TestMatrixExpansion:
    def test_cross_product_row_major_declaration_order(self):
        doc = {
            "campaign": "t",
            "matrix": {
                "name": "g",
                "axes": {"rtt": ["typical", "distant"], "utilization": [0.4, 0.6]},
            },
        }
        spec = compile_campaign(doc)
        assert [s.name for s in spec.scenarios] == [
            "g/rtt=typical,utilization=0.4",
            "g/rtt=typical,utilization=0.6",
            "g/rtt=distant,utilization=0.4",
            "g/rtt=distant,utilization=0.6",
        ]

    def test_explicit_scenarios_precede_matrix(self):
        doc = minimal(matrix={"axes": {"utilization": [0.4]}})
        spec = compile_campaign(doc)
        assert spec.scenarios[0].name == "a"
        assert spec.scenarios[1].name.startswith("matrix0/")

    def test_base_and_defaults_merge_under_axes(self):
        doc = {
            "campaign": "t",
            "defaults": {"duration": 7.0, "sites": 3},
            "matrix": {
                "name": "g",
                "axes": {"utilization": [0.4]},
                "base": {"sites": 4},
            },
        }
        (s,) = compile_campaign(doc).scenarios
        assert s.duration == 7.0   # from defaults
        assert s.sites == 4        # base overrides defaults
        assert s.utilization == 0.4

    def test_axis_must_be_scalar_scenario_field(self):
        doc = {"campaign": "t", "matrix": {"axes": {"failures": [[], []]}}}
        with pytest.raises(CampaignValidationError) as ei:
            compile_campaign(doc)
        assert ei.value.kind == "schema"

    def test_axis_values_must_be_scalars(self):
        doc = {"campaign": "t", "matrix": {"axes": {"utilization": [{"x": 1}]}}}
        with pytest.raises(CampaignValidationError):
            compile_campaign(doc)

    def test_matrix_name_collision_with_explicit_is_semantic(self):
        doc = {
            "campaign": "t",
            "scenarios": [{"name": "g/utilization=0.4", "utilization": 0.4}],
            "matrix": {"name": "g", "axes": {"utilization": [0.4]}},
        }
        with pytest.raises(CampaignValidationError) as ei:
            compile_campaign(doc)
        assert ei.value.kind == "semantic"


class TestSeeds:
    def test_seed_depends_on_name_not_position(self):
        doc = {
            "campaign": "t",
            "seed": 9,
            "scenarios": [
                {"name": "x", "utilization": 0.4},
                {"name": "y", "utilization": 0.4},
            ],
        }
        fwd = {s.name: s.seed for s in compile_campaign(doc).scenarios}
        doc["scenarios"].reverse()
        rev = {s.name: s.seed for s in compile_campaign(doc).scenarios}
        assert fwd == rev
        assert fwd["x"] != fwd["y"]

    def test_seed_matches_public_derivation(self):
        spec = compile_campaign(minimal())
        assert spec.scenarios[0].seed == scenario_seed(5, "a")

    def test_explicit_seed_wins(self):
        doc = minimal()
        doc["scenarios"][0]["seed"] = 1234
        assert compile_campaign(doc).scenarios[0].seed == 1234

    def test_campaign_seed_changes_all_scenario_seeds(self):
        a = compile_campaign(minimal(seed=1)).scenarios[0].seed
        b = compile_campaign(minimal(seed=2)).scenarios[0].seed
        assert a != b


class TestErrorTypes:
    def test_exit_codes_are_distinct(self):
        assert len({EXIT_PARSE, EXIT_SCHEMA, EXIT_SEMANTIC, 2, 0}) == 5

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            CampaignValidationError("weird", [])

    def test_outage_end_property(self):
        assert OutageSpec(1.0, 2.0).end == 3.0

    def test_scenario_spec_defaults_are_frozen(self):
        s = ScenarioSpec(name="x")
        with pytest.raises(AttributeError):
            s.name = "y"
