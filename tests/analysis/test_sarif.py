"""SARIF output: structure, baselineState, and vendored-schema validation."""

import json
from pathlib import Path

import pytest

from repro.analysis.baseline import Baseline, update_baseline
from repro.analysis.engine import Finding
from repro.analysis.sarif import render_sarif, rule_catalog, sarif_document

SCHEMA_PATH = Path(__file__).with_name("sarif-schema-min.json")


def validate(instance, schema, where="$"):
    """Tiny recursive validator for the vendored schema subset."""
    stype = schema.get("type")
    if stype == "object":
        assert isinstance(instance, dict), f"{where}: expected object"
        for key in schema.get("required", []):
            assert key in instance, f"{where}: missing required {key!r}"
        for key, sub in schema.get("properties", {}).items():
            if key in instance:
                validate(instance[key], sub, f"{where}.{key}")
    elif stype == "array":
        assert isinstance(instance, list), f"{where}: expected array"
        items = schema.get("items")
        if items:
            for i, element in enumerate(instance):
                validate(element, items, f"{where}[{i}]")
    elif stype == "string":
        assert isinstance(instance, str), f"{where}: expected string"
    elif stype == "integer":
        assert isinstance(instance, int) and not isinstance(instance, bool), \
            f"{where}: expected integer"
        if "minimum" in schema:
            assert instance >= schema["minimum"], f"{where}: below minimum"
    if "enum" in schema:
        assert instance in schema["enum"], f"{where}: {instance!r} not in enum"


def finding(code="RPR101", line=7, col=4, message="chain: a → b"):
    return Finding(
        path="src/repro/x.py", line=line, col=col, code=code, message=message
    )


class TestDocumentShape:
    def test_validates_against_vendored_schema(self):
        schema = json.loads(SCHEMA_PATH.read_text())
        doc = sarif_document([finding(), finding(code="RPR000")])
        validate(doc, schema)

    def test_validator_rejects_broken_document(self):
        schema = json.loads(SCHEMA_PATH.read_text())
        doc = sarif_document([finding()])
        del doc["runs"][0]["results"][0]["message"]
        with pytest.raises(AssertionError):
            validate(doc, schema)

    def test_columns_and_lines_are_one_based(self):
        doc = sarif_document([finding(line=7, col=0)])
        region = doc["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"]["region"]
        assert region["startLine"] == 7
        assert region["startColumn"] == 1

    def test_rule_catalog_covers_all_emittable_codes(self):
        codes = {code for code, _ in rule_catalog()}
        # Leaf rules, whole-program analyses, engine synthetics.
        for must in ("RPR001", "RPR012", "RPR013", "RPR101", "RPR102",
                     "RPR103", "RPR000", "RPR999"):
            assert must in codes

    def test_result_rule_index_points_at_its_rule(self):
        doc = sarif_document([finding()])
        run = doc["runs"][0]
        result = run["results"][0]
        rule = run["tool"]["driver"]["rules"][result["ruleIndex"]]
        assert rule["id"] == result["ruleId"]

    def test_levels(self):
        doc = sarif_document([finding(code="RPR000"), finding()])
        levels = {r["ruleId"]: r["level"] for r in doc["runs"][0]["results"]}
        assert levels["RPR000"] == "warning"
        assert levels["RPR101"] == "error"


class TestBaselineState:
    def test_unchanged_vs_new(self):
        known = finding(message="known issue")
        fresh = finding(message="fresh issue")
        baseline = update_baseline(Baseline(), [known])
        doc = sarif_document([known, fresh], baseline=baseline)
        states = {
            r["message"]["text"]: r["baselineState"]
            for r in doc["runs"][0]["results"]
        }
        assert states["known issue"] == "unchanged"
        assert states["fresh issue"] == "new"

    def test_no_baseline_no_state(self):
        doc = sarif_document([finding()])
        assert "baselineState" not in doc["runs"][0]["results"][0]


class TestRender:
    def test_render_is_valid_json_and_stable(self):
        out = render_sarif([finding()])
        assert json.loads(out)["version"] == "2.1.0"
        assert render_sarif([finding()]) == out
