"""Call-graph extraction and linking corner cases.

Fixture modules are written under a ``repro/...`` subtree of
``tmp_path`` so module derivation matches real source, then extracted
and linked exactly as the driver does it.
"""

import ast
import textwrap

from repro.analysis.callgraph import (
    DUCK_CAP,
    extract_module,
    link,
    render_chain,
    shortest_chains,
)
from repro.analysis.engine import _module_name


def build_graph(tmp_path, files):
    """Write ``{relpath: source}`` fixtures, extract, and link them."""
    summaries = []
    for rel, src in sorted(files.items()):
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(src))
        tree = ast.parse(path.read_text(), filename=str(path))
        summaries.append(extract_module(_module_name(path), str(path), tree))
    return link(summaries)


class TestDirectResolution:
    def test_module_level_call_edge(self, tmp_path):
        graph = build_graph(tmp_path, {"repro/app.py": """\
            def helper():
                return 1

            def main():
                return helper()
            """})
        assert "repro.app.helper" in graph.edges["repro.app.main"]

    def test_import_alias_resolution(self, tmp_path):
        graph = build_graph(tmp_path, {
            "repro/lib.py": """\
                def helper():
                    return 1
                """,
            "repro/app.py": """\
                from repro.lib import helper as h

                def main():
                    return h()
                """,
        })
        assert "repro.lib.helper" in graph.edges["repro.app.main"]

    def test_function_local_import_resolves(self, tmp_path):
        # Regression: `from repro.sim.runner import run_deployment` inside
        # a function body must bind like a top-level import.
        graph = build_graph(tmp_path, {
            "repro/lib.py": """\
                def helper():
                    return 1
                """,
            "repro/app.py": """\
                def main():
                    from repro.lib import helper
                    return helper()
                """,
        })
        assert "repro.lib.helper" in graph.edges["repro.app.main"]

    def test_reexport_through_package_init(self, tmp_path):
        graph = build_graph(tmp_path, {
            "repro/pkg/__init__.py": """\
                from repro.pkg.impl import helper
                """,
            "repro/pkg/impl.py": """\
                def helper():
                    return 1
                """,
            "repro/app.py": """\
                from repro.pkg import helper

                def main():
                    return helper()
                """,
        })
        assert "repro.pkg.impl.helper" in graph.edges["repro.app.main"]


class TestMethodResolution:
    def test_self_method(self, tmp_path):
        graph = build_graph(tmp_path, {"repro/app.py": """\
            class Worker:
                def run(self):
                    return self.step()

                def step(self):
                    return 1
            """})
        assert "repro.app.Worker.step" in graph.edges["repro.app.Worker.run"]

    def test_inherited_method_through_self(self, tmp_path):
        graph = build_graph(tmp_path, {"repro/app.py": """\
            class Base:
                def step(self):
                    return 1

            class Child(Base):
                def run(self):
                    return self.step()
            """})
        assert "repro.app.Base.step" in graph.edges["repro.app.Child.run"]

    def test_virtual_dispatch_includes_overrides(self, tmp_path):
        # A call through a typed receiver fans out to every subclass
        # override — the DispatchPolicy.choose shape.
        graph = build_graph(tmp_path, {"repro/app.py": """\
            class Policy:
                def choose(self):
                    raise NotImplementedError

            class RoundRobin(Policy):
                def choose(self):
                    return 0

            class Shortest(Policy):
                def choose(self):
                    return 1

            def dispatch(policy: Policy):
                return policy.choose()
            """})
        edges = graph.edges["repro.app.dispatch"]
        assert "repro.app.RoundRobin.choose" in edges
        assert "repro.app.Shortest.choose" in edges

    def test_self_attr_typed_from_init_param(self, tmp_path):
        # `self.policy = policy` with an annotated ctor param types the
        # attribute, so `self.policy.choose()` resolves.
        graph = build_graph(tmp_path, {"repro/app.py": """\
            class Policy:
                def choose(self):
                    return 0

            class Balancer:
                def __init__(self, policy: Policy):
                    self.policy = policy

                def route(self):
                    return self.policy.choose()
            """})
        assert "repro.app.Policy.choose" in graph.edges["repro.app.Balancer.route"]

    def test_constructor_edge(self, tmp_path):
        graph = build_graph(tmp_path, {"repro/app.py": """\
            class Station:
                def __init__(self):
                    self.n = 0

            def build():
                return Station()
            """})
        assert "repro.app.Station.__init__" in graph.edges["repro.app.build"]


class TestDecoratorsAndPartials:
    def test_decorated_function_resolves(self, tmp_path):
        graph = build_graph(tmp_path, {"repro/app.py": """\
            import functools

            def deco(fn):
                @functools.wraps(fn)
                def wrapper(*a, **k):
                    return fn(*a, **k)
                return wrapper

            @deco
            def helper():
                return 1

            def main():
                return helper()
            """})
        assert "repro.app.helper" in graph.edges["repro.app.main"]

    def test_partial_argument_descriptor(self, tmp_path):
        graph = build_graph(tmp_path, {"repro/app.py": """\
            from functools import partial

            def worker(k, item):
                return k * item

            def main(tasks):
                return run_tasks(partial(worker, 3), tasks)
            """})
        _, fn = graph.functions["repro.app.main"]
        descriptors = [c.fn_arg for c in fn.calls if c.fn_arg]
        assert "partial:name:worker" in descriptors


class TestDynamicDispatchFallback:
    def test_duck_typing_under_cap(self, tmp_path):
        # An untyped receiver's method call falls back to name matching
        # when few project methods share the name.
        graph = build_graph(tmp_path, {"repro/app.py": """\
            class Station:
                def submit(self):
                    return 1

            def feed(target):
                return target.submit()
            """})
        assert "repro.app.Station.submit" in graph.edges["repro.app.feed"]

    def test_unknown_warn_once_over_cap(self, tmp_path):
        classes = "\n".join(
            f"class C{i}:\n    def frob(self):\n        return {i}\n"
            for i in range(DUCK_CAP + 1)
        )
        graph = build_graph(tmp_path, {"repro/app.py": classes + """
def first(x):
    return x.frob()

def second(y):
    return y.frob()
"""})
        # Too many candidates: no edges, one warn entry for both sites.
        assert graph.edges["repro.app.first"] == []
        assert graph.edges["repro.app.second"] == []
        assert list(graph.unknown) == ["frob"]
        caller, _line = graph.unknown["frob"]
        assert caller == "repro.app.first"

    def test_external_receiver_not_reported(self, tmp_path):
        graph = build_graph(tmp_path, {"repro/app.py": """\
            import argparse

            def main():
                p = argparse.ArgumentParser()
                return p.parse_args()
            """})
        assert graph.unknown == {}


class TestReachability:
    def test_shortest_chain_renders_interprocedurally(self, tmp_path):
        graph = build_graph(tmp_path, {"repro/app.py": """\
            def c():
                return 1

            def b():
                return c()

            def a():
                return b()
            """})
        chains = shortest_chains(graph, ["repro.app.a"])
        assert chains["repro.app.c"] == [
            "repro.app.a", "repro.app.b", "repro.app.c",
        ]
        assert render_chain(chains["repro.app.c"]) == "a → b → c"

    def test_fnmatch_root_patterns(self, tmp_path):
        graph = build_graph(tmp_path, {"repro/app.py": """\
            def simulate_x():
                return helper()

            def helper():
                return 1
            """})
        chains = shortest_chains(graph, ["repro.app.simulate_*"])
        assert "repro.app.helper" in chains

    def test_observables_dict_value_is_reachable(self, tmp_path):
        # The observables() protocol returns callables in a dict; they
        # must count as potential calls of the returning function.
        graph = build_graph(tmp_path, {"repro/app.py": """\
            def probe():
                return 1

            def observables():
                return {"occupancy": probe}
            """})
        assert "repro.app.probe" in graph.edges["repro.app.observables"]

    def test_scheduler_callback_is_reachable(self, tmp_path):
        # `sim.schedule(gap, self._fire)` passes a bound method as an
        # argument — a ref edge, not a call, but still reachable.
        graph = build_graph(tmp_path, {"repro/app.py": """\
            class Source:
                def start(self, sim):
                    sim.schedule(0.1, self._fire)

                def _fire(self):
                    return 1
            """})
        assert "repro.app.Source._fire" in graph.edges["repro.app.Source.start"]
