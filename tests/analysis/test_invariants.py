"""Runtime invariant checker: env gating, engine wiring, violation capture.

The acceptance case from the issue lives here: a deliberately broken
request-conservation identity (a swallowed completion) must be caught
under ``REPRO_CHECK=1``, and results must be bit-identical with checks
on or off.
"""

from itertools import count

import pytest

from repro.analysis.invariants import (
    ENV_FLAG,
    InvariantChecker,
    InvariantViolation,
    checker_for_new_simulation,
    checks_enabled,
)
from repro.obs import Telemetry
from repro.queueing.distributions import Deterministic
from repro.sim.engine import Simulation
from repro.sim.request import Request
from repro.sim.station import Station

DURATION = 20.0


def drive(sim, station, rate=2.0):
    """Poisson arrivals into ``station`` until DURATION (virtual)."""
    rng = sim.spawn_rng()
    ids = count()

    def gen():
        if sim.now < DURATION:
            station.arrive(Request(next(ids), created=sim.now))
            sim.schedule(rng.exponential(1.0 / rate), gen)

    sim.schedule(0.0, gen)


class TestEnvGating:
    @pytest.mark.parametrize("value", ["", "0", "false", "no", "False", "NO"])
    def test_off_values(self, monkeypatch, value):
        monkeypatch.setenv(ENV_FLAG, value)
        assert not checks_enabled()
        assert checker_for_new_simulation() is None

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on"])
    def test_on_values(self, monkeypatch, value):
        monkeypatch.setenv(ENV_FLAG, value)
        assert checks_enabled()
        assert isinstance(checker_for_new_simulation(), InvariantChecker)

    def test_unset_is_off(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        assert not checks_enabled()

    def test_simulation_carries_no_checker_when_off(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        assert Simulation(1).invariants is None

    def test_simulation_carries_checker_when_on(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        sim = Simulation(1)
        assert isinstance(sim.invariants, InvariantChecker)


class TestCheckerUnits:
    def test_event_time_rewind_raises(self):
        checker = InvariantChecker()
        checker.check_event_time(5.0, 5.0)  # equal is fine
        with pytest.raises(InvariantViolation, match="rewind"):
            checker.check_event_time(4.0, 5.0)

    def test_handler_moved_clock_raises(self):
        checker = InvariantChecker()
        checker.check_handler_left_clock(3.0, 3.0)  # untouched is fine
        with pytest.raises(InvariantViolation, match="moved the clock"):
            checker.check_handler_left_clock(3.0, 7.0)

    def test_checks_counter_increments(self):
        checker = InvariantChecker()
        checker.check_stations()
        checker.check_stations()
        assert checker.checks == 2


class TestEngineIntegration:
    def test_clean_run_passes_and_checkpoints(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        sim = Simulation(7)
        st = Station(sim, 2, service_dist=Deterministic(0.3))
        drive(sim, st)
        sim.run()
        assert st.arrivals > 0
        assert sim.invariants.checks >= 1

    def test_handler_writing_now_is_caught(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        sim = Simulation(7)

        def rogue():
            sim.now = 99.0  # repro: noqa[RPR008] -- the violation under test

        sim.schedule(1.0, rogue)
        with pytest.raises(InvariantViolation, match="RPR008"):
            sim.run()

    def test_swallowed_completion_is_caught(self, monkeypatch):
        # The issue's acceptance case: break conservation mid-run by
        # dropping a completion from the books; the run-end checkpoint
        # must refuse to let the run report anything.
        monkeypatch.setenv(ENV_FLAG, "1")
        sim = Simulation(7)
        st = Station(sim, 2, service_dist=Deterministic(0.3))
        drive(sim, st)

        def swallow():
            assert st.completions > 0, "tamper scheduled before any completion"
            st.completions -= 1

        sim.schedule(DURATION / 2, swallow)
        with pytest.raises(InvariantViolation, match="conservation"):
            sim.run()

    def test_negative_occupancy_is_caught(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        sim = Simulation(7)
        st = Station(sim, 1, service_dist=Deterministic(0.1))
        st._busy = -1
        with pytest.raises(InvariantViolation, match="negative"):
            sim.invariants.check_stations()


class TestWindowedCheckpoints:
    def test_every_window_boundary_checks(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        sim = Simulation(7, telemetry=Telemetry(window=1.0, spans=False))
        st = Station(sim, 2, service_dist=Deterministic(0.3))
        drive(sim, st)
        sim.run()
        # One checkpoint per telemetry window plus the run-end one.
        assert sim.invariants.checks >= sim.telemetry.windows.windows_emitted
        assert sim.telemetry.windows.windows_emitted >= int(DURATION) - 1

    def test_windowed_tamper_caught_before_run_end(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        sim = Simulation(7, telemetry=Telemetry(window=1.0, spans=False))
        st = Station(sim, 2, service_dist=Deterministic(0.3))
        drive(sim, st)
        sim.schedule(DURATION / 2, lambda: setattr(st, "arrivals", st.arrivals + 5))
        with pytest.raises(InvariantViolation, match="telemetry window"):
            sim.run()


class TestZeroCostContract:
    def _latencies(self, seed):
        sim = Simulation(seed)
        lat = []
        st = Station(
            sim, 2, service_dist=Deterministic(0.3),
            on_departure=lambda r: lat.append((r.rid, sim.now)),
        )
        drive(sim, st)
        end = sim.run()
        return lat, end, st.arrivals, st.completions

    def test_results_bit_identical_with_checks_on_and_off(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        off = self._latencies(42)
        monkeypatch.setenv(ENV_FLAG, "1")
        on = self._latencies(42)
        assert on == off
