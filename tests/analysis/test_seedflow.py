"""Seed-flow checking (RPR103): combined, reused and dropped derivations."""

from repro.analysis.seedflow import check_seedflow
from tests.analysis.test_callgraph import build_graph


def seedflow(tmp_path, source):
    return check_seedflow(build_graph(tmp_path, {"repro/app.py": source}))


class TestCombined:
    def test_derivation_inside_arithmetic(self, tmp_path):
        findings = seedflow(tmp_path, """\
            from repro.parallel.seeding import derive_seed

            def main(base, i):
                return derive_seed(base, i) + 1
            """)
        assert [f.code for f in findings] == ["RPR103"]
        assert "arithmetically combined" in findings[0].message

    def test_derived_variable_in_arithmetic(self, tmp_path):
        findings = seedflow(tmp_path, """\
            from repro.parallel.seeding import derive_seed

            def main(base, i):
                s = derive_seed(base, i)
                return s * 2
            """)
        assert [f.code for f in findings] == ["RPR103"]
        assert "'s'" in findings[0].message

    def test_derived_variable_used_cleanly(self, tmp_path):
        findings = seedflow(tmp_path, """\
            from repro.parallel.seeding import derive_seed

            def main(base, i):
                s = derive_seed(base, i)
                return consume(s)

            def consume(s):
                return s
            """)
        assert findings == []


class TestReused:
    def test_identical_derivation_twice(self, tmp_path):
        findings = seedflow(tmp_path, """\
            from repro.parallel.seeding import derive_seed

            def main(base, i):
                a = derive_seed(base, i)
                b = derive_seed(base, i)
                return a, b
            """)
        assert [f.code for f in findings] == ["RPR103"]
        assert "identical arguments" in findings[0].message

    def test_distinct_paths_ok(self, tmp_path):
        findings = seedflow(tmp_path, """\
            from repro.parallel.seeding import derive_seed

            def main(base, i):
                a = derive_seed(base, i, 0)
                b = derive_seed(base, i, 1)
                return a, b
            """)
        assert findings == []

    def test_reuse_across_functions_not_flagged(self, tmp_path):
        # Different functions may legitimately re-derive the same stream
        # (replay); only same-function siblings are suspicious.
        findings = seedflow(tmp_path, """\
            from repro.parallel.seeding import derive_seed

            def first(base):
                return derive_seed(base, 0)

            def second(base):
                return derive_seed(base, 0)
            """)
        assert findings == []


class TestDropped:
    def test_statement_position_derivation(self, tmp_path):
        findings = seedflow(tmp_path, """\
            from repro.parallel.seeding import derive_seed

            def main(base, i):
                derive_seed(base, i)
                return 1
            """)
        assert [f.code for f in findings] == ["RPR103"]
        assert "discarded" in findings[0].message

    def test_derivation_as_argument_ok(self, tmp_path):
        findings = seedflow(tmp_path, """\
            from repro.parallel.seeding import derive_seed

            def main(base, i):
                return consume(derive_seed(base, i))

            def consume(s):
                return s
            """)
        assert findings == []
