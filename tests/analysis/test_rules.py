"""Per-rule fixtures: one true positive and one true negative each.

Fixture files are written under a ``repro/...`` subtree of ``tmp_path``
so the engine's module derivation scopes them exactly like real source
(``repro.sim.foo`` and friends).
"""

import textwrap

from repro.analysis.engine import analyze_file


def check_source(tmp_path, relpath, source):
    """Write ``source`` at ``relpath`` under tmp_path and analyze it."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return analyze_file(path)


def codes(findings):
    return [f.code for f in findings]


class TestWallClockRule:
    def test_flags_time_time_in_sim(self, tmp_path):
        findings = check_source(tmp_path, "repro/sim/bad.py", """\
            import time

            def handler():
                return time.time()
            """)
        assert codes(findings) == ["RPR001"]
        assert "wall-clock" in findings[0].message

    def test_flags_global_random_module(self, tmp_path):
        findings = check_source(tmp_path, "repro/queueing/bad.py", """\
            import random

            def draw():
                return random.random()
            """)
        assert codes(findings) == ["RPR001"]

    def test_flags_legacy_numpy_global(self, tmp_path):
        findings = check_source(tmp_path, "repro/sim/bad.py", """\
            import numpy as np

            def draw():
                return np.random.exponential(1.0)
            """)
        assert codes(findings) == ["RPR001"]

    def test_flags_unseeded_default_rng_everywhere(self, tmp_path):
        findings = check_source(tmp_path, "repro/experiments/bad.py", """\
            import numpy as np

            rng = np.random.default_rng()
            """)
        assert codes(findings) == ["RPR001"]
        assert "unseeded" in findings[0].message

    def test_clean_seeded_streams(self, tmp_path):
        findings = check_source(tmp_path, "repro/sim/good.py", """\
            import numpy as np

            def draw(seedseq):
                rng = np.random.default_rng(seedseq)
                return rng.exponential(1.0)
            """)
        assert findings == []

    def test_wall_clock_allowed_outside_sim_packages(self, tmp_path):
        # Timing experiment wall-clock (benchmarks, CLI) is legitimate.
        findings = check_source(tmp_path, "repro/experiments/timing.py", """\
            import time

            def stopwatch():
                return time.perf_counter()
            """)
        assert findings == []


class TestSeedArithmeticRule:
    def test_flags_seed_offset(self, tmp_path):
        findings = check_source(tmp_path, "repro/experiments/bad.py", """\
            def runs(base_seed, n):
                return [base_seed + 1000 * i for i in range(n)]
            """)
        assert codes(findings) == ["RPR002"]

    def test_nested_arithmetic_reported_once(self, tmp_path):
        findings = check_source(tmp_path, "repro/experiments/bad.py", """\
            def child(seed, i, protected):
                return seed + 100 * i + (7 if protected else 0)
            """)
        assert codes(findings) == ["RPR002"]

    def test_clean_derive_seed(self, tmp_path):
        findings = check_source(tmp_path, "repro/experiments/good.py", """\
            from repro.parallel.seeding import derive_seed

            def runs(base_seed, n):
                return [derive_seed(base_seed, i) for i in range(n)]
            """)
        assert findings == []

    def test_seeding_module_itself_exempt(self, tmp_path):
        findings = check_source(tmp_path, "repro/parallel/seeding.py", """\
            def mix(seed):
                return (seed * 6364136223846793005 + 1) % 2**64
            """)
        assert findings == []


class TestMillisecondSmellRule:
    def test_flags_large_literal_into_latency(self, tmp_path):
        findings = check_source(tmp_path, "repro/sim/bad.py", """\
            cloud_latency = 24000
            """)
        assert codes(findings) == ["RPR003"]

    def test_flags_ms_name_into_seconds_keyword(self, tmp_path):
        findings = check_source(tmp_path, "repro/experiments/bad.py", """\
            def build(make, rtt_ms):
                return make(rtt=rtt_ms)
            """)
        assert codes(findings) == ["RPR003"]

    def test_clean_converted_at_boundary(self, tmp_path):
        findings = check_source(tmp_path, "repro/experiments/good.py", """\
            def build(make, rtt_ms):
                cloud_rtt = rtt_ms / 1000.0
                return make(rtt=cloud_rtt)
            """)
        assert findings == []

    def test_ms_suffixed_target_is_fine(self, tmp_path):
        findings = check_source(tmp_path, "repro/core/good.py", """\
            cloud_rtt_ms = 24000
            """)
        assert findings == []


class TestObservablesProtocolRule:
    def test_flags_non_dict_return(self, tmp_path):
        findings = check_source(tmp_path, "repro/obs/bad.py", """\
            class Gauge:
                def observables(self):
                    return ["busy"]
            """)
        assert codes(findings) == ["RPR004"]

    def test_flags_constant_value_and_extra_args(self, tmp_path):
        findings = check_source(tmp_path, "repro/obs/bad.py", """\
            class Gauge:
                def observables(self, prefix):
                    return {"busy": 3}
            """)
        assert codes(findings) == ["RPR004", "RPR004"]

    def test_clean_protocol_conformant(self, tmp_path):
        findings = check_source(tmp_path, "repro/obs/good.py", """\
            class Gauge:
                def observables(self):
                    return {"busy": lambda: self._busy, "queue": self.depth}
            """)
        assert findings == []


class TestRunTasksPicklableRule:
    def test_flags_lambda(self, tmp_path):
        findings = check_source(tmp_path, "repro/experiments/bad.py", """\
            from repro.parallel import run_tasks

            def sweep(tasks):
                return run_tasks(lambda x: x + 1, tasks, workers=4)
            """)
        assert codes(findings) == ["RPR005"]

    def test_flags_nested_function(self, tmp_path):
        findings = check_source(tmp_path, "repro/experiments/bad.py", """\
            from repro.parallel import run_tasks

            def sweep(tasks):
                def cell(x):
                    return x + 1
                return run_tasks(cell, tasks, workers=4)
            """)
        assert codes(findings) == ["RPR005"]
        assert "cell" in findings[0].message

    def test_clean_module_level_function(self, tmp_path):
        findings = check_source(tmp_path, "repro/experiments/good.py", """\
            from repro.parallel import run_tasks

            def cell(x):
                return x + 1

            def sweep(tasks):
                return run_tasks(cell, tasks, workers=4)
            """)
        assert findings == []


class TestMutableDefaultRule:
    def test_flags_list_literal_default(self, tmp_path):
        findings = check_source(tmp_path, "repro/sim/bad.py", """\
            def record(value, log=[]):
                log.append(value)
                return log
            """)
        assert codes(findings) == ["RPR006"]

    def test_flags_dict_call_default(self, tmp_path):
        findings = check_source(tmp_path, "repro/stats/bad.py", """\
            def tally(key, counts=dict()):
                counts[key] = counts.get(key, 0) + 1
                return counts
            """)
        assert codes(findings) == ["RPR006"]

    def test_clean_none_default(self, tmp_path):
        findings = check_source(tmp_path, "repro/sim/good.py", """\
            def record(value, log=None):
                log = [] if log is None else log
                log.append(value)
                return log
            """)
        assert findings == []

    def test_scope_is_repro_only(self, tmp_path):
        findings = check_source(tmp_path, "scripts/helper.py", """\
            def record(value, log=[]):
                log.append(value)
                return log
            """)
        assert findings == []


class TestSetIterationRule:
    def test_flags_for_over_set_literal(self, tmp_path):
        findings = check_source(tmp_path, "repro/sim/bad.py", """\
            def visit(a, b, c):
                for station in {a, b, c}:
                    station.poke()
            """)
        assert codes(findings) == ["RPR007"]

    def test_flags_comprehension_over_set_call(self, tmp_path):
        findings = check_source(tmp_path, "repro/sim/bad.py", """\
            def names(stations):
                return [s.name for s in set(stations)]
            """)
        assert codes(findings) == ["RPR007"]

    def test_clean_sorted_iteration(self, tmp_path):
        findings = check_source(tmp_path, "repro/sim/good.py", """\
            def names(stations):
                return [s.name for s in sorted(set(stations), key=lambda s: s.name)]
            """)
        assert findings == []

    def test_sets_fine_outside_sim(self, tmp_path):
        findings = check_source(tmp_path, "repro/stats/good.py", """\
            def union(groups):
                out = []
                for g in {frozenset(g) for g in groups}:
                    out.append(g)
                return out
            """)
        assert findings == []


class TestAtomicStoreWriteRule:
    def test_flags_buffered_open_write(self, tmp_path):
        findings = check_source(tmp_path, "repro/experiments/store/bad.py", """\
            def save(path, line):
                with open(path, "w") as fh:
                    fh.write(line)
            """)
        assert codes(findings) == ["RPR009"]
        assert "fsync_append" in findings[0].message

    def test_flags_append_mode_and_mode_keyword(self, tmp_path):
        findings = check_source(tmp_path, "repro/experiments/store/bad.py", """\
            def save(path, line):
                with open(path, "a") as fh:
                    fh.write(line)

            def save2(path, line):
                with open(path, mode="r+") as fh:
                    fh.write(line)
            """)
        assert codes(findings) == ["RPR009", "RPR009"]

    def test_flags_path_write_text(self, tmp_path):
        findings = check_source(tmp_path, "repro/experiments/store/bad.py", """\
            def save(path, text):
                path.write_text(text)
            """)
        assert codes(findings) == ["RPR009"]
        assert "write_text" in findings[0].message

    def test_clean_reads_and_raw_os_writes(self, tmp_path):
        # The sanctioned pattern: os.open + single os.write + os.fsync
        # (what fsync_append does), plus ordinary reads.
        findings = check_source(tmp_path, "repro/experiments/store/good.py", """\
            import os

            def fsync_append(fd, line):
                os.write(fd, line.encode("utf-8"))
                os.fsync(fd)

            def load(path):
                with open(path) as fh:
                    return fh.readlines()

            def load_mode(path):
                with open(path, "rb") as fh:
                    return fh.read()
            """)
        assert findings == []

    def test_buffered_writes_fine_outside_store(self, tmp_path):
        # Figure outputs, BENCH json etc. legitimately use plain writes.
        findings = check_source(tmp_path, "repro/experiments/figures_io.py", """\
            def dump(path, text):
                with open(path, "w") as fh:
                    fh.write(text)
                path.write_text(text)
            """)
        assert findings == []


class TestVirtualTimeMutationRule:
    def test_flags_direct_now_write(self, tmp_path):
        findings = check_source(tmp_path, "repro/sim/bad.py", """\
            def fast_forward(sim, dt):
                sim.now = sim.now + dt
            """)
        assert codes(findings) == ["RPR008"]

    def test_flags_augmented_write(self, tmp_path):
        findings = check_source(tmp_path, "repro/experiments/bad.py", """\
            def fast_forward(sim, dt):
                sim.now += dt
            """)
        assert codes(findings) == ["RPR008"]

    def test_engine_module_exempt(self, tmp_path):
        findings = check_source(tmp_path, "repro/sim/engine.py", """\
            class Simulation:
                def run(self):
                    self.now = 1.0
            """)
        assert findings == []

    def test_reading_now_is_fine(self, tmp_path):
        findings = check_source(tmp_path, "repro/sim/good.py", """\
            def deadline_left(sim, deadline):
                return deadline - sim.now
            """)
        assert findings == []


class TestCampaignLoaderSafetyRule:
    def test_flags_yaml_load_without_safe_loader(self, tmp_path):
        findings = check_source(tmp_path, "repro/campaign/bad.py", """\
            import yaml

            def read(text):
                return yaml.load(text)
            """)
        assert codes(findings) == ["RPR010"]
        assert "SafeLoader" in findings[0].message

    def test_flags_yaml_load_with_full_loader(self, tmp_path):
        findings = check_source(tmp_path, "repro/campaign/bad.py", """\
            import yaml

            def read(text):
                return yaml.load(text, Loader=yaml.FullLoader)
            """)
        assert codes(findings) == ["RPR010"]

    def test_flags_full_load_and_unsafe_load(self, tmp_path):
        findings = check_source(tmp_path, "repro/campaign/bad.py", """\
            import yaml

            def read(text):
                a = yaml.full_load(text)
                b = yaml.unsafe_load(text)
                return a, b
            """)
        assert codes(findings) == ["RPR010", "RPR010"]

    def test_flags_eval_and_pickle_loads(self, tmp_path):
        findings = check_source(tmp_path, "repro/campaign/bad.py", """\
            import pickle

            def expand(expr, blob):
                return eval(expr), pickle.loads(blob)
            """)
        assert codes(findings) == ["RPR010", "RPR010"]

    def test_flags_set_iteration_in_expansion(self, tmp_path):
        findings = check_source(tmp_path, "repro/campaign/bad.py", """\
            def expand(axes):
                return [axis for axis in set(axes)]
            """)
        assert codes(findings) == ["RPR010"]
        assert "order varies" in findings[0].message

    def test_safe_compose_and_sorted_iteration_pass(self, tmp_path):
        findings = check_source(tmp_path, "repro/campaign/good.py", """\
            import json
            import yaml

            def read(text):
                node = yaml.compose(text, Loader=yaml.SafeLoader)
                data = yaml.safe_load(text)
                return node, data, json.loads(text)

            def expand(axes):
                return [a for a in sorted(set(axes))]
            """)
        assert findings == []

    def test_unsafe_yaml_fine_outside_campaign(self, tmp_path):
        # The rule is scoped: other packages are governed by their own
        # rules, not the campaign loading contract.
        findings = check_source(tmp_path, "repro/experiments/other.py", """\
            import yaml

            def read(text):
                return yaml.load(text)
            """)
        assert findings == []


class TestResultSerializationRule:
    def test_flags_raw_dumps_of_result_objects(self, tmp_path):
        findings = check_source(tmp_path, "repro/experiments/bad.py", """\
            import json

            def persist(result, path):
                path.write_text(json.dumps(result.as_dict(), indent=2))
            """)
        assert codes(findings) == ["RPR011"]
        assert "repro.experiments.schema" in findings[0].message

    def test_flags_json_dump_of_salvage_report(self, tmp_path):
        findings = check_source(tmp_path, "repro/campaign/bad.py", """\
            import json

            def persist(result, fh):
                json.dump(result.salvage_report(), fh)
            """)
        assert codes(findings) == ["RPR011"]

    def test_schema_module_itself_is_exempt(self, tmp_path):
        findings = check_source(
            tmp_path, "repro/experiments/schema.py", """\
            import json

            def dumps(obj):
                return json.dumps(obj.as_dict(), sort_keys=True)
            """)
        assert findings == []

    def test_plain_payloads_pass(self, tmp_path):
        findings = check_source(tmp_path, "repro/service/good.py", """\
            import json

            def send(doc, extra):
                return json.dumps(doc) + json.dumps({"n": len(extra)})
            """)
        assert findings == []

    def test_outside_repro_is_unscoped(self, tmp_path):
        findings = check_source(tmp_path, "scripts/tool.py", """\
            import json

            def persist(result):
                return json.dumps(result.as_dict())
            """)
        assert findings == []


class TestExactTimeEqualityRule:
    def test_flags_equality_between_time_values(self, tmp_path):
        findings = check_source(tmp_path, "repro/sim/bad.py", """\
            def same_instant(now, deadline):
                return now == deadline
            """)
        assert "RPR012" in codes(findings)
        assert "tolerance" in findings[0].message

    def test_flags_inequality_against_literal(self, tmp_path):
        findings = check_source(tmp_path, "repro/core/bad.py", """\
            def check(latency):
                return latency != 0.005
            """)
        assert codes(findings) == ["RPR012"]

    def test_zero_sentinel_exempt(self, tmp_path):
        findings = check_source(tmp_path, "repro/sim/ok.py", """\
            def unset(deadline):
                return deadline == 0.0
            """)
        assert codes(findings) == []

    def test_inf_and_none_sentinels_exempt(self, tmp_path):
        findings = check_source(tmp_path, "repro/sim/ok2.py", """\
            import math

            def unbounded(deadline, rtt):
                return deadline == math.inf or rtt == float("inf")
            """)
        assert codes(findings) == []

    def test_non_time_names_exempt(self, tmp_path):
        findings = check_source(tmp_path, "repro/sim/ok3.py", """\
            def compare(count, limit):
                return count == limit
            """)
        assert codes(findings) == []

    def test_tolerant_comparison_exempt(self, tmp_path):
        findings = check_source(tmp_path, "repro/sim/ok4.py", """\
            def close(now, deadline):
                return abs(now - deadline) < 1e-9
            """)
        assert codes(findings) == []

    def test_tests_tree_not_in_scope(self, tmp_path):
        findings = check_source(tmp_path, "tests/sim/test_x.py", """\
            def assert_instant(now, deadline):
                assert now == deadline
            """)
        assert codes(findings) == []


class TestExceptionSwallowRule:
    def test_flags_except_exception_pass(self, tmp_path):
        findings = check_source(tmp_path, "repro/service/bad.py", """\
            def poll(queue):
                try:
                    return queue.get()
                except Exception:
                    pass
            """)
        assert codes(findings) == ["RPR013"]
        assert "silent" in findings[0].message

    def test_flags_bare_except_continue(self, tmp_path):
        findings = check_source(tmp_path, "repro/parallel/supervise.py", """\
            def drain(items):
                for item in items:
                    try:
                        item.close()
                    except:  # noqa: E722 fixture
                        continue
            """)
        assert codes(findings) == ["RPR013"]
        assert "bare except" in findings[0].message

    def test_flags_bare_return_none(self, tmp_path):
        findings = check_source(tmp_path, "repro/service/bad2.py", """\
            def fetch(job):
                try:
                    return job.result()
                except BaseException:
                    return None
            """)
        assert codes(findings) == ["RPR013"]

    def test_handler_that_reraises_ok(self, tmp_path):
        findings = check_source(tmp_path, "repro/service/ok.py", """\
            def fetch(job):
                try:
                    return job.result()
                except Exception as exc:
                    raise RuntimeError("job failed") from exc
            """)
        assert codes(findings) == []

    def test_handler_that_records_ok(self, tmp_path):
        findings = check_source(tmp_path, "repro/parallel/supervise.py", """\
            def drain(items, report):
                for item in items:
                    try:
                        item.close()
                    except Exception as exc:
                        report.append(exc)
            """)
        assert codes(findings) == []

    def test_narrow_exception_ok(self, tmp_path):
        findings = check_source(tmp_path, "repro/service/ok2.py", """\
            import os

            def cleanup(path):
                try:
                    os.unlink(path)
                except FileNotFoundError:
                    pass
            """)
        assert codes(findings) == []

    def test_out_of_scope_package_ok(self, tmp_path):
        findings = check_source(tmp_path, "repro/sim/engine_x.py", """\
            def probe(fn):
                try:
                    return fn()
                except Exception:
                    pass
            """)
        assert codes(findings) == []
