"""Baseline lifecycle: add, match, prune, justification preservation."""

import json

from repro.analysis.baseline import (
    TODO_JUSTIFICATION,
    Baseline,
    fingerprint,
    update_baseline,
)
from repro.analysis.engine import Finding


def finding(path="src/repro/x.py", line=10, code="RPR101", message="msg"):
    return Finding(path=path, line=line, col=0, code=code, message=message)


class TestFingerprint:
    def test_line_number_does_not_matter(self):
        a = finding(line=10)
        b = finding(line=99)
        assert fingerprint(a) == fingerprint(b)

    def test_path_code_message_all_matter(self):
        base = finding()
        assert fingerprint(base) != fingerprint(finding(path="other.py"))
        assert fingerprint(base) != fingerprint(finding(code="RPR102"))
        assert fingerprint(base) != fingerprint(finding(message="other"))


class TestCompare:
    def test_empty_baseline_everything_new(self):
        diff = Baseline().compare([finding()])
        assert len(diff.new) == 1
        assert diff.baselined == [] and diff.stale == []

    def test_matched_finding_is_baselined(self):
        f = finding()
        baseline = update_baseline(Baseline(), [f])
        diff = baseline.compare([f])
        assert diff.new == [] and diff.baselined == [f] and diff.stale == []

    def test_fixed_finding_becomes_stale(self):
        f = finding()
        baseline = update_baseline(Baseline(), [f])
        diff = baseline.compare([])
        assert diff.new == [] and diff.baselined == []
        assert [e.fingerprint for e in diff.stale] == [fingerprint(f)]

    def test_mixed_lifecycle(self):
        old_f, kept_f = finding(message="old"), finding(message="kept")
        baseline = update_baseline(Baseline(), [old_f, kept_f])
        new_f = finding(message="brand new")
        diff = baseline.compare([kept_f, new_f])
        assert diff.new == [new_f]
        assert diff.baselined == [kept_f]
        assert [e.message for e in diff.stale] == ["old"]


class TestUpdate:
    def test_new_entries_get_todo_justification(self):
        baseline = update_baseline(Baseline(), [finding()])
        (entry,) = baseline.entries.values()
        assert entry.justification == TODO_JUSTIFICATION

    def test_existing_justification_preserved(self):
        f = finding()
        first = update_baseline(Baseline(), [f])
        fp = fingerprint(f)
        first.entries[fp] = first.entries[fp].__class__(
            **{**first.entries[fp].to_dict(), "justification": "reviewed: ok"}
        )
        second = update_baseline(first, [f])
        assert second.entries[fp].justification == "reviewed: ok"

    def test_stale_entries_dropped_on_update(self):
        baseline = update_baseline(Baseline(), [finding(message="gone")])
        updated = update_baseline(baseline, [finding(message="current")])
        assert [e.message for e in updated.entries.values()] == ["current"]


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        f = finding()
        baseline = update_baseline(Baseline(), [f])
        path = tmp_path / "analysis-baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.entries.keys() == baseline.entries.keys()
        doc = json.loads(path.read_text())
        assert doc["version"] == 1
        assert doc["findings"][0]["fingerprint"] == fingerprint(f)

    def test_missing_file_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "absent.json").entries == {}


class TestCheckedInBaseline:
    def test_repo_baseline_entries_are_justified(self):
        # The committed baseline must never carry a TODO justification —
        # an accepted finding without a reason defeats the gate.
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        doc = json.loads((repo / "analysis-baseline.json").read_text())
        for entry in doc["findings"]:
            assert entry["justification"], entry["fingerprint"]
            assert entry["justification"] != TODO_JUSTIFICATION
