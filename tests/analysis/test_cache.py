"""Incremental cache: warm replay, invalidation, driver-level suppression."""

import json
import textwrap

import repro.analysis.cache as cache_mod
from repro.analysis.cache import analyze_project, rule_pack_digest


def write_tree(tmp_path, files):
    for rel, src in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(src))
    return tmp_path


BASIC_TREE = {
    "proj/repro/a.py": """\
        def helper():
            return 1
        """,
    "proj/repro/b.py": """\
        from repro.a import helper

        def caller():
            return helper()
        """,
    "proj/repro/c.py": """\
        def standalone():
            return 3
        """,
}


class TestWarmReplay:
    def test_second_run_parses_nothing(self, tmp_path):
        root = write_tree(tmp_path, BASIC_TREE) / "proj"
        cache = tmp_path / "cache.json"
        cold = analyze_project([root], cache_path=cache)
        warm = analyze_project([root], cache_path=cache)
        assert cold.files_parsed == 3 and cold.files_cached == 0
        assert warm.files_parsed == 0 and warm.files_cached == 3
        assert warm.whole_program_cached
        assert warm.findings == cold.findings

    def test_no_cache_path_writes_nothing(self, tmp_path):
        root = write_tree(tmp_path, BASIC_TREE) / "proj"
        analyze_project([root], cache_path=None)
        assert list(tmp_path.glob("*.json")) == []

    def test_corrupt_cache_degrades_to_cold(self, tmp_path):
        root = write_tree(tmp_path, BASIC_TREE) / "proj"
        cache = tmp_path / "cache.json"
        cache.write_text("{not json")
        report = analyze_project([root], cache_path=cache)
        assert report.files_parsed == 3
        # And the cache was rewritten usable.
        assert analyze_project([root], cache_path=cache).files_parsed == 0


class TestInvalidation:
    def test_edit_reanalyzes_file_and_reverse_deps(self, tmp_path):
        root = write_tree(tmp_path, BASIC_TREE) / "proj"
        cache = tmp_path / "cache.json"
        analyze_project([root], cache_path=cache)
        (root / "repro" / "a.py").write_text(
            "def helper():\n    return 42\n"
        )
        warm = analyze_project([root], cache_path=cache)
        # a.py changed; b.py imports repro.a; c.py untouched.
        assert warm.files_parsed == 2
        assert warm.files_cached == 1

    def test_rule_pack_bump_invalidates_everything(self, tmp_path, monkeypatch):
        root = write_tree(tmp_path, BASIC_TREE) / "proj"
        cache = tmp_path / "cache.json"
        analyze_project([root], cache_path=cache)
        monkeypatch.setattr(cache_mod, "RULE_PACK_VERSION", 9999)
        warm = analyze_project([root], cache_path=cache)
        assert warm.files_parsed == 3
        assert not warm.whole_program_cached

    def test_digest_covers_rule_pack_version(self, monkeypatch):
        before = rule_pack_digest()
        monkeypatch.setattr(cache_mod, "RULE_PACK_VERSION", 9999)
        assert rule_pack_digest() != before

    def test_new_file_is_picked_up(self, tmp_path):
        root = write_tree(tmp_path, BASIC_TREE) / "proj"
        cache = tmp_path / "cache.json"
        analyze_project([root], cache_path=cache)
        (root / "repro" / "d.py").write_text("def extra():\n    return 4\n")
        warm = analyze_project([root], cache_path=cache)
        assert warm.files_checked == 4
        assert warm.files_parsed == 1

    def test_deleted_file_drops_from_results(self, tmp_path):
        tree = dict(BASIC_TREE)
        tree["proj/repro/bad.py"] = """\
            import time

            def handler():  # repro.sim scope not applied: wrong package
                return 1
            """
        root = write_tree(tmp_path, tree) / "proj"
        cache = tmp_path / "cache.json"
        first = analyze_project([root], cache_path=cache)
        assert first.files_checked == 4
        (root / "repro" / "bad.py").unlink()
        second = analyze_project([root], cache_path=cache)
        assert second.files_checked == 3


class TestDriverSuppression:
    """Whole-program findings flow through noqa + RPR000 like leaf ones."""

    HOT = """\
        import time

        def simulate_hot():
            return helper()

        def helper():
            return time.time(){noqa}
        """

    def test_rpr101_finding_without_noqa(self, tmp_path):
        root = write_tree(tmp_path, {
            "proj/repro/app.py": self.HOT.format(noqa=""),
        }) / "proj"
        report = analyze_project(
            [root], cache_path=None,
            roots=["repro.app.simulate_*"],
        )
        codes = [f.code for f in report.findings]
        # Leaf rule RPR001 doesn't fire (repro.app is outside the
        # determinism packages) but the whole-program pass does.
        assert codes == ["RPR101"]

    def test_noqa_suppresses_whole_program_finding(self, tmp_path):
        root = write_tree(tmp_path, {
            "proj/repro/app.py": self.HOT.format(
                noqa="  # repro: noqa[RPR101] -- fixture"),
        }) / "proj"
        report = analyze_project(
            [root], cache_path=None,
            roots=["repro.app.simulate_*"],
        )
        assert report.findings == []

    def test_unused_rpr101_noqa_reports_rpr000(self, tmp_path):
        root = write_tree(tmp_path, {
            "proj/repro/app.py": """\
                def simulate_hot():
                    return 1  # repro: noqa[RPR101] -- nothing here
                """,
        }) / "proj"
        report = analyze_project(
            [root], cache_path=None,
            roots=["repro.app.simulate_*"],
        )
        assert [f.code for f in report.findings] == ["RPR000"]
        assert "RPR101" in report.findings[0].message


class TestCacheFileShape:
    def test_cache_is_keyed_by_pack_digest(self, tmp_path):
        root = write_tree(tmp_path, BASIC_TREE) / "proj"
        cache = tmp_path / "cache.json"
        analyze_project([root], cache_path=cache)
        doc = json.loads(cache.read_text())
        assert doc["pack"] == rule_pack_digest()
        assert len(doc["files"]) == 3
        assert "wp" in doc
