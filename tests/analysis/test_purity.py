"""Whole-program purity (RPR101) and picklability (RPR102) passes.

The mutation test at the bottom is the acceptance check for the
interprocedural claim: a wall-clock call injected *three levels below* a
``Station`` method in a copy of the real tree must be found, with the
full call chain in the message.
"""

import shutil
import textwrap
from pathlib import Path

from repro.analysis.cache import analyze_project
from repro.analysis.purity import check_picklability, check_purity
from tests.analysis.test_callgraph import build_graph

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def purity(tmp_path, files, roots):
    return check_purity(build_graph(tmp_path, files), roots)


class TestPurity:
    def test_sink_in_root_itself(self, tmp_path):
        findings = purity(tmp_path, {"repro/app.py": """\
            import time

            def hot():
                return time.time()
            """}, roots=["repro.app.hot"])
        assert [f.code for f in findings] == ["RPR101"]
        assert "time.time()" in findings[0].message

    def test_transitive_sink_reports_chain(self, tmp_path):
        findings = purity(tmp_path, {"repro/app.py": """\
            import random

            def leaf():
                return random.random()

            def mid():
                return leaf()

            def hot():
                return mid()
            """}, roots=["repro.app.hot"])
        assert len(findings) == 1
        f = findings[0]
        assert "hot → mid → leaf" in f.message
        assert "random.random()" in f.message
        assert f.line == 4  # anchored at the sink, not the root

    def test_unreachable_sink_not_flagged(self, tmp_path):
        findings = purity(tmp_path, {"repro/app.py": """\
            import time

            def cold():
                return time.time()

            def hot():
                return 1
            """}, roots=["repro.app.hot"])
        assert findings == []

    def test_environ_and_set_iteration_sinks(self, tmp_path):
        findings = purity(tmp_path, {"repro/app.py": """\
            import os

            def hot(items):
                flag = os.environ.get("X")
                for item in set(items):
                    flag = item
                return flag
            """}, roots=["repro.app.hot"])
        kinds = sorted(f.message.split(" is reachable")[0] for f in findings)
        assert len(findings) == 2
        assert any("environment read" in k for k in kinds)
        assert any("unordered-set iteration" in k for k in kinds)

    def test_seeded_rng_not_flagged(self, tmp_path):
        findings = purity(tmp_path, {"repro/app.py": """\
            import numpy as np

            def hot(seed):
                rng = np.random.default_rng(seed)
                return rng.random()
            """}, roots=["repro.app.hot"])
        assert findings == []


class TestPicklability:
    def test_lambda_flagged(self, tmp_path):
        graph = build_graph(tmp_path, {"repro/app.py": """\
            from repro.parallel import run_tasks

            def main(tasks):
                return run_tasks(lambda t: t, tasks)
            """})
        findings = check_picklability(graph)
        assert [f.code for f in findings] == ["RPR102"]
        assert "lambda" in findings[0].message

    def test_nested_function_flagged(self, tmp_path):
        graph = build_graph(tmp_path, {"repro/app.py": """\
            from repro.parallel import run_tasks

            def main(tasks):
                def work(t):
                    return t
                return run_tasks(work, tasks)
            """})
        findings = check_picklability(graph)
        assert [f.code for f in findings] == ["RPR102"]
        assert "nested function" in findings[0].message

    def test_module_level_function_ok(self, tmp_path):
        graph = build_graph(tmp_path, {"repro/app.py": """\
            from repro.parallel import run_tasks

            def work(t):
                return t

            def main(tasks):
                return run_tasks(work, tasks)
            """})
        assert check_picklability(graph) == []

    def test_partial_over_module_function_ok(self, tmp_path):
        graph = build_graph(tmp_path, {"repro/app.py": """\
            from functools import partial
            from repro.parallel import run_tasks

            def work(k, t):
                return k * t

            def main(tasks):
                return run_tasks(partial(work, 3), tasks)
            """})
        assert check_picklability(graph) == []

    def test_partial_over_lambda_flagged(self, tmp_path):
        graph = build_graph(tmp_path, {"repro/app.py": """\
            from functools import partial
            from repro.parallel import run_tasks

            def main(tasks):
                return run_tasks(partial(lambda t: t), tasks)
            """})
        findings = check_picklability(graph)
        assert [f.code for f in findings] == ["RPR102"]

    def test_parameter_chase_through_wrapper(self, tmp_path):
        # The campaign runner's indirection: run_tasks sees a parameter;
        # the offending lambda lives one caller up.
        graph = build_graph(tmp_path, {"repro/app.py": """\
            from repro.parallel import run_supervised

            def sweep(fn, tasks):
                return run_supervised(fn, tasks)

            def main(tasks):
                return sweep(lambda t: t, tasks)
            """})
        findings = check_picklability(graph)
        assert [f.code for f in findings] == ["RPR102"]
        assert "arrives via parameter 'fn'" in findings[0].message

    def test_parameter_from_clean_caller_ok(self, tmp_path):
        graph = build_graph(tmp_path, {"repro/app.py": """\
            from repro.parallel import run_tasks

            def work(t):
                return t

            def sweep(fn, tasks):
                return run_tasks(fn, tasks)

            def main(tasks):
                return sweep(work, tasks)
            """})
        assert check_picklability(graph) == []


class TestMutationInjection:
    """Inject a wall-clock read 3 levels below a Station method in a
    copy of the real tree and require the full chain in the finding."""

    def test_injected_chain_is_reported(self, tmp_path):
        mutated = tmp_path / "src"
        shutil.copytree(REPO_SRC, mutated)
        station = mutated / "repro" / "sim" / "station.py"
        source = station.read_text()
        anchor = "    def _start("
        assert anchor in source, "Station._start moved; update the mutation"
        injected_method = textwrap.dedent("""\
            def _begin_service(self):
                return _svc_probe_a()

        """)
        source = source.replace(
            anchor, textwrap.indent(injected_method, "    ") + anchor, 1
        )
        source += textwrap.dedent("""\


            def _svc_probe_a():
                return _svc_probe_b()


            def _svc_probe_b():
                import time
                return time.time()
            """)
        station.write_text(source)

        report = analyze_project([mutated], cache_path=None)
        hits = [
            f for f in report.findings
            if f.code == "RPR101" and "time.time()" in f.message
            and "Station._begin_service" in f.message
        ]
        assert len(hits) == 1, [f.render() for f in report.findings]
        f = hits[0]
        # Full interprocedural chain, root to sink.
        assert "Station._begin_service → _svc_probe_a → _svc_probe_b" in f.message
        # Anchored at the injected time.time() line in station.py.
        assert f.path.endswith("station.py")
        lines = station.read_text().splitlines()
        assert "time.time()" in lines[f.line - 1]
