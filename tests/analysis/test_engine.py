"""Engine behavior: suppressions, report formats, CLI exit codes."""

import json
import subprocess
import sys
import textwrap

import pytest

from repro.analysis.engine import (
    Finding,
    analyze_file,
    analyze_paths,
    registered_rules,
    render_json,
    render_text,
)


def write(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


BAD_SIM = """\
    import time

    def handler():
        return time.time()
    """


class TestSuppressions:
    def test_noqa_suppresses_matching_code(self, tmp_path):
        path = write(tmp_path, "repro/sim/mod.py", """\
            import time

            def handler():
                return time.time()  # repro: noqa[RPR001] -- intentional for this test
            """)
        assert analyze_file(path) == []

    def test_noqa_wrong_code_does_not_suppress(self, tmp_path):
        path = write(tmp_path, "repro/sim/mod.py", """\
            import time

            def handler():
                return time.time()  # repro: noqa[RPR002] -- wrong code
            """)
        found = analyze_file(path)
        # The RPR001 finding survives AND the stale RPR002 noqa is reported.
        assert sorted(f.code for f in found) == ["RPR000", "RPR001"]

    def test_unused_suppression_reported(self, tmp_path):
        path = write(tmp_path, "repro/sim/mod.py", """\
            x = 1  # repro: noqa[RPR001]
            """)
        found = analyze_file(path)
        assert [f.code for f in found] == ["RPR000"]
        assert "unused suppression" in found[0].message

    def test_multiple_codes_in_one_comment(self, tmp_path):
        path = write(tmp_path, "repro/sim/mod.py", """\
            import time

            def handler(log=[]):  # repro: noqa[RPR006]
                return time.time()  # repro: noqa[RPR001, RPR007] -- RPR007 unused
            """)
        found = analyze_file(path)
        assert [f.code for f in found] == ["RPR000"]
        assert "RPR007" in found[0].message

    def test_noqa_inside_string_literal_ignored(self, tmp_path):
        path = write(tmp_path, "repro/sim/mod.py", '''\
            DOC = "# repro: noqa[RPR001]"
            ''')
        # A string literal is not a comment: no suppression registered,
        # so no RPR000 either.
        assert analyze_file(path) == []


class TestReports:
    def test_parse_error_reported_not_raised(self, tmp_path):
        path = write(tmp_path, "repro/sim/broken.py", "def broken(:\n")
        found = analyze_file(path)
        assert [f.code for f in found] == ["RPR999"]

    def test_findings_sorted_and_stable(self, tmp_path):
        write(tmp_path, "repro/sim/b.py", BAD_SIM)
        write(tmp_path, "repro/sim/a.py", BAD_SIM)
        findings, n_files = analyze_paths([tmp_path])
        assert n_files == 2
        assert [f.path for f in findings] == sorted(f.path for f in findings)

    def test_json_schema(self, tmp_path):
        write(tmp_path, "repro/sim/bad.py", BAD_SIM)
        findings, n_files = analyze_paths([tmp_path])
        doc = json.loads(render_json(findings, n_files))
        assert doc["version"] == 1
        assert doc["files_checked"] == 1
        assert doc["counts"] == {"RPR001": 1}
        assert set(doc["findings"][0]) == {"path", "line", "col", "code", "message"}
        # The rule catalog rides along so CI output is self-describing.
        assert set(doc["rules"]) == {cls.code for cls in registered_rules()}

    def test_text_report_clean_and_dirty(self):
        assert "clean" in render_text([], 3)
        f = Finding(path="x.py", line=1, col=0, code="RPR001", message="m")
        text = render_text([f], 1)
        assert "x.py:1:0: RPR001 m" in text
        assert "1 finding(s)" in text


class TestCli:
    def run_cli(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True, text=True,
        )

    def test_exit_zero_on_clean_tree(self, tmp_path):
        write(tmp_path, "repro/sim/good.py", "x = 1\n")
        proc = self.run_cli(str(tmp_path))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_exit_one_on_findings(self, tmp_path):
        write(tmp_path, "repro/sim/bad.py", BAD_SIM)
        proc = self.run_cli(str(tmp_path))
        assert proc.returncode == 1
        assert "RPR001" in proc.stdout

    def test_json_format(self, tmp_path):
        write(tmp_path, "repro/sim/bad.py", BAD_SIM)
        proc = self.run_cli(str(tmp_path), "--format", "json")
        doc = json.loads(proc.stdout)
        assert doc["counts"] == {"RPR001": 1}

    def test_list_rules(self):
        proc = self.run_cli("--list-rules")
        assert proc.returncode == 0
        for cls in registered_rules():
            assert cls.code in proc.stdout

    def test_usage_error_on_missing_paths(self):
        proc = self.run_cli()
        assert proc.returncode == 2


@pytest.mark.parametrize("rule_cls", registered_rules())
def test_every_rule_has_code_and_summary(rule_cls):
    assert rule_cls.code.startswith("RPR")
    assert rule_cls.summary
