"""Engine behavior: suppressions, report formats, CLI exit codes."""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis.engine import (
    Finding,
    analyze_file,
    analyze_paths,
    registered_rules,
    render_json,
    render_text,
)


def write(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


BAD_SIM = """\
    import time

    def handler():
        return time.time()
    """


def run_cli(*args, cwd=None):
    """Run the CLI with an absolute PYTHONPATH so any cwd works."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True, text=True, cwd=cwd, env=env,
    )


class TestSuppressions:
    def test_noqa_suppresses_matching_code(self, tmp_path):
        path = write(tmp_path, "repro/sim/mod.py", """\
            import time

            def handler():
                return time.time()  # repro: noqa[RPR001] -- intentional for this test
            """)
        assert analyze_file(path) == []

    def test_noqa_wrong_code_does_not_suppress(self, tmp_path):
        path = write(tmp_path, "repro/sim/mod.py", """\
            import time

            def handler():
                return time.time()  # repro: noqa[RPR002] -- wrong code
            """)
        found = analyze_file(path)
        # The RPR001 finding survives AND the stale RPR002 noqa is reported.
        assert sorted(f.code for f in found) == ["RPR000", "RPR001"]

    def test_unused_suppression_reported(self, tmp_path):
        path = write(tmp_path, "repro/sim/mod.py", """\
            x = 1  # repro: noqa[RPR001]
            """)
        found = analyze_file(path)
        assert [f.code for f in found] == ["RPR000"]
        assert "unused suppression" in found[0].message

    def test_multiple_codes_in_one_comment(self, tmp_path):
        path = write(tmp_path, "repro/sim/mod.py", """\
            import time

            def handler(log=[]):  # repro: noqa[RPR006]
                return time.time()  # repro: noqa[RPR001, RPR007] -- RPR007 unused
            """)
        found = analyze_file(path)
        assert [f.code for f in found] == ["RPR000"]
        assert "RPR007" in found[0].message

    def test_noqa_inside_string_literal_ignored(self, tmp_path):
        path = write(tmp_path, "repro/sim/mod.py", '''\
            DOC = "# repro: noqa[RPR001]"
            ''')
        # A string literal is not a comment: no suppression registered,
        # so no RPR000 either.
        assert analyze_file(path) == []


class TestReports:
    def test_parse_error_reported_not_raised(self, tmp_path):
        path = write(tmp_path, "repro/sim/broken.py", "def broken(:\n")
        found = analyze_file(path)
        assert [f.code for f in found] == ["RPR999"]

    def test_findings_sorted_and_stable(self, tmp_path):
        write(tmp_path, "repro/sim/b.py", BAD_SIM)
        write(tmp_path, "repro/sim/a.py", BAD_SIM)
        findings, n_files = analyze_paths([tmp_path])
        assert n_files == 2
        assert [f.path for f in findings] == sorted(f.path for f in findings)

    def test_json_schema(self, tmp_path):
        write(tmp_path, "repro/sim/bad.py", BAD_SIM)
        findings, n_files = analyze_paths([tmp_path])
        doc = json.loads(render_json(findings, n_files))
        assert doc["version"] == 1
        assert doc["files_checked"] == 1
        assert doc["counts"] == {"RPR001": 1}
        assert set(doc["findings"][0]) == {"path", "line", "col", "code", "message"}
        # The rule catalog rides along so CI output is self-describing.
        assert set(doc["rules"]) == {cls.code for cls in registered_rules()}

    def test_text_report_clean_and_dirty(self):
        assert "clean" in render_text([], 3)
        f = Finding(path="x.py", line=1, col=0, code="RPR001", message="m")
        text = render_text([f], 1)
        assert "x.py:1:0: RPR001 m" in text
        assert "1 finding(s)" in text


class TestCli:
    def run_cli(self, *args, cwd=None):
        return run_cli(*args, cwd=cwd)

    def test_exit_zero_on_clean_tree(self, tmp_path):
        write(tmp_path, "repro/sim/good.py", "x = 1\n")
        proc = self.run_cli(str(tmp_path), cwd=tmp_path)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_exit_one_on_findings(self, tmp_path):
        write(tmp_path, "repro/sim/bad.py", BAD_SIM)
        proc = self.run_cli(str(tmp_path), cwd=tmp_path)
        assert proc.returncode == 1
        assert "RPR001" in proc.stdout

    def test_json_format(self, tmp_path):
        write(tmp_path, "repro/sim/bad.py", BAD_SIM)
        proc = self.run_cli(str(tmp_path), "--format", "json", cwd=tmp_path)
        doc = json.loads(proc.stdout)
        assert doc["counts"] == {"RPR001": 1}

    def test_list_rules(self):
        proc = self.run_cli("--list-rules")
        assert proc.returncode == 0
        for cls in registered_rules():
            assert cls.code in proc.stdout

    def test_usage_error_on_missing_paths(self):
        proc = self.run_cli()
        assert proc.returncode == 2


@pytest.mark.parametrize("rule_cls", registered_rules())
def test_every_rule_has_code_and_summary(rule_cls):
    assert rule_cls.code.startswith("RPR")
    assert rule_cls.summary


class TestUnusedSuppressionDedup:
    def test_one_rpr000_per_line_lists_all_codes(self, tmp_path):
        findings = analyze_file(write(tmp_path, "repro/sim/x.py", """\
            x = 1  # repro: noqa[RPR001, RPR007] -- neither fires
            """))
        assert [f.code for f in findings] == ["RPR000"]
        assert "RPR001, RPR007" in findings[0].message

    def test_partially_used_comment_reports_only_unused(self, tmp_path):
        findings = analyze_file(write(tmp_path, "repro/sim/y.py", """\
            import time

            def handler():
                return time.time()  # repro: noqa[RPR001, RPR007] -- wall clock is deliberate
            """))
        assert [f.code for f in findings] == ["RPR000"]
        assert "RPR007" in findings[0].message
        assert "RPR001" not in findings[0].message


class TestBaselineGateCli:
    HOT = textwrap.dedent("""\
        import time

        def simulate_hot():
            return helper()

        def helper():
            return time.time()
        """)

    def run_cli(self, *args, cwd=None):
        return run_cli(*args, cwd=cwd)

    def test_new_finding_fails_then_baselined_passes(self, tmp_path):
        write(tmp_path, "repro/sim/fastsim.py", self.HOT)
        baseline = tmp_path / "analysis-baseline.json"
        # Gate fails while the finding is not baselined.
        proc = self.run_cli(
            "repro", "--baseline", "analysis-baseline.json", cwd=tmp_path
        )
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "new finding(s) not in baseline" in proc.stderr
        # Record it, then the same run passes.
        record = self.run_cli(
            "repro", "--baseline", "analysis-baseline.json",
            "--update-baseline", cwd=tmp_path,
        )
        assert record.returncode == 0, record.stdout + record.stderr
        assert baseline.exists()
        again = self.run_cli(
            "repro", "--baseline", "analysis-baseline.json", cwd=tmp_path
        )
        assert again.returncode == 0, again.stdout + again.stderr

    def test_stale_entry_reported(self, tmp_path):
        write(tmp_path, "repro/sim/fastsim.py", self.HOT)
        self.run_cli("repro", "--baseline", "b.json", "--update-baseline",
                     cwd=tmp_path)
        write(tmp_path, "repro/sim/fastsim.py", "def simulate_hot():\n    return 1\n")
        proc = self.run_cli("repro", "--baseline", "b.json", cwd=tmp_path)
        assert proc.returncode == 0
        assert "stale baseline entry" in proc.stderr

    def test_sarif_written_with_baseline_state(self, tmp_path):
        write(tmp_path, "repro/sim/fastsim.py", self.HOT)
        self.run_cli("repro", "--baseline", "b.json", "--update-baseline",
                     cwd=tmp_path)
        proc = self.run_cli(
            "repro", "--baseline", "b.json", "--sarif", "out.sarif",
            cwd=tmp_path,
        )
        assert proc.returncode == 0
        doc = json.loads((tmp_path / "out.sarif").read_text())
        states = [r["baselineState"] for r in doc["runs"][0]["results"]]
        assert states and all(s == "unchanged" for s in states)

    def test_explain_whole_program_code(self):
        proc = self.run_cli("--explain", "RPR101")
        assert proc.returncode == 0
        assert "call graph" in proc.stdout or "call chain" in proc.stdout

    def test_explain_leaf_rule(self):
        proc = self.run_cli("--explain", "RPR012")
        assert proc.returncode == 0
        assert "RPR012" in proc.stdout

    def test_explain_unknown_code(self):
        proc = self.run_cli("--explain", "RPR998")
        assert proc.returncode == 2

    def test_list_rules_includes_whole_program(self):
        proc = self.run_cli("--list-rules")
        for code in ("RPR101", "RPR102", "RPR103"):
            assert code in proc.stdout

    def test_no_cache_leaves_no_file(self, tmp_path):
        write(tmp_path, "repro/app.py", "x = 1\n")
        self.run_cli("repro", "--no-cache", cwd=tmp_path)
        assert not (tmp_path / ".repro-analysis-cache.json").exists()

    def test_default_cache_created_and_speeds_rerun(self, tmp_path):
        write(tmp_path, "repro/app.py", "x = 1\n")
        self.run_cli("repro", cwd=tmp_path)
        assert (tmp_path / ".repro-analysis-cache.json").exists()
