"""Tests for the analytic tail bounds and the cost model extensions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost import CostModel, compare_slo_costs, min_servers_for_slo
from repro.core.inversion import cutoff_utilization_exact
from repro.core.tail import (
    cutoff_utilization_tail,
    delta_n_threshold_tail,
    tail_response_difference,
)
from repro.queueing.mmk import MMk
from repro.sim.fastsim import simulate_fcfs_queue


class TestTailBounds:
    def test_zero_rho_no_difference(self):
        assert tail_response_difference(0.0, 13.0, 1, 5) == 0.0

    def test_difference_positive_and_growing(self):
        d_low = tail_response_difference(0.4, 13.0, 1, 5)
        d_high = tail_response_difference(0.8, 13.0, 1, 5)
        assert 0 < d_low < d_high

    def test_threshold_is_alias(self):
        assert delta_n_threshold_tail(0.7, 13.0, 1, 5) == tail_response_difference(
            0.7, 13.0, 1, 5
        )

    def test_tail_cutoff_below_mean_cutoff(self):
        """The Figure 5 effect, predicted analytically."""
        dn, mu, ke, kc = 0.023, 13.0 / 8.0, 8, 40
        tail = cutoff_utilization_tail(dn, mu, ke, kc, q=0.95)
        mean = cutoff_utilization_exact(dn, mu, ke, kc)
        assert 0 < tail < mean < 1

    def test_cutoff_solves_fixed_point(self):
        dn, mu, ke, kc = 0.023, 13.0 / 8.0, 8, 40
        rho = cutoff_utilization_tail(dn, mu, ke, kc, q=0.95)
        assert tail_response_difference(rho, mu, ke, kc, 0.95) == pytest.approx(
            dn, rel=1e-5
        )

    def test_equal_pools_never_invert(self):
        assert cutoff_utilization_tail(0.01, 13.0, 5, 5) == 1.0

    def test_tiny_delta_always_inverted(self):
        assert cutoff_utilization_tail(1e-9, 13.0, 1, 50) == pytest.approx(0.0, abs=1e-2)

    @given(q=st.floats(min_value=0.5, max_value=0.995))
    @settings(max_examples=40, deadline=None)
    def test_higher_quantiles_invert_earlier(self, q):
        dn, mu, ke, kc = 0.023, 13.0 / 8.0, 8, 40
        hi = cutoff_utilization_tail(dn, mu, ke, kc, q=min(0.999, q + 0.004))
        lo = cutoff_utilization_tail(dn, mu, ke, kc, q=q)
        assert hi <= lo + 1e-6

    def test_matches_simulated_tail_crossover(self):
        """The analytic tail cutoff predicts the simulated p95 crossover."""
        mu, ke, kc, dn = 13.0 / 8.0, 8, 40, 0.023
        predicted = cutoff_utilization_tail(dn, mu, ke, kc, q=0.95)
        rng = np.random.default_rng(3)
        n = 150_000

        def p95_gap(rho):
            lam_site = rho * ke * mu
            edge_w, cloud_w = [], []
            for _ in range(5):
                a = np.cumsum(rng.exponential(1.0 / lam_site, n))
                s = rng.exponential(1.0 / mu, n)
                edge_w.append(simulate_fcfs_queue(a, s, ke) + s)
            a = np.cumsum(rng.exponential(1.0 / (5 * lam_site), 5 * n))
            s = rng.exponential(1.0 / mu, 5 * n)
            cloud = simulate_fcfs_queue(a, s, kc) + s
            edge = np.concatenate(edge_w)
            return np.quantile(edge, 0.95) - np.quantile(cloud, 0.95) - dn

        assert p95_gap(predicted - 0.08) < 0
        assert p95_gap(predicted + 0.08) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            tail_response_difference(1.0, 13.0, 1, 5)
        with pytest.raises(ValueError):
            tail_response_difference(0.5, 13.0, 1, 5, q=1.0)
        with pytest.raises(ValueError):
            cutoff_utilization_tail(0.0, 13.0, 1, 5)


class TestMinServersForSlo:
    def test_meets_slo_and_is_minimal(self):
        lam, mu, slo = 40.0, 13.0, 0.5
        c = min_servers_for_slo(lam, mu, slo, q=0.95)
        assert MMk(lam, mu, c).response_time_percentile(0.95) <= slo
        if c > 1 and lam / ((c - 1) * mu) < 1.0:
            assert MMk(lam, mu, c - 1).response_time_percentile(0.95) > slo

    def test_zero_load_needs_one(self):
        assert min_servers_for_slo(0.0, 13.0, 1.0) == 1

    def test_infeasible_slo_rejected(self):
        # p95 of Exp(13) alone is ~230 ms; a 10 ms SLO is impossible.
        with pytest.raises(ValueError):
            min_servers_for_slo(1.0, 13.0, 0.010)

    @given(lam=st.floats(min_value=1.0, max_value=200.0))
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_load(self, lam):
        mu, slo = 13.0, 0.6
        assert min_servers_for_slo(lam + 20.0, mu, slo) >= min_servers_for_slo(
            lam, mu, slo
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            min_servers_for_slo(1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            min_servers_for_slo(1.0, 13.0, 1.0, q=0.0)


class TestCompareSloCosts:
    def test_edge_needs_more_servers_for_same_slo(self):
        edge, cloud = compare_slo_costs(
            total_rate=40.0, service_rate=13.0, sites=5,
            edge_rtt=0.001, cloud_rtt=0.024, latency_slo=0.5,
        )
        assert edge.servers >= cloud.servers  # no pooling at the edge
        assert edge.achieved_latency <= 0.5
        assert cloud.achieved_latency <= 0.5

    def test_edge_costs_more_at_loose_slo(self):
        edge, cloud = compare_slo_costs(
            total_rate=40.0, service_rate=13.0, sites=5,
            edge_rtt=0.001, cloud_rtt=0.024, latency_slo=0.8,
        )
        assert edge.hourly_cost > cloud.hourly_cost

    def test_tight_slo_only_edge_feasible(self):
        # SLO below the cloud RTT: the cloud cannot play.
        with pytest.raises(ValueError, match="only an edge deployment"):
            compare_slo_costs(
                total_rate=10.0, service_rate=13.0, sites=5,
                edge_rtt=0.001, cloud_rtt=0.080, latency_slo=0.070,
            )

    def test_impossible_slo_rejected(self):
        with pytest.raises(ValueError, match="infeasible everywhere"):
            compare_slo_costs(
                total_rate=10.0, service_rate=13.0, sites=5,
                edge_rtt=0.010, cloud_rtt=0.024, latency_slo=0.005,
            )

    def test_custom_cost_model(self):
        cm = CostModel(cloud_server_hourly=1.0, edge_server_hourly=1.0,
                       site_overhead_hourly=0.0)
        edge, cloud = compare_slo_costs(
            total_rate=40.0, service_rate=13.0, sites=5,
            edge_rtt=0.001, cloud_rtt=0.024, latency_slo=0.8, cost_model=cm,
        )
        # With equal unit prices the gap is purely the pooling penalty.
        assert edge.hourly_cost == edge.servers * 1.0
        assert cloud.hourly_cost == cloud.servers * 1.0

    def test_cost_model_validation(self):
        with pytest.raises(ValueError):
            CostModel(cloud_server_hourly=0.0)
        with pytest.raises(ValueError):
            CostModel(site_overhead_hourly=-1.0)

    def test_args_validation(self):
        with pytest.raises(ValueError):
            compare_slo_costs(
                total_rate=0.0, service_rate=13.0, sites=5,
                edge_rtt=0.001, cloud_rtt=0.024, latency_slo=0.5,
            )
        with pytest.raises(ValueError):
            compare_slo_costs(
                total_rate=10.0, service_rate=13.0, sites=0,
                edge_rtt=0.001, cloud_rtt=0.024, latency_slo=0.5,
            )
        with pytest.raises(ValueError):
            compare_slo_costs(
                total_rate=10.0, service_rate=13.0, sites=5,
                edge_rtt=0.030, cloud_rtt=0.024, latency_slo=0.5,
            )

    def test_str_renders(self):
        edge, _ = compare_slo_costs(
            total_rate=40.0, service_rate=13.0, sites=5,
            edge_rtt=0.001, cloud_rtt=0.024, latency_slo=0.5,
        )
        assert "edge" in str(edge) and "/h" in str(edge)
