"""Tests for the EdgeCloudComparator (analytic + measured comparison)."""

import numpy as np
import pytest

from repro.core.comparator import ComparisonResult, EdgeCloudComparator, SweepPoint
from repro.core.scenarios import DISTANT_CLOUD, TYPICAL_CLOUD
from repro.stats.summary import LatencySummary


def make_summary(mean, p95):
    return LatencySummary(
        count=100, mean=mean, std=0.0, p25=mean, p50=mean, p75=mean,
        p95=p95, p99=p95, min=mean, max=p95,
    )


def make_result(gaps_mean):
    """Build a ComparisonResult with prescribed mean gaps at rates 1..n."""
    points = []
    for i, g in enumerate(gaps_mean):
        points.append(
            SweepPoint(
                rate_per_site=float(i + 1),
                utilization=(i + 1) / 13.0,
                edge=make_summary(0.1 + g, 0.2 + g),
                cloud=make_summary(0.1, 0.2),
            )
        )
    return ComparisonResult(scenario=TYPICAL_CLOUD, points=tuple(points))


class TestCrossoverMath:
    def test_interpolated_crossover(self):
        res = make_result([-0.02, -0.01, 0.01])
        # Sign change between rates 2 and 3, exactly halfway.
        assert res.crossover_rate("mean") == pytest.approx(2.5)

    def test_no_crossover_returns_none(self):
        res = make_result([-0.03, -0.02, -0.01])
        assert res.crossover_rate("mean") is None
        assert res.crossover_utilization("mean") is None

    def test_already_inverted_returns_first_rate(self):
        res = make_result([0.01, 0.02])
        assert res.crossover_rate("mean") == 1.0

    def test_crossover_utilization_uses_scenario(self):
        res = make_result([-0.01, 0.01])
        rho = res.crossover_utilization("mean")
        assert rho == pytest.approx(TYPICAL_CLOUD.utilization(1.5))

    def test_series_shapes(self):
        res = make_result([-0.01, 0.0, 0.01])
        rates, edge, cloud = res.series("p95")
        assert rates.shape == edge.shape == cloud.shape == (3,)


@pytest.fixture(scope="module")
def typical_cmp():
    return EdgeCloudComparator(TYPICAL_CLOUD, requests_per_site=40_000, seed=5)


class TestMeasurement:
    def test_point_has_both_sides(self, typical_cmp):
        p = typical_cmp.measure_point(8.0)
        assert p.utilization == pytest.approx(8.0 / 13.0)
        assert p.edge.count > 10_000
        # The cloud serves the same aggregate workload as all edge sites.
        assert p.cloud.count == pytest.approx(p.edge.count, rel=0.05)

    def test_low_rate_edge_wins_high_rate_cloud_wins(self, typical_cmp):
        low = typical_cmp.measure_point(3.0)
        high = typical_cmp.measure_point(12.0)
        assert low.gap("mean") < 0
        assert high.gap("mean") > 0

    def test_network_floor_visible_at_low_load(self, typical_cmp):
        p = typical_cmp.measure_point(2.0)
        # At rho=0.15 waits are tiny: cloud mean ≈ service + 24 ms.
        assert p.cloud.mean - p.edge.mean == pytest.approx(0.023, abs=0.005)

    def test_saturating_rate_rejected(self, typical_cmp):
        with pytest.raises(ValueError):
            typical_cmp.measure_point(13.5)
        with pytest.raises(ValueError):
            typical_cmp.measure_point(0.0)

    def test_sweep_and_crossover_near_paper_value(self):
        cmp_ = EdgeCloudComparator(TYPICAL_CLOUD, requests_per_site=60_000, seed=6)
        res = cmp_.sweep([6, 7, 8, 9, 10])
        rate = res.crossover_rate("mean")
        # Paper Figure 3: crossover at 8 req/s (k=5).
        assert rate == pytest.approx(8.0, abs=1.2)

    def test_tail_crossover_before_mean(self):
        cmp_ = EdgeCloudComparator(DISTANT_CLOUD, requests_per_site=60_000, seed=7)
        res = cmp_.sweep([6, 7, 8, 9, 10, 11, 12])
        mean_x = res.crossover_rate("mean")
        tail_x = res.crossover_rate("p95")
        assert tail_x is not None and mean_x is not None
        # Paper Figure 5's insight: tail inversion strictly earlier.
        assert tail_x < mean_x

    def test_empty_sweep_rejected(self, typical_cmp):
        with pytest.raises(ValueError):
            typical_cmp.sweep([])


class TestPrediction:
    def test_predicted_cutoff_in_range(self, typical_cmp):
        rho = typical_cmp.predict_cutoff_utilization()
        assert 0.3 < rho < 0.9

    def test_prediction_close_to_measurement(self):
        """§4.2's validation: analytic cutoff within ~10% of measured."""
        cmp_ = EdgeCloudComparator(TYPICAL_CLOUD, requests_per_site=60_000, seed=8)
        predicted = cmp_.predict_cutoff_utilization()
        _, measured = cmp_.find_crossover(
            "mean", utilizations=np.arange(0.4, 0.85, 0.05)
        )
        assert measured is not None
        assert measured == pytest.approx(predicted, rel=0.15)

    def test_distant_cloud_has_higher_cutoff(self):
        near = EdgeCloudComparator(TYPICAL_CLOUD).predict_cutoff_utilization()
        far = EdgeCloudComparator(DISTANT_CLOUD).predict_cutoff_utilization()
        assert far > near


class TestValidationArgs:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            EdgeCloudComparator(TYPICAL_CLOUD, requests_per_site=10)
        with pytest.raises(ValueError):
            EdgeCloudComparator(TYPICAL_CLOUD, arrival_cv2=-1.0)
        with pytest.raises(ValueError):
            EdgeCloudComparator(TYPICAL_CLOUD, warmup_fraction=1.0)
