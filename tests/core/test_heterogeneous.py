"""Tests for the resource-constrained-edge analysis (§3.1.1 discussion)."""

import numpy as np
import pytest

from repro.core.inversion import (
    inversion_rate_heterogeneous,
    response_difference_heterogeneous,
)
from repro.sim.fastsim import simulate_fcfs_queue

MU_CLOUD = 13.0
DELTA_N = 0.023  # typical cloud


class TestResponseDifference:
    def test_equal_hardware_k1_never_positive(self):
        """Paper: with identical servers, k=1 means identical systems."""
        for rate in (2.0, 6.0, 10.0, 12.0):
            d = response_difference_heterogeneous(
                rate, MU_CLOUD, MU_CLOUD, 1, 1, 1
            )
            assert d == pytest.approx(0.0, abs=1e-12)

    def test_slower_edge_positive_even_at_k1(self):
        """Slower edge hardware makes the gap positive at any load."""
        d = response_difference_heterogeneous(
            2.0, MU_CLOUD / 1.5, MU_CLOUD, 1, 1, 1
        )
        assert d > 0

    def test_gap_grows_with_load(self):
        mu_e = MU_CLOUD / 1.5
        d_lo = response_difference_heterogeneous(2.0, mu_e, MU_CLOUD, 1, 1, 1)
        d_hi = response_difference_heterogeneous(8.0, mu_e, MU_CLOUD, 1, 1, 1)
        assert d_hi > d_lo

    def test_validation(self):
        with pytest.raises(ValueError):
            response_difference_heterogeneous(0.0, 10.0, 13.0, 1, 1, 1)
        with pytest.raises(ValueError):
            response_difference_heterogeneous(1.0, 0.0, 13.0, 1, 1, 1)


class TestInversionRate:
    def test_equal_hardware_k1_never_inverts(self):
        """Corollary 3.1.1's k=1 special case: rho* > 1, i.e. never."""
        assert inversion_rate_heterogeneous(
            DELTA_N, MU_CLOUD, MU_CLOUD, 1, 1, 1
        ) is None

    def test_slow_edge_inverts_at_k1(self):
        """The paper's §3.1.1 claim: a weaker edge server inverts even
        with a single site.  A 1.2x slowdown keeps the pure service gap
        (15 ms) below delta_n (23 ms), so queueing decides — at some
        positive rate the inversion kicks in."""
        rate = inversion_rate_heterogeneous(
            DELTA_N, MU_CLOUD / 1.2, MU_CLOUD, 1, 1, 1
        )
        assert rate is not None
        assert 0.0 < rate < MU_CLOUD / 1.2

    def test_moderately_slow_edge_always_loses_at_k1(self):
        """A 1.5x slowdown's service gap (38 ms) alone exceeds delta_n:
        the edge loses at any utilization."""
        assert inversion_rate_heterogeneous(
            DELTA_N, MU_CLOUD / 1.5, MU_CLOUD, 1, 1, 1
        ) == 0.0

    def test_very_slow_edge_always_loses(self):
        """When the service-time gap alone exceeds delta_n, rate* = 0."""
        # s_e - s_c = 1/4 - 1/13 = 0.173 s >> 23 ms.
        rate = inversion_rate_heterogeneous(DELTA_N, 4.0, MU_CLOUD, 1, 1, 1)
        assert rate == 0.0

    def test_multi_site_slow_edge_inverts_earlier(self):
        """Hardware penalty compounds the pooling penalty (k > 1)."""
        same = inversion_rate_heterogeneous(DELTA_N, MU_CLOUD, MU_CLOUD, 1, 5, 5)
        slow = inversion_rate_heterogeneous(DELTA_N, MU_CLOUD / 1.2, MU_CLOUD, 1, 5, 5)
        assert same is not None and slow is not None
        assert slow < same

    def test_solution_is_a_fixed_point(self):
        mu_e = MU_CLOUD / 1.15
        rate = inversion_rate_heterogeneous(DELTA_N, mu_e, MU_CLOUD, 1, 5, 5)
        assert rate is not None and rate > 0
        gap = response_difference_heterogeneous(rate, mu_e, MU_CLOUD, 1, 5, 5)
        assert gap == pytest.approx(DELTA_N, rel=1e-6)

    def test_matches_simulation(self):
        """The analytic heterogeneous crossover agrees with simulation."""
        mu_e = MU_CLOUD / 1.15
        rate_star = inversion_rate_heterogeneous(DELTA_N, mu_e, MU_CLOUD, 1, 5, 5)
        assert rate_star is not None and rate_star > 1.0
        rng = np.random.default_rng(7)
        n = 200_000

        def gap_at(rate):
            edge_resp = []
            for _ in range(5):
                a = np.cumsum(rng.exponential(1.0 / rate, n))
                s = rng.exponential(1.0 / mu_e, n)
                edge_resp.append(simulate_fcfs_queue(a, s, 1) + s)
            a = np.cumsum(rng.exponential(1.0 / (5 * rate), 5 * n))
            s = rng.exponential(1.0 / MU_CLOUD, 5 * n)
            cloud_resp = simulate_fcfs_queue(a, s, 5) + s
            return float(np.concatenate(edge_resp).mean() - cloud_resp.mean()) - DELTA_N

        assert gap_at(max(0.5, rate_star - 1.0)) < 0
        assert gap_at(rate_star + 1.0) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            inversion_rate_heterogeneous(0.0, 10.0, 13.0, 1, 1, 1)
