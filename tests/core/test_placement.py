"""Tests for the per-region placement advisor."""

import pytest

from repro.core.cost import CostModel
from repro.core.placement import recommend_placements
from repro.sim.geo import Region

MU = 13.0


def regions():
    return [
        Region("metro", weight=0.5, edge_rtt=0.001, cloud_rtt=0.012),
        Region("suburban", weight=0.3, edge_rtt=0.001, cloud_rtt=0.030),
        Region("remote", weight=0.2, edge_rtt=0.002, cloud_rtt=0.300),
    ]


class TestRecommendations:
    def test_one_decision_per_region_in_order(self):
        decisions = recommend_placements(regions(), 20.0, MU, 2)
        assert [d.region for d in decisions] == ["metro", "suburban", "remote"]

    def test_cloud_chosen_when_it_meets_objective(self):
        """With a loose objective the cheap cloud wins everywhere it can."""
        decisions = recommend_placements(
            regions(), 20.0, MU, 2, latency_objective=1.0
        )
        by_name = {d.region: d for d in decisions}
        assert by_name["metro"].placement == "cloud"
        assert by_name["metro"].meets_objective

    def test_edge_chosen_when_cloud_rtt_breaks_objective(self):
        """The remote region (300 ms cloud) needs its edge for tight SLOs."""
        decisions = recommend_placements(
            regions(), 20.0, MU, 2, latency_objective=0.50
        )
        by_name = {d.region: d for d in decisions}
        assert by_name["remote"].placement == "edge"
        assert by_name["remote"].meets_objective

    def test_infeasible_objective_picks_lower_latency(self):
        decisions = recommend_placements(
            regions(), 20.0, MU, 2, latency_objective=0.001
        )
        for d in decisions:
            assert not d.meets_objective
            assert d.latency == min(d.edge_latency, d.cloud_latency)

    def test_latency_fields_consistent(self):
        for d in recommend_placements(regions(), 20.0, MU, 2):
            assert d.edge_latency > 0 and d.cloud_latency > 0
            chosen = d.edge_latency if d.placement == "edge" else d.cloud_latency
            assert d.latency == chosen

    def test_cost_delta_reflects_prices(self):
        cm = CostModel(cloud_server_hourly=0.1, edge_server_hourly=0.3,
                       site_overhead_hourly=1.0)
        (d, *_) = recommend_placements(regions(), 20.0, MU, 2, cost_model=cm)
        expected = ((2 * 0.3 + 1.0) - 2 * 0.1) * 730.0
        assert d.monthly_cost_delta == pytest.approx(expected)

    def test_high_utilization_flips_close_region_to_cloud(self):
        """At high load, even a modest objective sends metro to the cloud
        (its edge site queues; the pooled cloud doesn't)."""
        decisions = recommend_placements(
            regions(), 70.0, MU, 3, latency_objective=0.45
        )
        by_name = {d.region: d for d in decisions}
        assert by_name["metro"].placement == "cloud"
        assert by_name["metro"].cloud_latency < by_name["metro"].edge_latency


class TestValidation:
    def test_empty_regions(self):
        with pytest.raises(ValueError):
            recommend_placements([], 10.0, MU, 1)

    def test_saturating_aggregate(self):
        with pytest.raises(ValueError, match="saturates the"):
            recommend_placements(regions(), 1000.0, MU, 2)

    def test_saturating_region(self):
        hot = [Region("hot", weight=0.7, edge_rtt=0.001, cloud_rtt=0.03),
               Region("cold", weight=0.3, edge_rtt=0.001, cloud_rtt=0.03)]
        # Aggregate (20 < 26) is fine; the hot region's own 14 req/s
        # saturates its single-server site.
        with pytest.raises(ValueError, match="edge site"):
            recommend_placements(hot, 20.0, MU, 1)

    def test_bad_args(self):
        with pytest.raises(ValueError):
            recommend_placements(regions(), 0.0, MU, 1)
        with pytest.raises(ValueError):
            recommend_placements(regions(), 10.0, MU, 0)
        with pytest.raises(ValueError):
            recommend_placements(regions(), 10.0, MU, 1, latency_objective=0.0)
