"""Tests for capacity planning (§5) and the paper scenarios."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.capacity import (
    cloud_peak_capacity,
    edge_peak_capacity,
    min_edge_servers,
    proportional_allocation,
    provisioning_penalty,
)
from repro.core.scenarios import (
    DISTANT_CLOUD,
    NEARBY_CLOUD,
    PAPER_SCENARIOS,
    TRANSCONTINENTAL_CLOUD,
    TYPICAL_CLOUD,
    Scenario,
)


class TestTwoSigmaCapacity:
    def test_formulas(self):
        assert cloud_peak_capacity(100.0) == pytest.approx(120.0)
        assert edge_peak_capacity(100.0, 4) == pytest.approx(140.0)

    def test_k1_edge_equals_cloud(self):
        assert edge_peak_capacity(50.0, 1) == pytest.approx(cloud_peak_capacity(50.0))

    @given(
        lam=st.floats(min_value=0.1, max_value=1e5),
        k=st.integers(min_value=2, max_value=500),
    )
    @settings(max_examples=150)
    def test_paper_claim_edge_needs_more(self, lam, k):
        """Section 5.2: C_edge > C_cloud for any k > 1."""
        assert edge_peak_capacity(lam, k) > cloud_peak_capacity(lam)
        assert provisioning_penalty(lam, k) > 1.0

    @given(lam=st.floats(min_value=1.0, max_value=1e4))
    @settings(max_examples=50)
    def test_penalty_grows_with_k(self, lam):
        assert provisioning_penalty(lam, 16) > provisioning_penalty(lam, 4)

    def test_penalty_shrinks_with_scale(self):
        """Relative penalty vanishes as lambda grows (2σ term is O(√λ))."""
        assert provisioning_penalty(1e6, 10) < provisioning_penalty(100.0, 10)

    def test_zero_load(self):
        assert cloud_peak_capacity(0.0) == 0.0
        assert provisioning_penalty(0.0, 5) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            cloud_peak_capacity(-1.0)
        with pytest.raises(ValueError):
            edge_peak_capacity(1.0, 0)


class TestMinEdgeServers:
    def test_returns_stable_and_sufficient(self):
        unit = 0.077  # seconds per formula unit (~ one mean service time)
        k_i = min_edge_servers(0.030, 8.0, 13.0, 5, 40.0, time_unit=unit)
        assert k_i >= 1
        # Stability at the returned allocation.
        assert 8.0 / (k_i * 13.0) < 1.0

    def test_monotone_in_site_load(self):
        unit = 0.077
        low = min_edge_servers(0.030, 5.0, 13.0, 5, 40.0, time_unit=unit)
        high = min_edge_servers(0.030, 30.0, 13.0, 5, 40.0, time_unit=unit)
        assert high >= low

    def test_zero_load_site_needs_one(self):
        assert min_edge_servers(0.030, 0.0, 13.0, 5, 40.0) == 1

    def test_bigger_delta_n_needs_fewer(self):
        unit = 0.077
        near = min_edge_servers(0.014, 10.0, 13.0, 5, 50.0, time_unit=unit)
        far = min_edge_servers(0.079, 10.0, 13.0, 5, 50.0, time_unit=unit)
        assert far <= near

    def test_unstable_cloud_rejected(self):
        with pytest.raises(ValueError):
            min_edge_servers(0.030, 8.0, 13.0, 5, 100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            min_edge_servers(0.0, 8.0, 13.0, 5, 40.0)
        with pytest.raises(ValueError):
            min_edge_servers(0.030, -1.0, 13.0, 5, 40.0)


class TestProportionalAllocation:
    def test_balanced(self):
        assert proportional_allocation([1.0, 1.0, 1.0, 1.0], 8) == [2, 2, 2, 2]

    def test_sums_to_total(self):
        alloc = proportional_allocation([0.5, 0.3, 0.2], 10)
        assert sum(alloc) == 10
        assert alloc[0] >= alloc[1] >= alloc[2]

    def test_loaded_sites_get_at_least_one(self):
        alloc = proportional_allocation([0.97, 0.01, 0.01, 0.01], 4)
        assert min(alloc) >= 1
        assert sum(alloc) == 4

    def test_zero_weight_site_gets_zero(self):
        alloc = proportional_allocation([0.7, 0.3, 0.0], 10)
        assert alloc[2] == 0

    @given(
        k=st.integers(min_value=1, max_value=10),
        total=st.integers(min_value=10, max_value=100),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=100)
    def test_invariants(self, k, total, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        w = rng.random(k) + 0.01
        alloc = proportional_allocation(list(w), total)
        assert sum(alloc) == total
        assert all(a >= 1 for a in alloc)

    def test_validation(self):
        with pytest.raises(ValueError):
            proportional_allocation([], 5)
        with pytest.raises(ValueError):
            proportional_allocation([0.0, 0.0], 5)
        with pytest.raises(ValueError):
            proportional_allocation([1.0, 1.0, 1.0], 2)


class TestSquareRootStaffing:
    def test_basic_formula(self):
        from repro.core.capacity import square_root_staffing

        # a = 100, beta = 2: 100 + 20 = 120.
        assert square_root_staffing(100.0, 1.0, beta=2.0) == 120

    def test_probability_of_wait_stays_bounded_across_scales(self):
        """Halfin-Whitt: fixed beta keeps Erlang-C P(wait) ~ stable."""
        from repro.core.capacity import square_root_staffing
        from repro.queueing.mmk import erlang_c

        waits = []
        for lam in (20.0, 200.0, 2000.0):
            c = square_root_staffing(lam, 1.0, beta=1.0)
            waits.append(erlang_c(c, lam))
        # All within a modest band (they converge to a constant).
        assert max(waits) - min(waits) < 0.25
        assert all(0.05 < w < 0.6 for w in waits)

    def test_pooling_efficiency(self):
        """One pooled system staffs less than k sites for the same beta."""
        from repro.core.capacity import square_root_staffing

        lam, mu, k = 100.0, 1.0, 10
        pooled = square_root_staffing(lam, mu, beta=2.0)
        split = k * square_root_staffing(lam / k, mu, beta=2.0)
        assert pooled < split

    def test_edge_cases_and_validation(self):
        from repro.core.capacity import square_root_staffing

        assert square_root_staffing(0.0, 1.0) == 1
        with pytest.raises(ValueError):
            square_root_staffing(-1.0, 1.0)
        with pytest.raises(ValueError):
            square_root_staffing(1.0, 0.0)
        with pytest.raises(ValueError):
            square_root_staffing(1.0, 1.0, beta=-0.5)


class TestScenario:
    def test_paper_constants(self):
        assert NEARBY_CLOUD.cloud_rtt_ms == 15.0
        assert TYPICAL_CLOUD.cloud_rtt_ms == 24.0
        assert DISTANT_CLOUD.cloud_rtt_ms == 54.0
        assert TRANSCONTINENTAL_CLOUD.cloud_rtt_ms == 80.0
        assert [s.cloud_rtt_ms for s in PAPER_SCENARIOS] == sorted(
            s.cloud_rtt_ms for s in PAPER_SCENARIOS
        )

    def test_delta_n(self):
        assert TYPICAL_CLOUD.delta_n == pytest.approx(0.023)

    def test_derived_fleet_shape(self):
        s = TYPICAL_CLOUD
        assert s.cloud_machines == 5
        assert s.cloud_servers == 5 * s.service.cores
        s2 = s.with_machines(2)
        assert s2.cloud_machines == 10
        assert s2.edge_servers_per_site == 2 * s.service.cores

    def test_utilization_roundtrip(self):
        s = TYPICAL_CLOUD
        assert s.utilization(8.0) == pytest.approx(8.0 / 13.0)
        assert s.rate_for_utilization(0.5) == pytest.approx(6.5)
        with pytest.raises(ValueError):
            s.rate_for_utilization(1.0)

    def test_latency_models(self):
        assert TYPICAL_CLOUD.cloud_latency().mean_rtt_ms == pytest.approx(24.0)
        assert TYPICAL_CLOUD.edge_latency().mean_rtt_ms == pytest.approx(1.0)

    def test_with_sites(self):
        assert TYPICAL_CLOUD.with_sites(8).cloud_machines == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            Scenario(name="bad", cloud_rtt_ms=1.0, edge_rtt_ms=1.0)
        with pytest.raises(ValueError):
            Scenario(name="bad", cloud_rtt_ms=10.0, sites=0)
