"""Tests for the quasi-stationary transient prediction."""

import numpy as np
import pytest

from repro.core.transient import predict_windowed_series, quasi_stationary_latency
from repro.queueing.mmk import MMk
from repro.sim.fastsim import simulate_single_queue_system
from repro.sim.network import ConstantLatency
from repro.workload.arrivals import NonHomogeneousPoisson
from repro.workload.trace import RequestTrace

MU = 13.0


class TestQuasiStationaryPoint:
    def test_below_saturation_is_exact_mmc(self):
        assert quasi_stationary_latency(8.0, MU, 1) == pytest.approx(
            MMk(8.0, MU, 1).mean_response(), rel=1e-4
        )

    def test_zero_rate_is_service_time(self):
        assert quasi_stationary_latency(0.0, MU, 2, rtt=0.01) == pytest.approx(
            0.01 + 1.0 / MU
        )

    def test_rtt_added(self):
        base = quasi_stationary_latency(8.0, MU, 1)
        assert quasi_stationary_latency(8.0, MU, 1, rtt=0.025) == pytest.approx(
            base + 0.025
        )

    def test_saturated_window_finite(self):
        over = quasi_stationary_latency(30.0, MU, 1)
        assert np.isfinite(over)
        # Deep in overload the system sits near its capacity bound.
        assert over > quasi_stationary_latency(12.0, MU, 1)

    def test_latency_monotone_in_rate_through_saturation(self):
        vals = [
            quasi_stationary_latency(r, MU, 1)
            for r in (2.0, 6.0, 10.0, 12.0, 13.0, 16.0, 30.0)
        ]
        assert vals == sorted(vals)

    def test_validation(self):
        with pytest.raises(ValueError):
            quasi_stationary_latency(-1.0, MU, 1)
        with pytest.raises(ValueError):
            quasi_stationary_latency(1.0, MU, 0)
        with pytest.raises(ValueError):
            quasi_stationary_latency(1.0, MU, 1, rtt=-0.1)


class TestPredictedSeries:
    def test_tracks_simulated_series_under_slow_modulation(self):
        """Quasi-stationary prediction vs simulation for a slow diurnal ramp."""
        period, horizon = 4000.0, 8000.0

        def rate(t):
            return 7.0 + 4.0 * np.sin(2 * np.pi * t / period)

        proc = NonHomogeneousPoisson(rate, max_rate=11.5, mean_rate=7.0)
        rng = np.random.default_rng(3)
        trace = proc.generate(rng, horizon=horizon)
        services = rng.exponential(1.0 / MU, len(trace))
        sim = simulate_single_queue_system(
            trace.arrival_times, services, 1, ConstantLatency(0.0)
        )
        window = 400.0
        starts, predicted = predict_windowed_series(trace, MU, 1, window, horizon=horizon)
        # Simulated windowed means.
        from repro.stats.timeseries import windowed_mean

        _, simulated = windowed_mean(sim.arrival, sim.end_to_end, window, horizon=horizon)
        valid = ~np.isnan(simulated)
        # Correlation between predicted and simulated series is strong.
        corr = np.corrcoef(predicted[valid], simulated[valid])[0, 1]
        assert corr > 0.8
        # And the level is right on average.
        assert predicted[valid].mean() == pytest.approx(
            simulated[valid].mean(), rel=0.25
        )

    def test_shapes_align(self):
        trace = RequestTrace(np.sort(np.random.default_rng(0).uniform(0, 100, 500)))
        starts, pred = predict_windowed_series(trace, MU, 1, 10.0, horizon=100.0)
        assert starts.shape == pred.shape
        assert np.all(np.isfinite(pred))
