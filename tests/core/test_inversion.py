"""Tests for the Section 3 inversion bounds."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.inversion import (
    calibrate_time_unit,
    cutoff_utilization_exact,
    cutoff_utilization_limit,
    cutoff_utilization_paper,
    delta_n_threshold_gg,
    delta_n_threshold_gg_limit,
    delta_n_threshold_mm,
    delta_n_threshold_skewed,
    is_inverted_mm,
    mean_wait_difference,
    min_cloud_rtt_for_edge_win,
)
from repro.queueing.mmk import MMk


class TestLemma31:
    def test_matches_paper_formula(self):
        # sqrt(2) * (1/(1-rho_e) - 1/(sqrt(k)(1-rho_c)))
        rho_e, rho_c, k = 0.8, 0.6, 9
        expected = math.sqrt(2) * (1 / (1 - rho_e) - 1 / (3 * (1 - rho_c)))
        assert delta_n_threshold_mm(rho_e, rho_c, k) == pytest.approx(expected)

    def test_time_unit_scales(self):
        base = delta_n_threshold_mm(0.8, 0.8, 4)
        assert delta_n_threshold_mm(0.8, 0.8, 4, time_unit=0.077) == pytest.approx(
            base * 0.077
        )

    @given(
        rho=st.floats(min_value=0.01, max_value=0.98),
        k=st.integers(min_value=2, max_value=100),
    )
    @settings(max_examples=150)
    def test_threshold_positive_when_cloud_pools_more(self, rho, k):
        """Balanced load, k>1: the edge always has the larger wait term."""
        assert delta_n_threshold_mm(rho, rho, k) > 0

    @given(rho=st.floats(min_value=0.01, max_value=0.98))
    @settings(max_examples=50)
    def test_single_server_cloud_gives_zero_threshold(self, rho):
        """k=1 balanced: edge and cloud identical -> no inversion ever."""
        assert delta_n_threshold_mm(rho, rho, 1) == pytest.approx(0.0)

    @given(
        rho=st.floats(min_value=0.5, max_value=0.95),
        k=st.integers(min_value=4, max_value=64),
    )
    @settings(max_examples=100)
    def test_threshold_grows_with_utilization(self, rho, k):
        lo = delta_n_threshold_mm(rho - 0.2, rho - 0.2, k)
        hi = delta_n_threshold_mm(rho, rho, k)
        assert hi > lo

    def test_bigger_edge_sites_shrink_threshold(self):
        small = delta_n_threshold_mm(0.8, 0.8, 16, edge_servers=1)
        big = delta_n_threshold_mm(0.8, 0.8, 16, edge_servers=4)
        assert big < small

    def test_corollary_313_is_lemma_with_zero_edge_rtt(self):
        assert min_cloud_rtt_for_edge_win(0.8, 0.7, 9) == pytest.approx(
            delta_n_threshold_mm(0.8, 0.7, 9)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            delta_n_threshold_mm(1.0, 0.5, 4)
        with pytest.raises(ValueError):
            delta_n_threshold_mm(0.5, 0.5, 0)
        with pytest.raises(ValueError):
            delta_n_threshold_mm(0.5, 0.5, 4, time_unit=0.0)


class TestCorollary311:
    def test_closed_form(self):
        # rho* = 1 - sqrt(2)/dn * (1 - 1/sqrt(k))
        dn, k = 3.0, 4
        expected = 1 - math.sqrt(2) / dn * (1 - 0.5)
        assert cutoff_utilization_paper(dn, k) == pytest.approx(expected)

    def test_k1_never_inverts(self):
        """The paper's single-site discussion: rho* = 1 for k = 1."""
        assert cutoff_utilization_paper(5.0, 1) == 1.0

    def test_edge_pool_at_least_cloud_pool_never_inverts(self):
        assert cutoff_utilization_paper(5.0, 4, edge_servers=4) == 1.0
        assert cutoff_utilization_paper(5.0, 4, edge_servers=8) == 1.0

    def test_clamped_at_zero_for_tiny_delta_n(self):
        assert cutoff_utilization_paper(1e-6, 100) == 0.0

    @given(
        dn=st.floats(min_value=0.5, max_value=50.0),
        k=st.integers(min_value=2, max_value=200),
    )
    @settings(max_examples=150)
    def test_monotone_in_delta_n_and_k(self, dn, k):
        base = cutoff_utilization_paper(dn, k)
        assert cutoff_utilization_paper(dn * 2, k) >= base
        assert cutoff_utilization_paper(dn, k + 10) <= base + 1e-12

    def test_corollary_312_limit(self):
        """As k grows the cutoff approaches 1 - sqrt(2)/dn."""
        dn = 4.0
        limit = cutoff_utilization_limit(dn)
        assert cutoff_utilization_paper(dn, 10_000) == pytest.approx(limit, abs=1e-2)
        assert limit == pytest.approx(1 - math.sqrt(2) / 4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            cutoff_utilization_paper(0.0, 4)
        with pytest.raises(ValueError):
            cutoff_utilization_limit(-1.0)


class TestCalibration:
    def test_roundtrip(self):
        unit = calibrate_time_unit(0.030, 5, 0.64)
        assert cutoff_utilization_paper(0.030, 5, time_unit=unit) == pytest.approx(0.64)

    def test_papers_two_anchors_agree(self):
        """The paper's §4.2 anchors imply a consistent time unit.

        k=5 with 1 server/site at Δn≈30ms gives ρ*=0.64; k=10 with
        2 servers/site gives ρ*=0.75.  Both solve to the same unit
        within ~2%, confirming our reading of the formula's units.
        """
        u5 = calibrate_time_unit(0.030, 5, 0.64, edge_servers=1)
        u10 = calibrate_time_unit(0.030, 10, 0.75, edge_servers=2)
        assert u5 == pytest.approx(u10, rel=0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            calibrate_time_unit(0.030, 5, 1.0)
        with pytest.raises(ValueError):
            calibrate_time_unit(0.0, 5, 0.5)
        with pytest.raises(ValueError):
            calibrate_time_unit(0.030, 4, 0.5, edge_servers=4)


class TestLemma32:
    def test_reduces_toward_mm_shape_at_cv1(self):
        """With ca2=cs2=1 the GG threshold is positive for pooled clouds."""
        assert delta_n_threshold_gg(0.85, 0.85, 5, 13.0, 1.0, 1.0, 1.0) > 0

    @given(ca2=st.floats(min_value=1.0, max_value=16.0))
    @settings(max_examples=80)
    def test_burstier_edge_raises_threshold(self, ca2):
        """Corollary 3.2.1's message: inversion more likely when bursty."""
        base = delta_n_threshold_gg(0.85, 0.85, 5, 13.0, 1.0, 1.0, 1.0)
        bursty = delta_n_threshold_gg(0.85, 0.85, 5, 13.0, ca2, 1.0, 1.0)
        assert bursty >= base - 1e-12

    def test_limit_keeps_only_edge_term(self):
        edge_term = delta_n_threshold_gg_limit(0.85, 13.0, 2.0, 0.5)
        full = delta_n_threshold_gg(0.85, 0.85, 10_000, 13.0, 2.0, 2.0, 0.5)
        assert full == pytest.approx(edge_term, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            delta_n_threshold_gg(0.85, 0.85, 5, 0.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            delta_n_threshold_gg_limit(1.0, 13.0, 1.0, 1.0)


class TestLemma33:
    def test_balanced_weights_match_lemma31(self):
        k, lam, mu = 5, 40.0, 13.0
        rho = lam / (k * mu)
        balanced = delta_n_threshold_skewed([0.2] * 5, lam, mu, k)
        assert balanced == pytest.approx(delta_n_threshold_mm(rho, rho, k))

    def test_skew_raises_threshold(self):
        """Hot sites wait longer: skew makes inversion easier (paper §3.2)."""
        k, lam, mu = 5, 25.0, 13.0
        balanced = delta_n_threshold_skewed([0.2] * 5, lam, mu, k)
        skewed = delta_n_threshold_skewed([0.4, 0.3, 0.15, 0.1, 0.05], lam, mu, k)
        assert skewed > balanced

    def test_overloaded_site_rejected(self):
        with pytest.raises(ValueError):
            delta_n_threshold_skewed([0.9, 0.1], 20.0, 13.0, 2)

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            delta_n_threshold_skewed([0.5, 0.6], 10.0, 13.0, 2)

    def test_weights_must_be_nonnegative(self):
        with pytest.raises(ValueError):
            delta_n_threshold_skewed([1.5, -0.5], 10.0, 13.0, 2)


class TestExactEngine:
    def test_wait_difference_matches_mmk(self):
        rho, mu, ke, kc = 0.7, 13.0, 1, 5
        expected = (
            MMk(rho * mu, mu, 1).mean_wait() - MMk(rho * kc * mu, mu, kc).mean_wait()
        )
        assert mean_wait_difference(rho, mu, ke, kc) == pytest.approx(expected)

    def test_zero_rho_gives_zero(self):
        assert mean_wait_difference(0.0, 13.0, 1, 5) == 0.0

    def test_cutoff_solves_fixed_point(self):
        dn, mu, ke, kc = 0.024, 13.0 / 8.0, 8, 40
        rho = cutoff_utilization_exact(dn, mu, ke, kc)
        assert 0.0 < rho < 1.0
        assert mean_wait_difference(rho, mu, ke, kc) == pytest.approx(dn, rel=1e-6)

    def test_cutoff_one_when_pools_equal(self):
        assert cutoff_utilization_exact(0.01, 13.0, 5, 5) == 1.0

    def test_cutoff_decreases_with_closer_cloud(self):
        mu, ke, kc = 13.0 / 8.0, 8, 40
        near = cutoff_utilization_exact(0.014, mu, ke, kc)
        far = cutoff_utilization_exact(0.079, mu, ke, kc)
        assert near < far

    def test_cutoff_zero_for_negligible_delta_n(self):
        assert cutoff_utilization_exact(1e-9, 13.0, 1, 50) == pytest.approx(0.0, abs=1e-3)

    def test_is_inverted_consistent_with_cutoff(self):
        dn, mu, ke, kc = 0.024, 13.0 / 8.0, 8, 40
        rho_star = cutoff_utilization_exact(dn, mu, ke, kc)
        assert not is_inverted_mm(dn, rho_star - 0.05, mu, ke, kc)
        assert is_inverted_mm(dn, rho_star + 0.05, mu, ke, kc)

    def test_general_cv_path(self):
        rho = cutoff_utilization_exact(0.024, 13.0 / 8.0, 8, 40, ca2=4.0, cs2=0.25)
        baseline = cutoff_utilization_exact(0.024, 13.0 / 8.0, 8, 40)
        # Bursty arrivals lower the cutoff (inversion happens earlier).
        assert rho < baseline

    def test_validation(self):
        with pytest.raises(ValueError):
            cutoff_utilization_exact(0.0, 13.0, 1, 5)
        with pytest.raises(ValueError):
            mean_wait_difference(0.5, -1.0, 1, 5)
        with pytest.raises(ValueError):
            is_inverted_mm(-0.1, 0.5, 13.0, 1, 5)
