"""Request-level metrics collection.

:class:`RequestLog` accumulates completed requests into preallocated
struct-of-arrays NumPy buffers (grow-by-doubling), so the per-request
hot-path cost is one row write instead of retaining a Python object per
request, and the columnar conversion in :meth:`RequestLog.breakdown` is
pure vectorized arithmetic instead of an O(n) Python loop.
:class:`LatencyBreakdown` is the columnar view (one array per latency
component) used by the stats and experiments layers.  The original
:class:`~repro.sim.request.Request` objects are *not* retained;
:attr:`RequestLog.requests` materializes equivalent lazy views on demand
for the resilience/overload/observability code paths that still want
per-request records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.sim.request import Request

__all__ = ["RequestLog", "LatencyBreakdown"]


@dataclass
class LatencyBreakdown:
    """Columnar latency components for a set of completed requests.

    All arrays are aligned (same order, same length) and in seconds.
    """

    created: np.ndarray
    end_to_end: np.ndarray
    wait: np.ndarray
    service: np.ndarray
    network: np.ndarray
    site: np.ndarray  # dtype=object (site names), aligned with the rest

    def __len__(self) -> int:
        return self.end_to_end.size

    def after(self, t: float) -> "LatencyBreakdown":
        """Return the subset of requests created at or after time ``t``.

        Used to trim warm-up transients before computing statistics.
        """
        mask = self.created >= t
        return LatencyBreakdown(
            created=self.created[mask],
            end_to_end=self.end_to_end[mask],
            wait=self.wait[mask],
            service=self.service[mask],
            network=self.network[mask],
            site=self.site[mask],
        )

    def for_site(self, site: str) -> "LatencyBreakdown":
        """Return the subset of requests served by ``site``."""
        mask = self.site == site
        return LatencyBreakdown(
            created=self.created[mask],
            end_to_end=self.end_to_end[mask],
            wait=self.wait[mask],
            service=self.service[mask],
            network=self.network[mask],
            site=self.site[mask],
        )

    @property
    def sites(self) -> list[str]:
        """Distinct site names present, sorted."""
        return sorted(set(self.site.tolist()))


# Column layout of RequestLog._data (float64).  Timestamps are stored
# raw — the same five stamps a Request carries — so derived quantities
# are computed with exactly the same IEEE operations as the Request
# properties, and a lazy Request view can be reconstructed faithfully.
_CREATED, _ARRIVED, _START, _END, _COMPLETED, _SERVICE, _RID, _PRIORITY, _DEGRADED = range(9)
_COLS = 9
_INITIAL_CAPACITY = 256


class RequestLog:
    """Sink for completed requests (struct-of-arrays storage).

    ``add()`` writes one row into preallocated NumPy buffers that double
    in capacity when full; ``breakdown()`` memoizes its columnar
    conversion — summaries, reports and live telemetry all ask for the
    same view repeatedly, and the cache is invalidated whenever the log
    length changes, so interleaving ``add`` and ``breakdown`` (as
    windowed telemetry does) always sees current data.

    :attr:`requests` rebuilds :class:`Request` views from the stored
    rows (also memoized per length).  The views carry every timestamp,
    ``rid``, ``site``, ``priority``, ``service_time`` and ``degraded``
    of the original; transient in-flight fields (``outcome``, ``op_id``,
    ``attempt``, ``deadline``) are not persisted and read as their
    defaults.
    """

    __slots__ = ("_data", "_site", "_n", "_cache", "_cache_len", "_view", "_view_len")

    def __init__(self) -> None:
        self._data = np.empty((_INITIAL_CAPACITY, _COLS))
        self._site = np.empty(_INITIAL_CAPACITY, dtype=object)
        self._n = 0
        self._cache: LatencyBreakdown | None = None
        self._cache_len = -1
        self._view: list[Request] | None = None
        self._view_len = -1

    def add(self, request: Request) -> None:
        """Record a completed request."""
        if not request.is_complete:
            raise ValueError(f"request {request.rid} has not completed")
        i = self._n
        if i == self._site.size:
            self._grow()
        service = request.service_time
        self._data[i] = (
            request.created,
            request.arrived,
            request.service_start,
            request.service_end,
            request.completed,
            math.nan if service is None else service,
            request.rid,
            request.priority,
            request.degraded,
        )
        self._site[i] = request.site
        self._n = i + 1

    def _grow(self) -> None:
        capacity = 2 * self._site.size
        data = np.empty((capacity, _COLS))
        data[: self._n] = self._data[: self._n]
        site = np.empty(capacity, dtype=object)
        site[: self._n] = self._site[: self._n]
        self._data = data
        self._site = site

    def __len__(self) -> int:
        return self._n

    @property
    def requests(self) -> list[Request]:
        """Lazy per-request views of the stored rows (cached per length)."""
        n = self._n
        if self._view is not None and self._view_len == n:
            return self._view
        view: list[Request] = []
        data = self._data
        sites = self._site
        for i in range(n):
            created, arrived, start, end, completed, service, rid, priority, degraded = (
                data[i].tolist()
            )
            r = Request(
                int(rid),
                site=sites[i],
                created=created,
                service_time=None if math.isnan(service) else service,
                priority=int(priority),
            )
            r.arrived = arrived
            r.service_start = start
            r.service_end = end
            r.completed = completed
            r.degraded = bool(degraded)
            view.append(r)
        self._view = view
        self._view_len = n
        return view

    def breakdown(self) -> LatencyBreakdown:
        """Materialize the columnar latency view (cached per log length)."""
        n = self._n
        if self._cache is not None and self._cache_len == n:
            return self._cache
        data = self._data[:n]
        created = data[:, _CREATED].copy()
        e2e = data[:, _COMPLETED] - data[:, _CREATED]
        wait = data[:, _START] - data[:, _ARRIVED]
        service = data[:, _SERVICE].copy()
        network = e2e - (data[:, _END] - data[:, _ARRIVED])
        site = self._site[:n].copy()
        self._cache = LatencyBreakdown(created, e2e, wait, service, network, site)
        self._cache_len = n
        return self._cache
