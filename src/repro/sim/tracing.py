"""Request-level metrics collection.

:class:`RequestLog` accumulates completed requests and converts them to
NumPy arrays on demand; :class:`LatencyBreakdown` is the columnar view
(one array per latency component) used by the stats and experiments
layers.  Keeping collection on the simulation's hot path allocation-free
(append to lists, convert lazily) matters: tracing is the second-hottest
code after the event loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.request import Request

__all__ = ["RequestLog", "LatencyBreakdown"]


@dataclass
class LatencyBreakdown:
    """Columnar latency components for a set of completed requests.

    All arrays are aligned (same order, same length) and in seconds.
    """

    created: np.ndarray
    end_to_end: np.ndarray
    wait: np.ndarray
    service: np.ndarray
    network: np.ndarray
    site: np.ndarray  # dtype=object (site names), aligned with the rest

    def __len__(self) -> int:
        return self.end_to_end.size

    def after(self, t: float) -> "LatencyBreakdown":
        """Return the subset of requests created at or after time ``t``.

        Used to trim warm-up transients before computing statistics.
        """
        mask = self.created >= t
        return LatencyBreakdown(
            created=self.created[mask],
            end_to_end=self.end_to_end[mask],
            wait=self.wait[mask],
            service=self.service[mask],
            network=self.network[mask],
            site=self.site[mask],
        )

    def for_site(self, site: str) -> "LatencyBreakdown":
        """Return the subset of requests served by ``site``."""
        mask = self.site == site
        return LatencyBreakdown(
            created=self.created[mask],
            end_to_end=self.end_to_end[mask],
            wait=self.wait[mask],
            service=self.service[mask],
            network=self.network[mask],
            site=self.site[mask],
        )

    @property
    def sites(self) -> list[str]:
        """Distinct site names present, sorted."""
        return sorted(set(self.site.tolist()))


@dataclass
class RequestLog:
    """Sink for completed requests.

    ``breakdown()`` memoizes its columnar conversion: summaries,
    reports and live telemetry all ask for the same view repeatedly, and
    rebuilding six arrays per call turns O(n) analysis into O(n·calls).
    The cache is invalidated whenever the log length changes, so
    interleaving ``add`` and ``breakdown`` (as windowed telemetry does)
    always sees current data.
    """

    requests: list[Request] = field(default_factory=list)
    _cache: "LatencyBreakdown | None" = field(
        default=None, repr=False, compare=False
    )
    _cache_len: int = field(default=-1, repr=False, compare=False)

    def add(self, request: Request) -> None:
        """Record a completed request."""
        if not request.is_complete:
            raise ValueError(f"request {request.rid} has not completed")
        self.requests.append(request)

    def __len__(self) -> int:
        return len(self.requests)

    def breakdown(self) -> LatencyBreakdown:
        """Materialize the columnar latency view (cached per log length)."""
        n = len(self.requests)
        if self._cache is not None and self._cache_len == n:
            return self._cache
        created = np.empty(n)
        e2e = np.empty(n)
        wait = np.empty(n)
        service = np.empty(n)
        network = np.empty(n)
        site = np.empty(n, dtype=object)
        for i, r in enumerate(self.requests):
            created[i] = r.created
            e2e[i] = r.end_to_end
            wait[i] = r.wait
            service[i] = r.service_time
            network[i] = r.network_time
            site[i] = r.site
        self._cache = LatencyBreakdown(created, e2e, wait, service, network, site)
        self._cache_len = n
        return self._cache
