"""High-level helpers that wire up and run edge/cloud simulations.

These are the entry points the experiments layer uses: given the
paper's knobs (number of sites k, servers per site, per-site request
rate, service model, RTTs) they build the topology, attach Poisson (or
custom) sources, run for a virtual duration and return the trimmed
latency breakdown.
"""

from __future__ import annotations

from repro.parallel import run_tasks
from repro.parallel.seeding import derive_seed
from repro.queueing.distributions import Distribution, Exponential
from repro.sim.client import OpenLoopSource
from repro.sim.engine import Simulation
from repro.sim.loadbalancer import DispatchPolicy
from repro.sim.network import LatencyModel
from repro.sim.topology import CloudDeployment, EdgeDeployment, EdgeSite, SiteRouter
from repro.sim.tracing import LatencyBreakdown

__all__ = ["run_deployment", "run_comparison"]


def run_deployment(
    kind: str,
    *,
    sites: int,
    servers_per_site: int,
    rate_per_site: float,
    service_dist: Distribution,
    latency: LatencyModel,
    duration: float,
    seed: int = 0,
    interarrival: Distribution | None = None,
    site_rates: list[float] | None = None,
    policy: DispatchPolicy | None = None,
    backends: int | None = None,
    router: SiteRouter | None = None,
    warmup_fraction: float = 0.2,
) -> LatencyBreakdown:
    """Simulate one deployment and return its latency breakdown.

    Parameters
    ----------
    kind:
        ``"edge"`` — ``sites`` sites with ``servers_per_site`` servers
        each, every site fed by its own source at ``rate_per_site``;
        ``"cloud"`` — one data center with ``sites × servers_per_site``
        servers fed by ``sites`` sources (the aggregate workload), as in
        the paper's experiments.
    rate_per_site:
        Mean request rate of each source, req/s.
    service_dist:
        Per-request service-time distribution (seconds).
    latency:
        Network model between clients and the deployment.
    duration:
        Virtual seconds to simulate.
    interarrival:
        Override source inter-arrival distribution at rate 1 (it is
        scaled by ``1/rate``); default Poisson.
    site_rates:
        Per-site rates for skewed workloads (overrides ``rate_per_site``;
        must have length ``sites``).
    policy / backends:
        Cloud-only: dispatch policy and backend count (``None`` = ideal
        central queue).
    router:
        Edge-only: geographic load-balancing hook.
    warmup_fraction:
        Fraction of the virtual duration discarded as warm-up.

    Returns
    -------
    LatencyBreakdown
        Post-warm-up per-request latency components.
    """
    if kind not in ("edge", "cloud"):
        raise ValueError(f"kind must be 'edge' or 'cloud', got {kind!r}")
    if sites < 1 or servers_per_site < 1:
        raise ValueError("sites and servers_per_site must be >= 1")
    if duration <= 0:
        raise ValueError(f"duration must be > 0, got {duration}")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError(f"warmup_fraction must be in [0, 1), got {warmup_fraction}")
    rates = list(site_rates) if site_rates is not None else [rate_per_site] * sites
    if len(rates) != sites:
        raise ValueError(f"site_rates has length {len(rates)}, expected {sites}")
    if any(r < 0 for r in rates) or sum(rates) <= 0:
        raise ValueError(f"site rates must be non-negative with positive sum, got {rates}")

    sim = Simulation(seed)
    if kind == "edge":
        deployment = EdgeDeployment(
            sim,
            [
                EdgeSite(sim, f"site-{i}", servers_per_site, latency, service_dist)
                for i in range(sites)
            ],
            router=router,
        )
    else:
        deployment = CloudDeployment(
            sim,
            servers=sites * servers_per_site,
            latency=latency,
            service_dist=service_dist,
            policy=policy,
            backends=backends,
        )

    for i, rate in enumerate(rates):
        if rate == 0:
            continue
        gap = (
            Exponential(1.0 / rate)
            if interarrival is None
            else interarrival.scaled(1.0 / (rate * interarrival.mean))
        )
        OpenLoopSource(
            sim,
            deployment,
            gap,
            site=f"site-{i}" if kind == "edge" else f"client-{i}",
            stop_time=duration,
        )

    sim.run()  # drain: sources stop at `duration`, in-flight requests finish
    return deployment.log.breakdown().after(duration * warmup_fraction)


def _run_deployment_task(kind: str, kwargs: dict) -> LatencyBreakdown:
    """Module-level trampoline so :func:`run_comparison` tasks pickle."""
    return run_deployment(kind, **kwargs)


def run_comparison(
    *,
    sites: int,
    servers_per_site: int,
    rate_per_site: float,
    service_dist: Distribution,
    edge_latency: LatencyModel,
    cloud_latency: LatencyModel,
    duration: float,
    seed: int = 0,
    workers: int | None = None,
    **kwargs,
) -> tuple[LatencyBreakdown, LatencyBreakdown]:
    """Run the paper's paired experiment: same workload, edge vs cloud.

    Returns ``(edge, cloud)`` latency breakdowns.  Extra keyword
    arguments are forwarded to :func:`run_deployment` (e.g. ``policy``
    for the cloud or ``site_rates`` for skew — deployment-specific knobs
    are routed to the deployment they apply to).

    The two runs are seeded independently, so with ``workers >= 2`` they
    execute concurrently in separate processes with bit-identical
    results (:mod:`repro.parallel`).
    """
    edge_kwargs = dict(kwargs)
    cloud_kwargs = dict(kwargs)
    edge_kwargs.pop("policy", None)
    edge_kwargs.pop("backends", None)
    cloud_kwargs.pop("router", None)
    shared = {
        "sites": sites,
        "servers_per_site": servers_per_site,
        "rate_per_site": rate_per_site,
        "service_dist": service_dist,
        "duration": duration,
    }
    edge, cloud = run_tasks(
        _run_deployment_task,
        [
            ("edge", {**shared, "latency": edge_latency, "seed": seed, **edge_kwargs}),
            ("cloud", {**shared, "latency": cloud_latency, "seed": derive_seed(seed, 1), **cloud_kwargs}),
        ],
        workers=workers,
        label="deployment run",
    )
    return edge, cloud
