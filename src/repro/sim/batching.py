"""Request batching à la TensorFlow Serving.

The paper's application is DNN inference, which production stacks serve
in *batches*: a batch of b images through one forward pass costs far
less than b separate passes (``base + per_item × b`` is a good model).
Batching interacts with the edge-vs-cloud question in an interesting
way (extension E8): batches fill with *arrival rate*, so the pooled
cloud assembles full batches quickly while a lightly-loaded edge site
must either wait out the batch timeout or run small, inefficient
batches — an additional pooling advantage on top of the queueing one.

:class:`BatchingStation` implements the standard policy: start a batch
when ``batch_size`` requests are waiting, or when the oldest waiting
request has aged ``batch_timeout`` seconds, whichever comes first.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from repro.sim.engine import Simulation
from repro.sim.request import Request

__all__ = ["BatchingStation", "affine_batch_time"]


def affine_batch_time(base: float, per_item: float) -> Callable[[int], float]:
    """Batch service-time model ``base + per_item × b`` (seconds).

    ``base`` is the fixed cost of a forward pass (kernel launches,
    weight streaming); ``per_item`` the marginal per-image cost.
    """
    if base < 0 or per_item <= 0:
        raise ValueError(f"need base >= 0 and per_item > 0, got {base}, {per_item}")

    def batch_time(b: int) -> float:
        return base + per_item * b

    return batch_time


class BatchingStation:
    """FCFS station that serves requests in batches.

    Parameters
    ----------
    sim:
        Owning simulation.
    servers:
        Parallel batch executors (GPUs / model replicas).
    batch_size:
        Maximum (and target) batch size.
    batch_timeout:
        Maximum time the oldest waiting request may age before a
        partial batch is dispatched.
    batch_time:
        Callable ``b -> service seconds`` for a batch of ``b``.
    on_departure:
        Callback per completed request (deployment return leg).
    """

    def __init__(
        self,
        sim: Simulation,
        servers: int,
        batch_size: int,
        batch_timeout: float,
        batch_time: Callable[[int], float],
        name: str = "batching",
        on_departure=None,
    ):
        if servers < 1:
            raise ValueError(f"servers must be >= 1, got {servers}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if batch_timeout < 0:
            raise ValueError(f"batch_timeout must be >= 0, got {batch_timeout}")
        self.sim = sim
        self.name = name
        self.servers = int(servers)
        self.batch_size = int(batch_size)
        self.batch_timeout = float(batch_timeout)
        self.batch_time = batch_time
        self.on_departure = on_departure
        self._busy = 0
        self._queue: deque[Request] = deque()
        self.arrivals = 0
        self.completions = 0
        self.batches = 0
        self._batch_sizes: list[int] = []

    # -- inspection --------------------------------------------------------
    @property
    def queue_length(self) -> int:
        """Requests waiting for a batch slot."""
        return len(self._queue)

    @property
    def in_system(self) -> int:
        """Waiting plus (approximately) in-service requests."""
        return len(self._queue) + self._busy * self.batch_size

    def mean_batch_size(self) -> float:
        """Average dispatched batch size so far (0 before any batch)."""
        if not self._batch_sizes:
            return 0.0
        return sum(self._batch_sizes) / len(self._batch_sizes)

    # -- dynamics -----------------------------------------------------------
    def arrive(self, request: Request) -> None:
        """Accept a request; may trigger an immediate batch dispatch."""
        self.arrivals += 1
        request.arrived = self.sim.now
        self._queue.append(request)
        if len(self._queue) == 1 and self.batch_timeout > 0:
            # This request may end up waiting alone: arm its deadline.
            self.sim.schedule(self.batch_timeout, self._deadline, request.rid)
        self._maybe_dispatch()

    def _deadline(self, rid: int) -> None:
        # Fire only if the request that armed the deadline still waits.
        if self._queue and self._queue[0].rid == rid:
            self._maybe_dispatch(force=True)

    def _maybe_dispatch(self, force: bool = False) -> None:
        while self._busy < self.servers and self._queue:
            full = len(self._queue) >= self.batch_size
            aged = force or (
                self.batch_timeout == 0.0
                or self.sim.now - self._queue[0].arrived >= self.batch_timeout
            )
            if not (full or aged):
                return
            b = min(self.batch_size, len(self._queue))
            batch = [self._queue.popleft() for _ in range(b)]
            self._busy += 1
            self.batches += 1
            self._batch_sizes.append(b)
            duration = float(self.batch_time(b))
            for req in batch:
                req.service_start = self.sim.now
                req.service_time = duration
            self.sim.schedule(duration, self._finish, batch)
            force = False
            # Re-arm the deadline for the new head of queue, if any.
            if self._queue and self.batch_timeout > 0:
                head = self._queue[0]
                remaining = max(0.0, self.batch_timeout - (self.sim.now - head.arrived))
                self.sim.schedule(remaining, self._deadline, head.rid)

    def _finish(self, batch: list[Request]) -> None:
        self._busy -= 1
        self.completions += len(batch)
        for req in batch:
            req.service_end = self.sim.now
            if self.on_departure is not None:
                self.on_departure(req)
        self._maybe_dispatch()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchingStation(name={self.name!r}, servers={self.servers}, "
            f"batch_size={self.batch_size}, queued={len(self._queue)})"
        )
