"""Per-request lifecycle record.

Each simulated request carries the timestamps of every stage the paper's
latency decomposition names (Figure 1): client send, server arrival,
service start/end, and client receive.  The derived properties give the
network latency, queueing delay, service time and end-to-end latency —
the quantities compared in every figure of Section 4.
"""

from __future__ import annotations

import math

__all__ = ["Request"]

_UNSET = math.nan


class Request:
    """A single application request traveling client → server → client.

    Timestamps are virtual seconds; ``nan`` means the stage has not
    happened (yet).  ``service_time`` may be pre-assigned by a trace
    replay or left for the serving station to sample.
    """

    __slots__ = (
        "rid",
        "site",
        "created",
        "arrived",
        "service_start",
        "service_end",
        "completed",
        "service_time",
        "redirects",
        "deadline",
        "attempt",
        "outcome",
        "canceled",
        "op_id",
        "priority",
        "degraded",
    )

    def __init__(
        self,
        rid: int,
        site: str | None = None,
        created: float = _UNSET,
        service_time: float | None = None,
        deadline: float = math.inf,
        priority: int = 0,
    ):
        self.rid = rid
        self.site = site
        self.created = created
        self.arrived = _UNSET
        self.service_start = _UNSET
        self.service_end = _UNSET
        self.completed = _UNSET
        self.service_time = service_time
        self.redirects = 0
        # Resilience-layer fields.  ``deadline`` is the absolute virtual
        # time by which the client needs the response (SLO deadline,
        # ``inf`` = none).  ``attempt`` counts delivery attempts for the
        # logical operation this record represents (1 = first try).
        # ``outcome`` is ``None`` while in flight / on plain success and
        # a short tag otherwise ("ok", "dropped", "shed", "rejected",
        # "timeout", "deadline", "exhausted", "superseded").  ``canceled`` marks an attempt the
        # client abandoned; stations discard canceled arrivals.
        # ``op_id`` links an attempt back to its logical operation.
        self.deadline = deadline
        self.attempt = 1
        self.outcome: str | None = None
        self.canceled = False
        self.op_id: int | None = None
        # Overload-control fields.  ``priority`` is the request class for
        # priority-aware shedding: 0 is the most important, larger values
        # are more sheddable.  ``degraded`` marks requests served by a
        # brownout controller's cheaper variant (smaller model).
        self.priority = int(priority)
        self.degraded = False

    @property
    def wait(self) -> float:
        """Queueing delay at the server, :math:`w` in the paper."""
        return self.service_start - self.arrived

    @property
    def server_time(self) -> float:
        """Server latency: queueing delay + service time (:math:`r`)."""
        return self.service_end - self.arrived

    @property
    def network_time(self) -> float:
        """Round-trip network latency (:math:`n`): both wire legs."""
        return (self.completed - self.created) - self.server_time

    @property
    def end_to_end(self) -> float:
        """Total latency :math:`T = n + w + s` (Equations 1–2)."""
        return self.completed - self.created

    @property
    def is_complete(self) -> bool:
        """True once the response has reached the client."""
        return not math.isnan(self.completed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Request(rid={self.rid}, site={self.site!r}, created={self.created:.6f}, "
            f"complete={self.is_complete})"
        )
