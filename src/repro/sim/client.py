"""Open-loop workload sources (the Gatling stand-in).

The paper's workload generator fires requests at a configured rate (or
replays a trace) regardless of outstanding responses — an *open-loop*
driver, which is what exposes queueing delay honestly.  Two sources:

* :class:`OpenLoopSource` — renewal arrivals from an
  :class:`~repro.workload.arrivals.ArrivalProcess`.
* :class:`TraceSource` — replays explicit (timestamp, service-time)
  pairs, used for the Azure-trace experiments (Figs 8–10).
"""

from __future__ import annotations

from itertools import count
from typing import Protocol

import numpy as np

from repro.sim.engine import Simulation
from repro.sim.request import Request

__all__ = ["OpenLoopSource", "ClosedLoopSource", "TraceSource", "Target"]

_GLOBAL_RID = count()

#: First pre-sampled RNG block size; doubles per refill up to the cap, so
#: short runs waste few draws and long runs amortize the per-call numpy
#: dispatch overhead across thousands of events.
_FIRST_BLOCK = 16
_MAX_BLOCK = 4096


class Target(Protocol):
    """Anything requests can be submitted to (a deployment)."""

    def submit(self, request: Request) -> None: ...


class OpenLoopSource:
    """Generate requests with i.i.d. inter-arrival gaps.

    Parameters
    ----------
    sim:
        Owning simulation.
    target:
        Deployment receiving the requests.
    interarrival:
        Distribution of gaps between consecutive requests (seconds);
        an :class:`~repro.queueing.distributions.Exponential` makes the
        source Poisson.
    site:
        Home-site label stamped on each request (edge routing key).
    stop_time:
        No requests are generated at or after this virtual time.
    priority:
        Request class stamped on each request (0 = most important,
        larger = more sheddable) — either a fixed int or a callable
        ``rng -> int`` drawing a class per request (a traffic mix for
        priority-aware load shedding).
    """

    def __init__(
        self,
        sim: Simulation,
        target: Target,
        interarrival,
        site: str | None = None,
        stop_time: float = np.inf,
        priority=0,
    ):
        self.sim = sim
        self.target = target
        self.interarrival = interarrival
        self.site = site
        self.stop_time = stop_time
        self.priority = priority
        self.generated = 0
        self._rng = sim.spawn_rng()
        # Inter-arrival gaps are pre-sampled in geometrically growing
        # blocks: one vectorized draw per block instead of one
        # `Distribution.sample` call per event (the dominant per-event
        # cost of a source in profile).  The block comes from the
        # source's private stream, so results are deterministic per seed.
        # Stored as a plain list (bulk tolist() per refill) so each event
        # pays a list index, not a NumPy scalar extraction.
        self._gaps: list[float] | None = None
        self._gap_i = 0
        self._block = _FIRST_BLOCK
        sim.schedule(self._next_gap(), self._fire)

    def _next_gap(self) -> float:
        gaps = self._gaps
        i = self._gap_i
        if gaps is None or i >= len(gaps):
            n = self._block
            self._block = min(2 * n, _MAX_BLOCK)
            self._gaps = gaps = (
                np.asarray(self.interarrival.sample(self._rng, n), dtype=float)
                .reshape(n)
                .tolist()
            )
            i = 0
        self._gap_i = i + 1
        return gaps[i]

    def _fire(self) -> None:
        if self.sim.now >= self.stop_time:
            return
        priority = self.priority(self._rng) if callable(self.priority) else self.priority
        request = Request(
            next(_GLOBAL_RID), site=self.site, created=self.sim.now, priority=priority
        )
        self.generated += 1
        self.target.submit(request)
        self.sim.schedule(self._next_gap(), self._fire)


class ClosedLoopSource:
    """A fixed population of users alternating think time and requests.

    The closed-loop model: each of ``users`` virtual users thinks for an
    i.i.d. think time, issues one request, waits for its response, and
    repeats.  Unlike the open-loop sources, offered load *self-throttles*
    under congestion (at most ``users`` requests are ever outstanding) —
    the regime interactive applications actually live in, and a useful
    contrast to the open-loop results (ablation A7).

    The target deployment must expose an ``on_complete`` hook (both
    built-in deployments do); this source chains onto any existing hook.

    Parameters
    ----------
    users:
        Population size (maximum concurrency).
    think:
        Think-time distribution (seconds) between response and next
        request.
    """

    def __init__(
        self,
        sim: Simulation,
        target,
        users: int,
        think,
        site: str | None = None,
        stop_time: float = np.inf,
    ):
        if users < 1:
            raise ValueError(f"users must be >= 1, got {users}")
        if not hasattr(target, "on_complete"):
            raise TypeError(
                f"{type(target).__name__} does not expose an on_complete hook"
            )
        self.sim = sim
        self.target = target
        self.users = int(users)
        self.think = think
        self.site = site
        self.stop_time = stop_time
        self.generated = 0
        self.failed_responses = 0
        self._rng = sim.spawn_rng()
        self._mine: set[int] = set()
        self._prev_hook = target.on_complete
        target.on_complete = self._on_complete
        # One batch insert for the initial think times: draws happen in
        # user order exactly as sequential schedule() calls would, so the
        # calendar tie-break (and thus the run) is unchanged.
        delays = [float(self.think.sample(self._rng)) for _ in range(self.users)]
        sim.schedule_batch(delays, self._send)

    @property
    def outstanding(self) -> int:
        """Requests currently awaiting a response (≤ ``users``)."""
        return len(self._mine)

    def _send(self) -> None:
        if self.sim.now >= self.stop_time:
            return
        request = Request(next(_GLOBAL_RID), site=self.site, created=self.sim.now)
        self._mine.add(request.rid)
        self.generated += 1
        self.target.submit(request)

    def _on_complete(self, request: Request) -> None:
        # Failed responses (bounded-queue drops, resilience-layer
        # deadline misses) flow through here too: the virtual user gets
        # its error back and thinks again, so the closed-loop population
        # is conserved even when the target sheds load.
        if self._prev_hook is not None:
            self._prev_hook(request)
        if request.rid in self._mine:
            self._mine.discard(request.rid)
            if request.outcome not in (None, "ok"):
                self.failed_responses += 1
            self.sim.schedule(float(self.think.sample(self._rng)), self._send)


class TraceSource:
    """Replay an explicit request trace.

    Parameters
    ----------
    sim:
        Owning simulation.
    target:
        Deployment receiving the requests.
    arrival_times:
        Absolute request timestamps (seconds), non-decreasing.
    service_times:
        Optional per-request service demands; when given, stations use
        these instead of sampling (trace-faithful replay).
    site:
        Home-site label stamped on each request.
    """

    def __init__(
        self,
        sim: Simulation,
        target: Target,
        arrival_times,
        service_times=None,
        site: str | None = None,
    ):
        times = np.asarray(arrival_times, dtype=float)
        if times.ndim != 1:
            raise ValueError("arrival_times must be 1-D")
        if times.size and np.any(np.diff(times) < 0):
            raise ValueError("arrival_times must be non-decreasing")
        if times.size and times[0] < sim.now:
            raise ValueError("trace starts in the past")
        services = None
        if service_times is not None:
            services = np.asarray(service_times, dtype=float)
            if services.shape != times.shape:
                raise ValueError(
                    f"service_times shape {services.shape} != arrival_times shape {times.shape}"
                )
            if services.size and services.min() < 0:
                raise ValueError("service_times must be non-negative")
        self.sim = sim
        self.target = target
        self.site = site
        self.generated = 0
        # Lazy scheduling: only the *next* trace event sits in the
        # calendar (O(1) per source instead of O(len(trace)) — a
        # multi-hour Azure trace no longer materializes millions of
        # heap entries up front).
        self._times = times
        self._services = services
        self._next = 0
        if times.size:
            sim.schedule_at(float(times[0]), self._fire)

    @property
    def remaining(self) -> int:
        """Trace entries not yet fired."""
        return int(self._times.size - self._next)

    def _fire(self) -> None:
        i = self._next
        service_time = float(self._services[i]) if self._services is not None else None
        self._next += 1
        self.generated += 1
        if self._next < self._times.size:
            self.sim.schedule_at(float(self._times[self._next]), self._fire)
        request = Request(
            next(_GLOBAL_RID), site=self.site, created=self.sim.now, service_time=service_time
        )
        self.target.submit(request)
