"""Failure injection: exponential fail/repair cycles on stations.

Edge sites are operationally fragile compared with a hyperscale data
center — single machines, remote hands, no N+1 within the site.  A
:class:`FailureInjector` gives each managed station independent
exponential time-to-failure and time-to-repair, using the graceful
semantics of :meth:`repro.sim.station.Station.fail` (in-flight work
finishes, new arrivals queue or drop).  Combined with
:class:`~repro.mitigation.geo_lb.GeoLoadBalancer` it shows the same
mechanism that fixes skew also routes around failures (extension E9).
"""

from __future__ import annotations

from typing import Sequence

from repro.sim.engine import Simulation
from repro.sim.station import Station

__all__ = ["FailureInjector"]


class FailureInjector:
    """Independent exponential fail/repair processes per station.

    Parameters
    ----------
    sim:
        Owning simulation.
    stations:
        Stations subject to failures.
    mtbf:
        Mean time between failures (seconds of *up* time).
    mttr:
        Mean time to repair (seconds of *down* time).
    stop_time:
        No new transitions are scheduled at or beyond this time; a
        station that is down at ``stop_time`` is repaired then (so runs
        always end serviceable and the calendar drains).
    """

    def __init__(
        self,
        sim: Simulation,
        stations: Sequence[Station],
        mtbf: float,
        mttr: float,
        stop_time: float,
    ):
        if not stations:
            raise ValueError("need at least one station")
        if mtbf <= 0 or mttr <= 0:
            raise ValueError(f"mtbf and mttr must be > 0, got {mtbf}, {mttr}")
        if stop_time <= 0:
            raise ValueError(f"stop_time must be > 0, got {stop_time}")
        self.sim = sim
        self.stations = list(stations)
        self.mtbf = float(mtbf)
        self.mttr = float(mttr)
        self.stop_time = float(stop_time)
        self.failures = 0
        self._downtime: dict[str, float] = {s.name: 0.0 for s in self.stations}
        self._down_since: dict[str, float] = {}
        self._rng = sim.spawn_rng()
        for st in self.stations:
            sim.schedule(float(self._rng.exponential(self.mtbf)), self._fail, st)

    def _fail(self, station: Station) -> None:
        if self.sim.now >= self.stop_time or station.failed:
            return
        station.fail()
        self.failures += 1
        self._down_since[station.name] = self.sim.now
        repair_at = min(
            self.sim.now + float(self._rng.exponential(self.mttr)), self.stop_time
        )
        self.sim.schedule_at(repair_at, self._repair, station)

    def _repair(self, station: Station) -> None:
        if not station.failed:
            return
        station.repair()
        self._downtime[station.name] += self.sim.now - self._down_since.pop(station.name)
        next_fail = self.sim.now + float(self._rng.exponential(self.mtbf))
        if next_fail < self.stop_time:
            self.sim.schedule_at(next_fail, self._fail, station)

    def availability(self, station_name: str, horizon: float | None = None) -> float:
        """Fraction of time the named station was up (within ``horizon``)."""
        if station_name not in self._downtime:
            raise KeyError(f"unknown station {station_name!r}")
        end = self.sim.now if horizon is None else float(horizon)
        if end <= 0:
            return 1.0
        down = self._downtime[station_name]
        if station_name in self._down_since:
            down += end - self._down_since[station_name]
        return max(0.0, 1.0 - down / end)

    def mean_availability(self, horizon: float | None = None) -> float:
        """Fleet-average availability."""
        return sum(
            self.availability(s.name, horizon) for s in self.stations
        ) / len(self.stations)
