"""Failure injection: exponential fail/repair cycles on stations.

Edge sites are operationally fragile compared with a hyperscale data
center — single machines, remote hands, no N+1 within the site.  A
:class:`FailureInjector` gives each managed station independent
exponential time-to-failure and time-to-repair, using the graceful
semantics of :meth:`repro.sim.station.Station.fail` (in-flight work
finishes, new arrivals queue or drop).  Combined with
:class:`~repro.mitigation.geo_lb.GeoLoadBalancer` it shows the same
mechanism that fixes skew also routes around failures (extension E9).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.sim.engine import Simulation
from repro.sim.station import Station

__all__ = ["FailureInjector"]


class FailureInjector:
    """Independent exponential fail/repair processes per station.

    Parameters
    ----------
    sim:
        Owning simulation.
    stations:
        Stations subject to failures.
    mtbf:
        Mean time between failures (seconds of *up* time).  ``None``
        disables the stochastic process — use
        :meth:`schedule_outage` to inject deterministic (possibly
        correlated multi-site) outage windows instead.
    mttr:
        Mean time to repair (seconds of *down* time).  ``None`` only
        together with ``mtbf=None``.
    stop_time:
        No new transitions are scheduled at or beyond this time; a
        station that is down at ``stop_time`` is repaired then (so runs
        always end serviceable and the calendar drains).
    """

    def __init__(
        self,
        sim: Simulation,
        stations: Sequence[Station],
        mtbf: float | None,
        mttr: float | None,
        stop_time: float,
    ):
        if not stations:
            raise ValueError("need at least one station")
        if (mtbf is None) != (mttr is None):
            raise ValueError("mtbf and mttr must both be given or both be None")
        if mtbf is not None and (mtbf <= 0 or mttr <= 0):
            raise ValueError(f"mtbf and mttr must be > 0, got {mtbf}, {mttr}")
        if stop_time <= 0:
            raise ValueError(f"stop_time must be > 0, got {stop_time}")
        self.sim = sim
        self.stations = list(stations)
        self.mtbf = None if mtbf is None else float(mtbf)
        self.mttr = None if mttr is None else float(mttr)
        self.stop_time = float(stop_time)
        self.failures = 0
        self._downtime: dict[str, float] = {s.name: 0.0 for s in self.stations}
        self._down_since: dict[str, float] = {}
        # Scheduled forced-outage windows per station, for overlap checks.
        self._windows: dict[str, list[tuple[float, float]]] = {
            s.name: [] for s in self.stations
        }
        self._rng = sim.spawn_rng()
        if self.mtbf is not None:
            for st in self.stations:
                sim.schedule(float(self._rng.exponential(self.mtbf)), self._fail, st)

    def schedule_outage(
        self,
        start: float,
        duration: float,
        stations: Sequence[Station] | None = None,
    ) -> None:
        """Inject a deterministic outage window, correlated across sites.

        All named ``stations`` (default: every managed station) fail
        together at ``start`` and are repaired at ``start + duration``
        (clamped to ``stop_time``) — the shared-cause regime real edge
        platforms exhibit (power/backhaul incidents taking out several
        co-located sites at once), which per-site exponential failures
        cannot produce.

        Windows on the same station must be disjoint and must start
        inside the run: an overlapping (or touching) window used to
        silently mis-stack its fail/repair events onto the earlier
        window's, and a window starting at or past ``stop_time`` was
        silently dropped — both now raise ``ValueError`` so a campaign's
        outage plan fails loudly at scheduling time instead of quietly
        computing an availability it never injected.
        """
        targets = self.stations if stations is None else list(stations)
        names = [st.name for st in targets]
        if duration <= 0:
            raise ValueError(
                f"outage duration must be > 0, got {duration} "
                f"(window starting at {start} on stations {names})"
            )
        if start < self.sim.now:
            raise ValueError(
                f"outage start {start} is in the past (now={self.sim.now}) "
                f"for window [{start}, {start + duration}) on stations {names}"
            )
        if start >= self.stop_time:
            raise ValueError(
                f"outage start {start} is at or past stop_time "
                f"{self.stop_time} for window [{start}, {start + duration}) "
                f"on stations {names}; it would never be injected"
            )
        for st in targets:
            if st.name not in self._downtime:
                raise KeyError(f"station {st.name!r} is not managed by this injector")
        end = start + duration
        # Collect every conflict across every target station before
        # raising: a correlated multi-site window that clashes on three
        # stations should name all three, not fail one at a time.
        conflicts = [
            f"station {st.name!r}: new window [{start}, {end}) overlaps "
            f"scheduled window [{s0}, {e0})"
            for st in targets
            for s0, e0 in self._windows[st.name]
            # Touching counts as overlap: same-timestamp fail/repair
            # events would interleave in insertion order and the
            # second window's fail could land before the first's
            # repair, silently collapsing both.
            if start <= e0 and s0 <= end
        ]
        if conflicts:
            raise ValueError(
                f"outage window [{start}, {end}) conflicts on "
                f"{len(conflicts)} station(s) — "
                + "; ".join(conflicts)
                + "; forced windows on one station must be disjoint"
            )
        repair_at = min(end, self.stop_time)
        for st in targets:
            self._windows[st.name].append((start, end))
            self.sim.schedule_at(start, self._forced_fail, st, repair_at)

    def _forced_fail(self, station: Station, repair_at: float) -> None:
        if self.sim.now >= self.stop_time or station.failed:
            return
        station.fail()
        self.failures += 1
        self._down_since[station.name] = self.sim.now
        self.sim.schedule_at(repair_at, self._repair, station)

    def _fail(self, station: Station) -> None:
        if self.sim.now >= self.stop_time:
            return
        if station.failed:
            # A forced outage window already has this station down; keep
            # the stochastic cycle alive by retrying after a fresh TTF.
            next_fail = self.sim.now + float(self._rng.exponential(self.mtbf))
            if next_fail < self.stop_time:
                self.sim.schedule_at(next_fail, self._fail, station)
            return
        station.fail()
        self.failures += 1
        self._down_since[station.name] = self.sim.now
        repair_at = min(
            self.sim.now + float(self._rng.exponential(self.mttr)), self.stop_time
        )
        self.sim.schedule_at(repair_at, self._repair, station)

    def _repair(self, station: Station) -> None:
        if not station.failed:
            return
        station.repair()
        self._downtime[station.name] += self.sim.now - self._down_since.pop(station.name)
        if self.mtbf is None:
            return
        next_fail = self.sim.now + float(self._rng.exponential(self.mtbf))
        if next_fail < self.stop_time:
            self.sim.schedule_at(next_fail, self._fail, station)

    def availability(self, station_name: str, horizon: float | None = None) -> float:
        """Fraction of time the named station was up (within ``horizon``)."""
        if station_name not in self._downtime:
            raise KeyError(f"unknown station {station_name!r}")
        end = self.sim.now if horizon is None else float(horizon)
        if end <= 0:
            return 1.0
        down = self._downtime[station_name]
        if station_name in self._down_since:
            down += end - self._down_since[station_name]
        return max(0.0, 1.0 - down / end)

    def mean_availability(self, horizon: float | None = None) -> float:
        """Fleet-average availability."""
        return sum(
            self.availability(s.name, horizon) for s in self.stations
        ) / len(self.stations)
