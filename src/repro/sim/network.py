"""Network round-trip latency models.

The paper treats the network as an additive round-trip time per request:
1 ms to the edge, and ~15 / 25 / 54 / 80 ms to the four cloud locations
(Section 4.1).  Real WAN RTTs jitter, so besides the constant model we
provide truncated-normal jitter (typical intra-continental paths) and a
lognormal model (long-tailed cellular/transit paths).

A model samples *one-way* delays; the two legs of a request are sampled
independently, so the mean RTT is the configured value.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "NormalJitterLatency",
    "LognormalLatency",
    "LossyLatency",
]


class LatencyModel(ABC):
    """One-way network delay sampler with a known mean RTT."""

    @property
    @abstractmethod
    def mean_rtt(self) -> float:
        """Mean round-trip time in seconds."""

    @abstractmethod
    def sample_oneway(self, rng: np.random.Generator) -> float:
        """Draw one one-way delay in seconds (non-negative)."""

    def sample_oneway_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` one-way delays in one call.

        Bit-identical to ``n`` sequential :meth:`sample_oneway` draws
        from the same generator — NumPy's vectorized samplers consume
        the bit stream element by element exactly as scalar calls do —
        so the fastsim topology path can vectorize network legs without
        perturbing any seeded result.  Subclasses override with a true
        vectorized draw; this fallback just loops.
        """
        return np.fromiter(
            (self.sample_oneway(rng) for _ in range(n)), dtype=float, count=n
        )

    def is_lost(self, rng: np.random.Generator, now: float = 0.0) -> bool:
        """Whether a packet sent at virtual time ``now`` is lost.

        The base models are lossless and draw no randomness here, so
        wrapping a deployment in a lossy model never perturbs the RNG
        streams of existing loss-free experiments.
        """
        return False

    @property
    def mean_rtt_ms(self) -> float:
        """Mean round-trip time in milliseconds (for reports)."""
        return self.mean_rtt * 1e3


class ConstantLatency(LatencyModel):
    """Deterministic RTT — the paper's idealized network."""

    def __init__(self, rtt: float):
        if rtt < 0:
            raise ValueError(f"rtt must be >= 0, got {rtt}")
        self._rtt = float(rtt)

    @classmethod
    def from_ms(cls, rtt_ms: float) -> "ConstantLatency":
        """Construct from an RTT in milliseconds."""
        return cls(rtt_ms * 1e-3)

    @property
    def mean_rtt(self) -> float:
        return self._rtt

    def sample_oneway(self, rng: np.random.Generator) -> float:
        return self._rtt / 2.0

    def sample_oneway_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self._rtt / 2.0)  # no randomness consumed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstantLatency(rtt={self._rtt * 1e3:.3f} ms)"


class NormalJitterLatency(LatencyModel):
    """RTT with Gaussian jitter truncated at a propagation floor.

    Parameters
    ----------
    rtt:
        Target mean RTT in seconds.
    jitter_std:
        Standard deviation of the *one-way* jitter in seconds.
    floor:
        Minimum one-way delay (speed-of-light propagation), default 40%
        of the configured one-way mean.
    """

    def __init__(self, rtt: float, jitter_std: float, floor: float | None = None):
        if rtt <= 0:
            raise ValueError(f"rtt must be > 0, got {rtt}")
        if jitter_std < 0:
            raise ValueError(f"jitter_std must be >= 0, got {jitter_std}")
        self._rtt = float(rtt)
        self.jitter_std = float(jitter_std)
        self.floor = 0.4 * rtt / 2.0 if floor is None else float(floor)
        if self.floor > rtt / 2.0:
            raise ValueError(f"floor {self.floor} exceeds one-way mean {rtt / 2.0}")

    @classmethod
    def from_ms(cls, rtt_ms: float, jitter_std_ms: float) -> "NormalJitterLatency":
        """Construct from millisecond parameters."""
        return cls(rtt_ms * 1e-3, jitter_std_ms * 1e-3)

    @property
    def mean_rtt(self) -> float:
        # Truncation slightly raises the mean; negligible for realistic
        # jitter (< 1% when jitter_std < 25% of the one-way delay).
        return self._rtt

    def sample_oneway(self, rng: np.random.Generator) -> float:
        return max(self.floor, rng.normal(self._rtt / 2.0, self.jitter_std))

    def sample_oneway_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.maximum(self.floor, rng.normal(self._rtt / 2.0, self.jitter_std, n))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NormalJitterLatency(rtt={self._rtt * 1e3:.3f} ms, "
            f"jitter_std={self.jitter_std * 1e3:.3f} ms)"
        )


class LognormalLatency(LatencyModel):
    """Long-tailed RTT (cellular / congested transit paths).

    One-way delays are ``floor + LogNormal`` with the lognormal's mean
    equal to ``(rtt/2 - floor)`` and squared CoV ``cv2``.
    """

    def __init__(self, rtt: float, cv2: float = 0.25, floor: float | None = None):
        if rtt <= 0:
            raise ValueError(f"rtt must be > 0, got {rtt}")
        if cv2 <= 0:
            raise ValueError(f"cv2 must be > 0, got {cv2}")
        self._rtt = float(rtt)
        self.floor = 0.5 * rtt / 2.0 if floor is None else float(floor)
        excess = rtt / 2.0 - self.floor
        if excess <= 0:
            raise ValueError(f"floor {self.floor} leaves no room under one-way mean")
        self.cv2 = float(cv2)
        self._sigma2 = np.log1p(cv2)
        self._mu = np.log(excess) - self._sigma2 / 2.0

    @classmethod
    def from_ms(cls, rtt_ms: float, cv2: float = 0.25) -> "LognormalLatency":
        """Construct from an RTT in milliseconds."""
        return cls(rtt_ms * 1e-3, cv2)

    @property
    def mean_rtt(self) -> float:
        return self._rtt

    def sample_oneway(self, rng: np.random.Generator) -> float:
        return self.floor + rng.lognormal(self._mu, np.sqrt(self._sigma2))

    def sample_oneway_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.floor + rng.lognormal(self._mu, np.sqrt(self._sigma2), n)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LognormalLatency(rtt={self._rtt * 1e3:.3f} ms, cv2={self.cv2})"


class LossyLatency(LatencyModel):
    """Wrap any latency model with packet loss and outage windows.

    A request leg is *lost* — it silently never arrives, rather than
    arriving late — with probability ``loss_prob`` in steady state, and
    with probability ``outage_loss_prob`` (default 1.0, a black-hole
    link) while virtual time falls inside any of the configured
    ``outages`` windows.  Loss is what makes client-side deadlines
    essential: without a timeout, a lost request hangs forever.

    Parameters
    ----------
    inner:
        Delay model used for the legs that do arrive.
    loss_prob:
        Steady-state per-leg loss probability in [0, 1).
    outages:
        Iterable of ``(start, end)`` virtual-time windows of elevated
        loss (e.g. a link flap or an upstream routing incident).
    outage_loss_prob:
        Per-leg loss probability inside an outage window.
    """

    def __init__(
        self,
        inner: LatencyModel,
        loss_prob: float = 0.0,
        outages: "list[tuple[float, float]] | None" = None,
        outage_loss_prob: float = 1.0,
    ):
        if not 0.0 <= loss_prob < 1.0:
            raise ValueError(f"loss_prob must be in [0, 1), got {loss_prob}")
        if not 0.0 <= outage_loss_prob <= 1.0:
            raise ValueError(f"outage_loss_prob must be in [0, 1], got {outage_loss_prob}")
        self.inner = inner
        self.loss_prob = float(loss_prob)
        self.outage_loss_prob = float(outage_loss_prob)
        self.outages = [(float(a), float(b)) for a, b in (outages or [])]
        for a, b in self.outages:
            if b <= a:
                raise ValueError(f"outage window ({a}, {b}) is empty")
        self.lost = 0

    @property
    def mean_rtt(self) -> float:
        return self.inner.mean_rtt

    def sample_oneway(self, rng: np.random.Generator) -> float:
        return self.inner.sample_oneway(rng)

    def sample_oneway_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.inner.sample_oneway_batch(rng, n)

    def in_outage(self, now: float) -> bool:
        """Whether ``now`` falls inside a configured outage window."""
        return any(a <= now < b for a, b in self.outages)

    def is_lost(self, rng: np.random.Generator, now: float = 0.0) -> bool:
        p = self.outage_loss_prob if self.in_outage(now) else self.loss_prob
        if p <= 0.0:
            return False
        lost = bool(rng.random() < p)
        if lost:
            self.lost += 1
        return lost

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LossyLatency({self.inner!r}, loss_prob={self.loss_prob}, "
            f"outages={len(self.outages)})"
        )
