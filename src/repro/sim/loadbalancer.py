"""Dispatch policies for a multi-station cloud deployment.

The paper's cloud runs HAProxy in front of k servers.  Analytically the
paper models the cloud as one central M/M/k queue; a real load balancer
dispatches each request to a specific server queue on arrival, which is
strictly worse than the central queue.  We implement the common HAProxy
policies so the gap is measurable (ablation A1 in DESIGN.md):

* :class:`RoundRobin` — HAProxy's default.
* :class:`RandomDispatch` — uniform random.
* :class:`JoinShortestQueue` — HAProxy ``leastconn`` (fewest in system).
* :class:`LeastWorkLeft` — idealized policy using (approximate) backlog
  seconds rather than counts.
* :class:`BackpressureDispatch` — overload-aware wrapper: reads each
  station's ``pressure()`` signal and steers around saturated (and
  failed) backends, the dispatch half of server-side overload control.

State-aware policies (JSQ, least-work, backpressure) never pick a
``failed()`` station while a healthy one exists — a load balancer sees
dead backends through health checks.

The central-queue ideal is expressed in the topology layer as a single
:class:`~repro.sim.station.Station` with ``k`` servers, not a policy.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np

from repro.sim.station import Station

__all__ = [
    "DispatchPolicy",
    "RoundRobin",
    "RandomDispatch",
    "JoinShortestQueue",
    "LeastWorkLeft",
    "BackpressureDispatch",
]


def _healthy(stations: Sequence[Station]) -> Sequence[Station]:
    """Stations passing health checks; all of them if every one is down."""
    alive = [s for s in stations if not s.failed]
    return alive if alive else stations


class DispatchPolicy(ABC):
    """Chooses which backend station receives an arriving request."""

    @abstractmethod
    def choose(self, stations: Sequence[Station], rng: np.random.Generator) -> Station:
        """Return the station that should serve the next request."""


class RoundRobin(DispatchPolicy):
    """Cycle through backends in order (HAProxy's default policy)."""

    def __init__(self) -> None:
        self._next = 0

    def choose(self, stations: Sequence[Station], rng: np.random.Generator) -> Station:
        if not stations:
            raise ValueError("no backend stations")
        station = stations[self._next % len(stations)]
        self._next += 1
        return station


class RandomDispatch(DispatchPolicy):
    """Pick a backend uniformly at random."""

    def choose(self, stations: Sequence[Station], rng: np.random.Generator) -> Station:
        if not stations:
            raise ValueError("no backend stations")
        return stations[int(rng.integers(len(stations)))]


class JoinShortestQueue(DispatchPolicy):
    """Send to the backend with the fewest requests in system.

    Equivalent to HAProxy ``leastconn``; ties are broken uniformly at
    random to avoid systematic bias toward low indices.
    """

    def choose(self, stations: Sequence[Station], rng: np.random.Generator) -> Station:
        if not stations:
            raise ValueError("no backend stations")
        stations = _healthy(stations)
        occupancy = np.fromiter((s.in_system for s in stations), dtype=np.int64)
        candidates = np.flatnonzero(occupancy == occupancy.min())
        return stations[int(candidates[rng.integers(len(candidates))])]


class LeastWorkLeft(DispatchPolicy):
    """Send to the backend with the least unfinished work (in seconds).

    Uses :meth:`repro.sim.station.Station.backlog_work`, an expected-work
    estimate; with known per-request service times (trace replay) this is
    the idealized SITA-style policy.
    """

    def choose(self, stations: Sequence[Station], rng: np.random.Generator) -> Station:
        if not stations:
            raise ValueError("no backend stations")
        stations = _healthy(stations)
        work = np.fromiter((s.backlog_work() for s in stations), dtype=float)
        candidates = np.flatnonzero(work == work.min())
        return stations[int(candidates[rng.integers(len(candidates))])]


class BackpressureDispatch(DispatchPolicy):
    """Steer around saturated backends using their overload signal.

    Dispatches through ``inner`` (default :class:`JoinShortestQueue`)
    restricted to healthy stations whose
    :meth:`~repro.sim.station.Station.pressure` — in-system requests per
    server — is below ``pressure_limit``.  When every healthy station is
    past the limit, the least-pressured one is chosen (degraded but
    still directed away from the worst queues).  This closes the loop
    with the resilience layer: the same per-station signal the client's
    failover reads (``saturation_threshold``) steers dispatch *before*
    requests pile onto a drowning site.
    """

    def __init__(self, inner: DispatchPolicy | None = None, pressure_limit: float = 2.0):
        if pressure_limit <= 0:
            raise ValueError(f"pressure_limit must be > 0, got {pressure_limit}")
        self.inner = inner if inner is not None else JoinShortestQueue()
        self.pressure_limit = float(pressure_limit)
        self.steered = 0  # dispatches where >= 1 backend was over the limit

    def choose(self, stations: Sequence[Station], rng: np.random.Generator) -> Station:
        if not stations:
            raise ValueError("no backend stations")
        alive = _healthy(stations)
        open_ = [s for s in alive if s.pressure() < self.pressure_limit]
        if len(open_) < len(alive):
            self.steered += 1
        if open_:
            return self.inner.choose(open_, rng)
        return min(alive, key=lambda s: s.pressure())

    def observables(self) -> dict:
        """Pull-model gauge readers for the telemetry registry."""
        return {
            "steered": lambda: self.steered,
            "pressure_limit": lambda: self.pressure_limit,
        }
