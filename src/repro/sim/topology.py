"""Edge and cloud deployment topologies.

Two deployment shapes mirror Figure 1 of the paper:

* :class:`EdgeDeployment` — k geo-distributed sites, each a nearby
  station behind a low-latency link; a request is served by the site its
  client is attached to (optionally redirected by a
  :class:`SiteRouter`, the hook used by geographic load balancing).
* :class:`CloudDeployment` — a distant data center: either one pooled
  central-queue station (the paper's analytic M/M/k model) or multiple
  per-server stations behind a dispatch policy (the HAProxy reality).

Both share a submit → (wire out) → queue/serve → (wire back) → log
pipeline; the deployment, not the station, owns the network legs.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Protocol

from repro.queueing.distributions import Distribution
from repro.sim.engine import Simulation
from repro.sim.loadbalancer import DispatchPolicy
from repro.sim.network import LatencyModel
from repro.sim.request import Request
from repro.sim.station import Station
from repro.sim.tracing import RequestLog
from repro.stats.refusals import RefusalCounts

__all__ = ["EdgeSite", "EdgeDeployment", "CloudDeployment", "SiteRouter"]


class SiteRouter(Protocol):
    """Policy hook that may re-route a request away from its home site.

    Implementations return the serving site and the extra one-way delay
    (seconds) incurred by the redirection (e.g. the inter-site hop of
    geographic load balancing).  Returning the home site with 0.0 keeps
    the default behaviour.
    """

    def route(
        self, deployment: "EdgeDeployment", request: Request, home: "EdgeSite"
    ) -> tuple["EdgeSite", float]: ...


class EdgeSite:
    """One edge location: a station reached over a short link.

    ``discipline``, ``admission`` and ``brownout`` are the per-station
    overload controls (see :mod:`repro.sim.overload` and
    :mod:`repro.mitigation.admission`); each instance is stateful and
    belongs to this site alone.
    """

    def __init__(
        self,
        sim: Simulation,
        name: str,
        servers: int,
        latency: LatencyModel,
        service_dist: Distribution | None = None,
        queue_capacity: int | None = None,
        discipline=None,
        admission=None,
        brownout=None,
    ):
        self.sim = sim
        self.name = name
        self.latency = latency
        self.station = Station(
            sim,
            servers,
            service_dist,
            name=name,
            queue_capacity=queue_capacity,
            discipline=discipline,
            admission=admission,
            brownout=brownout,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EdgeSite(name={self.name!r}, servers={self.station.servers})"


class EdgeDeployment:
    """k edge sites, each serving its locally attached clients.

    Parameters
    ----------
    sim:
        Owning simulation.
    sites:
        The edge sites.  Requests carry the name of their home site.
    router:
        Optional redirection policy (geographic load balancing).
    """

    def __init__(
        self,
        sim: Simulation,
        sites: Sequence[EdgeSite],
        router: SiteRouter | None = None,
    ):
        if not sites:
            raise ValueError("need at least one edge site")
        names = [s.name for s in sites]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate site names: {names}")
        self.sim = sim
        self.sites = list(sites)
        self.by_name = {s.name: s for s in self.sites}
        self.router = router
        self.log = RequestLog()
        self.on_complete = None  # optional hook: called with each finished request
        self.dropped = 0
        self.shed = 0
        self.rejected = 0
        self.lost = 0
        self._rng = sim.spawn_rng()
        self._tel = sim.telemetry
        for site in self.sites:
            site.station.on_departure = self._on_departure
            site.station.on_drop = self._on_drop
            site.station.on_shed = self._on_shed
            site.station.on_reject = self._on_reject
            # Map station back to its site for the return wire leg.
            site.station.site_ref = site  # type: ignore[attr-defined]

    def submit(self, request: Request) -> None:
        """Send a request from its client toward its home edge site."""
        home = self.by_name.get(request.site)
        if home is None:
            raise KeyError(f"request {request.rid} names unknown site {request.site!r}")
        extra = 0.0
        site = home
        if self.router is not None:
            site, extra = self.router.route(self, request, home)
            if site is not home:
                request.redirects += 1
                request.site = site.name
        if site.latency.is_lost(self._rng, self.sim.now):
            self.lost += 1
            request.outcome = "lost"
            return  # silently never arrives; only a client deadline recovers it
        delay = site.latency.sample_oneway(self._rng) + extra
        self.sim.schedule(delay, site.station.arrive, request)

    def cancel(self, request: Request) -> bool:
        """Best-effort cancellation of a queued request (client timeout)."""
        site = self.by_name.get(request.site)
        return site is not None and site.station.cancel(request)

    def _on_departure(self, request: Request) -> None:
        site = self.by_name[request.site]
        if site.latency.is_lost(self._rng, self.sim.now):
            self.lost += 1
            request.outcome = "lost"
            return  # response lost on the return leg: served but never seen
        delay = site.latency.sample_oneway(self._rng)
        self.sim.schedule(delay, self._complete, request)

    def _on_drop(self, request: Request) -> None:
        # Bounded-queue rejection: the refusal still crosses the return
        # wire leg, then surfaces through ``on_complete`` with a failed
        # outcome so closed-loop users and resilient clients observe it
        # (conserving the closed-loop population).
        self._refuse(request, "dropped")

    def _on_shed(self, request: Request) -> None:
        self._refuse(request, "shed")

    def _on_reject(self, request: Request) -> None:
        self._refuse(request, "rejected")

    def _refuse(self, request: Request, outcome: str) -> None:
        site = self.by_name[request.site]
        delay = site.latency.sample_oneway(self._rng)
        self.sim.schedule(delay, self._complete_failed, request, outcome)

    def _complete_failed(self, request: Request, outcome: str) -> None:
        request.completed = self.sim.now
        request.outcome = outcome
        if outcome == "shed":
            self.shed += 1
        elif outcome == "rejected":
            self.rejected += 1
        else:
            self.dropped += 1
        if self._tel is not None:
            self._tel.record_refusal(request, outcome)
        if self.on_complete is not None:
            self.on_complete(request)

    def _complete(self, request: Request) -> None:
        request.completed = self.sim.now
        self.log.add(request)
        if self._tel is not None:
            self._tel.record_success(request)
        if self.on_complete is not None:
            self.on_complete(request)

    @property
    def refusal_counts(self) -> RefusalCounts:
        """Refusals that surfaced to clients, as one value."""
        return RefusalCounts.from_deployment(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EdgeDeployment(sites={[s.name for s in self.sites]})"


class CloudDeployment:
    """A distant cloud data center serving the aggregate workload.

    Parameters
    ----------
    sim:
        Owning simulation.
    servers:
        Total cloud servers (the paper's k, times cores per server if the
        service model is per-core).
    latency:
        Client ↔ cloud network model (same for all clients, as in the
        paper where one region hosts the workload generator).
    service_dist:
        Service-time distribution for requests without pre-assigned times.
    policy:
        ``None`` models the ideal central queue (one station with all
        servers — the paper's M/M/k).  A :class:`DispatchPolicy` models a
        load balancer in front of ``backends`` per-backend stations.
    backends:
        Number of backend stations when ``policy`` is given; ``servers``
        must divide evenly among them.
    lb_overhead:
        Extra one-way delay (seconds) of the load-balancer hop the
        cloud path crosses and the edge path does not (HAProxy in the
        paper's setup); applied on the inbound leg.
    queue_capacity:
        Per-station bound on *waiting* requests (``None`` = unbounded).
        Rejections route through the drop path like edge drops.
    discipline / admission / brownout:
        Per-station overload controls (see :class:`EdgeSite`).  These
        are stateful one-per-station objects, so with multiple backends
        pass a zero-argument *factory* returning a fresh instance; a
        plain instance is accepted when there is a single station.
    """

    def __init__(
        self,
        sim: Simulation,
        servers: int,
        latency: LatencyModel,
        service_dist: Distribution | None = None,
        policy: DispatchPolicy | None = None,
        backends: int | None = None,
        lb_overhead: float = 0.0,
        queue_capacity: int | None = None,
        discipline=None,
        admission=None,
        brownout=None,
    ):
        if lb_overhead < 0:
            raise ValueError(f"lb_overhead must be >= 0, got {lb_overhead}")
        self.sim = sim
        self.latency = latency
        self.policy = policy
        self.lb_overhead = float(lb_overhead)
        self.log = RequestLog()
        self.on_complete = None  # optional hook: called with each finished request
        self.dropped = 0
        self.shed = 0
        self.rejected = 0
        self.lost = 0
        self._rng = sim.spawn_rng()
        self._tel = sim.telemetry

        def make(control):
            return control() if callable(control) else control

        def station(n_servers, name):
            return Station(
                sim, n_servers, service_dist, name=name,
                on_departure=self._on_departure, queue_capacity=queue_capacity,
                on_drop=self._on_drop, on_shed=self._on_shed, on_reject=self._on_reject,
                discipline=make(discipline), admission=make(admission),
                brownout=make(brownout),
            )

        if policy is None:
            self.stations = [station(servers, "cloud")]
        else:
            if backends is None:
                raise ValueError("backends is required when a dispatch policy is given")
            if servers % backends != 0:
                raise ValueError(f"servers ({servers}) must divide evenly among {backends} backends")
            per = servers // backends
            self.stations = [station(per, f"cloud-{i}") for i in range(backends)]
        if self._tel is not None and policy is not None:
            self._tel.register_observables("lb.cloud", policy)

    def submit(self, request: Request) -> None:
        """Send a request from its client toward the cloud."""
        if self.latency.is_lost(self._rng, self.sim.now):
            self.lost += 1
            request.outcome = "lost"
            return
        delay = self.latency.sample_oneway(self._rng) + self.lb_overhead
        self.sim.schedule(delay, self._dispatch, request)

    def cancel(self, request: Request) -> bool:
        """Best-effort cancellation of a queued request (client timeout)."""
        return any(st.cancel(request) for st in self.stations)

    def _dispatch(self, request: Request) -> None:
        if request.canceled:
            return  # abandoned while crossing the wire; never reaches a queue
        if self.policy is None:
            station = self.stations[0]
        else:
            station = self.policy.choose(self.stations, self._rng)
        station.arrive(request)

    def _on_departure(self, request: Request) -> None:
        if self.latency.is_lost(self._rng, self.sim.now):
            self.lost += 1
            request.outcome = "lost"
            return
        delay = self.latency.sample_oneway(self._rng)
        self.sim.schedule(delay, self._complete, request)

    def _on_drop(self, request: Request) -> None:
        self._refuse(request, "dropped")

    def _on_shed(self, request: Request) -> None:
        self._refuse(request, "shed")

    def _on_reject(self, request: Request) -> None:
        self._refuse(request, "rejected")

    def _refuse(self, request: Request, outcome: str) -> None:
        delay = self.latency.sample_oneway(self._rng)
        self.sim.schedule(delay, self._complete_failed, request, outcome)

    def _complete_failed(self, request: Request, outcome: str) -> None:
        request.completed = self.sim.now
        request.outcome = outcome
        if outcome == "shed":
            self.shed += 1
        elif outcome == "rejected":
            self.rejected += 1
        else:
            self.dropped += 1
        if self._tel is not None:
            self._tel.record_refusal(request, outcome)
        if self.on_complete is not None:
            self.on_complete(request)

    def _complete(self, request: Request) -> None:
        request.completed = self.sim.now
        self.log.add(request)
        if self._tel is not None:
            self._tel.record_success(request)
        if self.on_complete is not None:
            self.on_complete(request)

    @property
    def refusal_counts(self) -> RefusalCounts:
        """Refusals that surfaced to clients, as one value."""
        return RefusalCounts.from_deployment(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "central-queue" if self.policy is None else type(self.policy).__name__
        total = sum(s.servers for s in self.stations)
        return f"CloudDeployment(servers={total}, dispatch={kind})"
