"""Discrete-event simulation substrate.

This subpackage replaces the paper's EC2 testbed (Section 4.1): edge
sites and the cloud data center become FCFS multi-server queue stations
connected to clients through network-latency models, driven by open-loop
workload sources — the same topology the paper measures, minus the WAN.

Two execution paths are provided:

* :mod:`repro.sim.engine` + friends — a full event-calendar simulator
  with per-request tracing, load-balancer policies, redirection hooks
  (for geographic load balancing) and dynamic capacity changes.
* :mod:`repro.sim.fastsim` — a vectorized Kiefer–Wolfowitz recursion for
  FCFS G/G/c queues, ~50× faster for large parameter sweeps; the test
  suite cross-validates the two paths against each other and against
  exact M/M/k theory.
"""

from repro.sim.batching import BatchingStation, affine_batch_time
from repro.sim.client import ClosedLoopSource, OpenLoopSource, TraceSource
from repro.sim.engine import Simulation
from repro.sim.failures import FailureInjector
from repro.sim.fastsim import (
    simulate_edge_system,
    simulate_fcfs_queue,
    simulate_single_queue_system,
)
from repro.sim.geo import GeoComparison, Region, simulate_geo_comparison
from repro.sim.loadbalancer import (
    BackpressureDispatch,
    JoinShortestQueue,
    LeastWorkLeft,
    RandomDispatch,
    RoundRobin,
)
from repro.sim.overload import (
    AdaptiveLIFODiscipline,
    BrownoutController,
    CoDelDiscipline,
    FIFODiscipline,
    QueueDiscipline,
)
from repro.sim.network import (
    ConstantLatency,
    LatencyModel,
    LognormalLatency,
    LossyLatency,
    NormalJitterLatency,
)
from repro.sim.request import Request
from repro.sim.resilience import (
    BreakerConfig,
    CircuitBreaker,
    HedgePolicy,
    ResilientClient,
    RetryPolicy,
)
from repro.sim.runner import run_comparison, run_deployment
from repro.sim.station import Station
from repro.sim.topology import CloudDeployment, EdgeDeployment, EdgeSite
from repro.sim.tracing import LatencyBreakdown, RequestLog

__all__ = [
    "Simulation",
    "FailureInjector",
    "Request",
    "Station",
    "BatchingStation",
    "affine_batch_time",
    "LatencyModel",
    "ConstantLatency",
    "NormalJitterLatency",
    "LognormalLatency",
    "LossyLatency",
    "ResilientClient",
    "RetryPolicy",
    "HedgePolicy",
    "BreakerConfig",
    "CircuitBreaker",
    "RoundRobin",
    "RandomDispatch",
    "JoinShortestQueue",
    "LeastWorkLeft",
    "BackpressureDispatch",
    "QueueDiscipline",
    "FIFODiscipline",
    "AdaptiveLIFODiscipline",
    "CoDelDiscipline",
    "BrownoutController",
    "EdgeSite",
    "EdgeDeployment",
    "CloudDeployment",
    "OpenLoopSource",
    "ClosedLoopSource",
    "TraceSource",
    "RequestLog",
    "LatencyBreakdown",
    "run_deployment",
    "run_comparison",
    "simulate_fcfs_queue",
    "simulate_edge_system",
    "simulate_single_queue_system",
    "Region",
    "GeoComparison",
    "simulate_geo_comparison",
]
