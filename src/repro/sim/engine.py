"""Event-calendar core of the discrete-event simulator.

A :class:`Simulation` owns the virtual clock, an event calendar and the
master random generator.  Events are plain callbacks; ties in time are
broken deterministically by insertion order, so a run is fully
reproducible given its seed.

The calendar is pluggable (:mod:`repro.sim.calendar`): the default is a
bucketed calendar queue with O(1) amortized scheduling; ``calendar=
"heap"`` (or ``REPRO_CALENDAR=heap``) selects the classic binary heap.
Both pop in exact ``(time, insertion-seq)`` order, so results are
bit-identical whichever backend is active — pinned by the engine tests
and the golden campaign matrix.

The engine is deliberately minimal (schedule / run / stop): processes
like stations and sources are built on top as callback-driven state
machines, which profiling shows is ~3× faster in CPython than a
generator-based process abstraction for this workload shape.
"""

from __future__ import annotations

import os
from itertools import count
from collections.abc import Callable, Iterable
from typing import Any

import numpy as np

from repro.analysis.invariants import checker_for_new_simulation
from repro.obs.provider import current_telemetry
from repro.parallel.seeding import seed_sequence, spawn_child
from repro.sim.calendar import CalendarQueue, HeapCalendar

__all__ = ["EventBudgetExceeded", "Simulation"]


class EventBudgetExceeded(RuntimeError):
    """A run exhausted its event budget (``Simulation.run(max_events=)``).

    Carries the budget and the virtual time reached so a campaign's
    salvage report can say *where* a runaway scenario was stopped.  The
    count of executed events is a deterministic function of the seed and
    the model, so a scenario either always blows its budget or never
    does — quarantine decisions are bit-identical across sequential and
    parallel campaign runs.
    """

    def __init__(self, max_events: int, now: float):
        super().__init__(
            f"event budget of {max_events} events exhausted at virtual "
            f"time {now:.6f}s; the scenario was stopped mid-run"
        )
        self.max_events = max_events
        self.now = now


# One dispatch-loop template specialized four ways — (budgeted?, checked?)
# — instead of three hand-maintained near-identical loops.  The optional
# lines are spliced in at import time and compiled once, so the common
# unbudgeted/unchecked path contains *no* budget counter and *no*
# invariant guards: the zero-cost-when-off property is structural, not a
# runtime branch (pinned by the on/off bit-identity tests).
_LOOP_TEMPLATE = """\
def _dispatch(sim, calendar, until, max_events, invariants):
    peek = calendar.peek
    pop = calendar.pop
{budget_init}
    while not sim._stopped:
        head = peek()
        if head is None:
            # Calendar drained: nothing can ever fire again.
            if until is not None and until > sim.now:
                sim.now = until
            return
        time = head[0]
        if until is not None and time > until:
            sim.now = until
            return
{budget_check}
        pop()
{check_pre}
        sim.now = time
        head[2](*head[3])
{check_post}
{budget_count}
    # stopped: leave the clock where the last event put it
"""


def _build_dispatch(budgeted: bool, checked: bool):
    src = _LOOP_TEMPLATE.format(
        budget_init="    executed = 0" if budgeted else "",
        budget_check=(
            "        if executed >= max_events:\n"
            "            raise EventBudgetExceeded(max_events, sim.now)"
            if budgeted
            else ""
        ),
        check_pre=(
            "        invariants.check_event_time(time, sim.now)" if checked else ""
        ),
        check_post=(
            "        invariants.check_handler_left_clock(time, sim.now)"
            if checked
            else ""
        ),
        budget_count="        executed += 1" if budgeted else "",
    )
    namespace: dict[str, Any] = {"EventBudgetExceeded": EventBudgetExceeded}
    filename = f"<repro.sim.engine dispatch budgeted={budgeted} checked={checked}>"
    exec(compile(src, filename, "exec"), namespace)
    return namespace["_dispatch"]


_DISPATCH = {
    (budgeted, checked): _build_dispatch(budgeted, checked)
    for budgeted in (False, True)
    for checked in (False, True)
}


class Simulation:
    """Discrete-event simulation kernel.

    Parameters
    ----------
    seed:
        Seed for the master :class:`numpy.random.Generator`.  Components
    that need independent streams should call :meth:`spawn_rng`.
    telemetry:
        Explicit observability bundle (:class:`repro.obs.Telemetry`).
        When omitted, the process-wide provider is consulted
        (:func:`repro.obs.install`); the default is ``None`` — no
        telemetry, and the simulator runs exactly as before the
        observability layer existed.
    calendar:
        Event-calendar backend: ``"calendar"`` (bucketed calendar queue,
        the default) or ``"heap"`` (binary heap).  ``None`` consults the
        ``REPRO_CALENDAR`` environment variable, falling back to
        ``"calendar"``.  Both produce bit-identical runs; the knob exists
        for benchmarking and for pinning the equivalence in tests.

    Attributes
    ----------
    now:
        Current virtual time in seconds.
    rng:
        Master random generator (components usually use spawned streams).
    telemetry:
        The bound telemetry instance, or ``None`` when disabled.
        Components read this once at construction time, so the event
        hot path never pays for disabled observability.
    """

    def __init__(self, seed: int | None = 0, telemetry=None, calendar: str | None = None):
        self.now: float = 0.0
        self._seedseq = seed_sequence(seed)
        self.rng = np.random.default_rng(self._seedseq)
        self.telemetry = telemetry if telemetry is not None else current_telemetry()
        if self.telemetry is not None:
            self.telemetry.bind(self)
        # Runtime invariant checking (repro.analysis.invariants): None
        # unless REPRO_CHECK is set, and every hook site guards on that —
        # the disabled hot paths are exactly the pre-checker ones.
        self.invariants = checker_for_new_simulation()
        kind = calendar if calendar is not None else os.environ.get("REPRO_CALENDAR", "calendar")
        if kind == "calendar":
            self._calendar: CalendarQueue | HeapCalendar = CalendarQueue()
        elif kind == "heap":
            self._calendar = HeapCalendar()
        else:
            raise ValueError(f"calendar must be 'calendar' or 'heap', got {kind!r}")
        self.calendar_kind = kind
        self._seq = count()
        self._running = False
        self._stopped = False

    def spawn_rng(self) -> np.random.Generator:
        """Return an independent random stream for one component.

        Streams are :class:`numpy.random.SeedSequence` children of the
        simulation's seed, numbered by spawn order (the shared derivation
        in :mod:`repro.parallel.seeding`).  Unlike the old scheme of
        drawing a raw integer from the master RNG, children cannot
        collide with each other, with the master stream, or with streams
        of a simulation seeded nearby (seed, seed+1, …).
        """
        return np.random.default_rng(spawn_child(self._seedseq))

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Raises
        ------
        ValueError
            If ``delay`` is negative (events cannot run in the past).
        """
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self._calendar.push((self.now + delay, next(self._seq), callback, args))

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` at absolute virtual ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now ({self.now})")
        self._calendar.push((time, next(self._seq), callback, args))

    def schedule_batch(
        self, delays: Iterable[float], callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``callback(*args)`` once per delay, in iteration order.

        Semantically identical to calling :meth:`schedule` for each delay
        in turn — insertion sequence numbers (the deterministic tie-break)
        are allocated in iteration order — but the calendar is touched
        through one bound method in one loop, so sources and stations can
        insert runs of events without per-call dispatch overhead.
        """
        now = self.now
        push = self._calendar.push
        seq = self._seq
        for delay in delays:
            if delay < 0:
                raise ValueError(f"delay must be >= 0, got {delay}")
            push((now + delay, next(seq), callback, args))

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Execute events in time order.

        Parameters
        ----------
        until:
            Stop once the clock would pass this virtual time (the clock is
            left exactly at ``until``).  ``None`` drains the calendar.
        max_events:
            Event budget: raise :class:`EventBudgetExceeded` after this
            many events have executed (``None`` = unbounded, the default
            hot path).  The budget is a resource governor for campaign
            runners — a runaway scenario is stopped deterministically
            instead of stalling a whole sweep.

        Returns
        -------
        float
            The virtual time at which the run stopped.
        """
        if self._running:
            raise RuntimeError("simulation is already running (re-entrant run())")
        if max_events is not None and max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self._running = True
        self._stopped = False
        invariants = self.invariants
        dispatch = _DISPATCH[(max_events is not None, invariants is not None)]
        try:
            dispatch(self, self._calendar, until, max_events, invariants)
        finally:
            self._running = False
        if self.telemetry is not None and not self._calendar:
            # The calendar drained: nothing can ever be scheduled again,
            # so the run is over — flush the partial window and emit the
            # run summary (idempotent).
            self.telemetry.finish()
        if invariants is not None:
            # Conservation holds at every event boundary, so each run()
            # return (drained or `until`-paused) is a valid checkpoint.
            invariants.check_stations("run end" if not self._calendar else "run pause")
        return self.now

    def stop(self) -> None:
        """Stop the run after the current event completes."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of events still in the calendar."""
        return len(self._calendar)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Simulation(now={self.now:.6f}, pending={self.pending_events})"
