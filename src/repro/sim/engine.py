"""Event-calendar core of the discrete-event simulator.

A :class:`Simulation` owns the virtual clock, a binary-heap event
calendar and the master random generator.  Events are plain callbacks;
ties in time are broken deterministically by insertion order, so a run
is fully reproducible given its seed.

The engine is deliberately minimal (schedule / run / stop): processes
like stations and sources are built on top as callback-driven state
machines, which profiling shows is ~3× faster in CPython than a
generator-based process abstraction for this workload shape.
"""

from __future__ import annotations

import heapq
from itertools import count
from collections.abc import Callable
from typing import Any

import numpy as np

from repro.analysis.invariants import checker_for_new_simulation
from repro.obs.provider import current_telemetry
from repro.parallel.seeding import seed_sequence, spawn_child

__all__ = ["EventBudgetExceeded", "Simulation"]


class EventBudgetExceeded(RuntimeError):
    """A run exhausted its event budget (``Simulation.run(max_events=)``).

    Carries the budget and the virtual time reached so a campaign's
    salvage report can say *where* a runaway scenario was stopped.  The
    count of executed events is a deterministic function of the seed and
    the model, so a scenario either always blows its budget or never
    does — quarantine decisions are bit-identical across sequential and
    parallel campaign runs.
    """

    def __init__(self, max_events: int, now: float):
        super().__init__(
            f"event budget of {max_events} events exhausted at virtual "
            f"time {now:.6f}s; the scenario was stopped mid-run"
        )
        self.max_events = max_events
        self.now = now


class Simulation:
    """Discrete-event simulation kernel.

    Parameters
    ----------
    seed:
        Seed for the master :class:`numpy.random.Generator`.  Components
    that need independent streams should call :meth:`spawn_rng`.
    telemetry:
        Explicit observability bundle (:class:`repro.obs.Telemetry`).
        When omitted, the process-wide provider is consulted
        (:func:`repro.obs.install`); the default is ``None`` — no
        telemetry, and the simulator runs exactly as before the
        observability layer existed.

    Attributes
    ----------
    now:
        Current virtual time in seconds.
    rng:
        Master random generator (components usually use spawned streams).
    telemetry:
        The bound telemetry instance, or ``None`` when disabled.
        Components read this once at construction time, so the event
        hot path never pays for disabled observability.
    """

    def __init__(self, seed: int | None = 0, telemetry=None):
        self.now: float = 0.0
        self._seedseq = seed_sequence(seed)
        self.rng = np.random.default_rng(self._seedseq)
        self.telemetry = telemetry if telemetry is not None else current_telemetry()
        if self.telemetry is not None:
            self.telemetry.bind(self)
        # Runtime invariant checking (repro.analysis.invariants): None
        # unless REPRO_CHECK is set, and every hook site guards on that —
        # the disabled hot paths are exactly the pre-checker ones.
        self.invariants = checker_for_new_simulation()
        self._calendar: list[tuple[float, int, Callable[..., None], tuple[Any, ...]]] = []
        self._seq = count()
        self._running = False
        self._stopped = False

    def spawn_rng(self) -> np.random.Generator:
        """Return an independent random stream for one component.

        Streams are :class:`numpy.random.SeedSequence` children of the
        simulation's seed, numbered by spawn order (the shared derivation
        in :mod:`repro.parallel.seeding`).  Unlike the old scheme of
        drawing a raw integer from the master RNG, children cannot
        collide with each other, with the master stream, or with streams
        of a simulation seeded nearby (seed, seed+1, …).
        """
        return np.random.default_rng(spawn_child(self._seedseq))

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Raises
        ------
        ValueError
            If ``delay`` is negative (events cannot run in the past).
        """
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` at absolute virtual ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now ({self.now})")
        heapq.heappush(self._calendar, (time, next(self._seq), callback, args))

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Execute events in time order.

        Parameters
        ----------
        until:
            Stop once the clock would pass this virtual time (the clock is
            left exactly at ``until``).  ``None`` drains the calendar.
        max_events:
            Event budget: raise :class:`EventBudgetExceeded` after this
            many events have executed (``None`` = unbounded, the default
            hot path).  The budget is a resource governor for campaign
            runners — a runaway scenario is stopped deterministically
            instead of stalling a whole sweep.

        Returns
        -------
        float
            The virtual time at which the run stopped.
        """
        if self._running:
            raise RuntimeError("simulation is already running (re-entrant run())")
        if max_events is not None and max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self._running = True
        self._stopped = False
        # Hot loop: localize the calendar and heappop (CPython attribute
        # and global lookups cost ~20% of a pure-dispatch event loop; the
        # profile is dominated by this function for large runs).  `now`
        # and `_stopped` stay as attribute accesses — callbacks mutate
        # them mid-loop.
        calendar = self._calendar
        pop = heapq.heappop
        invariants = self.invariants
        try:
            if max_events is not None:
                # Budgeted dispatch loop (campaign resource governor):
                # kept separate so the unbudgeted paths below stay
                # counter-free.  Event counts are deterministic per seed,
                # so budget exhaustion is bit-identical across runs.
                executed = 0
                while calendar and not self._stopped:
                    head = calendar[0]
                    time = head[0]
                    if until is not None and time > until:
                        self.now = until
                        break
                    if executed >= max_events:
                        raise EventBudgetExceeded(max_events, self.now)
                    pop(calendar)
                    if invariants is not None:
                        invariants.check_event_time(time, self.now)
                    self.now = time
                    head[2](*head[3])
                    if invariants is not None:
                        invariants.check_handler_left_clock(time, self.now)
                    executed += 1
                else:
                    if until is not None and not self._stopped:
                        self.now = max(self.now, until)
            elif invariants is None:
                while calendar and not self._stopped:
                    head = calendar[0]
                    time = head[0]
                    if until is not None and time > until:
                        self.now = until
                        break
                    pop(calendar)
                    self.now = time
                    head[2](*head[3])
                else:
                    if until is not None and not self._stopped:
                        self.now = max(self.now, until)
            else:
                # Checked dispatch loop (REPRO_CHECK=1): same semantics,
                # plus per-event monotonicity and a clock-ownership check
                # after each handler.  Kept as a separate loop so the
                # common disabled path above pays nothing.
                while calendar and not self._stopped:
                    head = calendar[0]
                    time = head[0]
                    if until is not None and time > until:
                        self.now = until
                        break
                    pop(calendar)
                    invariants.check_event_time(time, self.now)
                    self.now = time
                    head[2](*head[3])
                    invariants.check_handler_left_clock(time, self.now)
                else:
                    if until is not None and not self._stopped:
                        self.now = max(self.now, until)
        finally:
            self._running = False
        if self.telemetry is not None and not self._calendar:
            # The calendar drained: nothing can ever be scheduled again,
            # so the run is over — flush the partial window and emit the
            # run summary (idempotent).
            self.telemetry.finish()
        if invariants is not None:
            # Conservation holds at every event boundary, so each run()
            # return (drained or `until`-paused) is a valid checkpoint.
            invariants.check_stations("run end" if not self._calendar else "run pause")
        return self.now

    def stop(self) -> None:
        """Stop the run after the current event completes."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of events still in the calendar."""
        return len(self._calendar)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Simulation(now={self.now:.6f}, pending={self.pending_events})"
