"""Request-level resilience: deadlines, retries, hedging, breakers, failover.

The paper's comparison assumes every request is served by its first
target, but edge sites are operationally fragile (Section 5: single
machines, no N+1).  This module adds the client half of that story — a
:class:`ResilientClient` that sits between workload sources and
deployments and implements the standard production repertoire:

* **deadlines** — every logical operation carries an absolute SLO
  deadline; attempts carry timeout timers clamped to it, so lost or
  stranded requests are detected instead of hanging forever;
* **retries** — failed attempts are re-issued with exponentially
  growing, fully jittered backoff (:class:`RetryPolicy`), up to a cap;
* **hedging** — an optional speculative duplicate fired once the first
  attempt is slower than a configured (or observed-quantile) delay,
  first response wins (:class:`HedgePolicy`);
* **circuit breaking** — a per-site closed/open/half-open breaker over
  a sliding outcome window (:class:`CircuitBreaker`) stops hammering a
  dead or drowning site;
* **failover** — when the home edge site is down, saturated or its
  breaker is open, attempts route to a fallback deployment (the cloud).

The client is deliberately *deployment-shaped*: it exposes ``submit``,
``on_complete`` and ``log``, so every existing source (open-loop,
closed-loop, trace) drives it unchanged, and analysis code reads its
operation-level log exactly like a deployment's request log.

Two regimes matter for the paper's inversion result and are exercised
by ``benchmarks/test_extension_resilience.py``: aggressive retries
*amplify* load on the small edge queues and move the edge/cloud
crossover to lower utilization (a retry storm), while breakers plus
edge→cloud failover recover most of the edge's advantage under
injected outages.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.sim.client import _GLOBAL_RID
from repro.sim.engine import Simulation
from repro.sim.request import Request
from repro.sim.tracing import RequestLog
from repro.stats.refusals import RefusalCounts
from repro.stats.resilience import ResilienceSummary, summarize_resilience

__all__ = ["RetryPolicy", "HedgePolicy", "BreakerConfig", "CircuitBreaker", "ResilientClient"]


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with full jitter (AWS-style).

    The delay before attempt ``n`` (n ≥ 2) is drawn uniformly from
    ``[0, min(backoff_cap, backoff_base · 2^(n-2))]`` — full jitter
    decorrelates retry waves, which matters when many clients time out
    together (the synchronized-retry spike that turns an outage blip
    into a storm).
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    retry_on_drop: bool = True

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff_base and backoff_cap must be >= 0")

    def backoff(self, attempt: int, rng: np.random.Generator) -> float:
        """Jittered delay before issuing attempt number ``attempt``."""
        if attempt < 2:
            return 0.0
        cap = min(self.backoff_cap, self.backoff_base * 2.0 ** (attempt - 2))
        return float(rng.uniform(0.0, cap))


@dataclass(frozen=True)
class HedgePolicy:
    """Speculative duplicate requests after a latency threshold.

    With ``delay`` set, the hedge fires that many seconds after the
    first attempt; with ``delay=None`` the client adapts, hedging at the
    ``quantile`` of recently observed attempt latencies (no hedges until
    ``min_samples`` completions have been seen).  ``to_fallback`` sends
    the hedge to the fallback deployment when one is configured —
    hedging across *independent* infrastructure is what makes the
    duplicate useful during a site brown-out.
    """

    delay: float | None = None
    quantile: float = 0.95
    window: int = 512
    min_samples: int = 30
    to_fallback: bool = True
    max_hedges: int = 1

    def __post_init__(self):
        if self.delay is not None and self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")
        if not 0.0 < self.quantile < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {self.quantile}")
        if self.window < 1 or self.min_samples < 1 or self.max_hedges < 1:
            raise ValueError("window, min_samples and max_hedges must be >= 1")


@dataclass(frozen=True)
class BreakerConfig:
    """Sizing of the per-site circuit breakers.

    A breaker trips open when, among the last ``window`` attempt
    outcomes (with at least ``min_calls`` recorded), the failure
    fraction reaches ``failure_threshold``.  After ``reset_timeout``
    seconds it goes half-open and admits a single probe: success closes
    the breaker, failure re-opens it.
    """

    window: int = 20
    failure_threshold: float = 0.5
    min_calls: int = 5
    reset_timeout: float = 10.0

    def __post_init__(self):
        if self.window < 1 or self.min_calls < 1:
            raise ValueError("window and min_calls must be >= 1")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ValueError(f"failure_threshold must be in (0, 1], got {self.failure_threshold}")
        if self.reset_timeout <= 0:
            raise ValueError(f"reset_timeout must be > 0, got {self.reset_timeout}")


class CircuitBreaker:
    """Closed / open / half-open breaker over a sliding outcome window."""

    def __init__(self, config: BreakerConfig):
        self.config = config
        self.state = "closed"
        self.opens = 0
        self._events: deque[int] = deque(maxlen=config.window)  # 1 = failure
        self._open_until = 0.0
        self._probe_in_flight = False

    def allow(self, now: float) -> bool:
        """Whether a new attempt may be sent at virtual time ``now``.

        In the half-open state exactly one probe is admitted; the caller
        must later report its outcome (or :meth:`record_abandoned` it).
        """
        if self.state == "closed":
            return True
        if self.state == "open":
            if now < self._open_until:
                return False
            self.state = "half_open"
            self._probe_in_flight = False
        if self._probe_in_flight:
            return False
        self._probe_in_flight = True
        return True

    def record_success(self, now: float) -> None:
        if self.state == "half_open":
            self.state = "closed"
            self._events.clear()
            self._probe_in_flight = False
            return
        self._events.append(0)

    def record_failure(self, now: float) -> None:
        if self.state == "half_open":
            self._trip(now)
            return
        self._events.append(1)
        if (
            self.state == "closed"
            and len(self._events) >= self.config.min_calls
            and sum(self._events) >= self.config.failure_threshold * len(self._events)
        ):
            self._trip(now)

    def record_abandoned(self) -> None:
        """Release the half-open probe slot when its attempt was superseded."""
        if self.state == "half_open":
            self._probe_in_flight = False

    def _trip(self, now: float) -> None:
        self.state = "open"
        self.opens += 1
        self._open_until = now + self.config.reset_timeout
        self._probe_in_flight = False
        self._events.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CircuitBreaker(state={self.state!r}, opens={self.opens})"


class _Operation:
    """One logical request from a source, across all its attempts."""

    __slots__ = ("request", "deadline", "attempts", "hedges", "live", "done")

    def __init__(self, request: Request, deadline: float):
        self.request = request
        self.deadline = deadline
        self.attempts = 0  # non-hedge attempts issued (incl. fast-fails)
        self.hedges = 0
        # rid -> (attempt, target, breaker-or-None) for in-flight attempts
        self.live: dict[int, tuple] = {}
        self.done = False


class ResilientClient:
    """Deadline/retry/hedge/breaker/failover wrapper around deployments.

    Parameters
    ----------
    sim:
        Owning simulation.
    primary:
        Deployment receiving first attempts (typically the edge).
    fallback:
        Optional second deployment (typically the cloud) used for
        failover and cross-infrastructure hedges.
    timeout:
        Per-attempt timeout in seconds (``None`` = attempts are bounded
        only by the operation deadline).  On timeout the attempt is
        abandoned; with ``cancel_on_timeout`` its queued work is also
        reclaimed at the station.
    slo_deadline:
        Operation deadline relative to submission (``None`` = no
        deadline; a request arriving with a finite ``deadline`` field
        keeps it).
    retry:
        :class:`RetryPolicy` (``None`` disables retries).
    hedge:
        :class:`HedgePolicy` (``None`` disables hedging).
    breaker:
        :class:`BreakerConfig`; a breaker is created per home site
        (``None`` disables circuit breaking).
    saturation_threshold:
        Fail over when the home site holds at least this many requests
        (``None`` disables the saturation check).  Like the geo-LB, the
        client is assumed to see health-check state, not to divine it.
    cancel_on_timeout:
        Reclaim queued work on timeout.  ``False`` models the classic
        storm ingredient: the server cannot observe client abandonment
        and burns capacity on answers nobody is waiting for.
    """

    def __init__(
        self,
        sim: Simulation,
        primary,
        fallback=None,
        *,
        timeout: float | None = None,
        slo_deadline: float | None = None,
        retry: RetryPolicy | None = None,
        hedge: HedgePolicy | None = None,
        breaker: BreakerConfig | None = None,
        saturation_threshold: int | None = None,
        cancel_on_timeout: bool = True,
        name: str = "resilient",
    ):
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        if slo_deadline is not None and slo_deadline <= 0:
            raise ValueError(f"slo_deadline must be > 0, got {slo_deadline}")
        if saturation_threshold is not None and saturation_threshold < 1:
            raise ValueError(f"saturation_threshold must be >= 1, got {saturation_threshold}")
        self.sim = sim
        self.primary = primary
        self.fallback = fallback
        self.timeout = timeout
        self.slo_deadline = slo_deadline
        self.retry = retry
        self.hedge = hedge
        self.breaker_config = breaker
        self.saturation_threshold = saturation_threshold
        self.cancel_on_timeout = cancel_on_timeout
        self.name = name
        self.log = RequestLog()  # successful operations, client-perceived timing
        self.failed: list[Request] = []  # operations that gave up
        self.on_complete = None  # hook: every resolved operation (ok or failed)
        self.breakers: dict[str, CircuitBreaker] = {}
        # counters
        self.operations = 0
        self.successes = 0
        self.slo_hits = 0
        self.attempts = 0
        self.retries = 0
        self.hedges = 0
        self.failovers = 0
        self.timeouts = 0
        self.drops = 0
        self.sheds = 0  # server shed the attempt (queue discipline / overload)
        self.server_rejects = 0  # server admission control refused the attempt
        self.rejected = 0  # fast-fails: breaker open, no fallback
        self._rng = sim.spawn_rng()
        self._tel = sim.telemetry
        if self._tel is not None:
            self._tel.register_client(self)
        self._attempt_index: dict[int, _Operation] = {}
        self._latency_window: deque[float] = deque(maxlen=hedge.window if hedge else 1)
        self._hedge_cache: float | None = hedge.delay if hedge else None
        self._hedge_dirty = 0
        self._hook(primary)
        if fallback is not None and fallback is not primary:
            self._hook(fallback)

    # -- wiring ----------------------------------------------------------
    def _hook(self, deployment) -> None:
        prev = getattr(deployment, "on_complete", None)

        def hook(request: Request) -> None:
            if prev is not None:
                prev(request)
            self._attempt_complete(request)

        deployment.on_complete = hook

    # -- submission ------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Accept a logical operation from a source and run it to a verdict."""
        now = self.sim.now
        if math.isnan(request.created):
            request.created = now
        deadline = request.deadline
        if math.isinf(deadline) and self.slo_deadline is not None:
            deadline = now + self.slo_deadline
            request.deadline = deadline
        op = _Operation(request, deadline)
        self.operations += 1
        self._launch(op)

    def _launch(self, op: _Operation, is_hedge: bool = False, force_fallback: bool = False) -> None:
        now = self.sim.now
        site = op.request.site
        target = self.primary
        breaker = self._breaker_for(site)
        routed_breaker = breaker
        if self.fallback is not None:
            go_fallback = force_fallback
            if not go_fallback and not self._primary_available(site):
                go_fallback = True
            if not go_fallback and breaker is not None and not breaker.allow(now):
                go_fallback = True
            if go_fallback:
                target = self.fallback
                routed_breaker = None
                if not is_hedge:
                    self.failovers += 1
        elif breaker is not None and not breaker.allow(now):
            # Breaker open and nowhere to fail over: fast-fail locally
            # without burning a network round trip.
            op.attempts += 1
            self.attempts += 1
            self.rejected += 1
            if self._tel is not None:
                self._tel.record_attempt(
                    op.request,
                    "first" if op.attempts == 1 else "retry",
                    "breaker_open",
                    target="primary",
                    start=now,
                )
            self._after_attempt_failure(op)
            return

        attempt = Request(
            next(_GLOBAL_RID),
            site=site,
            created=now,
            service_time=op.request.service_time,
            deadline=op.deadline,
        )
        attempt.op_id = op.request.rid
        if is_hedge:
            op.hedges += 1
            self.hedges += 1
            kind = "hedge"
        else:
            op.attempts += 1
            if op.attempts > 1:
                self.retries += 1
            kind = "first" if op.attempts == 1 else "retry"
        attempt.attempt = op.attempts + op.hedges
        self.attempts += 1
        op.live[attempt.rid] = (attempt, target, routed_breaker, kind)
        self._attempt_index[attempt.rid] = op
        expiry = op.deadline
        if self.timeout is not None:
            expiry = min(expiry, now + self.timeout)
        if math.isfinite(expiry):
            self.sim.schedule(max(0.0, expiry - now), self._on_timeout, attempt.rid)
        if (
            self.hedge is not None
            and not is_hedge
            and op.attempts == 1
            and op.hedges < self.hedge.max_hedges
        ):
            delay = self._hedge_delay()
            if delay is not None and now + delay < op.deadline:
                self.sim.schedule(delay, self._maybe_hedge, op)
        target.submit(attempt)

    # -- routing helpers -------------------------------------------------
    def _breaker_for(self, site: str | None) -> CircuitBreaker | None:
        if self.breaker_config is None:
            return None
        key = site if site is not None else "__default__"
        breaker = self.breakers.get(key)
        if breaker is None:
            breaker = self.breakers[key] = CircuitBreaker(self.breaker_config)
        return breaker

    def _home_station(self, site: str | None):
        by_name = getattr(self.primary, "by_name", None)
        if by_name is None or site is None:
            return None
        home = by_name.get(site)
        return None if home is None else home.station

    def _primary_available(self, site: str | None) -> bool:
        station = self._home_station(site)
        if station is None:
            return True
        if station.failed:
            return False
        if (
            self.saturation_threshold is not None
            and station.in_system >= self.saturation_threshold
        ):
            return False
        return True

    def _hedge_delay(self) -> float | None:
        hedge = self.hedge
        if hedge.delay is not None:
            return hedge.delay
        if len(self._latency_window) < hedge.min_samples:
            return None
        if self._hedge_cache is None or self._hedge_dirty >= 32:
            self._hedge_cache = float(
                np.quantile(np.asarray(self._latency_window), hedge.quantile)
            )
            self._hedge_dirty = 0
        return self._hedge_cache

    def _maybe_hedge(self, op: _Operation) -> None:
        if op.done or not op.live or op.attempts != 1:
            return  # resolved, already retried, or nothing left to hedge
        if op.hedges >= self.hedge.max_hedges:
            return
        force = self.hedge.to_fallback and self.fallback is not None
        self._launch(op, is_hedge=True, force_fallback=force)

    # -- attempt resolution ----------------------------------------------
    def _on_timeout(self, rid: int) -> None:
        op = self._attempt_index.pop(rid, None)
        if op is None or op.done:
            return
        entry = op.live.pop(rid, None)
        if entry is None:
            return
        attempt, target, breaker, kind = entry
        attempt.outcome = "timeout"
        self.timeouts += 1
        if self.cancel_on_timeout:
            attempt.canceled = True
            cancel = getattr(target, "cancel", None)
            if cancel is not None:
                cancel(attempt)
        if breaker is not None:
            breaker.record_failure(self.sim.now)
        if self._tel is not None:
            self._tel.record_attempt(attempt, kind, "timeout", self._target_label(target))
        self._after_attempt_failure(op)

    def _attempt_complete(self, attempt: Request) -> None:
        op = self._attempt_index.pop(attempt.rid, None)
        if op is None or op.done:
            return  # a zombie (timed out earlier) or foreign traffic
        _, target, breaker, kind = op.live.pop(attempt.rid)
        now = self.sim.now
        if attempt.outcome in ("dropped", "shed", "rejected"):
            # All three server refusals (bounded queue, discipline shed,
            # admission reject) are fast failures to the client and count
            # against the breaker the same way.
            if attempt.outcome == "shed":
                self.sheds += 1
            elif attempt.outcome == "rejected":
                self.server_rejects += 1
            else:
                self.drops += 1
            if breaker is not None:
                breaker.record_failure(now)
            if self._tel is not None:
                self._tel.record_attempt(attempt, kind, attempt.outcome, self._target_label(target))
            if self.retry is not None and not self.retry.retry_on_drop:
                if not op.live:
                    self._fail_op(op, "dropped")
                return
            self._after_attempt_failure(op)
            return
        if breaker is not None:
            breaker.record_success(now)
        if self._tel is not None:
            self._tel.record_attempt(attempt, kind, "ok", self._target_label(target))
        self._record_latency(now - attempt.created)
        for sibling_rid, (sibling, starget, sbreaker, skind) in list(op.live.items()):
            self._attempt_index.pop(sibling_rid, None)
            sibling.outcome = "superseded"
            sibling.canceled = True
            cancel = getattr(starget, "cancel", None)
            if cancel is not None:
                cancel(sibling)
            if sbreaker is not None:
                sbreaker.record_abandoned()
            if self._tel is not None:
                self._tel.record_attempt(sibling, skind, "superseded", self._target_label(starget))
        op.live.clear()
        op.done = True
        origin = op.request
        origin.arrived = attempt.arrived
        origin.service_start = attempt.service_start
        origin.service_end = attempt.service_end
        origin.service_time = attempt.service_time
        origin.site = attempt.site
        origin.attempt = op.attempts + op.hedges
        origin.completed = now
        origin.outcome = "ok"
        self.successes += 1
        if now <= op.deadline:
            self.slo_hits += 1
        self.log.add(origin)
        if self.on_complete is not None:
            self.on_complete(origin)

    def _after_attempt_failure(self, op: _Operation) -> None:
        if op.done or op.live:
            return  # a hedge sibling is still in flight
        now = self.sim.now
        if now >= op.deadline:
            self._fail_op(op, "deadline")
            return
        if self.retry is None or op.attempts >= max(1, getattr(self.retry, "max_attempts", 1)):
            self._fail_op(op, "exhausted")
            return
        delay = self.retry.backoff(op.attempts + 1, self._rng)
        if math.isfinite(op.deadline):
            delay = min(delay, max(0.0, (op.deadline - now) * 0.5))
        self.sim.schedule(delay, self._retry_fire, op)

    def _retry_fire(self, op: _Operation) -> None:
        if op.done or op.live:
            return
        if self.sim.now >= op.deadline:
            self._fail_op(op, "deadline")
            return
        self._launch(op)

    def _fail_op(self, op: _Operation, outcome: str) -> None:
        op.done = True
        origin = op.request
        origin.completed = self.sim.now
        origin.outcome = outcome
        origin.attempt = op.attempts + op.hedges
        self.failed.append(origin)
        if self._tel is not None:
            self._tel.record_failed_operation(origin)
        if self.on_complete is not None:
            self.on_complete(origin)

    def _target_label(self, target) -> str:
        """Which deployment an attempt went to, for span attributes."""
        if self.fallback is not None and target is self.fallback and target is not self.primary:
            return "fallback"
        return "primary"

    def _record_latency(self, latency: float) -> None:
        if self.hedge is not None and self.hedge.delay is None:
            self._latency_window.append(latency)
            self._hedge_dirty += 1

    # -- reporting -------------------------------------------------------
    @property
    def failures(self) -> int:
        """Operations that gave up (deadline exceeded / attempts exhausted)."""
        return len(self.failed)

    @property
    def breaker_opens(self) -> int:
        """Open transitions summed over all per-site breakers."""
        return sum(b.opens for b in self.breakers.values())

    @property
    def refusal_counts(self) -> RefusalCounts:
        """Server refusals observed across this client's attempts."""
        return RefusalCounts.from_client(self)

    def summary(self, duration: float | None = None) -> ResilienceSummary:
        """Operation-level metrics over ``duration`` (default: now)."""
        horizon = self.sim.now if duration is None else float(duration)
        latencies = self.log.breakdown().end_to_end if len(self.log) else None
        return summarize_resilience(
            duration=horizon,
            successes=self.successes,
            failures=self.failures,
            slo_hits=self.slo_hits,
            attempts=self.attempts,
            retries=self.retries,
            hedges=self.hedges,
            failovers=self.failovers,
            timeouts=self.timeouts,
            drops=self.drops,
            sheds=self.sheds,
            rejects=self.server_rejects,
            breaker_opens=self.breaker_opens,
            latencies=latencies,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResilientClient(name={self.name!r}, ops={self.operations}, "
            f"ok={self.successes}, failed={self.failures})"
        )
