"""Server-side overload control: queue disciplines and brownout serving.

The paper's §4.2 observes that the real stack "starts dropping requests
or thrashing" at saturation, and E10 showed client retries turn that
into a metastable storm.  This module is the *server* half of the
robustness story: mechanisms a :class:`~repro.sim.station.Station` uses
to defend its latency at and past saturation instead of queueing
unboundedly or tail-dropping.

Three families of mechanism live here; a fourth (adaptive concurrency
limiting / priority shedding) lives in :mod:`repro.mitigation.admission`
because it guards the front door rather than the waiting line:

* **Queue disciplines** — pluggable orderings of the waiting line.
  :class:`FIFODiscipline` is the classic (and default) order;
  :class:`AdaptiveLIFODiscipline` switches to newest-first when a
  backlog builds, so the requests actually served are the fresh ones
  whose clients are still waiting; :class:`CoDelDiscipline` drops at
  *dequeue* based on sojourn time (CoDel's "controlled delay" law),
  shedding stale work before it wastes a server.
* **Brownout serving** — :class:`BrownoutController` trades quality for
  latency under pressure: a fraction of requests (the *dimmer*) is
  served by a cheaper degraded service variant (a smaller model for the
  paper's DNN-inference workload), raising effective capacity without
  rejecting anyone.  The degraded fraction is reported.
* **Overload signals** — stations expose ``pressure()`` (in-system per
  server); :class:`~repro.sim.loadbalancer.BackpressureDispatch` and
  the resilient client's failover read it to steer around saturated
  sites.

Requests refused by a discipline are *shed* (station counter ``shed``,
outcome ``"shed"``), distinct from queue-capacity drops (``dropped``)
and admission rejections (``rejected``) so reports can tell deliberate
load shedding from passive overflow.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections import deque
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.sim.request import Request

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.station import Station

__all__ = [
    "QueueDiscipline",
    "FIFODiscipline",
    "AdaptiveLIFODiscipline",
    "CoDelDiscipline",
    "BrownoutController",
]


class QueueDiscipline(ABC):
    """Order (and optionally shed) a station's waiting line.

    A discipline owns the waiting requests between ``arrive`` and
    service start.  The station pushes arrivals that find all servers
    busy and pops whenever a server frees; :meth:`pop` may *shed*
    waiting requests (reported through ``station._shed``) before
    returning the next one to serve.

    One discipline instance belongs to exactly one station.
    """

    def __init__(self) -> None:
        self._station: "Station | None" = None
        self._queue: deque[Request] = deque()

    def bind(self, station: "Station") -> None:
        """Attach to the owning station (called by ``Station.__init__``)."""
        if self._station is not None and self._station is not station:
            raise ValueError(
                f"{type(self).__name__} is already bound to station "
                f"{self._station.name!r}; disciplines are per-station"
            )
        self._station = station

    def push(self, request: Request) -> None:
        """Append an arriving request to the waiting line."""
        self._queue.append(request)

    @abstractmethod
    def pop(self) -> Request | None:
        """Return the next request to serve, or ``None`` if none remain.

        Implementations may shed stale requests (via ``station._shed``)
        while selecting.
        """

    def remove(self, request: Request) -> bool:
        """Remove a specific waiting request (client cancellation)."""
        try:
            self._queue.remove(request)
        except ValueError:
            return False
        return True

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self) -> Iterator[Request]:
        return iter(self._queue)

    def __contains__(self, request: Request) -> bool:
        return request in self._queue

    @property
    def _now(self) -> float:
        return self._station.sim.now


class FIFODiscipline(QueueDiscipline):
    """First-come-first-served — the classic order and the default."""

    def pop(self) -> Request | None:
        return self._queue.popleft() if self._queue else None


class AdaptiveLIFODiscipline(QueueDiscipline):
    """FIFO normally; newest-first once a backlog builds.

    The adaptive-LIFO trick (deployed in Facebook's thrift servers):
    under overload a FIFO serves exactly the requests whose clients have
    already timed out, so every served request is wasted work.  Serving
    newest-first keeps the *served* latency bounded — fresh requests go
    out fast — while the old backlog ages out (clients gave up) instead
    of poisoning the service order.

    Parameters
    ----------
    pressure_threshold:
        Switch to LIFO while more than this many requests wait.  ``0``
        is pure LIFO.
    """

    def __init__(self, pressure_threshold: int = 8):
        if pressure_threshold < 0:
            raise ValueError(f"pressure_threshold must be >= 0, got {pressure_threshold}")
        super().__init__()
        self.pressure_threshold = int(pressure_threshold)
        self.lifo_pops = 0

    def pop(self) -> Request | None:
        if not self._queue:
            return None
        if len(self._queue) > self.pressure_threshold:
            self.lifo_pops += 1
            return self._queue.pop()
        return self._queue.popleft()

    def observables(self) -> dict:
        """Pull-model gauge readers for the telemetry registry."""
        return {"lifo_pops": lambda: self.lifo_pops}


class CoDelDiscipline(QueueDiscipline):
    """Controlled-delay (CoDel) sojourn-time dropping at dequeue.

    Nichols & Jacobson's AQM, applied to a request queue: the signal is
    how long the *dequeued* request waited (its sojourn), not how long
    the queue is.  Waiting longer than ``target`` is tolerated for one
    ``interval`` (bursts are fine); sustained excess enters a dropping
    episode that sheds the stale head-of-line request and then sheds
    again at intervals shrinking with ``interval / sqrt(count)`` — the
    control law that makes drop pressure track persistent overload.
    Sojourn back at or below ``target`` ends the episode.

    Parameters
    ----------
    target:
        Acceptable sojourn time (seconds) — the latency the queue
        defends.
    interval:
        Window (seconds) a sojourn excursion must persist before the
        first shed; also the initial spacing of the drop law.
    """

    def __init__(self, target: float, interval: float | None = None):
        if target <= 0:
            raise ValueError(f"target must be > 0, got {target}")
        super().__init__()
        self.target = float(target)
        self.interval = float(interval) if interval is not None else 2.0 * self.target
        if self.interval <= 0:
            raise ValueError(f"interval must be > 0, got {self.interval}")
        self._first_above: float | None = None  # when sustained excess confirms
        self._dropping = False
        self._drop_next = 0.0
        self._drop_count = 0

    def pop(self) -> Request | None:
        now = self._now
        while self._queue:
            request = self._queue.popleft()
            sojourn = now - request.arrived
            if sojourn <= self.target:
                self._first_above = None
                self._dropping = False
                self._drop_count = 0
                return request
            if self._first_above is None:
                self._first_above = now + self.interval
            if not self._dropping:
                if now < self._first_above:
                    return request  # transient burst: tolerated for one interval
                self._dropping = True
                self._drop_count = 1
                self._station._shed(request)
                self._drop_next = now + self.interval / math.sqrt(self._drop_count)
                continue
            if now < self._drop_next:
                return request  # between paced drops, keep serving
            self._drop_count += 1
            self._station._shed(request)
            self._drop_next = now + self.interval / math.sqrt(self._drop_count)
        self._first_above = None
        return None


class BrownoutController:
    """Graceful degradation: serve a cheaper variant under pressure.

    Brownout serving (Klein et al.): instead of rejecting work when the
    queue builds, serve some requests with a degraded, faster variant —
    for the paper's DNN-inference service, a smaller model whose forward
    pass costs ``degraded_scale`` of the full one.  The *dimmer* (the
    probability an arriving-to-service request is degraded) ramps
    linearly with the station's estimated queueing delay: 0 at or below
    ``target_wait``, 1 at or above ``full_wait``.  Quality is traded
    for latency only while pressure lasts, and the paid price is
    reported as :attr:`degraded_fraction`.

    One controller instance belongs to exactly one station.

    Parameters
    ----------
    degraded_scale:
        Service-time multiplier of the degraded variant, in (0, 1).
    target_wait:
        Estimated wait (seconds) below which everything is served at
        full quality.
    full_wait:
        Estimated wait at which *every* request is degraded (default
        ``4 × target_wait``).
    """

    def __init__(
        self,
        degraded_scale: float = 0.4,
        target_wait: float = 0.5,
        full_wait: float | None = None,
    ):
        if not 0.0 < degraded_scale < 1.0:
            raise ValueError(f"degraded_scale must be in (0, 1), got {degraded_scale}")
        if target_wait < 0:
            raise ValueError(f"target_wait must be >= 0, got {target_wait}")
        self.degraded_scale = float(degraded_scale)
        self.target_wait = float(target_wait)
        self.full_wait = float(full_wait) if full_wait is not None else 4.0 * target_wait
        if self.full_wait <= self.target_wait:
            raise ValueError(
                f"full_wait ({self.full_wait}) must exceed target_wait ({self.target_wait})"
            )
        self.offered = 0
        self.degraded = 0
        self._station: "Station | None" = None
        self._rng = None

    def bind(self, station: "Station") -> None:
        """Attach to the owning station (called by ``Station.__init__``)."""
        if self._station is not None and self._station is not station:
            raise ValueError(
                f"BrownoutController is already bound to station "
                f"{self._station.name!r}; controllers are per-station"
            )
        self._station = station
        self._rng = station.sim.spawn_rng()

    def dimmer(self, station: "Station") -> float:
        """Current degrade probability from the station's backlog estimate."""
        estimated_wait = station.backlog_work() / station.servers
        if estimated_wait <= self.target_wait:
            return 0.0
        if estimated_wait >= self.full_wait:
            return 1.0
        return (estimated_wait - self.target_wait) / (self.full_wait - self.target_wait)

    def should_degrade(self, station: "Station", request: Request) -> bool:
        """Decide (and record) whether this service starts degraded."""
        self.offered += 1
        level = self.dimmer(station)
        degrade = level >= 1.0 or (level > 0.0 and float(self._rng.random()) < level)
        if degrade:
            self.degraded += 1
        return degrade

    @property
    def degraded_fraction(self) -> float:
        """Fraction of service starts that ran the degraded variant."""
        if self.offered == 0:
            return 0.0
        return self.degraded / self.offered

    def observables(self) -> dict:
        """Pull-model gauge readers for the telemetry registry."""
        return {
            "dimmer": lambda: (
                self.dimmer(self._station) if self._station is not None else 0.0
            ),
            "degraded": lambda: self.degraded,
            "degraded_fraction": lambda: self.degraded_fraction,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BrownoutController(scale={self.degraded_scale}, "
            f"degraded={self.degraded}/{self.offered})"
        )
