"""Multi-server queue station with pluggable overload control.

A :class:`Station` models one serving location: a waiting line in front
of ``servers`` identical servers.  With ``servers = 1`` it is the
paper's edge site; with ``servers = k`` (or `k × cores`) and Poisson
input it is the paper's cloud central queue (Figure 1b).

The waiting line is managed by a pluggable
:class:`~repro.sim.overload.QueueDiscipline` (FIFO by default;
adaptive-LIFO and CoDel sojourn-dropping defend latency under
overload), the front door by an optional admission policy
(:mod:`repro.mitigation.admission`), and the service itself by an
optional :class:`~repro.sim.overload.BrownoutController` that serves a
cheaper degraded variant under pressure.  Refusals are accounted
separately — ``rejected`` (admission), ``dropped`` (queue capacity),
``shed`` (discipline/overload) — so reports can tell deliberate load
shedding from passive overflow.

The station keeps running time-integrals of busy servers and queue
length so utilization and mean queue length can be read off exactly, and
supports run-time capacity changes (used by the autoscaling mitigation).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.queueing.distributions import Distribution
from repro.sim.engine import Simulation
from repro.sim.overload import BrownoutController, FIFODiscipline, QueueDiscipline
from repro.sim.request import Request

__all__ = ["Station"]


class Station:
    """Multi-server queue with ``servers`` parallel servers.

    Parameters
    ----------
    sim:
        Owning simulation.
    servers:
        Initial number of servers (≥ 1).
    service_dist:
        Distribution used to sample service times for requests that do
        not carry a pre-assigned ``service_time`` (trace replays do).
    name:
        Identifier used in request logs and repr.
    on_departure:
        Callback invoked with each request when its service completes
        (the deployment layer uses it to schedule the return network leg).
    queue_capacity:
        Maximum number of *waiting* requests (an M/M/c/K-style bound
        with K = servers + queue_capacity).  ``None`` (default) is an
        unbounded queue.  Arrivals past the bound are dropped — the
        paper's observed behaviour of the real stack at saturation
        ("starts dropping requests or thrashing").
    on_drop:
        Callback invoked with each dropped request.
    discipline:
        Waiting-line order/shedding policy
        (:class:`~repro.sim.overload.QueueDiscipline`); ``None`` is
        FIFO.  One instance per station.
    admission:
        Front-door policy with ``admit(station, request, now) -> bool``
        (e.g. :class:`~repro.mitigation.admission.AdaptiveAdmission`).
        Refused requests count as ``rejected`` and go to ``on_reject``.
        If the policy exposes ``on_response(latency, ok, now)`` it is
        fed every service completion and every drop/shed — the feedback
        adaptive concurrency limiters learn from.
    on_reject:
        Callback invoked with each admission-rejected request.
    brownout:
        Optional :class:`~repro.sim.overload.BrownoutController`; under
        pressure, service starts run a degraded (cheaper) variant.
    on_shed:
        Callback invoked with each discipline-shed request (defaults to
        ``on_drop`` when unset, so sheds still surface to deployments).
    """

    def __init__(
        self,
        sim: Simulation,
        servers: int,
        service_dist: Distribution | None = None,
        name: str = "station",
        on_departure: Callable[[Request], None] | None = None,
        queue_capacity: int | None = None,
        on_drop: Callable[[Request], None] | None = None,
        discipline: QueueDiscipline | None = None,
        admission=None,
        on_reject: Callable[[Request], None] | None = None,
        brownout: BrownoutController | None = None,
        on_shed: Callable[[Request], None] | None = None,
    ):
        if servers < 1:
            raise ValueError(f"servers must be >= 1, got {servers}")
        if queue_capacity is not None and queue_capacity < 0:
            raise ValueError(f"queue_capacity must be >= 0, got {queue_capacity}")
        self.sim = sim
        self.name = name
        self.service_dist = service_dist
        self.on_departure = on_departure
        self.queue_capacity = queue_capacity
        self.on_drop = on_drop
        self.on_reject = on_reject
        self.on_shed = on_shed
        self.admission = admission
        self._admission_feedback = getattr(admission, "on_response", None)
        self.brownout = brownout
        if brownout is not None:
            brownout.bind(self)
        self.drops = 0
        self.rejected = 0
        self.shed = 0
        self.degraded = 0
        self.cancellations = 0
        # Of the cancellations, those removed from the waiting line after
        # being counted as arrivals (on-wire cancels never arrive) — the
        # term that closes the request-conservation identity checked by
        # repro.analysis.invariants.
        self.cancelled_waiting = 0
        self._servers = int(servers)
        self._busy = 0
        self._failed = False
        self._discipline = discipline if discipline is not None else FIFODiscipline()
        self._discipline.bind(self)
        self._rng = sim.spawn_rng()
        # Service times are pre-sampled in geometrically growing blocks
        # (one vectorized draw instead of one Distribution.sample call
        # per service start); the block comes from the station's private
        # stream, so per-seed determinism is unaffected.  The block is
        # kept as a plain list (one bulk tolist() per refill) so the
        # per-event access is a list index, not a NumPy scalar extraction.
        self._svc_block: list[float] | None = None
        self._svc_i = 0
        self._svc_n = 16
        # Exact time-integral accounting for utilization / queue length.
        self._last_change = sim.now
        self._busy_integral = 0.0
        self._queue_integral = 0.0
        self.arrivals = 0
        self.completions = 0
        # Observability is pull-model for stations: the collector polls
        # counters and occupancy at window boundaries, so the per-event
        # paths above pay nothing whether telemetry is on or off.
        if sim.telemetry is not None:
            sim.telemetry.register_station(self)
        if sim.invariants is not None:
            sim.invariants.register_station(self)

    # -- state inspection ------------------------------------------------
    @property
    def servers(self) -> int:
        """Current number of servers."""
        return self._servers

    @property
    def busy(self) -> int:
        """Servers currently serving a request."""
        return self._busy

    @property
    def queue_length(self) -> int:
        """Requests waiting (not in service)."""
        return len(self._discipline)

    @property
    def in_system(self) -> int:
        """Requests waiting or in service."""
        return self._busy + len(self._discipline)

    @property
    def failed(self) -> bool:
        """True while the station is down (queues but does not serve)."""
        return self._failed

    @property
    def dropped(self) -> int:
        """Queue-capacity drops (alias of ``drops``)."""
        return self.drops

    @property
    def discipline(self) -> QueueDiscipline:
        """The waiting-line discipline in use."""
        return self._discipline

    def pressure(self) -> float:
        """In-system requests per server — the overload signal
        backpressure-aware dispatch and failover read."""
        return self.in_system / self._servers

    def backlog_work(self) -> float:
        """Approximate unfinished work in seconds (for least-work dispatch).

        Sum of queued requests' (known or expected) service demands; the
        residual of in-service requests is approximated by half a mean
        service time each, which is exact in expectation for exponential
        service and a good proxy otherwise.
        """
        mean = self.service_dist.mean if self.service_dist is not None else 0.0
        queued = sum(
            r.service_time if r.service_time is not None else mean for r in self._discipline
        )
        return queued + 0.5 * mean * self._busy

    # -- dynamics --------------------------------------------------------
    def arrive(self, request: Request) -> None:
        """Accept (or refuse) a request at the current virtual time."""
        self._account()
        if request.canceled:
            # The client abandoned this attempt while it was on the wire
            # (timeout / hedge supersession); it never enters the queue.
            self.cancellations += 1
            return
        self.arrivals += 1
        request.arrived = self.sim.now
        if self.admission is not None and not self.admission.admit(self, request, self.sim.now):
            self.rejected += 1
            if self.on_reject is not None:
                self.on_reject(request)
            return
        if not self._failed and self._busy < self._servers:
            self._start(request)
        elif self.queue_capacity is None or len(self._discipline) < self.queue_capacity:
            self._discipline.push(request)
        else:
            self.drops += 1
            if self._admission_feedback is not None:
                self._admission_feedback(None, False, self.sim.now)
            if self.on_drop is not None:
                self.on_drop(request)

    def cancel(self, request: Request) -> bool:
        """Remove a *waiting* request from the queue (client timeout).

        Returns True if the request was found and removed.  In-service
        work cannot be reclaimed — the server finishes it and the client
        ignores the late response (wasted work, as in a real stack where
        the backend does not observe client disconnects mid-request).
        """
        if not self._discipline.remove(request):
            return False
        self._account()
        self.cancellations += 1
        self.cancelled_waiting += 1
        return True

    def set_servers(self, servers: int) -> None:
        """Change capacity at run time.

        Increasing capacity immediately starts queued requests; when
        decreasing, in-flight services finish normally and the station
        simply stops refilling above the new limit (graceful drain).
        """
        if servers < 1:
            raise ValueError(f"servers must be >= 1, got {servers}")
        self._account()
        self._servers = int(servers)
        self._refill()

    def _refill(self) -> None:
        while not self._failed and self._busy < self._servers:
            request = self._discipline.pop()
            if request is None:
                break
            self._start(request)

    def _shed(self, request: Request) -> None:
        """Discipline callback: a waiting request was shed (overload)."""
        self.shed += 1
        if self._admission_feedback is not None:
            self._admission_feedback(None, False, self.sim.now)
        callback = self.on_shed if self.on_shed is not None else self.on_drop
        if callback is not None:
            callback(request)

    def _sample_service(self) -> float:
        block = self._svc_block
        i = self._svc_i
        if block is None or i >= len(block):
            n = self._svc_n
            self._svc_n = min(2 * n, 4096)
            self._svc_block = block = (
                np.asarray(self.service_dist.sample(self._rng, n), dtype=float)
                .reshape(n)
                .tolist()
            )
            i = 0
        self._svc_i = i + 1
        return block[i]

    def _start(self, request: Request) -> None:
        self._busy += 1
        request.service_start = self.sim.now
        if request.service_time is None:
            if self.service_dist is None:
                raise ValueError(
                    f"station {self.name!r} has no service distribution and request "
                    f"{request.rid} carries no service_time"
                )
            request.service_time = self._sample_service()
        if self.brownout is not None and self.brownout.should_degrade(self, request):
            request.degraded = True
            request.service_time *= self.brownout.degraded_scale
            self.degraded += 1
        self.sim.schedule(request.service_time, self._finish, request)

    def _finish(self, request: Request) -> None:
        self._account()
        self._busy -= 1
        self.completions += 1
        request.service_end = self.sim.now
        if self._admission_feedback is not None:
            self._admission_feedback(request.service_end - request.arrived, True, self.sim.now)
        self._refill()
        if self.on_departure is not None:
            self.on_departure(request)

    def fail(self) -> None:
        """Take the station down: no new service starts; in-flight work
        completes (graceful-degradation semantics) and arrivals queue
        (or drop, if a queue bound is configured)."""
        self._account()
        self._failed = True

    def repair(self) -> None:
        """Bring the station back and immediately drain the backlog."""
        self._account()
        self._failed = False
        self._refill()

    # -- statistics ------------------------------------------------------
    def _account(self) -> None:
        dt = self.sim.now - self._last_change
        if dt > 0:
            self._busy_integral += dt * self._busy
            self._queue_integral += dt * len(self._discipline)
            self._last_change = self.sim.now

    @property
    def loss_rate(self) -> float:
        """Fraction of arrivals dropped (0 for unbounded queues)."""
        if self.arrivals == 0:
            return 0.0
        return self.drops / self.arrivals

    @property
    def refusal_counts(self):
        """The refusal taxonomy as one value
        (:class:`~repro.stats.refusals.RefusalCounts`)."""
        from repro.stats.refusals import RefusalCounts

        return RefusalCounts.from_station(self)

    @property
    def refusal_rate(self) -> float:
        """Fraction of arrivals refused for any reason (rejected, dropped
        or shed) — the overload-control analogue of :attr:`loss_rate`."""
        if self.arrivals == 0:
            return 0.0
        return self.refusal_counts.rate(self.arrivals)

    @property
    def degraded_fraction(self) -> float:
        """Fraction of service starts that ran the degraded (brownout)
        variant."""
        started = self.completions + self._busy
        if started <= 0:
            return 0.0
        return self.degraded / started

    def busy_time(self) -> float:
        """Cumulative busy-server seconds since t=0.

        The windowed telemetry collector differences this between window
        boundaries to get exact per-window utilization.
        """
        self._account()
        return self._busy_integral

    def queue_time(self) -> float:
        """Cumulative waiting-request seconds since t=0 (see :meth:`busy_time`)."""
        self._account()
        return self._queue_integral

    def utilization(self) -> float:
        """Time-average fraction of busy servers since t=0."""
        self._account()
        if self.sim.now == 0.0:
            return 0.0
        return self._busy_integral / (self.sim.now * self._servers)

    def mean_queue_length(self) -> float:
        """Time-average number of waiting requests since t=0."""
        self._account()
        if self.sim.now == 0.0:
            return 0.0
        return self._queue_integral / self.sim.now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Station(name={self.name!r}, servers={self._servers}, busy={self._busy}, "
            f"queued={len(self._discipline)})"
        )
