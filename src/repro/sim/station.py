"""FCFS multi-server queue station.

A :class:`Station` models one serving location: a single FIFO queue in
front of ``servers`` identical servers.  With ``servers = 1`` it is the
paper's edge site; with ``servers = k`` (or `k × cores`) and Poisson
input it is the paper's cloud central queue (Figure 1b).

The station keeps running time-integrals of busy servers and queue
length so utilization and mean queue length can be read off exactly, and
supports run-time capacity changes (used by the autoscaling mitigation).
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.queueing.distributions import Distribution
from repro.sim.engine import Simulation
from repro.sim.request import Request

__all__ = ["Station"]


class Station:
    """FCFS queue with ``servers`` parallel servers.

    Parameters
    ----------
    sim:
        Owning simulation.
    servers:
        Initial number of servers (≥ 1).
    service_dist:
        Distribution used to sample service times for requests that do
        not carry a pre-assigned ``service_time`` (trace replays do).
    name:
        Identifier used in request logs and repr.
    on_departure:
        Callback invoked with each request when its service completes
        (the deployment layer uses it to schedule the return network leg).
    queue_capacity:
        Maximum number of *waiting* requests (an M/M/c/K-style bound
        with K = servers + queue_capacity).  ``None`` (default) is an
        unbounded queue.  Arrivals past the bound are dropped — the
        paper's observed behaviour of the real stack at saturation
        ("starts dropping requests or thrashing").
    on_drop:
        Callback invoked with each dropped request.
    """

    def __init__(
        self,
        sim: Simulation,
        servers: int,
        service_dist: Distribution | None = None,
        name: str = "station",
        on_departure: Callable[[Request], None] | None = None,
        queue_capacity: int | None = None,
        on_drop: Callable[[Request], None] | None = None,
    ):
        if servers < 1:
            raise ValueError(f"servers must be >= 1, got {servers}")
        if queue_capacity is not None and queue_capacity < 0:
            raise ValueError(f"queue_capacity must be >= 0, got {queue_capacity}")
        self.sim = sim
        self.name = name
        self.service_dist = service_dist
        self.on_departure = on_departure
        self.queue_capacity = queue_capacity
        self.on_drop = on_drop
        self.drops = 0
        self.cancellations = 0
        self._servers = int(servers)
        self._busy = 0
        self._failed = False
        self._queue: deque[Request] = deque()
        self._rng = sim.spawn_rng()
        # Exact time-integral accounting for utilization / queue length.
        self._last_change = sim.now
        self._busy_integral = 0.0
        self._queue_integral = 0.0
        self.arrivals = 0
        self.completions = 0

    # -- state inspection ------------------------------------------------
    @property
    def servers(self) -> int:
        """Current number of servers."""
        return self._servers

    @property
    def busy(self) -> int:
        """Servers currently serving a request."""
        return self._busy

    @property
    def queue_length(self) -> int:
        """Requests waiting (not in service)."""
        return len(self._queue)

    @property
    def in_system(self) -> int:
        """Requests waiting or in service."""
        return self._busy + len(self._queue)

    @property
    def failed(self) -> bool:
        """True while the station is down (queues but does not serve)."""
        return self._failed

    def backlog_work(self) -> float:
        """Approximate unfinished work in seconds (for least-work dispatch).

        Sum of queued requests' (known or expected) service demands; the
        residual of in-service requests is approximated by half a mean
        service time each, which is exact in expectation for exponential
        service and a good proxy otherwise.
        """
        mean = self.service_dist.mean if self.service_dist is not None else 0.0
        queued = sum(r.service_time if r.service_time is not None else mean for r in self._queue)
        return queued + 0.5 * mean * self._busy

    # -- dynamics --------------------------------------------------------
    def arrive(self, request: Request) -> None:
        """Accept (or drop) a request at the current virtual time."""
        self._account()
        if request.canceled:
            # The client abandoned this attempt while it was on the wire
            # (timeout / hedge supersession); it never enters the queue.
            self.cancellations += 1
            return
        self.arrivals += 1
        request.arrived = self.sim.now
        if not self._failed and self._busy < self._servers:
            self._start(request)
        elif self.queue_capacity is None or len(self._queue) < self.queue_capacity:
            self._queue.append(request)
        else:
            self.drops += 1
            if self.on_drop is not None:
                self.on_drop(request)

    def cancel(self, request: Request) -> bool:
        """Remove a *waiting* request from the queue (client timeout).

        Returns True if the request was found and removed.  In-service
        work cannot be reclaimed — the server finishes it and the client
        ignores the late response (wasted work, as in a real stack where
        the backend does not observe client disconnects mid-request).
        """
        if request not in self._queue:
            return False
        self._account()
        self._queue.remove(request)
        self.cancellations += 1
        return True

    def set_servers(self, servers: int) -> None:
        """Change capacity at run time.

        Increasing capacity immediately starts queued requests; when
        decreasing, in-flight services finish normally and the station
        simply stops refilling above the new limit (graceful drain).
        """
        if servers < 1:
            raise ValueError(f"servers must be >= 1, got {servers}")
        self._account()
        self._servers = int(servers)
        while not self._failed and self._queue and self._busy < self._servers:
            self._start(self._queue.popleft())

    def _start(self, request: Request) -> None:
        self._busy += 1
        request.service_start = self.sim.now
        if request.service_time is None:
            if self.service_dist is None:
                raise ValueError(
                    f"station {self.name!r} has no service distribution and request "
                    f"{request.rid} carries no service_time"
                )
            request.service_time = float(self.service_dist.sample(self._rng))
        self.sim.schedule(request.service_time, self._finish, request)

    def _finish(self, request: Request) -> None:
        self._account()
        self._busy -= 1
        self.completions += 1
        request.service_end = self.sim.now
        if not self._failed and self._queue and self._busy < self._servers:
            self._start(self._queue.popleft())
        if self.on_departure is not None:
            self.on_departure(request)

    def fail(self) -> None:
        """Take the station down: no new service starts; in-flight work
        completes (graceful-degradation semantics) and arrivals queue
        (or drop, if a queue bound is configured)."""
        self._account()
        self._failed = True

    def repair(self) -> None:
        """Bring the station back and immediately drain the backlog."""
        self._account()
        self._failed = False
        while self._queue and self._busy < self._servers:
            self._start(self._queue.popleft())

    # -- statistics ------------------------------------------------------
    def _account(self) -> None:
        dt = self.sim.now - self._last_change
        if dt > 0:
            self._busy_integral += dt * self._busy
            self._queue_integral += dt * len(self._queue)
            self._last_change = self.sim.now

    @property
    def loss_rate(self) -> float:
        """Fraction of arrivals dropped (0 for unbounded queues)."""
        if self.arrivals == 0:
            return 0.0
        return self.drops / self.arrivals

    def utilization(self) -> float:
        """Time-average fraction of busy servers since t=0."""
        self._account()
        if self.sim.now == 0.0:
            return 0.0
        return self._busy_integral / (self.sim.now * self._servers)

    def mean_queue_length(self) -> float:
        """Time-average number of waiting requests since t=0."""
        self._account()
        if self.sim.now == 0.0:
            return 0.0
        return self._queue_integral / self.sim.now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Station(name={self.name!r}, servers={self._servers}, busy={self._busy}, "
            f"queued={len(self._queue)})"
        )
