"""Event calendars for the simulation engine.

Two interchangeable priority structures over ``(time, seq, callback,
args)`` entries, both popping in exact ``(time, seq)`` order so the
engine's deterministic tie-break (insertion order within a timestamp) is
preserved bit-for-bit whichever calendar is active:

* :class:`HeapCalendar` — the classic binary heap (``heapq``).  O(log n)
  per operation, no tuning, and the reference implementation the
  bit-identity tests pin the calendar queue against.
* :class:`CalendarQueue` — a bucketed calendar queue (Brown 1988): the
  near future is split into fixed-width buckets sized from the *mean
  event horizon* of the pending set, giving O(1) amortized inserts
  (``list.append`` into a bucket) and pops (advance a cursor, lazily
  sorting each bucket on first touch with Timsort).  Events beyond the
  current epoch — far-future outliers such as outage windows or trace
  tails — fall back to an overflow heap and migrate into buckets when
  the epoch rolls, so a handful of distant events cannot force a sparse,
  cache-hostile layout on the hot near-term traffic.

Entries are plain tuples and ``(time, seq)`` is unique, so all ordering
comparisons resolve before ever reaching the callback element — the same
property the heap relies on.  The queue resizes itself (rebuilds the
bucket layout) when the pending count doubles past or shrinks far below
the bucket count, keeping ~O(1) occupancy per bucket.
"""

from __future__ import annotations

import math
from bisect import insort
from heapq import heapify, heappop, heappush
from typing import Any

__all__ = ["HeapCalendar", "CalendarQueue"]

#: An entry is ``(time, seq, callback, args)``.
Entry = tuple[float, int, Any, tuple]

_MIN_BUCKETS = 8
_MAX_BUCKETS = 1 << 16
#: Bucket width fallback when the pending set has zero time spread.
_TINY_WIDTH = 1e-9


class HeapCalendar:
    """Binary-heap event calendar (the pre-calendar-queue engine core)."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list[Entry] = []

    def push(self, entry: Entry) -> None:
        heappush(self._heap, entry)

    def peek(self) -> Entry | None:
        heap = self._heap
        return heap[0] if heap else None

    def pop(self) -> Entry:
        return heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class CalendarQueue:
    """Bucketed calendar queue with an overflow heap for the far future."""

    __slots__ = (
        "_buckets",
        "_nbuckets",
        "_width",
        "_invw",
        "_start",
        "_limit",
        "_cursor",
        "_pos",
        "_is_sorted",
        "_overflow",
        "_len",
        "_grow_at",
        "_shrink_at",
        "_last_time",
    )

    def __init__(self) -> None:
        self._buckets: list[list[Entry]] = []
        self._overflow: list[Entry] = []
        self._len = 0
        self._cursor = 0
        self._pos = 0
        self._nbuckets = 0
        self._last_time = 0.0
        self._rebuild([])

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def push(self, entry: Entry) -> None:
        t = entry[0]
        self._len += 1
        if t >= self._limit:
            heappush(self._overflow, entry)
        else:
            i = int((t - self._start) * self._invw)
            cursor = self._cursor
            if i <= cursor:
                # Into the bucket currently being drained (or, before the
                # first pop of an epoch, before its start): keep it
                # ordered relative to the not-yet-popped tail.
                bucket = self._buckets[cursor]
                if self._is_sorted:
                    insort(bucket, entry, self._pos)
                else:
                    bucket.append(entry)
            else:
                if i >= self._nbuckets:
                    i = self._nbuckets - 1
                self._buckets[i].append(entry)
        if self._len > self._grow_at:
            self._rebuild(self._gather())

    def peek(self) -> Entry | None:
        """The next ``(time, seq)``-ordered entry, or ``None`` if empty."""
        if self._len == 0:
            return None
        while True:
            bucket = self._buckets[self._cursor]
            if self._pos < len(bucket):
                if not self._is_sorted:
                    bucket.sort()  # (time, seq) unique: callbacks never compared
                    self._is_sorted = True
                return bucket[self._pos]
            if self._cursor + 1 < self._nbuckets:
                bucket.clear()  # free consumed entries
                self._cursor += 1
                self._pos = 0
                self._is_sorted = False
            else:
                # Epoch exhausted; everything pending sits in the
                # overflow heap.  Re-lay buckets around it.
                self._rebuild(self._gather())

    def pop(self) -> Entry:
        """Remove and return the head entry (must be non-empty)."""
        if self._len == 0:
            raise IndexError("pop from an empty calendar")
        # Inlined peek() fast path: after the engine's peek() the current
        # bucket is already sorted and positioned, so the common case is
        # one index — no second bucket scan per event.
        while True:
            bucket = self._buckets[self._cursor]
            pos = self._pos
            if pos < len(bucket):
                if not self._is_sorted:
                    bucket.sort()  # (time, seq) unique: callbacks never compared
                    self._is_sorted = True
                entry = bucket[pos]
                self._pos = pos + 1
                self._len -= 1
                self._last_time = entry[0]
                if self._len < self._shrink_at:
                    self._rebuild(self._gather())
                return entry
            if self._cursor + 1 < self._nbuckets:
                bucket.clear()  # free consumed entries
                self._cursor += 1
                self._pos = 0
                self._is_sorted = False
            else:
                self._rebuild(self._gather())

    # -- internals -------------------------------------------------------
    def _gather(self) -> list[Entry]:
        """Drain every pending entry out of buckets + overflow."""
        out: list[Entry] = []
        buckets = self._buckets
        if buckets:
            out.extend(buckets[self._cursor][self._pos :])
            for i in range(self._cursor + 1, self._nbuckets):
                out.extend(buckets[i])
        out.extend(self._overflow)
        self._overflow = []
        return out

    def _rebuild(self, pending: list[Entry]) -> None:
        """Lay out a new epoch sized to the pending set.

        Bucket count tracks the pending count (power of two, clamped);
        bucket width is keyed on the *mean event horizon* — the average
        distance of pending events from the earliest one — so the epoch
        spans roughly twice the bulk of the distribution and far-future
        outliers land in the overflow heap instead of stretching it.
        """
        n = len(pending)
        nbuckets = _MIN_BUCKETS
        while nbuckets < n and nbuckets < _MAX_BUCKETS:
            nbuckets <<= 1
        degenerate = False
        if n:
            tmin = math.inf
            tsum = 0.0
            for e in pending:
                t = e[0]
                if t < tmin:
                    tmin = t
                tsum += t
            if math.isfinite(tmin):
                start = tmin
                horizon = tsum / n - start
                width = 4.0 * horizon / nbuckets if horizon > 0.0 else _TINY_WIDTH
                if not (0.0 < width < math.inf):
                    # Far-future outliers blew up the mean; fall back to a
                    # single-bucket (sorted list) epoch rather than a NaN
                    # layout.
                    degenerate = True
                    start = tmin
                    width = math.inf
            else:
                # Every pending time is +inf: single-bucket epoch keyed
                # off the last popped time so future finite pushes still
                # order ahead of the infinities.
                degenerate = True
                start = self._last_time
                width = math.inf
        else:
            start = self._last_time
            width = _TINY_WIDTH
        if len(self._buckets) == nbuckets:
            for b in self._buckets:
                b.clear()
        else:
            self._buckets = [[] for _ in range(nbuckets)]
        self._nbuckets = nbuckets
        self._width = width
        self._invw = 1.0 / width
        self._start = start
        self._limit = limit = start + nbuckets * width
        self._cursor = 0
        self._pos = 0
        self._is_sorted = False
        self._grow_at = (nbuckets << 1) if nbuckets < _MAX_BUCKETS else (1 << 62)
        self._shrink_at = (nbuckets >> 3) if nbuckets > _MIN_BUCKETS else 0
        buckets = self._buckets
        if degenerate:
            # Single sorted-list mode: everything (infinities included)
            # lives in bucket 0, so peek() always finds a head there.
            buckets[0].extend(pending)
            return
        overflow = self._overflow
        invw = self._invw
        last = nbuckets - 1
        for e in pending:
            t = e[0]
            if t >= limit:
                overflow.append(e)
            else:
                i = int((t - start) * invw)
                buckets[i if i < last else last].append(e)
        heapify(overflow)
