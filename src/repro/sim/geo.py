"""Multi-region geographies: per-region RTT heterogeneity.

The paper's experiments fix one client region per run; real
geo-distributed applications serve *many* regions at once, each with
its own edge RTT and its own distance to the nearest cloud data
center.  Corollary 3.1.3 predicts the consequence: regions close to a
cloud data center see inversion at low utilization, remote regions
keep their edge advantage much longer.  This module makes that
heterogeneous comparison runnable:

* :class:`Region` — one client population: demand share, edge RTT,
  cloud RTT.
* :class:`GeoWorkload` — per-region workloads derived from a total rate.
* :func:`simulate_geo_comparison` — edge (one site per region) vs a
  single shared cloud, with per-request RTTs taken from the request's
  region.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.queueing.distributions import Distribution
from repro.sim.fastsim import SystemResult, simulate_fcfs_queue

__all__ = ["Region", "GeoComparison", "simulate_geo_comparison"]


@dataclass(frozen=True)
class Region:
    """One client region of a geo-distributed application.

    Attributes
    ----------
    name:
        Label used in results.
    weight:
        Share of the aggregate demand (normalized across regions).
    edge_rtt:
        RTT to the region's own edge site, seconds.
    cloud_rtt:
        RTT to the (single) cloud deployment, seconds.
    """

    name: str
    weight: float
    edge_rtt: float
    cloud_rtt: float

    def __post_init__(self):
        if self.weight < 0:
            raise ValueError(f"weight must be >= 0, got {self.weight}")
        if self.edge_rtt < 0 or self.cloud_rtt < 0:
            raise ValueError("RTTs must be >= 0")
        if self.cloud_rtt <= self.edge_rtt:
            raise ValueError(
                f"region {self.name!r}: cloud RTT ({self.cloud_rtt}) must exceed "
                f"edge RTT ({self.edge_rtt})"
            )


@dataclass(frozen=True)
class GeoComparison:
    """Per-region edge and cloud latency results."""

    regions: tuple[Region, ...]
    edge: SystemResult  # site == region index
    cloud: SystemResult  # site == region index of the requester

    def region_means(self) -> list[tuple[str, float, float]]:
        """Per-region ``(name, edge_mean, cloud_mean)`` in seconds."""
        out = []
        for i, region in enumerate(self.regions):
            out.append(
                (
                    region.name,
                    float(self.edge.for_site(i).end_to_end.mean()),
                    float(self.cloud.for_site(i).end_to_end.mean()),
                )
            )
        return out

    def inverted_regions(self) -> list[str]:
        """Regions whose mean edge latency exceeds their cloud latency."""
        return [
            name for name, e, c in self.region_means() if e > c
        ]


def simulate_geo_comparison(
    regions: Sequence[Region],
    total_rate: float,
    service: Distribution,
    servers_per_site: int,
    *,
    n_per_region_unit: int = 50_000,
    seed: int = 0,
    warmup_fraction: float = 0.1,
) -> GeoComparison:
    """Run the heterogeneous edge-vs-cloud comparison.

    The edge gives every region its own ``servers_per_site``-server
    site; the cloud pools ``len(regions) × servers_per_site`` servers
    and serves all regions over their individual cloud RTTs.

    Parameters
    ----------
    total_rate:
        Aggregate demand (req/s) split across regions by weight.
    n_per_region_unit:
        Requests generated for a region with weight ``1/len(regions)``;
        other regions scale proportionally (so all regions cover the
        same virtual time span).
    """
    regions = tuple(regions)
    if not regions:
        raise ValueError("need at least one region")
    if total_rate <= 0:
        raise ValueError(f"total_rate must be > 0, got {total_rate}")
    if servers_per_site < 1:
        raise ValueError(f"servers_per_site must be >= 1, got {servers_per_site}")
    weights = np.array([r.weight for r in regions], dtype=float)
    if weights.sum() <= 0:
        raise ValueError("region weights must have positive sum")
    weights = weights / weights.sum()
    rng = np.random.default_rng(seed)

    k = len(regions)
    per_region_n = np.maximum(
        1, np.round(n_per_region_unit * k * weights).astype(int)
    )

    # Per-region workloads (Poisson arrivals, shared service law).
    arrivals, services = [], []
    for i, _region in enumerate(regions):
        rate = total_rate * weights[i]
        n = int(per_region_n[i])
        arrivals.append(np.cumsum(rng.exponential(1.0 / rate, n)))
        services.append(np.asarray(service.sample(rng, n), dtype=float))

    # Edge: one independent queue per region, its own RTT.
    edge_parts = []
    for i, region in enumerate(regions):
        waits = simulate_fcfs_queue(arrivals[i], services[i], servers_per_site)
        rtts = np.full(arrivals[i].size, region.edge_rtt)
        edge_parts.append(
            SystemResult(
                rtts + waits + services[i],
                waits,
                services[i],
                rtts,
                np.full(arrivals[i].size, i, dtype=np.int64),
                arrivals[i],
            )
        )

    # Cloud: merged stream through one pooled queue; RTT depends on the
    # request's origin region (shifts queue-arrival order accordingly).
    all_arr = np.concatenate(arrivals)
    all_srv = np.concatenate(services)
    all_region = np.concatenate(
        [np.full(a.size, i, dtype=np.int64) for i, a in enumerate(arrivals)]
    )
    oneway = np.array([r.cloud_rtt for r in regions])[all_region] / 2.0
    at_queue = all_arr + oneway
    order = np.argsort(at_queue, kind="stable")
    inverse = np.empty_like(order)
    inverse[order] = np.arange(order.size)
    cloud_waits = simulate_fcfs_queue(
        at_queue[order], all_srv[order], k * servers_per_site
    )[inverse]
    cloud_rtts = 2.0 * oneway
    cloud = SystemResult(
        cloud_rtts + cloud_waits + all_srv,
        cloud_waits,
        all_srv,
        cloud_rtts,
        all_region,
        all_arr,
    )

    horizon = min(float(a[-1]) for a in arrivals)
    cut = warmup_fraction * horizon
    edge = SystemResult(
        np.concatenate([p.end_to_end for p in edge_parts]),
        np.concatenate([p.wait for p in edge_parts]),
        np.concatenate([p.service for p in edge_parts]),
        np.concatenate([p.network for p in edge_parts]),
        np.concatenate([p.site for p in edge_parts]),
        np.concatenate([p.arrival for p in edge_parts]),
    )
    return GeoComparison(
        regions=regions, edge=edge.after(cut), cloud=cloud.after(cut)
    )
