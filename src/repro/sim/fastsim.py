"""Fast FCFS G/G/c simulation via the Kiefer–Wolfowitz recursion.

For large parameter sweeps (Figure 7 needs dozens of (RTT, rate) cells,
each with ≥10⁵ requests for a stable p95) the event-calendar engine is
needlessly general: an FCFS multi-server queue with a fixed request
sequence is fully determined by the recursion

    start_i = max(arrival_i, earliest server free time)

maintained in a size-c min-heap of server free times — O(n log c) with
no event objects.  On top of the single queue this module covers the
paper's actual topologies: k independent edge sites
(:func:`simulate_edge_system`), the cloud central queue
(:func:`simulate_single_queue_system`), and the cloud behind a
round-robin or join-shortest-queue load balancer
(:func:`simulate_lb_system`).  The engine and these paths are
cross-validated in the integration tests; both must agree with exact
M/M/k theory.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.sim.network import ConstantLatency, LatencyModel

__all__ = [
    "simulate_fcfs_queue",
    "simulate_single_queue_system",
    "simulate_lb_system",
    "simulate_edge_system",
    "SystemResult",
]


def simulate_fcfs_queue(
    arrival_times: np.ndarray, service_times: np.ndarray, servers: int
) -> np.ndarray:
    """Waiting times of each request in an FCFS G/G/c queue.

    Parameters
    ----------
    arrival_times:
        Non-decreasing absolute arrival times (seconds).
    service_times:
        Service demand of each request (seconds), aligned with arrivals.
    servers:
        Number of parallel servers ``c``.

    Returns
    -------
    numpy.ndarray
        Queueing delay of each request, aligned with the inputs.
    """
    a = np.ascontiguousarray(arrival_times, dtype=float)
    s = np.ascontiguousarray(service_times, dtype=float)
    if a.ndim != 1 or a.shape != s.shape:
        raise ValueError("arrival_times and service_times must be aligned 1-D arrays")
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    if a.size == 0:
        return np.empty(0)
    if np.any(np.diff(a) < 0):
        raise ValueError("arrival_times must be non-decreasing")
    if s.min() < 0:
        raise ValueError("service_times must be non-negative")

    if servers == 1:
        return _lindley_single(a, s)
    return _kw_heap(a, s, servers)


def _kw_heap(a: np.ndarray, s: np.ndarray, servers: int) -> np.ndarray:
    """Kiefer–Wolfowitz recursion over a min-heap of server free times.

    Operates on plain Python lists (one bulk ``tolist()`` per array):
    element loads are list indexing and the arithmetic is float-on-float,
    which is ~3× faster in CPython than per-element ndarray access with
    bit-identical IEEE results.
    """
    free = [0.0] * servers  # min-heap of server free times
    arrivals = a.tolist()
    services = s.tolist()
    waits = [0.0] * len(arrivals)
    push, pop = heapq.heappush, heapq.heappop
    for i, ai in enumerate(arrivals):
        t = pop(free)
        start = t if t > ai else ai
        waits[i] = start - ai
        push(free, start + services[i])
    return np.asarray(waits)


def _lindley_single(a: np.ndarray, s: np.ndarray) -> np.ndarray:
    """Lindley recursion W_{i+1} = max(0, W_i + s_i - (a_{i+1} - a_i))."""
    arrivals = a.tolist()
    services = s.tolist()
    waits = [0.0] * len(arrivals)
    w = 0.0
    prev_a = arrivals[0]
    prev_s = services[0]
    for i in range(1, len(arrivals)):
        ai = arrivals[i]
        w = w + prev_s - (ai - prev_a)
        if w < 0.0:
            w = 0.0
        waits[i] = w
        prev_a = ai
        prev_s = services[i]
    return np.asarray(waits)


class SystemResult:
    """End-to-end latencies of one simulated deployment.

    Attributes
    ----------
    end_to_end:
        Total latency per request (network + wait + service), seconds.
    wait:
        Queueing delay per request.
    service:
        Service time per request.
    network:
        Round-trip network time per request.
    site:
        Integer site index per request (0 for a cloud deployment).
    arrival:
        Request creation time (client clock).
    """

    __slots__ = ("end_to_end", "wait", "service", "network", "site", "arrival")

    def __init__(self, end_to_end, wait, service, network, site, arrival):
        self.end_to_end = end_to_end
        self.wait = wait
        self.service = service
        self.network = network
        self.site = site
        self.arrival = arrival

    def __len__(self) -> int:
        return self.end_to_end.size

    def after(self, t: float) -> "SystemResult":
        """Subset of requests created at or after ``t`` (warm-up trim)."""
        m = self.arrival >= t
        return SystemResult(
            self.end_to_end[m], self.wait[m], self.service[m],
            self.network[m], self.site[m], self.arrival[m],
        )

    def for_site(self, site: int) -> "SystemResult":
        """Subset of requests served at integer site index ``site``."""
        m = self.site == site
        return SystemResult(
            self.end_to_end[m], self.wait[m], self.service[m],
            self.network[m], self.site[m], self.arrival[m],
        )


def simulate_single_queue_system(
    arrival_times: np.ndarray,
    service_times: np.ndarray,
    servers: int,
    latency: LatencyModel,
    rng: np.random.Generator | None = None,
) -> SystemResult:
    """Simulate a cloud-style deployment: one central queue of ``servers``.

    Network legs shift each request's arrival at the queue; FCFS order at
    the queue follows the shifted arrival times (with a constant-latency
    model the order is unchanged, matching the paper's setup).
    """
    rng = np.random.default_rng(0) if rng is None else rng
    a = np.asarray(arrival_times, dtype=float)
    s = np.asarray(service_times, dtype=float)

    if isinstance(latency, ConstantLatency):
        rtts = np.full(a.size, latency.mean_rtt)
        shifted = a + rtts / 2.0
    else:
        legs_out = latency.sample_oneway_batch(rng, a.size)
        legs_back = latency.sample_oneway_batch(rng, a.size)
        rtts = legs_out + legs_back
        shifted = a + legs_out
        order = np.argsort(shifted, kind="stable")
        inverse = np.empty_like(order)
        inverse[order] = np.arange(order.size)
        waits = simulate_fcfs_queue(shifted[order], s[order], servers)[inverse]
        e2e = rtts + waits + s
        return SystemResult(e2e, waits, s, rtts, np.zeros(a.size, dtype=np.int64), a)

    waits = simulate_fcfs_queue(shifted, s, servers)
    e2e = rtts + waits + s
    return SystemResult(e2e, waits, s, rtts, np.zeros(a.size, dtype=np.int64), a)


def _jsq_waits(
    a: np.ndarray,
    s: np.ndarray,
    backends: int,
    servers_per_backend: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Waiting times under join-shortest-queue dispatch to FCFS backends.

    Tracks, per backend, a heap of in-system departure times (the JSQ
    occupancy signal — waiting + in service, exactly what the DES
    ``JoinShortestQueue`` policy reads) and a Kiefer–Wolfowitz heap of
    server free times.  Ties are broken uniformly at random, matching the
    DES policy's behaviour statistically (the streams differ, so this
    path is validated against the DES by distribution, not bitwise).
    """
    arrivals = a.tolist()
    services = s.tolist()
    waits = [0.0] * len(arrivals)
    in_system: list[list[float]] = [[] for _ in range(backends)]
    free: list[list[float]] = [[0.0] * servers_per_backend for _ in range(backends)]
    push, pop = heapq.heappush, heapq.heappop
    integers = rng.integers
    for i, t in enumerate(arrivals):
        best = 0
        best_occ = None
        ties = 1
        for b in range(backends):
            dep = in_system[b]
            while dep and dep[0] <= t:
                pop(dep)
            occ = len(dep)
            if best_occ is None or occ < best_occ:
                best_occ = occ
                best = b
                ties = 1
            elif occ == best_occ:
                ties += 1
        if ties > 1:
            # uniform choice among the tied backends, as in the DES policy
            pick = int(integers(ties))
            for b in range(backends):
                if len(in_system[b]) == best_occ:
                    if pick == 0:
                        best = b
                        break
                    pick -= 1
        chosen_free = free[best]
        tf = pop(chosen_free)
        start = tf if tf > t else t
        waits[i] = start - t
        end = start + services[i]
        push(chosen_free, end)
        push(in_system[best], end)
    return np.asarray(waits)


def simulate_lb_system(
    arrival_times: np.ndarray,
    service_times: np.ndarray,
    servers: int,
    latency: LatencyModel,
    rng: np.random.Generator | None = None,
    *,
    policy: str = "round-robin",
    backends: int | None = None,
    lb_overhead: float = 0.0,
) -> SystemResult:
    """Simulate a cloud deployment behind a load balancer.

    The paper's real cloud runs HAProxy in front of ``backends`` server
    groups rather than the idealized central queue; this is the fastsim
    counterpart of :class:`~repro.sim.topology.CloudDeployment` with a
    dispatch policy.  Requests reach the LB after their outbound network
    leg (plus ``lb_overhead``), are dispatched to per-backend FCFS queues
    in LB-arrival order, and return over the second leg.

    Parameters
    ----------
    servers:
        Total servers, divided evenly among ``backends`` (must divide,
        mirroring :class:`~repro.sim.topology.CloudDeployment`).
    policy:
        ``"round-robin"`` (HAProxy default; backend ``i % backends`` in
        LB-arrival order — exactly the DES policy's assignment) or
        ``"jsq"`` (join shortest queue / HAProxy ``leastconn``).
    backends:
        Backend count (default: one backend per server).
    lb_overhead:
        Extra one-way delay through the balancer, seconds.
    """
    rng = np.random.default_rng(0) if rng is None else rng
    a = np.asarray(arrival_times, dtype=float)
    s = np.asarray(service_times, dtype=float)
    if a.ndim != 1 or a.shape != s.shape:
        raise ValueError("arrival_times and service_times must be aligned 1-D arrays")
    if policy not in ("round-robin", "jsq"):
        raise ValueError(f"policy must be 'round-robin' or 'jsq', got {policy!r}")
    if backends is None:
        backends = servers
    if backends < 1:
        raise ValueError(f"backends must be >= 1, got {backends}")
    if servers % backends != 0:
        raise ValueError(f"servers ({servers}) must divide evenly among {backends} backends")
    if lb_overhead < 0:
        raise ValueError(f"lb_overhead must be >= 0, got {lb_overhead}")
    per_backend = servers // backends
    n = a.size
    if n == 0:
        empty = np.empty(0)
        return SystemResult(empty, empty, empty, empty, np.empty(0, dtype=np.int64), empty)

    if isinstance(latency, ConstantLatency):
        rtts = np.full(n, latency.mean_rtt)
        at_lb = a + (latency.mean_rtt / 2.0 + lb_overhead)
        order = None
    else:
        legs_out = latency.sample_oneway_batch(rng, n)
        legs_back = latency.sample_oneway_batch(rng, n)
        rtts = legs_out + legs_back
        at_lb = a + (legs_out + lb_overhead)
        order = np.argsort(at_lb, kind="stable")
        at_lb = at_lb[order]

    dispatch_s = s if order is None else s[order]
    if policy == "round-robin":
        waits = np.empty(n)
        for b in range(backends):
            waits[b::backends] = simulate_fcfs_queue(
                at_lb[b::backends], dispatch_s[b::backends], per_backend
            )
    else:
        waits = _jsq_waits(at_lb, dispatch_s, backends, per_backend, rng)

    if order is not None:
        inverse = np.empty_like(order)
        inverse[order] = np.arange(order.size)
        waits = waits[inverse]
    # The balancer sits on the inbound path only, mirroring the DES
    # CloudDeployment (responses bypass it).
    network = rtts + lb_overhead if lb_overhead else rtts
    e2e = network + waits + s
    return SystemResult(e2e, waits, s, network, np.zeros(n, dtype=np.int64), a)


def simulate_edge_system(
    site_arrivals: list[np.ndarray],
    site_services: list[np.ndarray],
    servers_per_site: int,
    latency: LatencyModel,
    rng: np.random.Generator | None = None,
) -> SystemResult:
    """Simulate an edge deployment: one independent queue per site.

    Parameters
    ----------
    site_arrivals / site_services:
        Per-site aligned arrays (site ``i`` serves exactly its own list —
        the paper's geo-partitioned workload).
    servers_per_site:
        Servers (or cores) at every site.
    latency:
        Client ↔ edge network model, shared across sites (1 ms RTT in
        all paper experiments).

    Returns
    -------
    SystemResult
        Concatenation over sites, with ``site`` recording the index.
    """
    if len(site_arrivals) != len(site_services) or not site_arrivals:
        raise ValueError("need equal, non-empty per-site arrival/service lists")
    rng = np.random.default_rng(0) if rng is None else rng
    parts = []
    for idx, (a, s) in enumerate(zip(site_arrivals, site_services, strict=True)):
        res = simulate_single_queue_system(a, s, servers_per_site, latency, rng)
        res.site[:] = idx
        parts.append(res)
    return SystemResult(
        np.concatenate([p.end_to_end for p in parts]),
        np.concatenate([p.wait for p in parts]),
        np.concatenate([p.service for p in parts]),
        np.concatenate([p.network for p in parts]),
        np.concatenate([p.site for p in parts]),
        np.concatenate([p.arrival for p in parts]),
    )
