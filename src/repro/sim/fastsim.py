"""Fast FCFS G/G/c simulation via the Kiefer–Wolfowitz recursion.

For large parameter sweeps (Figure 7 needs dozens of (RTT, rate) cells,
each with ≥10⁵ requests for a stable p95) the event-calendar engine is
needlessly general: an FCFS multi-server queue with a fixed request
sequence is fully determined by the recursion

    start_i = max(arrival_i, earliest server free time)

maintained in a size-c min-heap of server free times — O(n log c) with
no event objects.  The engine and this path are cross-validated in the
integration tests; both must agree with exact M/M/k theory.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.sim.network import LatencyModel

__all__ = [
    "simulate_fcfs_queue",
    "simulate_single_queue_system",
    "simulate_edge_system",
    "SystemResult",
]


def simulate_fcfs_queue(
    arrival_times: np.ndarray, service_times: np.ndarray, servers: int
) -> np.ndarray:
    """Waiting times of each request in an FCFS G/G/c queue.

    Parameters
    ----------
    arrival_times:
        Non-decreasing absolute arrival times (seconds).
    service_times:
        Service demand of each request (seconds), aligned with arrivals.
    servers:
        Number of parallel servers ``c``.

    Returns
    -------
    numpy.ndarray
        Queueing delay of each request, aligned with the inputs.
    """
    a = np.ascontiguousarray(arrival_times, dtype=float)
    s = np.ascontiguousarray(service_times, dtype=float)
    if a.ndim != 1 or a.shape != s.shape:
        raise ValueError("arrival_times and service_times must be aligned 1-D arrays")
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    if a.size == 0:
        return np.empty(0)
    if np.any(np.diff(a) < 0):
        raise ValueError("arrival_times must be non-decreasing")
    if s.min() < 0:
        raise ValueError("service_times must be non-negative")

    if servers == 1:
        return _lindley_single(a, s)

    free = [0.0] * servers  # min-heap of server free times
    waits = np.empty_like(a)
    push, pop = heapq.heappush, heapq.heappop
    for i in range(a.size):
        t = pop(free)
        start = t if t > a[i] else a[i]
        waits[i] = start - a[i]
        push(free, start + s[i])
    return waits


def _lindley_single(a: np.ndarray, s: np.ndarray) -> np.ndarray:
    """Lindley recursion W_{i+1} = max(0, W_i + s_i - (a_{i+1} - a_i))."""
    waits = np.empty_like(a)
    w = 0.0
    waits[0] = 0.0
    prev_a = a[0]
    prev_s = s[0]
    for i in range(1, a.size):
        w = w + prev_s - (a[i] - prev_a)
        if w < 0.0:
            w = 0.0
        waits[i] = w
        prev_a = a[i]
        prev_s = s[i]
    return waits


class SystemResult:
    """End-to-end latencies of one simulated deployment.

    Attributes
    ----------
    end_to_end:
        Total latency per request (network + wait + service), seconds.
    wait:
        Queueing delay per request.
    service:
        Service time per request.
    network:
        Round-trip network time per request.
    site:
        Integer site index per request (0 for a cloud deployment).
    arrival:
        Request creation time (client clock).
    """

    __slots__ = ("end_to_end", "wait", "service", "network", "site", "arrival")

    def __init__(self, end_to_end, wait, service, network, site, arrival):
        self.end_to_end = end_to_end
        self.wait = wait
        self.service = service
        self.network = network
        self.site = site
        self.arrival = arrival

    def __len__(self) -> int:
        return self.end_to_end.size

    def after(self, t: float) -> "SystemResult":
        """Subset of requests created at or after ``t`` (warm-up trim)."""
        m = self.arrival >= t
        return SystemResult(
            self.end_to_end[m], self.wait[m], self.service[m],
            self.network[m], self.site[m], self.arrival[m],
        )

    def for_site(self, site: int) -> "SystemResult":
        """Subset of requests served at integer site index ``site``."""
        m = self.site == site
        return SystemResult(
            self.end_to_end[m], self.wait[m], self.service[m],
            self.network[m], self.site[m], self.arrival[m],
        )


def _sample_rtts(latency: LatencyModel, n: int, rng: np.random.Generator) -> np.ndarray:
    """Round-trip times as the sum of two independently sampled legs."""
    out = np.empty(n)
    for i in range(n):
        out[i] = latency.sample_oneway(rng) + latency.sample_oneway(rng)
    return out


def simulate_single_queue_system(
    arrival_times: np.ndarray,
    service_times: np.ndarray,
    servers: int,
    latency: LatencyModel,
    rng: np.random.Generator | None = None,
) -> SystemResult:
    """Simulate a cloud-style deployment: one central queue of ``servers``.

    Network legs shift each request's arrival at the queue; FCFS order at
    the queue follows the shifted arrival times (with a constant-latency
    model the order is unchanged, matching the paper's setup).
    """
    rng = np.random.default_rng(0) if rng is None else rng
    a = np.asarray(arrival_times, dtype=float)
    s = np.asarray(service_times, dtype=float)
    from repro.sim.network import ConstantLatency  # local import to avoid cycle noise

    if isinstance(latency, ConstantLatency):
        rtts = np.full(a.size, latency.mean_rtt)
        shifted = a + rtts / 2.0
    else:
        legs_out = np.fromiter(
            (latency.sample_oneway(rng) for _ in range(a.size)), dtype=float, count=a.size
        )
        legs_back = np.fromiter(
            (latency.sample_oneway(rng) for _ in range(a.size)), dtype=float, count=a.size
        )
        rtts = legs_out + legs_back
        shifted = a + legs_out
        order = np.argsort(shifted, kind="stable")
        inverse = np.empty_like(order)
        inverse[order] = np.arange(order.size)
        waits = simulate_fcfs_queue(shifted[order], s[order], servers)[inverse]
        e2e = rtts + waits + s
        return SystemResult(e2e, waits, s, rtts, np.zeros(a.size, dtype=np.int64), a)

    waits = simulate_fcfs_queue(shifted, s, servers)
    e2e = rtts + waits + s
    return SystemResult(e2e, waits, s, rtts, np.zeros(a.size, dtype=np.int64), a)


def simulate_edge_system(
    site_arrivals: list[np.ndarray],
    site_services: list[np.ndarray],
    servers_per_site: int,
    latency: LatencyModel,
    rng: np.random.Generator | None = None,
) -> SystemResult:
    """Simulate an edge deployment: one independent queue per site.

    Parameters
    ----------
    site_arrivals / site_services:
        Per-site aligned arrays (site ``i`` serves exactly its own list —
        the paper's geo-partitioned workload).
    servers_per_site:
        Servers (or cores) at every site.
    latency:
        Client ↔ edge network model, shared across sites (1 ms RTT in
        all paper experiments).

    Returns
    -------
    SystemResult
        Concatenation over sites, with ``site`` recording the index.
    """
    if len(site_arrivals) != len(site_services) or not site_arrivals:
        raise ValueError("need equal, non-empty per-site arrival/service lists")
    rng = np.random.default_rng(0) if rng is None else rng
    parts = []
    for idx, (a, s) in enumerate(zip(site_arrivals, site_services, strict=True)):
        res = simulate_single_queue_system(a, s, servers_per_site, latency, rng)
        res.site[:] = idx
        parts.append(res)
    return SystemResult(
        np.concatenate([p.end_to_end for p in parts]),
        np.concatenate([p.wait for p in parts]),
        np.concatenate([p.service for p in parts]),
        np.concatenate([p.network for p in parts]),
        np.concatenate([p.site for p in parts]),
        np.concatenate([p.arrival for p in parts]),
    )
