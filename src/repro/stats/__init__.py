"""Measurement utilities: summaries, time series, CIs, warm-up trimming."""

from repro.stats.ci import batch_means_ci
from repro.stats.overload import OverloadSummary, summarize_overload
from repro.stats.refusals import RefusalCounts
from repro.stats.replications import (
    ReplicationSummary,
    replicate,
    replications_for_precision,
)
from repro.stats.resilience import ResilienceSummary, summarize_resilience
from repro.stats.summary import LatencySummary, summarize
from repro.stats.timeseries import windowed_mean, windowed_percentile
from repro.stats.warmup import mser_cutoff, trim_warmup

__all__ = [
    "LatencySummary",
    "summarize",
    "ResilienceSummary",
    "summarize_resilience",
    "OverloadSummary",
    "summarize_overload",
    "RefusalCounts",
    "windowed_mean",
    "windowed_percentile",
    "batch_means_ci",
    "mser_cutoff",
    "trim_warmup",
    "ReplicationSummary",
    "replicate",
    "replications_for_precision",
]
