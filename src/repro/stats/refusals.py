"""The refusal taxonomy as one value type.

PRs 1–2 grew three parallel refusal-accounting paths — station counters
(``rejected`` / ``drops`` / ``shed``), deployment outcome counters, and
the resilient client's attempt accounting — each plumbed field by field
into summaries and reports.  :class:`RefusalCounts` consolidates the
taxonomy behind one immutable value:

* ``rejected`` — refused at the admission door,
* ``dropped``  — bounded queue full on arrival,
* ``shed``     — discarded by the queue discipline (CoDel, overload LIFO).

Counts add (``a + b`` sums component-wise), convert (``as_dict``) and
rate (``rate(offered)``), and every accounting source exposes the same
property: ``Station.refusal_counts``, ``EdgeDeployment.refusal_counts``,
``CloudDeployment.refusal_counts`` and
``ResilientClient.refusal_counts``.  The constructors below also accept
those objects directly, so aggregation code reads
``sum(RefusalCounts.from_station(s) for s in stations)`` instead of
three parallel ``sum(...)`` expressions.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

__all__ = ["RefusalCounts"]


@dataclass(frozen=True)
class RefusalCounts:
    """Refusals by cause: admission door, full queue, discipline shed."""

    rejected: int = 0
    dropped: int = 0
    shed: int = 0

    def __post_init__(self):
        for name in ("rejected", "dropped", "shed"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")

    @property
    def total(self) -> int:
        """Refusals across the whole taxonomy."""
        return self.rejected + self.dropped + self.shed

    def rate(self, offered: int) -> float:
        """Fraction of ``offered`` arrivals refused (0 when none arrived)."""
        return self.total / offered if offered else 0.0

    def __add__(self, other: "RefusalCounts") -> "RefusalCounts":
        if not isinstance(other, RefusalCounts):
            return NotImplemented
        return RefusalCounts(
            rejected=self.rejected + other.rejected,
            dropped=self.dropped + other.dropped,
            shed=self.shed + other.shed,
        )

    def __radd__(self, other) -> "RefusalCounts":
        if other == 0:  # sum(...) starts from int 0
            return self
        return self.__add__(other)

    def __bool__(self) -> bool:
        return self.total > 0

    def as_dict(self) -> dict[str, int]:
        """The taxonomy as a plain dict (telemetry records, JSON)."""
        return {"rejected": self.rejected, "dropped": self.dropped, "shed": self.shed}

    # -- constructors from the three accounting sources ------------------
    @classmethod
    def from_station(cls, station) -> "RefusalCounts":
        """Counts kept by a :class:`~repro.sim.station.Station`."""
        return cls(rejected=station.rejected, dropped=station.drops, shed=station.shed)

    @classmethod
    def from_stations(cls, stations: Iterable) -> "RefusalCounts":
        """Summed counts of several stations."""
        total = cls()
        for station in stations:
            total = total + cls.from_station(station)
        return total

    @classmethod
    def from_deployment(cls, deployment) -> "RefusalCounts":
        """Outcome counts kept by an edge or cloud deployment."""
        return cls(
            rejected=deployment.rejected,
            dropped=deployment.dropped,
            shed=deployment.shed,
        )

    @classmethod
    def from_client(cls, client) -> "RefusalCounts":
        """Server refusals observed by a resilient client's attempts."""
        return cls(
            rejected=client.server_rejects, dropped=client.drops, shed=client.sheds
        )

    def __str__(self) -> str:
        return f"rej={self.rejected} drop={self.dropped} shed={self.shed}"
