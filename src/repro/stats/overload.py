"""Overload-control metrics: goodput, refusal taxonomy, degradation.

Latency summaries describe the requests a station *served*; an overload
experiment is judged by what happened to everything else.  This module
aggregates the refusal taxonomy the stations keep —

* ``rejected`` — refused at the admission door (adaptive or static
  admission control),
* ``dropped`` — bounded queue full on arrival,
* ``shed`` — discarded by the queue discipline (CoDel sojourn drops,
  overload LIFO abandonment),

— together with brownout degradation counts into one
:class:`OverloadSummary` per run: goodput (served requests per second),
the refusal rate and its composition, the fraction of served requests
that got the degraded variant, and the latency distribution of what was
actually served.  The E11 acceptance claims ("CoDel keeps admitted p95
bounded where FIFO diverges", "brownout beats pure dropping at equal
offered load") are statements about these numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

from repro.stats.refusals import RefusalCounts
from repro.stats.summary import LatencySummary, summarize

__all__ = ["OverloadSummary", "summarize_overload"]


@dataclass(frozen=True)
class OverloadSummary:
    """Served/refused/degraded accounting for one overloaded run.

    Attributes
    ----------
    duration:
        Observation window in virtual seconds.
    offered:
        Requests that arrived at the station(s) — admitted or not.
    served:
        Requests that completed service (including degraded ones).
    rejected / dropped / shed:
        The refusal taxonomy (admission door, full queue, discipline).
    degraded:
        Served requests that received the brownout (cheaper) variant.
    goodput:
        Served requests per virtual second.
    refusal_rate:
        ``(rejected + dropped + shed) / offered`` (0 when nothing
        arrived).
    degraded_fraction:
        ``degraded / served`` (0 when nothing was served).
    latency:
        End-to-end (or server-side, per caller) latency distribution of
        the served requests, ``None`` when nothing was served or no
        sample was given.
    """

    duration: float
    offered: int
    served: int
    rejected: int
    dropped: int
    shed: int
    degraded: int
    goodput: float
    refusal_rate: float
    degraded_fraction: float
    latency: LatencySummary | None

    @property
    def refusals(self) -> RefusalCounts:
        """The refusal taxonomy as one value."""
        return RefusalCounts(rejected=self.rejected, dropped=self.dropped, shed=self.shed)

    @property
    def refused(self) -> int:
        """Total refusals across the taxonomy."""
        return self.refusals.total

    def __str__(self) -> str:
        lat = f" p95={self.latency.p95 * 1e3:.1f}ms" if self.latency is not None else ""
        deg = f" degraded={self.degraded_fraction:.1%}" if self.degraded else ""
        return (
            f"offered={self.offered} served={self.served} "
            f"refused={self.refused} ({self.refusal_rate:.1%}: "
            f"{self.refusals}) "
            f"goodput={self.goodput:.2f}/s{deg}{lat}"
        )


def summarize_overload(
    *,
    duration: float,
    stations: Sequence | None = None,
    offered: int | None = None,
    served: int | None = None,
    rejected: int = 0,
    dropped: int = 0,
    shed: int = 0,
    degraded: int = 0,
    latencies: Iterable[float] | np.ndarray | None = None,
) -> OverloadSummary:
    """Build an :class:`OverloadSummary` from stations and/or raw counters.

    When ``stations`` is given, each station's ``arrivals``,
    ``completions``, ``rejected``, ``drops``, ``shed`` and ``degraded``
    counters are summed and any explicit counter arguments are *added*
    on top (so callers can merge station totals with, e.g., client-side
    accounting).  Without ``stations``, ``offered`` and ``served`` must
    be provided.

    Raises
    ------
    ValueError
        If ``duration`` is not positive, any counter is negative, or
        neither ``stations`` nor ``offered``/``served`` is provided.
    """
    if duration <= 0:
        raise ValueError(f"duration must be > 0, got {duration}")
    offered = int(offered) if offered is not None else 0
    served = int(served) if served is not None else 0
    refusals = RefusalCounts(rejected=rejected, dropped=dropped, shed=shed)
    if stations:
        refusals = refusals + RefusalCounts.from_stations(stations)
        for st in stations:
            offered += st.arrivals
            served += st.completions
            degraded += st.degraded
    elif offered == 0 and served == 0 and not refusals:
        raise ValueError("provide stations or offered/served counters")
    for key, value in {"offered": offered, "served": served, "degraded": degraded}.items():
        if value < 0:
            raise ValueError(f"{key} must be >= 0, got {value}")
    latency = None
    if latencies is not None:
        sample = np.asarray(latencies, dtype=float)
        if sample.size:
            latency = summarize(sample)
    return OverloadSummary(
        duration=float(duration),
        offered=offered,
        served=served,
        rejected=refusals.rejected,
        dropped=refusals.dropped,
        shed=refusals.shed,
        degraded=degraded,
        goodput=served / duration,
        refusal_rate=refusals.rate(offered),
        degraded_fraction=(degraded / served) if served else 0.0,
        latency=latency,
    )
