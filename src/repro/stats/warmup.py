"""Warm-up transient detection and trimming.

Simulations start from an empty system, biasing early latencies low.
Besides the fixed-fraction trim used by the runners, :func:`mser_cutoff`
implements the MSER-5 heuristic (White 1997): pick the truncation point
that minimizes the standard error of the remaining batch means — the
most widely validated automatic warm-up rule in the simulation
literature.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mser_cutoff", "trim_warmup"]


def mser_cutoff(samples: np.ndarray, batch: int = 5) -> int:
    """Index at which to truncate the sample, per MSER-``batch``.

    Returns an index into ``samples``; everything before it is warm-up.
    The search is capped at half the series (the standard safeguard
    against degenerate all-but-tail truncation).
    """
    x = np.asarray(samples, dtype=float)
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    if x.size < 2 * batch:
        return 0
    n_batches = x.size // batch
    means = x[: n_batches * batch].reshape(n_batches, batch).mean(axis=1)
    # MSER statistic for truncation after d batches:
    #   z(d) = var(means[d:]) / (n_batches - d)
    best_d, best_z = 0, np.inf
    for d in range(n_batches // 2):
        tail = means[d:]
        z = tail.var() / tail.size
        if z < best_z:
            best_z, best_d = z, d
    return best_d * batch


def trim_warmup(samples: np.ndarray, fraction: float | None = None, batch: int = 5) -> np.ndarray:
    """Drop warm-up samples.

    Parameters
    ----------
    fraction:
        Fixed fraction to drop; ``None`` selects automatically with
        :func:`mser_cutoff`.
    """
    x = np.asarray(samples, dtype=float)
    if fraction is not None:
        if not 0.0 <= fraction < 1.0:
            raise ValueError(f"fraction must be in [0, 1), got {fraction}")
        return x[int(fraction * x.size):]
    return x[mser_cutoff(x, batch):]
