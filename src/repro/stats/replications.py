"""Independent-replications analysis for simulation experiments.

Batch means (:mod:`repro.stats.ci`) handles within-run autocorrelation;
the complementary technique is R *independent replications* with
different seeds, which also captures across-run variability (different
random paths through the warm-up and rare-event structure).  This
module provides:

* :func:`replicate` — run a seeded experiment R times and collect a
  statistic per run;
* :class:`ReplicationSummary` — mean, Student-t CI and relative
  half-width of the replicate statistics;
* :func:`replications_for_precision` — the standard sequential rule:
  keep adding replications until the CI's relative half-width is below
  a target.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Callable

import numpy as np
from scipy import stats as sps

from repro.parallel import derive_seed, resolve_workers, run_tasks

__all__ = ["ReplicationSummary", "replicate", "replications_for_precision"]


@dataclass(frozen=True)
class ReplicationSummary:
    """Aggregate of one statistic over independent replications."""

    values: tuple[float, ...]
    confidence: float

    @property
    def n(self) -> int:
        """Number of replications."""
        return len(self.values)

    @property
    def mean(self) -> float:
        """Grand mean over replications."""
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        """Sample standard deviation across replications."""
        if self.n < 2:
            return 0.0
        return float(np.std(self.values, ddof=1))

    @property
    def half_width(self) -> float:
        """Student-t CI half-width at the configured confidence."""
        if self.n < 2:
            return math.inf
        t = float(sps.t.ppf(0.5 + self.confidence / 2.0, self.n - 1))
        return t * self.std / math.sqrt(self.n)

    @property
    def relative_half_width(self) -> float:
        """Half-width relative to the mean (∞ for a zero mean)."""
        if self.mean == 0.0:
            return math.inf
        return self.half_width / abs(self.mean)

    def contains(self, value: float) -> bool:
        """True if ``value`` lies inside the confidence interval."""
        return abs(value - self.mean) <= self.half_width

    def __str__(self) -> str:
        return (
            f"{self.mean:.6g} ± {self.half_width:.3g} "
            f"({self.confidence:.0%} CI, n={self.n})"
        )


def _experiment_id(experiment: Callable) -> str:
    """Stable identity of the experiment callable for journal scoping."""
    module = getattr(experiment, "__module__", "?")
    name = getattr(experiment, "__qualname__", repr(experiment))
    return f"{module}.{name}"


def _replication_seeds(base_seed: int, start: int, stop: int) -> list[int]:
    """Seeds for replications ``start..stop-1`` under ``base_seed``.

    Derived via :func:`repro.parallel.derive_seed` (SeedSequence
    spawning), so replication r of one experiment can never alias
    replication r' of another experiment with a nearby base seed — the
    collision hazard raw ``base_seed + r`` arithmetic had.
    """
    return [derive_seed(base_seed, r) for r in range(start, stop)]


def replicate(
    experiment: Callable[[int], float],
    replications: int,
    *,
    base_seed: int = 0,
    confidence: float = 0.95,
    workers: int | None = None,
    checkpoint=None,
    resume: bool = False,
) -> ReplicationSummary:
    """Run ``experiment(seed)`` for R distinct seeds and aggregate.

    Parameters
    ----------
    experiment:
        Callable mapping a seed to a scalar statistic (e.g. a run's mean
        latency).  Must be picklable (a module-level function) for
        ``workers > 1``; lambdas/closures fall back to serial with a
        warning.
    replications:
        Number of independent runs (≥ 2 for a usable CI).
    base_seed:
        Root of the seed derivation; replication ``r`` runs with the
        SeedSequence-derived child seed at path ``(r,)`` — independent
        across replications *and* across experiments.
    workers:
        Process count for the fan-out (``None`` = ``$REPRO_WORKERS`` or
        1).  Seeds depend only on the replication index, so the summary
        is bit-identical for every worker count.
    checkpoint:
        Journal path (or open :class:`repro.experiments.store.RunJournal`):
        completed replications replay from disk on a rerun, fresh ones
        are durably appended — a killed campaign resumes bit-identically.
    resume:
        Require the checkpoint file to already exist (fail fast on a
        mistyped path).
    """
    if replications < 2:
        raise ValueError(f"replications must be >= 2, got {replications}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    from repro.experiments.store import open_journal

    scope = f"replicate|{_experiment_id(experiment)}|base_seed={base_seed}"
    journal, owned = open_journal(checkpoint, scope=scope, resume=resume)
    try:
        results = run_tasks(
            experiment,
            [(s,) for s in _replication_seeds(base_seed, 0, replications)],
            workers=workers,
            label="replication",
            base_seed=base_seed,
            journal=journal,
        )
    finally:
        if owned:
            journal.close()
    values = tuple(float(v) for v in results)
    return ReplicationSummary(values=values, confidence=confidence)


def replications_for_precision(
    experiment: Callable[[int], float],
    target_relative_half_width: float,
    *,
    base_seed: int = 0,
    confidence: float = 0.95,
    initial: int = 5,
    max_replications: int = 100,
    workers: int | None = None,
) -> ReplicationSummary:
    """Sequentially add replications until the CI is tight enough.

    The classic two-stage/sequential procedure: start with ``initial``
    runs, then add while the relative half-width exceeds the target.
    With ``workers > 1`` new replications are computed in parallel
    batches of ``workers``, but the stopping rule is still evaluated
    value-by-value in replication order: the returned summary is
    bit-identical to the sequential procedure for every worker count (at
    the cost of up to ``workers - 1`` computed-but-discarded runs past
    the stopping point).

    Raises
    ------
    RuntimeError
        If the precision target is not reached within
        ``max_replications`` runs.
    """
    if target_relative_half_width <= 0:
        raise ValueError(
            f"target_relative_half_width must be > 0, got {target_relative_half_width}"
        )
    if not 2 <= initial <= max_replications:
        raise ValueError("need 2 <= initial <= max_replications")
    batch = resolve_workers(workers)

    def _batch(start: int, stop: int) -> list[float]:
        seeds = _replication_seeds(base_seed, start, stop)
        return [
            float(v)
            for v in run_tasks(
                experiment, [(s,) for s in seeds], workers=workers, label="replication"
            )
        ]

    values = _batch(0, initial)
    summary = ReplicationSummary(values=tuple(values), confidence=confidence)
    while summary.relative_half_width > target_relative_half_width:
        if len(values) >= max_replications:
            raise RuntimeError(
                f"precision {target_relative_half_width} not reached after "
                f"{max_replications} replications (at {summary.relative_half_width:.3g})"
            )
        extension = _batch(
            len(values), min(len(values) + batch, max_replications)
        )
        # Replay the sequential stopping rule over the batch: stop at the
        # first prefix that meets the target, discarding the rest.
        for value in extension:
            values.append(value)
            summary = ReplicationSummary(values=tuple(values), confidence=confidence)
            if summary.relative_half_width <= target_relative_half_width:
                break
    return summary
