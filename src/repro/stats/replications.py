"""Independent-replications analysis for simulation experiments.

Batch means (:mod:`repro.stats.ci`) handles within-run autocorrelation;
the complementary technique is R *independent replications* with
different seeds, which also captures across-run variability (different
random paths through the warm-up and rare-event structure).  This
module provides:

* :func:`replicate` — run a seeded experiment R times and collect a
  statistic per run;
* :class:`ReplicationSummary` — mean, Student-t CI and relative
  half-width of the replicate statistics;
* :func:`replications_for_precision` — the standard sequential rule:
  keep adding replications until the CI's relative half-width is below
  a target.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import stats as sps

__all__ = ["ReplicationSummary", "replicate", "replications_for_precision"]


@dataclass(frozen=True)
class ReplicationSummary:
    """Aggregate of one statistic over independent replications."""

    values: tuple[float, ...]
    confidence: float

    @property
    def n(self) -> int:
        """Number of replications."""
        return len(self.values)

    @property
    def mean(self) -> float:
        """Grand mean over replications."""
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        """Sample standard deviation across replications."""
        if self.n < 2:
            return 0.0
        return float(np.std(self.values, ddof=1))

    @property
    def half_width(self) -> float:
        """Student-t CI half-width at the configured confidence."""
        if self.n < 2:
            return math.inf
        t = float(sps.t.ppf(0.5 + self.confidence / 2.0, self.n - 1))
        return t * self.std / math.sqrt(self.n)

    @property
    def relative_half_width(self) -> float:
        """Half-width relative to the mean (∞ for a zero mean)."""
        if self.mean == 0.0:
            return math.inf
        return self.half_width / abs(self.mean)

    def contains(self, value: float) -> bool:
        """True if ``value`` lies inside the confidence interval."""
        return abs(value - self.mean) <= self.half_width

    def __str__(self) -> str:
        return (
            f"{self.mean:.6g} ± {self.half_width:.3g} "
            f"({self.confidence:.0%} CI, n={self.n})"
        )


def replicate(
    experiment: Callable[[int], float],
    replications: int,
    *,
    base_seed: int = 0,
    confidence: float = 0.95,
) -> ReplicationSummary:
    """Run ``experiment(seed)`` for R distinct seeds and aggregate.

    Parameters
    ----------
    experiment:
        Callable mapping a seed to a scalar statistic (e.g. a run's mean
        latency).
    replications:
        Number of independent runs (≥ 2 for a usable CI).
    base_seed:
        Seeds are ``base_seed, base_seed+1, …`` — distinct by
        construction.
    """
    if replications < 2:
        raise ValueError(f"replications must be >= 2, got {replications}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    values = tuple(float(experiment(base_seed + r)) for r in range(replications))
    return ReplicationSummary(values=values, confidence=confidence)


def replications_for_precision(
    experiment: Callable[[int], float],
    target_relative_half_width: float,
    *,
    base_seed: int = 0,
    confidence: float = 0.95,
    initial: int = 5,
    max_replications: int = 100,
) -> ReplicationSummary:
    """Sequentially add replications until the CI is tight enough.

    The classic two-stage/sequential procedure: start with ``initial``
    runs, then add one at a time while the relative half-width exceeds
    the target.

    Raises
    ------
    RuntimeError
        If the precision target is not reached within
        ``max_replications`` runs.
    """
    if target_relative_half_width <= 0:
        raise ValueError(
            f"target_relative_half_width must be > 0, got {target_relative_half_width}"
        )
    if not 2 <= initial <= max_replications:
        raise ValueError("need 2 <= initial <= max_replications")
    values = [float(experiment(base_seed + r)) for r in range(initial)]
    while True:
        summary = ReplicationSummary(values=tuple(values), confidence=confidence)
        if summary.relative_half_width <= target_relative_half_width:
            return summary
        if len(values) >= max_replications:
            raise RuntimeError(
                f"precision {target_relative_half_width} not reached after "
                f"{max_replications} replications (at {summary.relative_half_width:.3g})"
            )
        values.append(float(experiment(base_seed + len(values))))
