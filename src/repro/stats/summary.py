"""Latency distribution summaries.

:class:`LatencySummary` is the unit of comparison throughout the
experiments: mean, standard deviation, the paper's tail metric (p95),
and the quartiles needed for the violin/box figures (Figs 6 and 10).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LatencySummary", "summarize"]


@dataclass(frozen=True)
class LatencySummary:
    """Moments and quantiles of a latency sample (seconds)."""

    count: int
    mean: float
    std: float
    p25: float
    p50: float
    p75: float
    p95: float
    p99: float
    min: float
    max: float

    @property
    def cv2(self) -> float:
        """Squared coefficient of variation of the sample."""
        if self.mean == 0:
            return 0.0
        return (self.std / self.mean) ** 2

    @property
    def iqr(self) -> float:
        """Interquartile range (box height in the Figure 10 box plot)."""
        return self.p75 - self.p25

    def as_ms(self) -> dict[str, float]:
        """Summary fields in milliseconds (for report rendering)."""
        return {
            "mean": self.mean * 1e3,
            "std": self.std * 1e3,
            "p25": self.p25 * 1e3,
            "p50": self.p50 * 1e3,
            "p75": self.p75 * 1e3,
            "p95": self.p95 * 1e3,
            "p99": self.p99 * 1e3,
            "min": self.min * 1e3,
            "max": self.max * 1e3,
        }

    def __str__(self) -> str:
        m = self.as_ms()
        return (
            f"n={self.count} mean={m['mean']:.2f}ms p50={m['p50']:.2f}ms "
            f"p95={m['p95']:.2f}ms p99={m['p99']:.2f}ms"
        )


def summarize(latencies: np.ndarray) -> LatencySummary:
    """Compute a :class:`LatencySummary` from a latency array (seconds).

    Raises
    ------
    ValueError
        If the sample is empty or contains negative/NaN values.
    """
    x = np.asarray(latencies, dtype=float)
    if x.size == 0:
        raise ValueError("cannot summarize an empty latency sample")
    if np.any(~np.isfinite(x)) or x.min() < 0:
        raise ValueError("latencies must be finite and non-negative")
    q = np.quantile(x, [0.25, 0.5, 0.75, 0.95, 0.99])
    return LatencySummary(
        count=int(x.size),
        mean=float(x.mean()),
        std=float(x.std()),
        p25=float(q[0]),
        p50=float(q[1]),
        p75=float(q[2]),
        p95=float(q[3]),
        p99=float(q[4]),
        min=float(x.min()),
        max=float(x.max()),
    )
