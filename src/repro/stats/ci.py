"""Batch-means confidence intervals for steady-state simulation output.

Latency samples from one simulation run are autocorrelated (consecutive
requests share queue state), so the naive i.i.d. CI is too narrow.  The
standard remedy is the method of non-overlapping batch means: split the
run into b batches, treat batch averages as (approximately) independent,
and build a Student-t interval over them.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import stats as sps

__all__ = ["batch_means_ci"]


def batch_means_ci(
    samples: np.ndarray, batches: int = 20, confidence: float = 0.95
) -> tuple[float, float]:
    """Return ``(mean, half_width)`` of a batch-means confidence interval.

    Parameters
    ----------
    samples:
        Ordered per-request samples from a single run (post warm-up).
    batches:
        Number of equal batches (≥ 2); trailing remainder samples are
        dropped so batches stay equal-sized.
    confidence:
        Two-sided confidence level in (0, 1).
    """
    x = np.asarray(samples, dtype=float)
    if batches < 2:
        raise ValueError(f"batches must be >= 2, got {batches}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if x.size < 2 * batches:
        raise ValueError(
            f"need at least 2 samples per batch ({2 * batches}), got {x.size}"
        )
    per = x.size // batches
    means = x[: per * batches].reshape(batches, per).mean(axis=1)
    grand = float(means.mean())
    se = float(means.std(ddof=1)) / math.sqrt(batches)
    t = float(sps.t.ppf(0.5 + confidence / 2.0, batches - 1))
    return grand, t * se
