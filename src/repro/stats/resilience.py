"""Resilience metrics: goodput, SLO attainment, retry amplification.

Latency summaries (:mod:`repro.stats.summary`) describe the requests
that *succeeded*; under failures and retries that is only half the
story.  :class:`ResilienceSummary` adds the operation-level view a
production SRE dashboard would show: how many logical operations
resolved inside their SLO deadline per second (goodput), what fraction
met the deadline (SLO attainment), and how many delivery attempts each
operation cost (retry amplification — the load multiplier a retry storm
imposes on the very queues the paper's inversion analysis studies).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.summary import LatencySummary, summarize

__all__ = ["ResilienceSummary", "summarize_resilience"]


@dataclass(frozen=True)
class ResilienceSummary:
    """Operation-level outcome metrics for one resilient-client run.

    Attributes
    ----------
    duration:
        Observation window in virtual seconds.
    operations:
        Logical operations resolved (successes + failures).
    successes / failures:
        Operations that returned a response / gave up (deadline
        exceeded or attempts exhausted).
    slo_hits:
        Successes that completed at or before their SLO deadline.
    attempts:
        Delivery attempts issued (first tries + retries + hedges).
    retries / hedges / failovers:
        Re-issued attempts, speculative duplicates, and attempts routed
        to the fallback deployment.
    timeouts / drops:
        Attempt-level failures by cause (deadline-clamped timer fired;
        bounded queue rejected).
    sheds / rejects:
        Attempt-level failures from server-side overload control: shed
        by a queue discipline (CoDel, adaptive LIFO) and refused at the
        admission door, respectively.  Both default to 0 for runs
        without overload control.
    breaker_opens:
        Circuit-breaker open transitions across all sites.
    goodput:
        SLO-meeting completions per virtual second.
    slo_attainment:
        ``slo_hits / operations`` (0 when no operations resolved).
    retry_amplification:
        ``attempts / operations`` — 1.0 means no extra load; a retry
        storm pushes this toward the retry cap.
    latency:
        Distribution of successful operations' end-to-end latency, or
        ``None`` when nothing succeeded.
    """

    duration: float
    operations: int
    successes: int
    failures: int
    slo_hits: int
    attempts: int
    retries: int
    hedges: int
    failovers: int
    timeouts: int
    drops: int
    breaker_opens: int
    goodput: float
    slo_attainment: float
    retry_amplification: float
    latency: LatencySummary | None
    sheds: int = 0
    rejects: int = 0

    def __str__(self) -> str:
        lat = f" p95={self.latency.p95 * 1e3:.1f}ms" if self.latency is not None else ""
        return (
            f"ops={self.operations} ok={self.successes} fail={self.failures} "
            f"slo={self.slo_attainment:.1%} goodput={self.goodput:.2f}/s "
            f"amp={self.retry_amplification:.2f}x{lat}"
        )


def summarize_resilience(
    *,
    duration: float,
    successes: int,
    failures: int,
    slo_hits: int,
    attempts: int,
    retries: int = 0,
    hedges: int = 0,
    failovers: int = 0,
    timeouts: int = 0,
    drops: int = 0,
    sheds: int = 0,
    rejects: int = 0,
    breaker_opens: int = 0,
    latencies: np.ndarray | None = None,
) -> ResilienceSummary:
    """Build a :class:`ResilienceSummary` from raw counters.

    Raises
    ------
    ValueError
        If ``duration`` is not positive or any counter is negative.
    """
    if duration <= 0:
        raise ValueError(f"duration must be > 0, got {duration}")
    counts = {
        "successes": successes, "failures": failures, "slo_hits": slo_hits,
        "attempts": attempts, "retries": retries, "hedges": hedges,
        "failovers": failovers, "timeouts": timeouts, "drops": drops,
        "sheds": sheds, "rejects": rejects, "breaker_opens": breaker_opens,
    }
    for key, value in counts.items():
        if value < 0:
            raise ValueError(f"{key} must be >= 0, got {value}")
    operations = successes + failures
    latency = None
    if latencies is not None and np.asarray(latencies).size:
        latency = summarize(latencies)
    return ResilienceSummary(
        duration=float(duration),
        operations=operations,
        successes=successes,
        failures=failures,
        slo_hits=slo_hits,
        attempts=attempts,
        retries=retries,
        hedges=hedges,
        failovers=failovers,
        timeouts=timeouts,
        drops=drops,
        sheds=sheds,
        rejects=rejects,
        breaker_opens=breaker_opens,
        goodput=slo_hits / duration,
        slo_attainment=(slo_hits / operations) if operations else 0.0,
        retry_amplification=(attempts / operations) if operations else 0.0,
        latency=latency,
    )
