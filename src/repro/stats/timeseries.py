"""Windowed time series of latency metrics.

Figures 8 and 9 plot request rate and mean latency over wall-clock time;
these helpers bucket per-request samples into fixed windows.
"""

from __future__ import annotations

import numpy as np

__all__ = ["windowed_mean", "windowed_percentile"]


def _window_edges(times: np.ndarray, window: float, horizon: float | None) -> np.ndarray:
    if window <= 0:
        raise ValueError(f"window must be > 0, got {window}")
    if times.size == 0:
        return np.array([0.0])
    end = float(times.max()) if horizon is None else float(horizon)
    return np.arange(0.0, end + window, window)


def windowed_mean(
    times: np.ndarray, values: np.ndarray, window: float, horizon: float | None = None
):
    """Mean of ``values`` grouped into time windows.

    Parameters
    ----------
    times / values:
        Aligned sample timestamps (s) and values.
    window:
        Window width in seconds.
    horizon:
        Overall end time; defaults to the last sample.

    Returns
    -------
    (window_starts, means)
        Windows with no samples hold ``nan``.
    """
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    if t.shape != v.shape:
        raise ValueError(f"times {t.shape} and values {v.shape} must align")
    edges = _window_edges(t, window, horizon)
    idx = np.clip(np.digitize(t, edges) - 1, 0, len(edges) - 2)
    sums = np.zeros(len(edges) - 1)
    counts = np.zeros(len(edges) - 1)
    np.add.at(sums, idx, v)
    np.add.at(counts, idx, 1.0)
    with np.errstate(invalid="ignore", divide="ignore"):
        means = np.where(counts > 0, sums / counts, np.nan)
    return edges[:-1], means


def windowed_percentile(
    times: np.ndarray,
    values: np.ndarray,
    window: float,
    q: float,
    horizon: float | None = None,
):
    """Per-window quantile ``q`` of ``values`` (e.g. 0.95 for tail series).

    Returns ``(window_starts, percentiles)``; empty windows hold ``nan``.
    """
    if not 0.0 < q < 1.0:
        raise ValueError(f"q must be in (0, 1), got {q}")
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    if t.shape != v.shape:
        raise ValueError(f"times {t.shape} and values {v.shape} must align")
    edges = _window_edges(t, window, horizon)
    idx = np.clip(np.digitize(t, edges) - 1, 0, len(edges) - 2)
    out = np.full(len(edges) - 1, np.nan)
    order = np.argsort(idx, kind="stable")
    sorted_idx = idx[order]
    sorted_v = v[order]
    boundaries = np.searchsorted(sorted_idx, np.arange(len(edges)))
    for w in range(len(edges) - 1):
        lo, hi = boundaries[w], boundaries[w + 1]
        if hi > lo:
            out[w] = np.quantile(sorted_v[lo:hi], q)
    return edges[:-1], out
