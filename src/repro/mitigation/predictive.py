"""Predictive (EWMA + headroom) autoscaling.

The reactive controller in :mod:`repro.mitigation.autoscale` sizes to
the *last* interval's demand, which lags diurnal ramps and gets whipped
around by bursts.  This variant applies the standard fixes from the
elastic-scaling literature the paper cites [36]:

* an exponentially weighted moving average smooths the demand signal;
* a one-interval *trend* term extrapolates ramps;
* two-sigma headroom (Section 5.2's rule) absorbs Poisson fluctuation.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.sim.engine import Simulation
from repro.sim.station import Station

__all__ = ["PredictiveAutoscaler"]


class PredictiveAutoscaler:
    """EWMA-with-trend autoscaler over a set of stations.

    Parameters
    ----------
    sim:
        Owning simulation.
    stations:
        Stations to manage.
    service_rate:
        Per-server service rate μ (req/s), used to convert predicted
        demand into a server count.
    alpha:
        EWMA smoothing weight in (0, 1]; higher = more reactive.
    interval:
        Control period in seconds.
    headroom_sigmas:
        Provision for ``demand + headroom_sigmas * sqrt(demand)`` —
        the paper's two-sigma peak rule with a configurable multiplier.
    min_servers / max_servers:
        Capacity bounds per station.
    stop_time:
        Virtual time after which the controller stops.
    """

    def __init__(
        self,
        sim: Simulation,
        stations: Sequence[Station],
        service_rate: float,
        *,
        alpha: float = 0.5,
        interval: float = 30.0,
        headroom_sigmas: float = 2.0,
        min_servers: int = 1,
        max_servers: int = 64,
        stop_time: float = math.inf,
    ):
        if not stations:
            raise ValueError("need at least one station")
        if service_rate <= 0:
            raise ValueError(f"service_rate must be > 0, got {service_rate}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        if headroom_sigmas < 0:
            raise ValueError(f"headroom_sigmas must be >= 0, got {headroom_sigmas}")
        if not 1 <= min_servers <= max_servers:
            raise ValueError(
                f"need 1 <= min_servers <= max_servers, got [{min_servers}, {max_servers}]"
            )
        self.sim = sim
        self.stations = list(stations)
        self.mu = float(service_rate)
        self.alpha = float(alpha)
        self.interval = float(interval)
        self.headroom_sigmas = float(headroom_sigmas)
        self.min_servers = int(min_servers)
        self.max_servers = int(max_servers)
        self.stop_time = float(stop_time)
        self.decisions: list[tuple[float, str, int]] = []
        self._ewma: dict[str, float | None] = {s.name: None for s in self.stations}
        self._prev: dict[str, float] = {s.name: 0.0 for s in self.stations}
        self._last_arrivals = {s.name: s.arrivals for s in self.stations}
        sim.schedule(self.interval, self._tick)

    def _tick(self) -> None:
        if self.sim.now >= self.stop_time:
            return
        for st in self.stations:
            observed = (st.arrivals - self._last_arrivals[st.name]) / self.interval
            self._last_arrivals[st.name] = st.arrivals
            prev_ewma = self._ewma[st.name]
            if prev_ewma is None:
                smoothed = observed
                trend = 0.0
            else:
                smoothed = self.alpha * observed + (1.0 - self.alpha) * prev_ewma
                trend = smoothed - self._prev[st.name]
            self._ewma[st.name] = smoothed
            self._prev[st.name] = smoothed
            predicted = max(0.0, smoothed + trend)
            demand = predicted + self.headroom_sigmas * math.sqrt(predicted)
            desired = max(self.min_servers, math.ceil(demand / self.mu))
            desired = min(self.max_servers, desired)
            if desired != st.servers:
                st.set_servers(desired)
                self.decisions.append((self.sim.now, st.name, desired))
        self.sim.schedule(self.interval, self._tick)

    @property
    def scale_events(self) -> int:
        """Number of capacity changes made so far."""
        return len(self.decisions)
