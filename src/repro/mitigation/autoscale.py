"""Reactive per-site autoscaling.

For time-varying spatial skew the paper prescribes that "the allocated
processing capacity at each site should also be adjusted dynamically to
match these workload changes" (Section 3.2).  :class:`ReactiveAutoscaler`
is the standard utilization-band controller: every ``interval`` seconds
it measures each station's recent utilization and resizes toward a
target, within min/max bounds — the edge analogue of cloud elastic
scaling [36].
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.sim.engine import Simulation
from repro.sim.station import Station

__all__ = ["ReactiveAutoscaler"]


class ReactiveAutoscaler:
    """Utilization-band autoscaler over a set of stations.

    Parameters
    ----------
    sim:
        Owning simulation (the controller schedules itself).
    stations:
        Stations to manage (e.g. every edge site's station).
    target_utilization:
        Desired per-site utilization; capacity is resized to
        ``ceil(observed_busy / target)``.
    interval:
        Control period in seconds.
    min_servers / max_servers:
        Per-station capacity bounds.
    stop_time:
        Virtual time after which the controller stops rescheduling
        itself (required for simulations that run the calendar dry).

    Notes
    -----
    The measured signal is the *busy-server time-average over the last
    control period*, obtained by differencing the station's cumulative
    busy integral — no extra sampling machinery on the hot path.
    """

    def __init__(
        self,
        sim: Simulation,
        stations: Sequence[Station],
        *,
        target_utilization: float = 0.6,
        interval: float = 30.0,
        min_servers: int = 1,
        max_servers: int = 64,
        stop_time: float = math.inf,
    ):
        if not stations:
            raise ValueError("need at least one station")
        if not 0.0 < target_utilization < 1.0:
            raise ValueError(
                f"target_utilization must be in (0, 1), got {target_utilization}"
            )
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        if not 1 <= min_servers <= max_servers:
            raise ValueError(
                f"need 1 <= min_servers <= max_servers, got [{min_servers}, {max_servers}]"
            )
        self.sim = sim
        self.stations = list(stations)
        self.target = float(target_utilization)
        self.interval = float(interval)
        self.min_servers = int(min_servers)
        self.max_servers = int(max_servers)
        self.stop_time = float(stop_time)
        self.decisions: list[tuple[float, str, int]] = []
        self._last_busy_integral = {s.name: 0.0 for s in self.stations}
        self._last_time = sim.now
        sim.schedule(self.interval, self._tick)

    def _tick(self) -> None:
        if self.sim.now >= self.stop_time:
            return
        dt = self.sim.now - self._last_time
        if dt > 0:
            for st in self.stations:
                st._account()  # refresh integrals to "now"
                busy_avg = (
                    st._busy_integral - self._last_busy_integral[st.name]
                ) / dt
                self._last_busy_integral[st.name] = st._busy_integral
                desired = math.ceil(busy_avg / self.target) if busy_avg > 0 else self.min_servers
                desired = min(self.max_servers, max(self.min_servers, desired))
                if desired != st.servers:
                    st.set_servers(desired)
                    self.decisions.append((self.sim.now, st.name, desired))
        self._last_time = self.sim.now
        self.sim.schedule(self.interval, self._tick)

    @property
    def scale_events(self) -> int:
        """Number of capacity changes made so far."""
        return len(self.decisions)
