"""Admission control: protect latency by refusing excess load.

Complementary to dropping at a full queue
(:class:`~repro.sim.station.Station` with ``queue_capacity``): an
admission controller rejects requests *at the front door*, before they
consume queue slots, keeping the latency of admitted requests bounded
during overload — the standard alternative the paper's §4.2 "dropping
or thrashing" observation motivates.

Two policies:

* :class:`OccupancyAdmission` — admit while in-system per server is
  below a threshold (the queue-pressure analogue of geo-LB/offload).
* :class:`TokenBucketAdmission` — admit at a sustained rate with burst
  tolerance (rate-based protection independent of queue state).
"""

from __future__ import annotations

from repro.sim.engine import Simulation
from repro.sim.request import Request
from repro.sim.station import Station

__all__ = ["OccupancyAdmission", "TokenBucketAdmission", "AdmissionControlledStation"]


class OccupancyAdmission:
    """Admit while the station holds fewer than ``limit`` requests/server."""

    def __init__(self, limit: float):
        if limit <= 0:
            raise ValueError(f"limit must be > 0, got {limit}")
        self.limit = float(limit)

    def admit(self, station: Station, request: Request, now: float) -> bool:
        """Decide admission for one arriving request."""
        return station.in_system / station.servers < self.limit


class TokenBucketAdmission:
    """Classic token bucket: ``rate`` tokens/s, burst capacity ``burst``."""

    def __init__(self, rate: float, burst: float):
        if rate <= 0 or burst < 1:
            raise ValueError(f"need rate > 0 and burst >= 1, got {rate}, {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last = 0.0

    def admit(self, station: Station, request: Request, now: float) -> bool:
        """Decide admission; consumes one token when admitting."""
        self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


class AdmissionControlledStation:
    """A station fronted by an admission policy.

    Exposes the same ``arrive`` interface as a plain station, so it can
    stand behind deployments unchanged; rejected requests are counted
    and optionally handed to ``on_reject``.
    """

    def __init__(self, sim: Simulation, station: Station, policy, on_reject=None):
        self.sim = sim
        self.station = station
        self.policy = policy
        self.on_reject = on_reject
        self.rejected = 0
        self.offered = 0

    def arrive(self, request: Request) -> None:
        """Admit into the backing station or reject at the door."""
        self.offered += 1
        if self.policy.admit(self.station, request, self.sim.now):
            self.station.arrive(request)
        else:
            self.rejected += 1
            if self.on_reject is not None:
                self.on_reject(request)

    @property
    def rejection_rate(self) -> float:
        """Fraction of offered requests rejected."""
        if self.offered == 0:
            return 0.0
        return self.rejected / self.offered
