"""Admission control: protect latency by refusing excess load.

Complementary to dropping at a full queue
(:class:`~repro.sim.station.Station` with ``queue_capacity``) and to
queue-discipline shedding (:mod:`repro.sim.overload`): an admission
controller refuses requests *at the front door*, before they consume
queue slots, keeping the latency of admitted requests bounded during
overload — the standard alternative to the paper's §4.2 "dropping or
thrashing" observation.

Two generations of policy live here:

* **Static** — :class:`OccupancyAdmission` (admit while in-system per
  server is below a threshold) and :class:`TokenBucketAdmission`
  (rate-based protection).  Simple, but the right threshold depends on
  the very service times and load the operator does not control.
* **Adaptive** — :class:`AdaptiveAdmission` drives the admit limit from
  a :class:`ConcurrencyLimit` controller that *learns* the station's
  capacity from observed latency: :class:`AIMDConcurrencyLimit` (TCP
  Reno-style additive increase / multiplicative decrease against a
  latency target) and :class:`GradientConcurrencyLimit` (Vegas-style,
  comparing smoothed latency to a no-load baseline).  Under an overload
  pulse the limit collapses, shedding the excess; when pressure passes
  it recovers on its own — no hand-tuned threshold.

:class:`AdaptiveAdmission` also implements priority-aware shedding:
request classes (``Request.priority``; 0 = most important) see scaled
fractions of the limit, so sheddable traffic is refused first and
high-priority goodput survives overload nearly untouched.

Policies plug into a :class:`~repro.sim.station.Station` directly via
its ``admission=`` parameter (rejections surface with outcome
``"rejected"`` and count in ``station.rejected``); the legacy
:class:`AdmissionControlledStation` wrapper is kept for standalone use.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Mapping

from repro.sim.engine import Simulation
from repro.sim.request import Request
from repro.sim.station import Station

__all__ = [
    "OccupancyAdmission",
    "TokenBucketAdmission",
    "AdmissionControlledStation",
    "ConcurrencyLimit",
    "StaticConcurrencyLimit",
    "AIMDConcurrencyLimit",
    "GradientConcurrencyLimit",
    "AdaptiveAdmission",
]


class OccupancyAdmission:
    """Admit while the station holds fewer than ``limit`` requests/server."""

    def __init__(self, limit: float):
        if limit <= 0:
            raise ValueError(f"limit must be > 0, got {limit}")
        self.limit = float(limit)

    def admit(self, station: Station, request: Request, now: float) -> bool:
        """Decide admission for one arriving request."""
        return station.in_system / station.servers < self.limit


class TokenBucketAdmission:
    """Classic token bucket: ``rate`` tokens/s, burst capacity ``burst``."""

    def __init__(self, rate: float, burst: float):
        if rate <= 0 or burst < 1:
            raise ValueError(f"need rate > 0 and burst >= 1, got {rate}, {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last = 0.0

    def admit(self, station: Station, request: Request, now: float) -> bool:
        """Decide admission; consumes one token when admitting."""
        self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


class ConcurrencyLimit(ABC):
    """A controller for the number of requests a station may hold.

    ``current_limit`` is read at every admission decision;
    ``on_response`` receives feedback for every service completion
    (``ok=True`` with the observed server latency — queueing plus
    service) and for every drop/shed (``ok=False``, latency ``None``).
    """

    @abstractmethod
    def current_limit(self, station: Station) -> float:
        """The in-system limit to enforce right now."""

    def on_response(self, latency: float | None, ok: bool, now: float) -> None:
        """Feedback hook; static limits ignore it."""


class StaticConcurrencyLimit(ConcurrencyLimit):
    """A fixed in-system limit (the non-adaptive baseline)."""

    def __init__(self, limit: float):
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self.limit = float(limit)

    def current_limit(self, station: Station) -> float:
        return self.limit


class AIMDConcurrencyLimit(ConcurrencyLimit):
    """Additive-increase / multiplicative-decrease concurrency limit.

    The TCP-congestion view of a server: every response faster than
    ``latency_target`` is evidence the station can take a little more
    (limit grows by ``increase / limit`` — about one unit per *limit*
    responses, the AIMD probe rate); a breach or a failed response
    (drop, shed, timeout-cancel) multiplies the limit by ``backoff``.
    Decreases are rate-limited to one per ``cooldown`` seconds so a
    burst of already-doomed queued responses counts as one congestion
    event, not many.

    Parameters
    ----------
    latency_target:
        Server latency (seconds) considered acceptable — the knee the
        controller defends.
    min_limit / max_limit:
        Clamp bounds for the limit.
    initial:
        Starting limit (default ``max_limit``, i.e. start open and let
        pressure shrink it).
    increase / backoff:
        Additive probe size and multiplicative decrease factor.
    cooldown:
        Minimum seconds between decreases (default ``latency_target``).
    """

    def __init__(
        self,
        latency_target: float,
        min_limit: float = 1.0,
        max_limit: float = 256.0,
        initial: float | None = None,
        increase: float = 1.0,
        backoff: float = 0.8,
        cooldown: float | None = None,
    ):
        if latency_target <= 0:
            raise ValueError(f"latency_target must be > 0, got {latency_target}")
        if not 1.0 <= min_limit <= max_limit:
            raise ValueError(f"need 1 <= min_limit <= max_limit, got {min_limit}, {max_limit}")
        if not 0.0 < backoff < 1.0:
            raise ValueError(f"backoff must be in (0, 1), got {backoff}")
        if increase <= 0:
            raise ValueError(f"increase must be > 0, got {increase}")
        self.latency_target = float(latency_target)
        self.min_limit = float(min_limit)
        self.max_limit = float(max_limit)
        self.increase = float(increase)
        self.backoff = float(backoff)
        self.cooldown = float(cooldown) if cooldown is not None else self.latency_target
        self.limit = float(initial) if initial is not None else self.max_limit
        if not self.min_limit <= self.limit <= self.max_limit:
            raise ValueError(f"initial limit {self.limit} outside [{min_limit}, {max_limit}]")
        self.decreases = 0
        self._next_decrease = 0.0

    def current_limit(self, station: Station) -> float:
        return self.limit

    def on_response(self, latency: float | None, ok: bool, now: float) -> None:
        if ok and latency is not None and latency <= self.latency_target:
            self.limit = min(self.max_limit, self.limit + self.increase / self.limit)
            return
        if now >= self._next_decrease:
            self.limit = max(self.min_limit, self.limit * self.backoff)
            self.decreases += 1
            self._next_decrease = now + self.cooldown

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AIMDConcurrencyLimit(limit={self.limit:.1f}, decreases={self.decreases})"


class GradientConcurrencyLimit(ConcurrencyLimit):
    """Vegas/gradient-style limit: observed latency vs a no-load baseline.

    Keeps an exponentially smoothed recent server latency and, as the
    *baseline*, the smallest smoothed value seen so far — the lowest
    *sustained* latency, i.e. the no-load service time (a min over raw
    samples would chase one lucky fast request and judge all normal
    traffic slow).  Each successful response moves the limit toward
    ``limit × gradient + sqrt(limit)`` where
    ``gradient = clamp(tolerance × baseline / smoothed, 0.5, 1.0)`` —
    while recent latency is within ``tolerance`` of the baseline the
    square-root queue allowance lets the limit probe upward; when
    latency inflates, the gradient pulls it down proportionally (the
    fixed point of the update is ``(1 / (1 - gradient))²``).  Failed
    responses fall back to a rate-limited multiplicative decrease,
    exactly like AIMD's congestion event.
    """

    def __init__(
        self,
        min_limit: float = 1.0,
        max_limit: float = 256.0,
        initial: float = 16.0,
        tolerance: float = 1.5,
        smoothing: float = 0.1,
        backoff: float = 0.8,
        cooldown: float = 1.0,
    ):
        if not 1.0 <= min_limit <= max_limit:
            raise ValueError(f"need 1 <= min_limit <= max_limit, got {min_limit}, {max_limit}")
        if tolerance < 1.0:
            raise ValueError(f"tolerance must be >= 1, got {tolerance}")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        if not 0.0 < backoff < 1.0:
            raise ValueError(f"backoff must be in (0, 1), got {backoff}")
        if cooldown <= 0:
            raise ValueError(f"cooldown must be > 0, got {cooldown}")
        self.min_limit = float(min_limit)
        self.max_limit = float(max_limit)
        self.tolerance = float(tolerance)
        self.smoothing = float(smoothing)
        self.backoff = float(backoff)
        self.cooldown = float(cooldown)
        self.limit = float(initial)
        if not self.min_limit <= self.limit <= self.max_limit:
            raise ValueError(f"initial limit {initial} outside [{min_limit}, {max_limit}]")
        self.baseline: float | None = None
        self.smoothed: float | None = None
        self.decreases = 0
        self._next_decrease = 0.0

    def current_limit(self, station: Station) -> float:
        return self.limit

    def on_response(self, latency: float | None, ok: bool, now: float) -> None:
        if not ok or latency is None:
            if now >= self._next_decrease:
                self.limit = max(self.min_limit, self.limit * self.backoff)
                self.decreases += 1
                self._next_decrease = now + self.cooldown
            return
        if self.smoothed is None:
            self.smoothed = latency
        else:
            self.smoothed += self.smoothing * (latency - self.smoothed)
        self.baseline = (
            self.smoothed if self.baseline is None else min(self.baseline, self.smoothed)
        )
        gradient = max(0.5, min(1.0, self.tolerance * self.baseline / self.smoothed))
        target = gradient * self.limit + math.sqrt(self.limit)
        self.limit += self.smoothing * (target - self.limit)
        self.limit = max(self.min_limit, min(self.max_limit, self.limit))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        base = "?" if self.baseline is None else f"{self.baseline * 1e3:.0f}ms"
        return f"GradientConcurrencyLimit(limit={self.limit:.1f}, baseline={base})"


class AdaptiveAdmission:
    """Station admission policy driven by a :class:`ConcurrencyLimit`.

    Admits an arriving request while the station's in-system count is
    below the controller's current limit, scaled per request class when
    ``priority_shares`` is given: a class with share ``f`` is refused
    once in-system reaches ``f × limit``, so sheddable classes (larger
    ``Request.priority``) lose admission first and the most important
    class keeps (nearly) the whole limit.

    Plug into a station with ``Station(..., admission=policy)``; the
    station feeds every completion and drop/shed back into the limit
    controller.

    Parameters
    ----------
    limit:
        The concurrency controller (static, AIMD or gradient).
    priority_shares:
        Optional mapping ``priority -> share in (0, 1]``.  Classes not
        listed use the smallest share (most sheddable).  ``None``
        treats all classes alike.
    """

    def __init__(
        self,
        limit: ConcurrencyLimit,
        priority_shares: Mapping[int, float] | None = None,
    ):
        if priority_shares is not None:
            if not priority_shares:
                raise ValueError("priority_shares must not be empty")
            for p, share in priority_shares.items():
                if not 0.0 < share <= 1.0:
                    raise ValueError(f"share for priority {p} must be in (0, 1], got {share}")
        self.limit = limit
        self.priority_shares = dict(priority_shares) if priority_shares is not None else None
        self._floor_share = (
            min(self.priority_shares.values()) if self.priority_shares is not None else 1.0
        )
        self.offered = 0
        self.admitted = 0
        self.rejected_by_class: dict[int, int] = {}

    def admit(self, station: Station, request: Request, now: float) -> bool:
        """One admission decision (counted per request class)."""
        self.offered += 1
        effective = self.limit.current_limit(station)
        if self.priority_shares is not None:
            effective *= self.priority_shares.get(request.priority, self._floor_share)
        if station.in_system < effective:
            self.admitted += 1
            return True
        key = request.priority
        self.rejected_by_class[key] = self.rejected_by_class.get(key, 0) + 1
        return False

    def on_response(self, latency: float | None, ok: bool, now: float) -> None:
        """Forward station feedback to the limit controller."""
        self.limit.on_response(latency, ok, now)

    @property
    def rejection_rate(self) -> float:
        """Fraction of offered requests refused at the door."""
        if self.offered == 0:
            return 0.0
        return 1.0 - self.admitted / self.offered

    def observables(self) -> dict:
        """Pull-model gauge readers for the telemetry registry.

        The headline signal is ``limit`` — watching the adaptive limit
        collapse and recover across windows is the whole point of the
        E11 pulse experiment's telemetry view.
        """
        return {
            "limit": lambda: self.limit.limit if hasattr(self.limit, "limit") else math.nan,
            "offered": lambda: self.offered,
            "admitted": lambda: self.admitted,
            "rejection_rate": lambda: self.rejection_rate,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AdaptiveAdmission(limit={self.limit!r}, offered={self.offered})"


class AdmissionControlledStation:
    """A station fronted by an admission policy (standalone wrapper).

    Prefer ``Station(..., admission=policy)``, which routes rejections
    through the deployment return leg and feeds adaptive limits; this
    wrapper remains for driving a bare station directly.  It exposes the
    same ``arrive`` interface as a plain station, so it can stand behind
    deployments unchanged; rejected requests are counted and optionally
    handed to ``on_reject``.
    """

    def __init__(self, sim: Simulation, station: Station, policy, on_reject=None):
        self.sim = sim
        self.station = station
        self.policy = policy
        self.on_reject = on_reject
        self.rejected = 0
        self.offered = 0

    def arrive(self, request: Request) -> None:
        """Admit into the backing station or reject at the door."""
        self.offered += 1
        if self.policy.admit(self.station, request, self.sim.now):
            self.station.arrive(request)
        else:
            self.rejected += 1
            # Mirror the built-in ``Station(..., admission=...)`` path: a
            # door rejection is still an arrival, so the station's request
            # conservation (arrivals = completions + refusals + in-flight)
            # holds either way.
            self.station.arrivals += 1
            self.station.rejected += 1
            if self.on_reject is not None:
                self.on_reject(request)

    @property
    def rejection_rate(self) -> float:
        """Fraction of offered requests rejected."""
        if self.offered == 0:
            return 0.0
        return self.rejected / self.offered
