"""Hierarchical edge→cloud offloading (extension of §5 / related work [29]).

A hybrid deployment keeps an edge site in front of every client but
offloads to the distant cloud whenever the local site is congested —
combining the edge's low RTT at low load with the cloud's pooled queue
at high load.  This is the natural "third option" the paper's framing
implies: instead of choosing edge *or* cloud, route per request.

The offload signal is local queue pressure (requests in system per
server), the same signal :class:`~repro.mitigation.geo_lb.GeoLoadBalancer`
uses between sites.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.queueing.distributions import Distribution
from repro.sim.engine import Simulation
from repro.sim.network import LatencyModel
from repro.sim.request import Request
from repro.sim.station import Station
from repro.sim.tracing import RequestLog

__all__ = ["HybridDeployment"]


class HybridDeployment:
    """Edge sites with a shared cloud overflow pool.

    Parameters
    ----------
    sim:
        Owning simulation.
    sites / servers_per_site:
        Number of edge sites and servers at each.
    cloud_servers:
        Pooled servers at the overflow cloud.
    edge_latency / cloud_latency:
        Client ↔ edge and client ↔ cloud network models.
    service_dist:
        Service-time distribution (same hardware everywhere, as in the
        paper's same-configuration assumption).
    offload_threshold:
        Offload to the cloud when the home site's in-system count per
        server is at or above this value (1.0 = all servers busy).
    """

    def __init__(
        self,
        sim: Simulation,
        sites: int,
        servers_per_site: int,
        cloud_servers: int,
        edge_latency: LatencyModel,
        cloud_latency: LatencyModel,
        service_dist: Distribution,
        offload_threshold: float = 1.0,
    ):
        if sites < 1 or servers_per_site < 1 or cloud_servers < 1:
            raise ValueError("sites, servers_per_site and cloud_servers must be >= 1")
        if offload_threshold <= 0:
            raise ValueError(f"offload_threshold must be > 0, got {offload_threshold}")
        self.sim = sim
        self.edge_latency = edge_latency
        self.cloud_latency = cloud_latency
        self.offload_threshold = float(offload_threshold)
        self.log = RequestLog()
        self._rng = sim.spawn_rng()
        self.edge_stations = [
            Station(sim, servers_per_site, service_dist, name=f"site-{i}",
                    on_departure=self._edge_departure)
            for i in range(sites)
        ]
        self.cloud_station = Station(
            sim, cloud_servers, service_dist, name="cloud",
            on_departure=self._cloud_departure,
        )
        self.offloaded = 0
        self.submitted = 0

    def submit(self, request: Request) -> None:
        """Route a request to its home edge site or offload to the cloud."""
        self.submitted += 1
        home = self._home_station(request)
        pressure = home.in_system / home.servers
        if pressure >= self.offload_threshold:
            self.offloaded += 1
            request.site = "cloud"
            delay = self.cloud_latency.sample_oneway(self._rng)
            self.sim.schedule(delay, self.cloud_station.arrive, request)
        else:
            delay = self.edge_latency.sample_oneway(self._rng)
            self.sim.schedule(delay, home.arrive, request)

    def _home_station(self, request: Request) -> Station:
        if request.site is None:
            raise ValueError(f"request {request.rid} carries no home site")
        for st in self.edge_stations:
            if st.name == request.site:
                return st
        raise KeyError(f"unknown home site {request.site!r}")

    def _edge_departure(self, request: Request) -> None:
        delay = self.edge_latency.sample_oneway(self._rng)
        self.sim.schedule(delay, self._complete, request)

    def _cloud_departure(self, request: Request) -> None:
        delay = self.cloud_latency.sample_oneway(self._rng)
        self.sim.schedule(delay, self._complete, request)

    def _complete(self, request: Request) -> None:
        request.completed = self.sim.now
        self.log.add(request)

    @property
    def offload_fraction(self) -> float:
        """Fraction of requests sent to the cloud."""
        if self.submitted == 0:
            return 0.0
        return self.offloaded / self.submitted

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HybridDeployment(sites={len(self.edge_stations)}, "
            f"cloud_servers={self.cloud_station.servers}, "
            f"threshold={self.offload_threshold})"
        )
