"""Geographic load balancing (queue jockeying) for edge deployments.

Section 5.1: "Edge performance inversion can be avoided by employing ...
geographic load balancing methods, where requests to an overloaded edge
site are redirected to nearby edge sites with spare capacity."  The bank
teller analogy breaks once jockeying between queues is allowed
(Rothkopf & Rech), so redirection directly attacks the root cause.

:class:`GeoLoadBalancer` plugs into
:class:`~repro.sim.topology.EdgeDeployment` as its ``router``: when the
home site's occupancy exceeds a threshold, the request is redirected to
the least-occupied neighbor (if meaningfully better), paying an
inter-site network hop.
"""

from __future__ import annotations

from repro.sim.request import Request
from repro.sim.topology import EdgeDeployment, EdgeSite

__all__ = ["GeoLoadBalancer"]


class GeoLoadBalancer:
    """Threshold-based redirection between edge sites.

    Parameters
    ----------
    occupancy_threshold:
        Redirect when the home site has at least this many requests in
        system *per server* (queue pressure signal; 1.0 means "all
        servers busy").
    inter_site_oneway:
        Extra one-way network delay (seconds) of the redirect hop —
        edge sites are mutually nearby, but not free to reach.
    improvement_factor:
        Only redirect if the best neighbor's per-server occupancy is
        below ``improvement_factor ×`` the home site's (hysteresis that
        prevents ping-ponging between equally loaded sites).
    """

    def __init__(
        self,
        occupancy_threshold: float = 1.0,
        inter_site_oneway: float = 0.003,
        improvement_factor: float = 0.5,
    ):
        if occupancy_threshold < 0:
            raise ValueError(f"occupancy_threshold must be >= 0, got {occupancy_threshold}")
        if inter_site_oneway < 0:
            raise ValueError(f"inter_site_oneway must be >= 0, got {inter_site_oneway}")
        if not 0.0 < improvement_factor <= 1.0:
            raise ValueError(
                f"improvement_factor must be in (0, 1], got {improvement_factor}"
            )
        self.occupancy_threshold = float(occupancy_threshold)
        self.inter_site_oneway = float(inter_site_oneway)
        self.improvement_factor = float(improvement_factor)
        self.redirected = 0
        self.considered = 0

    @staticmethod
    def _pressure(site: EdgeSite) -> float:
        """Requests in system per server — the redirect signal."""
        return site.station.in_system / site.station.servers

    def route(
        self, deployment: EdgeDeployment, request: Request, home: EdgeSite
    ) -> tuple[EdgeSite, float]:
        """Return the serving site and extra one-way delay for a request."""
        self.considered += 1
        home_pressure = self._pressure(home)
        if home_pressure < self.occupancy_threshold:
            return home, 0.0
        best = min(
            (s for s in deployment.sites if s is not home),
            key=self._pressure,
            default=None,
        )
        if best is None:
            return home, 0.0
        if self._pressure(best) <= self.improvement_factor * home_pressure:
            self.redirected += 1
            return best, self.inter_site_oneway
        return home, 0.0

    @property
    def redirect_fraction(self) -> float:
        """Fraction of routed requests that were redirected."""
        if self.considered == 0:
            return 0.0
        return self.redirected / self.considered
