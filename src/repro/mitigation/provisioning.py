"""Skew-aware capacity planning for edge fleets.

Combines the paper's two provisioning prescriptions:

1. **Proportional allocation** (after Lemma 3.3): give each site
   capacity proportional to the workload it sees, equalizing per-site
   utilizations so the skewed bound collapses to the balanced one.
2. **Inversion-free floors** (Equation 22): at each site, at least the
   :func:`~repro.core.capacity.min_edge_servers` needed to keep the
   mean-latency inversion condition from holding, times an
   over-provisioning factor for headroom.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.capacity import min_edge_servers, proportional_allocation

__all__ = ["SkewAwarePlan", "plan_capacity"]


@dataclass(frozen=True)
class SkewAwarePlan:
    """A per-site server allocation and its derived properties."""

    site_rates: tuple[float, ...]
    servers: tuple[int, ...]
    mu: float

    @property
    def total_servers(self) -> int:
        """Fleet size of the plan."""
        return sum(self.servers)

    @property
    def utilizations(self) -> tuple[float, ...]:
        """Per-site utilization under the plan."""
        return tuple(
            r / (s * self.mu) if s > 0 else 0.0
            for r, s in zip(self.site_rates, self.servers, strict=True)
        )

    @property
    def max_utilization(self) -> float:
        """Hottest site's utilization (the inversion risk driver)."""
        return max(self.utilizations, default=0.0)

    def is_stable(self) -> bool:
        """True when every loaded site has capacity above its load."""
        return all(
            s * self.mu > r
            for r, s in zip(self.site_rates, self.servers, strict=True)
            if r > 0
        )


def plan_capacity(
    site_rates: Sequence[float],
    mu: float,
    *,
    delta_n: float | None = None,
    cloud_servers: int | None = None,
    overprovision: float = 1.0,
    time_unit: float = 1.0,
) -> SkewAwarePlan:
    """Compute a per-site server plan for a (possibly skewed) workload.

    Parameters
    ----------
    site_rates:
        Request rate arriving at each edge site (req/s).
    mu:
        Per-server service rate (req/s).
    delta_n / cloud_servers:
        When both are given, apply Equation 22's inversion-avoidance
        floor per site (``delta_n`` in the units ``time_unit`` converts
        to; ``cloud_servers`` is the k of the comparison cloud).
        Otherwise only stability floors apply.
    overprovision:
        Multiplicative headroom factor ≥ 1 applied to each site's floor
        (the paper's "overprovisioning factor ... to allow sufficient
        headroom").

    Returns
    -------
    SkewAwarePlan
        The resulting allocation (stable by construction).
    """
    rates = [float(r) for r in site_rates]
    if not rates or any(r < 0 for r in rates):
        raise ValueError(f"site_rates must be non-empty and non-negative, got {rates}")
    if mu <= 0:
        raise ValueError(f"mu must be > 0, got {mu}")
    if overprovision < 1.0:
        raise ValueError(f"overprovision must be >= 1, got {overprovision}")
    if (delta_n is None) != (cloud_servers is None):
        raise ValueError("delta_n and cloud_servers must be given together")

    total = sum(rates)
    servers: list[int] = []
    for r in rates:
        if r == 0.0:
            servers.append(0)
            continue
        if delta_n is not None:
            floor = min_edge_servers(
                delta_n, r, mu, cloud_servers, total, time_unit=time_unit
            )
        else:
            floor = math.floor(r / mu) + 1  # stability only
        servers.append(max(1, math.ceil(floor * overprovision)))
    return SkewAwarePlan(site_rates=tuple(rates), servers=tuple(servers), mu=mu)


def rebalance_to_budget(
    site_rates: Sequence[float], total_servers: int, mu: float
) -> SkewAwarePlan:
    """Distribute a fixed server budget proportionally to site load.

    The constrained variant: the fleet size is given (e.g. the k servers
    of the cloud deployment) and the question is only *where* to put
    them.  Raises if the budget cannot keep every loaded site stable.
    """
    rates = [float(r) for r in site_rates]
    if mu <= 0:
        raise ValueError(f"mu must be > 0, got {mu}")
    alloc = proportional_allocation(rates, total_servers)
    plan = SkewAwarePlan(site_rates=tuple(rates), servers=tuple(alloc), mu=mu)
    if not plan.is_stable():
        raise ValueError(
            f"budget of {total_servers} servers cannot stabilize rates {rates} at mu={mu}"
        )
    return plan
