"""Executable versions of the paper's Section 5 design implications.

* :mod:`repro.mitigation.geo_lb` — geographic load balancing ("queue
  jockeying"): redirect requests from an overloaded edge site to a
  nearby site with spare capacity.
* :mod:`repro.mitigation.provisioning` — skew-proportional capacity
  allocation with over-provisioning headroom (Lemma 3.3's prescription
  plus Equation 22's per-site floor).
* :mod:`repro.mitigation.autoscale` — reactive per-site scaling on an
  observed-utilization signal (the paper's "adjusted dynamically"
  remark for time-varying skew).
"""

from repro.mitigation.admission import (
    AdaptiveAdmission,
    AdmissionControlledStation,
    AIMDConcurrencyLimit,
    ConcurrencyLimit,
    GradientConcurrencyLimit,
    OccupancyAdmission,
    StaticConcurrencyLimit,
    TokenBucketAdmission,
)
from repro.mitigation.autoscale import ReactiveAutoscaler
from repro.mitigation.geo_lb import GeoLoadBalancer
from repro.mitigation.offload import HybridDeployment
from repro.mitigation.predictive import PredictiveAutoscaler
from repro.mitigation.provisioning import SkewAwarePlan, plan_capacity, rebalance_to_budget

__all__ = [
    "GeoLoadBalancer",
    "ReactiveAutoscaler",
    "PredictiveAutoscaler",
    "HybridDeployment",
    "SkewAwarePlan",
    "plan_capacity",
    "rebalance_to_budget",
    "AdmissionControlledStation",
    "OccupancyAdmission",
    "TokenBucketAdmission",
    "ConcurrencyLimit",
    "StaticConcurrencyLimit",
    "AIMDConcurrencyLimit",
    "GradientConcurrencyLimit",
    "AdaptiveAdmission",
]
