"""The stdlib HTTP/SSE front-end for campaign submission and streaming.

Endpoints (all JSON in the unified envelope of
:mod:`repro.experiments.schema` wherever a result object crosses the
wire):

========================================  =====================================
``GET  /v1/healthz``                      liveness + job-state counts
``GET  /v1/experiments``                  the experiment registry
``POST /v1/campaigns``                    submit a campaign document
``GET  /v1/campaigns``                    list jobs
``GET  /v1/campaigns/{id}``               job status (+ result when done)
``GET  /v1/campaigns/{id}/events``        SSE stream (lifecycle + telemetry)
========================================  =====================================

Built on ``http.server.ThreadingHTTPServer`` — one thread per
connection, which is exactly what SSE needs (each stream parks its
thread in ``EventBus.read``) and keeps the server dependency-free.
``serve()`` wires SIGINT/SIGTERM to a graceful shutdown: stop accepting
connections, drain the job pool (in-flight campaigns stay journal-
recoverable even under kill -9).

See ``docs/service.md`` for the wire contract and curl examples.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.campaign import CampaignValidationError
from repro.service.jobs import JobManager

__all__ = ["create_server", "serve"]

#: Seconds an idle SSE stream waits before emitting a heartbeat comment.
SSE_HEARTBEAT = 15.0

#: Hard cap on request bodies (a campaign document is a few KB).
MAX_BODY_BYTES = 4 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-service/1"

    # -- plumbing --------------------------------------------------------

    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            sys.stderr.write(
                f"{self.address_string()} - {format % args}\n"
            )

    def _send_json(self, status: int, doc: dict) -> None:
        body = json.dumps(doc, indent=2, sort_keys=True).encode("utf-8") + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str, **extra) -> None:
        self._send_json(status, {"error": message, **extra})

    def _read_body(self) -> bytes | None:
        length = self.headers.get("Content-Length")
        if length is None:
            self._error(411, "Content-Length required")
            return None
        try:
            n = int(length)
        except ValueError:
            self._error(400, f"invalid Content-Length {length!r}")
            return None
        if n > MAX_BODY_BYTES:
            self._error(413, f"body exceeds {MAX_BODY_BYTES} bytes")
            return None
        return self.rfile.read(n)

    # -- routing ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server convention)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/v1/healthz":
            return self._get_healthz()
        if path == "/v1/experiments":
            return self._get_experiments()
        if path == "/v1/campaigns":
            return self._get_campaigns()
        parts = path.split("/")
        # /v1/campaigns/{id} and /v1/campaigns/{id}/events
        if len(parts) >= 4 and parts[1] == "v1" and parts[2] == "campaigns":
            job = self.manager.get(parts[3])
            if job is None:
                return self._error(404, f"no campaign job {parts[3]!r}")
            if len(parts) == 4:
                return self._send_json(200, job.describe())
            if len(parts) == 5 and parts[4] == "events":
                return self._get_events(job)
        self._error(404, f"no route for GET {path}")

    def do_POST(self) -> None:  # noqa: N802
        path = self.path.split("?", 1)[0].rstrip("/")
        if path != "/v1/campaigns":
            return self._error(404, f"no route for POST {path}")
        body = self._read_body()
        if body is None:
            return
        try:
            doc = json.loads(body)
        except json.JSONDecodeError as exc:
            return self._error(400, f"request body is not valid JSON: {exc}")
        if not isinstance(doc, dict):
            return self._error(400, "campaign document must be a JSON object")
        try:
            job, created = self.manager.submit(doc)
        except CampaignValidationError as exc:
            return self._error(
                422,
                "campaign failed validation",
                issues=[i.render() for i in exc.issues],
                exit_code=exc.exit_code,
            )
        self._send_json(201 if created else 200, job.describe())

    # -- endpoints -------------------------------------------------------

    def _get_healthz(self) -> None:
        self._send_json(200, {"status": "ok", "jobs": self.manager.counts()})

    def _get_experiments(self) -> None:
        from repro.experiments.result import available

        self._send_json(200, {
            "experiments": [
                {"name": spec.name, "description": spec.description}
                for spec in available()
            ],
        })

    def _get_campaigns(self) -> None:
        self._send_json(200, {
            "jobs": [job.describe() for job in self.manager.jobs()],
        })

    def _get_events(self, job) -> None:
        """Stream the job's event bus as Server-Sent Events.

        Every client replays the full retained history from sequence 0
        — connecting late (or twice) yields the same ordered stream.
        The stream ends with a ``stream-closed`` event once the job's
        bus closes; idle gaps carry ``: heartbeat`` comments so proxies
        and clients can distinguish quiet from dead.
        """
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        # SSE is unbounded: no Content-Length, so the connection closes
        # with the stream rather than being reused.
        self.send_header("Connection", "close")
        self.end_headers()
        cursor = 0
        try:
            while True:
                events, cursor, closed = job.events.read(
                    cursor, timeout=SSE_HEARTBEAT
                )
                for event in events:
                    name = event.get("event", "message")
                    data = json.dumps(event, sort_keys=True)
                    self.wfile.write(
                        f"event: {name}\ndata: {data}\n\n".encode()
                    )
                if closed and not events:
                    self.wfile.write(
                        b'event: stream-closed\ndata: {"event": "stream-closed"}\n\n'
                    )
                    self.wfile.flush()
                    return
                if not events:
                    self.wfile.write(b": heartbeat\n\n")
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            return  # client went away; nothing to clean up


def create_server(
    host: str = "127.0.0.1",
    port: int = 8000,
    manager: JobManager | None = None,
    *,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """Build the HTTP server (not yet serving) around a job manager.

    The manager is started if it isn't already; the caller owns both
    lifecycles (``server.shutdown()`` + ``manager.stop()``).  Port 0
    binds an ephemeral port — read ``server.server_address`` back.
    """
    if manager is None:
        manager = JobManager()
    manager.start()
    server = ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = True  # SSE threads must not block shutdown
    server.manager = manager  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    return server


def serve(
    host: str = "127.0.0.1",
    port: int = 8000,
    *,
    state_dir: str | None = None,
    pool: int = 1,
    workers: int | None = None,
    telemetry_window: float | None = None,
    telemetry_path: str | None = None,
    verbose: bool = True,
) -> int:
    """Run the campaign service until SIGINT/SIGTERM; returns exit code.

    Shutdown is graceful: the listener stops, then the job pool drains
    (queued jobs stay spooled under ``state_dir`` and resume on the next
    start; even a kill -9 loses nothing thanks to the per-job journal).
    """
    manager = JobManager(
        state_dir,
        pool=pool,
        workers=workers,
        telemetry_window=telemetry_window,
        telemetry_path=telemetry_path,
    )
    server = create_server(host, port, manager, verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    if verbose:
        sys.stderr.write(
            f"repro service listening on http://{bound_host}:{bound_port} "
            f"(state_dir={state_dir or 'none (in-memory)'}, pool={pool}, "
            f"workers={workers or 1})\n"
        )

    stop = threading.Event()

    def _signal(signum, frame) -> None:
        stop.set()

    previous = {
        sig: signal.signal(sig, _signal)
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    serve_thread = threading.Thread(target=server.serve_forever, daemon=True)
    serve_thread.start()
    try:
        stop.wait()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        if verbose:
            sys.stderr.write("repro service shutting down...\n")
        server.shutdown()
        serve_thread.join()
        server.server_close()
        manager.stop(wait=True)
        if verbose:
            sys.stderr.write("repro service stopped.\n")
    return 0
