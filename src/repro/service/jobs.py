"""Campaign jobs: validation, a bounded worker pool, restart/resume.

The service side of ROADMAP item 5.  A submitted campaign document
becomes a :class:`CampaignJob` whose identity is the campaign's
*content digest* (:meth:`CampaignSpec.digest`), which buys three
properties at once:

* **Idempotent submission** — POSTing the same document twice returns
  the same job instead of running the campaign twice;
* **Stable spool layout** — with a state directory configured, job
  ``<id>`` lives at ``state_dir/jobs/<id>/`` (``campaign.json``, the
  scenario ``journal.jsonl``, the final ``result.json``);
* **kill -9 recovery** — a restarted :class:`JobManager` re-enqueues
  every spooled job lacking a ``result.json`` and re-runs it *with the
  same journal*, so completed scenarios replay from disk and the
  resumed campaign fingerprints bit-identically (the PR 6/7 invariant).

Execution reuses :func:`repro.campaign.run_campaign` unchanged — the
supervised ``run_tasks`` substrate with budgets, quarantine and
journaling — on a bounded pool of plain worker threads.  Per-scenario
lifecycle events flow through ``run_campaign(progress=...)`` into the
job's :class:`~repro.service.events.EventBus`; with ``workers == 1``
(the in-process serial path) windowed :mod:`repro.obs` telemetry can be
bridged onto the same bus via a thread-local exporter.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.campaign import CampaignResult, CampaignSpec, compile_campaign, run_campaign
from repro.campaign.spec import dump_campaign
from repro.experiments import schema as wire
from repro.service.events import EventBus

__all__ = ["CampaignJob", "JobManager"]

#: Job states, in lifecycle order.
STATES = ("queued", "running", "done", "failed")


@dataclass
class CampaignJob:
    """One submitted campaign and everything the service knows about it."""

    id: str
    spec: CampaignSpec
    status: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    finished_at: float | None = None
    result: CampaignResult | None = None
    error: str | None = None
    events: EventBus = field(default_factory=EventBus)

    def describe(self) -> dict[str, Any]:
        """The job's wire document (enveloped ``campaign-job``)."""
        body: dict[str, Any] = {
            "id": self.id,
            "campaign": self.spec.name,
            "seed": self.spec.seed,
            "digest": self.spec.digest(),
            "scenarios": len(self.spec.scenarios),
            "status": self.status,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
        }
        if self.error is not None:
            body["error"] = self.error
        if self.result is not None:
            body["result"] = wire.dump_campaign_result(self.result)
            body["salvage"] = wire.dump_salvage_report(self.result)
        return wire.envelope("campaign-job", body)


class _BusExporter:
    """Telemetry exporter publishing each record as an SSE-able event."""

    def __init__(self, bus: EventBus):
        self._bus = bus

    def export(self, record: dict) -> None:
        rtype = record.get("type", "window")
        # The record is already an enveloped telemetry document
        # (schema_version stamped at build time); wrap, don't re-shape.
        self._bus.publish({"event": f"telemetry-{rtype}", "record": record})

    def close(self) -> None:
        pass


class JobManager:
    """Bounded campaign execution behind the HTTP front-end.

    Parameters
    ----------
    state_dir:
        Spool directory for durable jobs (``None`` = in-memory only, no
        restart/resume).  Existing unfinished jobs found here are
        re-enqueued by :meth:`start`.
    pool:
        Worker *threads* running campaigns concurrently (each campaign
        still fans its scenarios out per ``workers``).
    workers:
        Worker processes per campaign, forwarded to
        :func:`repro.campaign.run_campaign`.
    telemetry_window:
        When set (and ``workers == 1``), every simulation a job builds
        streams windowed telemetry onto the job's event bus with this
        window (virtual seconds).  Incompatible with ``workers > 1`` —
        :class:`repro.obs.provider.TelemetryFanoutError` at start.
    telemetry_path:
        Optional JSON-lines file receiving a copy of every telemetry
        record across all jobs (the ``repro serve --telemetry PATH``
        flag); requires ``telemetry_window``.
    """

    def __init__(
        self,
        state_dir: str | Path | None = None,
        *,
        pool: int = 1,
        workers: int | None = None,
        telemetry_window: float | None = None,
        telemetry_path: str | None = None,
    ):
        if pool < 1:
            raise ValueError(f"pool must be >= 1, got {pool}")
        self.state_dir = None if state_dir is None else Path(state_dir)
        self.pool = pool
        self.workers = workers
        self.telemetry_window = telemetry_window
        self.telemetry_path = telemetry_path
        self._file_exporter = None
        self._jobs: dict[str, CampaignJob] = {}
        self._lock = threading.Lock()
        self._queue: queue.Queue = queue.Queue()
        self._threads: list[threading.Thread] = []
        self._stopping = False
        self._started = False
        self._tl = threading.local()
        self._telemetry_installed = False

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Spin up the worker pool and re-enqueue spooled unfinished jobs."""
        if self._started:
            return
        self._started = True
        if self.telemetry_window is not None:
            from repro.obs import provider
            from repro.parallel.pool import resolve_workers

            provider.ensure_fanout_compatible(
                resolve_workers(self.workers),
                context="JobManager",
                installing=True,
            )
            if self.telemetry_path is not None:
                from repro.obs import JsonLinesExporter

                self._file_exporter = JsonLinesExporter(self.telemetry_path)
            provider.install(self._make_telemetry)
            self._telemetry_installed = True
        for i in range(self.pool):
            t = threading.Thread(
                target=self._worker, name=f"campaign-worker-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)
        self._recover()

    def stop(self, wait: bool = True) -> None:
        """Graceful shutdown: finish nothing new, join the pool.

        In-flight campaigns are *not* interrupted mid-run (their
        journals make even a hard kill recoverable); queued jobs stay
        spooled for the next start.
        """
        self._stopping = True
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for t in self._threads:
                t.join()
        if self._telemetry_installed:
            from repro.obs import provider

            provider.uninstall()
            self._telemetry_installed = False
        if self._file_exporter is not None:
            self._file_exporter.close()
            self._file_exporter = None

    def _make_telemetry(self):
        """Telemetry factory: bind new simulations to the running job's bus."""
        bus = getattr(self._tl, "bus", None)
        if bus is None:
            return None
        from repro.obs import Telemetry

        label = getattr(self._tl, "label", "")
        exporters: list = [_BusExporter(bus)]
        if self._file_exporter is not None:
            exporters.append(self._file_exporter)
        return Telemetry(
            window=self.telemetry_window,
            exporters=exporters,
            label=label,
        )

    # -- submission ------------------------------------------------------

    def submit(self, doc: dict) -> tuple[CampaignJob, bool]:
        """Validate and enqueue a campaign document.

        Returns ``(job, created)``; ``created`` is ``False`` when a job
        with the same content digest already exists (idempotent
        resubmission — the existing job, whatever its state, is the
        answer).  Raises
        :class:`repro.campaign.CampaignValidationError` on a document
        that fails structural validation (scenarios with *semantic*
        issues are accepted and quarantined at run time, matching
        ``repro campaign``'s default).
        """
        spec = compile_campaign(doc)
        job_id = spec.digest()
        with self._lock:
            existing = self._jobs.get(job_id)
            if existing is not None:
                return existing, False
            job = CampaignJob(id=job_id, spec=spec)
            self._jobs[job_id] = job
        self._spool(job)
        self._queue.put(job_id)
        return job, True

    def get(self, job_id: str) -> CampaignJob | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[CampaignJob]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.submitted_at)

    def counts(self) -> dict[str, int]:
        with self._lock:
            snapshot = list(self._jobs.values())
        return {state: sum(1 for j in snapshot if j.status == state)
                for state in STATES}

    # -- spool / recovery ------------------------------------------------

    def _job_dir(self, job_id: str) -> Path | None:
        if self.state_dir is None:
            return None
        return self.state_dir / "jobs" / job_id

    def _spool(self, job: CampaignJob) -> None:
        jdir = self._job_dir(job.id)
        if jdir is None:
            return
        jdir.mkdir(parents=True, exist_ok=True)
        # The canonical (expanded) document, not the raw submission:
        # recovery recompiles it to the identical spec/digest.
        (jdir / "campaign.json").write_text(
            json.dumps(dump_campaign(job.spec), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def _recover(self) -> None:
        """Re-enqueue spooled jobs that never produced a result."""
        if self.state_dir is None:
            return
        jobs_root = self.state_dir / "jobs"
        if not jobs_root.is_dir():
            return
        for jdir in sorted(jobs_root.iterdir()):
            doc_path = jdir / "campaign.json"
            if not doc_path.is_file():
                continue
            try:
                spec = compile_campaign(
                    json.loads(doc_path.read_text(encoding="utf-8"))
                )
            except Exception:  # repro: noqa[RPR013] -- spool rescan is best-effort: a foreign/corrupt entry must not block recovery of the valid ones
                continue
            job_id = spec.digest()
            with self._lock:
                if job_id in self._jobs:
                    continue
                job = CampaignJob(id=job_id, spec=spec)
                self._jobs[job_id] = job
            result_path = jdir / "result.json"
            if result_path.is_file():
                try:
                    result = wire.load_campaign_result(
                        json.loads(result_path.read_text(encoding="utf-8"))
                    )
                except (ValueError, OSError):
                    self._queue.put(job_id)  # unreadable result: re-run
                    continue
                job.result = result
                job.status = "done"
                job.events.close()
            else:
                # Interrupted mid-campaign (or never started): re-run
                # against its journal — completed scenarios replay.
                self._queue.put(job_id)

    # -- execution -------------------------------------------------------

    def _worker(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            job = self.get(job_id)
            if job is None or job.status not in ("queued",):
                continue
            self._run_job(job)

    def _run_job(self, job: CampaignJob) -> None:
        job.status = "running"
        bus = job.events
        bus.publish({
            "event": "campaign-started",
            "job": job.id,
            "campaign": job.spec.name,
            "seed": job.spec.seed,
            "scenarios": len(job.spec.scenarios),
        })

        def progress(name: str, outcome) -> None:
            bus.publish({
                "event": "scenario-finished",
                "job": job.id,
                "scenario": name,
                "status": outcome.status,
                "attempts": outcome.attempts,
                "from_journal": outcome.from_journal,
            })

        jdir = self._job_dir(job.id)
        checkpoint = None if jdir is None else jdir / "journal.jsonl"
        self._tl.bus = bus
        self._tl.label = f"{job.spec.name}@{job.id}"
        try:
            result = run_campaign(
                job.spec,
                workers=self.workers,
                checkpoint=checkpoint,
                progress=progress,
            )
        except Exception as exc:
            job.status = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
            job.finished_at = time.time()
            bus.publish({"event": "campaign-failed", "job": job.id,
                         "error": job.error})
            bus.close()
            return
        finally:
            self._tl.bus = None
            self._tl.label = ""

        job.result = result
        job.status = "done"
        job.finished_at = time.time()
        if jdir is not None:
            wire.dump(result, jdir / "result.json")
        for q in result.quarantined:
            if q.reason == "invalid-config":
                bus.publish({
                    "event": "scenario-quarantined",
                    "job": job.id,
                    "scenario": q.name,
                    "reason": q.reason,
                    "detail": q.detail,
                })
        bus.publish({
            "event": "campaign-finished",
            "job": job.id,
            "status": "done",
            "ok": result.ok,
            "succeeded": len(result.runs),
            "quarantined": len(result.quarantined),
            "fingerprint": result.fingerprint(),
        })
        bus.close()
