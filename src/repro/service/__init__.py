"""repro.service — the campaign service (HTTP/SSE front-end).

ROADMAP item 5: the batch reproduction exposed as a long-running,
stdlib-only HTTP service.  Clients ``POST`` declarative campaign
documents (PR 7), the service validates, enqueues and runs them on the
supervised substrate (PR 6), and every result crosses the wire in the
unified versioned envelope of :mod:`repro.experiments.schema`.

Layers, bottom up:

* :mod:`repro.service.events` — a per-job :class:`EventBus`: bounded
  fan-out of lifecycle and telemetry events to any number of
  concurrent SSE readers (plain ``threading.Condition``, no deps);
* :mod:`repro.service.jobs` — :class:`JobManager`: content-addressed
  campaign jobs (job id = the campaign's digest, so resubmission is
  idempotent), a bounded worker pool, per-job journals under a state
  directory, and kill -9 restart/resume (jobs found without a result
  re-enqueue and replay their journals bit-identically);
* :mod:`repro.service.http` — the ``ThreadingHTTPServer`` front-end:
  ``POST /v1/campaigns``, ``GET /v1/campaigns[/{id}[/events]]``,
  ``GET /v1/experiments``, ``GET /v1/healthz``.

Start it with ``python -m repro serve`` (or ``python -m
repro.service``); see ``docs/service.md`` for the endpoint and SSE
event contract.
"""

from __future__ import annotations

from repro.service.events import EventBus
from repro.service.http import create_server, serve
from repro.service.jobs import CampaignJob, JobManager

__all__ = [
    "EventBus",
    "CampaignJob",
    "JobManager",
    "create_server",
    "serve",
]
