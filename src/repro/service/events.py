"""Per-job event fan-out for the campaign service.

One :class:`EventBus` per campaign job carries its lifecycle events
(scenario settled, campaign finished, …) and — when telemetry is on —
its windowed :mod:`repro.obs` records to every connected SSE reader.

Design constraints:

* **Multiple concurrent readers.**  Each SSE client polls with its own
  cursor into the bus's append-only history, so two clients streaming
  the same job see the same events in the same order regardless of when
  they connected (the acceptance criterion for ≥2 concurrent streams).
* **Bounded memory.**  The history is capped; readers that connect
  after eviction see a ``truncated`` marker event rather than silently
  missing records.  Lifecycle events are few; telemetry windows
  dominate and are safe to age out.
* **Stdlib only.**  A list, a ``threading.Condition``, nothing else.
"""

from __future__ import annotations

import threading
from typing import Any

__all__ = ["EventBus"]

#: Default cap on retained events per job.
DEFAULT_HISTORY_LIMIT = 10_000


class EventBus:
    """Append-only, bounded event log with blocking cursor reads."""

    def __init__(self, history_limit: int = DEFAULT_HISTORY_LIMIT):
        if history_limit < 1:
            raise ValueError(f"history_limit must be >= 1, got {history_limit}")
        self._limit = history_limit
        self._events: list[dict[str, Any]] = []
        #: Sequence number of self._events[0] (grows as old events evict).
        self._base = 0
        self._closed = False
        self._cond = threading.Condition()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def publish(self, event: dict[str, Any]) -> int:
        """Append one event; returns its sequence number."""
        with self._cond:
            if self._closed:
                raise RuntimeError("EventBus is closed")
            self._events.append(event)
            seq = self._base + len(self._events) - 1
            overflow = len(self._events) - self._limit
            if overflow > 0:
                del self._events[:overflow]
                self._base += overflow
            self._cond.notify_all()
            return seq

    def close(self) -> None:
        """No more events will arrive; wakes every blocked reader."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def read(
        self, cursor: int, timeout: float | None = None
    ) -> tuple[list[dict[str, Any]], int, bool]:
        """Events at sequence >= ``cursor``; blocks up to ``timeout``.

        Returns ``(events, next_cursor, closed)``.  An empty ``events``
        with ``closed=False`` is a timeout (SSE readers emit a heartbeat
        and poll again); with ``closed=True`` the stream is over.  A
        cursor older than the retained window yields a single
        ``{"event": "truncated"}`` marker before the surviving events.
        """
        with self._cond:
            if cursor >= self._base + len(self._events) and not self._closed:
                self._cond.wait(timeout)
            truncated = cursor < self._base
            start = max(cursor, self._base)
            events = list(self._events[start - self._base:])
            if truncated:
                events.insert(0, {
                    "event": "truncated",
                    "dropped": self._base - cursor,
                })
            return events, self._base + len(self._events), self._closed
