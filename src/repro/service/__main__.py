"""``python -m repro.service`` — start the campaign service directly.

A thin alias for ``python -m repro serve``; all flags are shared (see
``repro serve --help`` and ``docs/service.md``).
"""

import sys

from repro.cli import main

if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main(["serve", *sys.argv[1:]]))
