"""The supported import surface, in one flat module.

``repro.api`` is the facade over everything this project promises to
keep stable: experiment execution, campaign orchestration, the campaign
service, the versioned wire schema, telemetry and the parallel
substrate.  Import from here and upgrades stay mechanical::

    from repro.api import run_experiment, run_campaign, load_campaign

**Stability contract** (see ``docs/api.md``): every name in ``__all__``
below keeps its signature and semantics within a major version; removal
or change is preceded by at least one release emitting a
``DeprecationWarning``.  Deep imports (``repro.experiments.result``,
``repro.campaign.runner``, …) continue to work but are *not* covered by
the contract — retired deep paths (``repro.cli.EXPERIMENTS``,
``repro.experiments.persist.FIGURE_RUNNERS``) warn and forward here.

Wire documents (results persisted by ``ExperimentResult.save``, golden
summaries, salvage reports, telemetry files, every service response)
carry ``schema_version`` from :mod:`repro.experiments.schema`; readers
tolerate unknown keys and refuse newer majors, so artifacts written by
one release load in the next.
"""

from __future__ import annotations

# -- analytic + scenario layer -----------------------------------------
from repro.core import cutoff_utilization_exact, cutoff_utilization_tail
from repro.core.comparator import EdgeCloudComparator
from repro.core.scenarios import TYPICAL_CLOUD, Scenario

# -- experiments --------------------------------------------------------
from repro.experiments.config import FAST, FULL, ExperimentConfig
from repro.experiments.result import (
    ExperimentResult,
    available,
    get_spec,
    run_experiment,
)

# -- versioned wire schema (the unified envelope) -----------------------
from repro.experiments.schema import (
    SCHEMA_VERSION,
    SchemaVersionError,
    WireFormatError,
    load_document,
    to_document,
)

# -- campaigns ----------------------------------------------------------
from repro.campaign import (
    CampaignResult,
    CampaignSpec,
    CampaignValidationError,
    compile_campaign,
    diff_golden,
    load_campaign,
    load_golden,
    run_campaign,
    write_golden,
)

# -- campaign service ---------------------------------------------------
from repro.service import CampaignJob, EventBus, JobManager, create_server, serve

# -- observability ------------------------------------------------------
from repro.obs import JsonLinesExporter, Telemetry, install, uninstall
from repro.obs.provider import TelemetryFanoutError

# -- parallel substrate -------------------------------------------------
from repro.parallel import TaskOutcome, resolve_workers, run_tasks

__all__ = [
    # analytic + scenario layer
    "EdgeCloudComparator",
    "Scenario",
    "TYPICAL_CLOUD",
    "cutoff_utilization_exact",
    "cutoff_utilization_tail",
    # experiments
    "ExperimentConfig",
    "ExperimentResult",
    "FAST",
    "FULL",
    "available",
    "get_spec",
    "run_experiment",
    # wire schema
    "SCHEMA_VERSION",
    "SchemaVersionError",
    "WireFormatError",
    "load_document",
    "to_document",
    # campaigns
    "CampaignResult",
    "CampaignSpec",
    "CampaignValidationError",
    "compile_campaign",
    "diff_golden",
    "load_campaign",
    "load_golden",
    "run_campaign",
    "write_golden",
    # campaign service
    "CampaignJob",
    "EventBus",
    "JobManager",
    "create_server",
    "serve",
    # observability
    "JsonLinesExporter",
    "Telemetry",
    "TelemetryFanoutError",
    "install",
    "uninstall",
    # parallel substrate
    "TaskOutcome",
    "resolve_workers",
    "run_tasks",
]
