"""repro — reproduction of *The Hidden Cost of the Edge* (SC 2021).

This library implements, end to end, the paper's study of the **edge
performance inversion** problem: the regime in which an edge deployment's
lower network latency is offset by higher queueing delay, making its
end-to-end latency *worse* than the cloud's.

Subpackages
-----------
``repro.queueing``
    Exact (M/M/1, M/M/k) and approximate (Kingman, Allen–Cunneen, Whitt)
    queueing models — the analytic substrate for Section 3.
``repro.sim``
    Discrete-event simulator of edge/cloud deployments (the stand-in for
    the paper's EC2 testbed) plus a fast vectorized G/G/c path.
``repro.workload``
    Arrival processes, service-time models (incl. the DNN-inference
    application model), synthetic Azure serverless traces and spatial
    skew generators.
``repro.core``
    The paper's contribution: inversion bounds (Lemmas 3.1–3.3,
    Corollaries 3.1.1–3.2.1), cutoff-utilization solvers, capacity
    planning (Section 5) and the high-level
    :class:`~repro.core.comparator.EdgeCloudComparator`.
``repro.mitigation``
    Executable versions of Section 5's design implications: geographic
    load balancing, skew-proportional provisioning, reactive autoscaling.
``repro.stats``
    Measurement utilities: latency summaries, time series, batch-means
    confidence intervals, warm-up trimming.
``repro.experiments``
    Runners that regenerate every figure/table in the paper's evaluation.

The most-used names are re-exported lazily at the top level (PEP 562), so
``import repro`` stays cheap and subpackages can be imported independently.
"""

from __future__ import annotations

import importlib
from typing import Any

__version__ = "1.0.0"

# name -> module providing it
_EXPORTS = {
    "EdgeCloudComparator": "repro.core.comparator",
    "ComparisonResult": "repro.core.comparator",
    "Scenario": "repro.core.scenarios",
    "NEARBY_CLOUD": "repro.core.scenarios",
    "TYPICAL_CLOUD": "repro.core.scenarios",
    "DISTANT_CLOUD": "repro.core.scenarios",
    "TRANSCONTINENTAL_CLOUD": "repro.core.scenarios",
    "delta_n_threshold_mm": "repro.core.inversion",
    "delta_n_threshold_gg": "repro.core.inversion",
    "delta_n_threshold_skewed": "repro.core.inversion",
    "cutoff_utilization_paper": "repro.core.inversion",
    "cutoff_utilization_exact": "repro.core.inversion",
    "ExperimentResult": "repro.experiments.result",
    "run_experiment": "repro.experiments.result",
    "Telemetry": "repro.obs",
    "RefusalCounts": "repro.stats.refusals",
}

__all__ = ["__version__", *_EXPORTS]


def __getattr__(name: str) -> Any:
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    return getattr(importlib.import_module(module), name)


def __dir__() -> list[str]:
    return sorted(__all__)
